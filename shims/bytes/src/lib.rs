//! Offline stand-in for the subset of the `bytes` crate this workspace uses:
//! `Bytes` / `BytesMut` with the little-endian `Buf` / `BufMut` accessors the
//! checkpoint formats rely on. `Bytes` shares its backing buffer via `Arc`
//! so clones are cheap, like upstream.

use std::sync::Arc;

/// Cheaply-cloneable immutable byte buffer with a read cursor.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    pos: usize,
}

impl Bytes {
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes {
            data: Arc::new(data),
            pos: 0,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

/// Growable byte buffer for writing.
#[derive(Debug, Default, Clone)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

/// Sequential reader over a byte source. Reads advance the cursor.
pub trait Buf {
    fn remaining(&self) -> usize;

    fn advance(&mut self, n: usize);

    fn chunk(&self) -> &[u8];

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice overrun");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.pos += n;
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

impl Bytes {
    /// Split off the next `len` bytes as an independent `Bytes`.
    pub fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "copy_to_bytes overrun");
        let out = Bytes::from(self[..len].to_vec());
        self.pos += len;
        out
    }
}

/// Sequential writer into a growable buffer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut w = BytesMut::new();
        w.put_slice(b"hdr");
        w.put_u32_le(0xdead_beef);
        w.put_f32_le(1.5);
        w.put_u64_le(42);
        let mut r = w.freeze();
        let mut hdr = [0u8; 3];
        r.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"hdr");
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_u64_le(), 42);
        assert!(!r.has_remaining());
    }

    #[test]
    fn copy_to_bytes_advances() {
        let mut b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let head = b.copy_to_bytes(2);
        assert_eq!(&*head, &[1, 2]);
        assert_eq!(b.remaining(), 3);
        assert_eq!(b.to_vec(), vec![3, 4, 5]);
    }

    #[test]
    fn clones_share_and_cursor_is_independent() {
        let a = Bytes::from(vec![9u8; 100]);
        let mut b = a.clone();
        b.advance(50);
        assert_eq!(a.remaining(), 100);
        assert_eq!(b.remaining(), 50);
    }

    #[test]
    #[should_panic(expected = "overrun")]
    fn overread_panics() {
        let mut b = Bytes::from(vec![1u8, 2]);
        let _ = b.get_u32_le();
    }
}
