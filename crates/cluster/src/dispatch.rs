//! Work-stealing dispatch over per-replica, per-QoS-class deques.
//!
//! Each replica owns three FIFO deques (one per [`QosClass`], drained in
//! priority order). A replica's worker pops from the *front* of its own
//! deques; an idle worker steals from the *back* of a victim's deques — the
//! classic work-stealing discipline that keeps an owner's hot, affine jobs
//! (recently requeued, warm per-tenant workspaces) at its own end while
//! thieves take the coldest work.
//!
//! The queue is job-type-generic (`DispatchQueue<T>`) so its scheduling
//! invariants can be unit-tested without building backbone replicas; the
//! cluster scheduler instantiates it with `T = lx_serve::TenantTask`.

use crate::qos::QosClass;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Lock with poison recovery: a replica worker panicking is an expected,
/// contained event (quarantine), so a poisoned queue mutex must not cascade
/// into every other worker.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

struct ReplicaQueues<T> {
    /// One FIFO per QoS class, indexed by [`QosClass::index`].
    classes: [Mutex<VecDeque<T>>; 3],
    /// Set when this replica's worker panicked; quarantined replicas accept
    /// no new work and are skipped by thieves.
    quarantined: AtomicBool,
}

impl<T> ReplicaQueues<T> {
    fn new() -> Self {
        ReplicaQueues {
            classes: [
                Mutex::new(VecDeque::new()),
                Mutex::new(VecDeque::new()),
                Mutex::new(VecDeque::new()),
            ],
            quarantined: AtomicBool::new(false),
        }
    }
}

/// Per-replica QoS-class deques with steal-on-idle. All methods take `&self`
/// — the queue is shared by reference across replica worker threads.
pub struct DispatchQueue<T> {
    replicas: Vec<ReplicaQueues<T>>,
}

impl<T> DispatchQueue<T> {
    pub fn new(n_replicas: usize) -> Self {
        assert!(n_replicas > 0, "a cluster needs at least one replica");
        DispatchQueue {
            replicas: (0..n_replicas).map(|_| ReplicaQueues::new()).collect(),
        }
    }

    pub fn n_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// Enqueue onto `replica`'s deque for `class` (owner end). Fails with
    /// the item handed back when the replica is quarantined — the flag is
    /// re-checked *under the deque lock*, so a push racing a concurrent
    /// quarantine either lands before the drain (and is redistributed with
    /// it) or is rejected; it can never strand on a dead replica.
    pub fn push(&self, replica: usize, class: QosClass, item: T) -> Result<(), T> {
        let rq = &self.replicas[replica];
        let mut q = lock(&rq.classes[class.index()]);
        if rq.quarantined.load(Ordering::Acquire) {
            return Err(item);
        }
        q.push_back(item);
        Ok(())
    }

    /// Owner pop: highest-priority non-empty class, front of the deque.
    pub fn pop_own(&self, replica: usize) -> Option<(QosClass, T)> {
        for class in QosClass::ALL {
            if let Some(item) = lock(&self.replicas[replica].classes[class.index()]).pop_front() {
                return Some((class, item));
            }
        }
        None
    }

    /// Remove up to `max` items matching `pred` from `replica`'s own deques,
    /// scanning classes in priority order — the fusion-peer harvest: after
    /// popping a fusable job, the owner gathers queued jobs with the same
    /// fusion key into one fused slice.
    pub fn drain_matching(
        &self,
        replica: usize,
        max: usize,
        mut pred: impl FnMut(&T) -> bool,
    ) -> Vec<(QosClass, T)> {
        let mut out = Vec::new();
        for class in QosClass::ALL {
            if out.len() == max {
                break;
            }
            let mut q = lock(&self.replicas[replica].classes[class.index()]);
            let mut i = 0;
            while i < q.len() && out.len() < max {
                if pred(&q[i]) {
                    let item = q.remove(i).unwrap();
                    out.push((class, item));
                } else {
                    i += 1;
                }
            }
        }
        out
    }

    /// Steal one job for an idle `thief`: scan the other healthy replicas
    /// round-robin starting after the thief, classes in priority order,
    /// taking from the *back* (the victim's coldest work).
    pub fn steal_for(&self, thief: usize) -> Option<(QosClass, T)> {
        let n = self.replicas.len();
        for off in 1..n {
            let victim = (thief + off) % n;
            if self.is_quarantined(victim) {
                continue;
            }
            for class in QosClass::ALL {
                if let Some(item) = lock(&self.replicas[victim].classes[class.index()]).pop_back() {
                    return Some((class, item));
                }
            }
        }
        None
    }

    /// Mark `replica` quarantined and drain everything still queued on it
    /// (for redistribution to survivors).
    pub fn quarantine(&self, replica: usize) -> Vec<(QosClass, T)> {
        self.replicas[replica]
            .quarantined
            .store(true, Ordering::Release);
        self.drain_replica(replica)
    }

    /// Drain everything queued on `replica` *without* changing its health —
    /// the post-drive sweep that surfaces jobs stranded by races.
    pub fn drain_replica(&self, replica: usize) -> Vec<(QosClass, T)> {
        let mut out = Vec::new();
        for class in QosClass::ALL {
            let mut q = lock(&self.replicas[replica].classes[class.index()]);
            out.extend(q.drain(..).map(|item| (class, item)));
        }
        out
    }

    pub fn is_quarantined(&self, replica: usize) -> bool {
        self.replicas[replica].quarantined.load(Ordering::Acquire)
    }

    /// Indices of replicas that have not been quarantined.
    pub fn healthy(&self) -> Vec<usize> {
        (0..self.replicas.len())
            .filter(|&r| !self.is_quarantined(r))
            .collect()
    }

    /// Jobs queued on one replica (all classes).
    pub fn pending(&self, replica: usize) -> usize {
        QosClass::ALL
            .iter()
            .map(|c| lock(&self.replicas[replica].classes[c.index()]).len())
            .sum()
    }

    /// Jobs queued cluster-wide.
    pub fn total_pending(&self) -> usize {
        (0..self.replicas.len()).map(|r| self.pending(r)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_drains_classes_in_priority_order() {
        let q: DispatchQueue<i32> = DispatchQueue::new(1);
        q.push(0, QosClass::BestEffort, 30).unwrap();
        q.push(0, QosClass::Interactive, 10).unwrap();
        q.push(0, QosClass::Batch, 20).unwrap();
        q.push(0, QosClass::Interactive, 11).unwrap();
        let order: Vec<i32> = std::iter::from_fn(|| q.pop_own(0).map(|(_, v)| v)).collect();
        assert_eq!(order, vec![10, 11, 20, 30]);
    }

    #[test]
    fn thief_takes_from_the_back_owner_from_the_front() {
        let q: DispatchQueue<i32> = DispatchQueue::new(2);
        q.push(0, QosClass::Batch, 1).unwrap();
        q.push(0, QosClass::Batch, 2).unwrap();
        q.push(0, QosClass::Batch, 3).unwrap();
        assert_eq!(q.steal_for(1), Some((QosClass::Batch, 3)), "coldest job");
        assert_eq!(q.pop_own(0), Some((QosClass::Batch, 1)), "hottest job");
        assert_eq!(q.pending(0), 1);
    }

    #[test]
    fn steal_skips_quarantined_victims_and_self() {
        let q: DispatchQueue<i32> = DispatchQueue::new(3);
        q.push(1, QosClass::Batch, 7).unwrap();
        let drained = q.quarantine(1);
        assert_eq!(drained, vec![(QosClass::Batch, 7)]);
        q.push(2, QosClass::Batch, 8).unwrap();
        // Thief 0 must skip quarantined replica 1 and reach replica 2.
        assert_eq!(q.steal_for(0), Some((QosClass::Batch, 8)));
        assert_eq!(q.steal_for(0), None);
        assert_eq!(q.healthy(), vec![0, 2]);
    }

    #[test]
    fn drain_matching_harvests_across_classes_up_to_max() {
        let q: DispatchQueue<i32> = DispatchQueue::new(1);
        for v in [2, 3, 4, 6, 8] {
            q.push(0, QosClass::Batch, v).unwrap();
        }
        q.push(0, QosClass::Interactive, 10).unwrap();
        let even = q.drain_matching(0, 3, |v| v % 2 == 0);
        let values: Vec<i32> = even.iter().map(|(_, v)| *v).collect();
        // Interactive scanned first, then Batch in queue order.
        assert_eq!(values, vec![10, 2, 4]);
        // Non-matching and beyond-max items stay queued, order preserved.
        let rest: Vec<i32> = std::iter::from_fn(|| q.pop_own(0).map(|(_, v)| v)).collect();
        assert_eq!(rest, vec![3, 6, 8]);
    }
}
