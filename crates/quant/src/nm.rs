//! N:M structured-sparse codec (SLoPe/SPP lineage): per row, every group of
//! `M` consecutive elements keeps at most `N` values, stored as compacted
//! f32s plus one index-bitmask byte per group (bit `j` set ⇔ position `j`
//! of the group survives). `Nm24` (2:4) is the hardware-friendly default;
//! any `N ≤ M ≤ 8` is representable by the same layout.
//!
//! Unlike the quantizing codecs, kept values are stored **bit-exactly**
//! (including `-0.0` and non-finite values) — the codec is lossless on
//! survivors and exact-zero on pruned positions, which is what makes the
//! packed-vs-reference differential oracle bit-identical. Only the *ranking*
//! used by magnitude pruning needs a deterministic key: `NaN` ranks as
//! magnitude 0, `±inf` as `+inf`, and ties keep the lower index.
//!
//! Storage layout (row-major, group-major):
//!
//! * `vals` — per full group exactly `N` slots (kept values in ascending
//!   position order, zero-padded when an external mask keeps fewer); the
//!   tail group of a row with `cols % M != 0` gets `min(N, cols % M)` slots.
//!   Uniform slot counts are what keep flat random access O(1).
//! * `masks` — one byte per group; a popcount-0 byte is an *absent* group
//!   decoding to exact zeros.
//!
//! Decoding is strictly elementwise (element `(r, c)` needs only its own
//! group's mask byte and slots), so any window of rows decodes bit-identical
//! to a full decode — the same slab-decode contract the block codecs honour.

/// Groups covering one row of `cols` elements (tail group included).
pub const fn groups_per_row(cols: usize, m: usize) -> usize {
    cols.div_ceil(m)
}

/// Compacted value slots covering one row: `n` per full group, `min(n, t)`
/// for a tail of `t = cols % m` elements.
pub const fn slots_per_row(cols: usize, n: usize, m: usize) -> usize {
    let tail = cols % m;
    let tail_slots = if tail < n { tail } else { n };
    (cols / m) * n + tail_slots
}

/// Total compacted value slots for a `rows x cols` matrix.
pub const fn total_slots(rows: usize, cols: usize, n: usize, m: usize) -> usize {
    rows * slots_per_row(cols, n, m)
}

/// Total mask bytes for a `rows x cols` matrix.
pub const fn total_masks(rows: usize, cols: usize, m: usize) -> usize {
    rows * groups_per_row(cols, m)
}

fn check_ratio(n: usize, m: usize) {
    assert!(
        (1..=8).contains(&m),
        "n:m codec needs 1 <= m <= 8, got m={m}"
    );
    assert!(
        n >= 1 && n <= m,
        "n:m codec needs 1 <= n <= m, got n={n} m={m}"
    );
}

/// Deterministic magnitude key for pruning: `NaN` ranks lowest among equals
/// (magnitude 0), `±inf` ranks highest; finite values rank by `|v|`.
#[inline]
fn rank_mag(v: f32) -> f32 {
    if v.is_nan() {
        0.0
    } else {
        v.abs()
    }
}

/// Magnitude-prune one `rows x cols` row-major matrix to an N:M mask: per
/// group keep the `min(n, group_len)` largest-magnitude positions, ties to
/// the lower index. Returns one bitmask byte per group.
pub fn prune_mask(values: &[f32], rows: usize, cols: usize, n: usize, m: usize) -> Vec<u8> {
    check_ratio(n, m);
    assert_eq!(values.len(), rows * cols, "n:m prune: value count");
    let mut masks = Vec::with_capacity(total_masks(rows, cols, m));
    for row in values.chunks_exact(cols.max(1)).take(rows) {
        for group in row.chunks(m) {
            let keep = n.min(group.len());
            let mut mask = 0u8;
            for _ in 0..keep {
                // Select the best not-yet-kept position; O(n·m) with m ≤ 8.
                let mut best: Option<usize> = None;
                for (j, &v) in group.iter().enumerate() {
                    if mask & (1 << j) != 0 {
                        continue;
                    }
                    match best {
                        Some(b) if rank_mag(group[b]) >= rank_mag(v) => {}
                        _ => best = Some(j),
                    }
                }
                mask |= 1 << best.expect("group has a position to keep");
            }
            masks.push(mask);
        }
    }
    masks
}

/// Compact `values` under an explicit per-group mask. Each full group's
/// popcount must be `<= n` (tail groups `<= min(n, tail)`); slots beyond the
/// popcount are zero-padded so addressing stays uniform.
pub fn encode_with_mask(
    values: &[f32],
    rows: usize,
    cols: usize,
    n: usize,
    m: usize,
    masks: &[u8],
) -> Vec<f32> {
    check_ratio(n, m);
    assert_eq!(values.len(), rows * cols, "n:m encode: value count");
    assert_eq!(
        masks.len(),
        total_masks(rows, cols, m),
        "n:m encode: mask count"
    );
    let mut vals = Vec::with_capacity(total_slots(rows, cols, n, m));
    let gpr = groups_per_row(cols, m);
    for r in 0..rows {
        let row = &values[r * cols..(r + 1) * cols];
        for (g, group) in row.chunks(m).enumerate() {
            let mask = masks[r * gpr + g];
            let slots = n.min(group.len());
            assert!(
                ((mask as u16) >> group.len()) == 0,
                "n:m encode: mask {mask:#04x} sets bits beyond group of {}",
                group.len()
            );
            let kept = mask.count_ones() as usize;
            assert!(
                kept <= slots,
                "n:m encode: mask keeps {kept} of {} but only {slots} slots",
                group.len()
            );
            for (j, &v) in group.iter().enumerate() {
                if mask & (1 << j) != 0 {
                    vals.push(v);
                }
            }
            vals.extend(std::iter::repeat_n(0.0f32, slots - kept));
        }
    }
    vals
}

/// Magnitude-prune and compact in one step: `(vals, masks)`.
pub fn encode(values: &[f32], rows: usize, cols: usize, n: usize, m: usize) -> (Vec<f32>, Vec<u8>) {
    let masks = prune_mask(values, rows, cols, n, m);
    let vals = encode_with_mask(values, rows, cols, n, m, &masks);
    (vals, masks)
}

/// Decode the whole matrix into `out` (`out.len() == rows * cols`). Pruned
/// positions become exact `0.0`; kept positions are bit-identical to the
/// encoded values.
pub fn decode(
    vals: &[f32],
    masks: &[u8],
    rows: usize,
    cols: usize,
    n: usize,
    m: usize,
    out: &mut [f32],
) {
    let view = NmView::new(vals, masks, rows, cols, n, m);
    assert_eq!(out.len(), rows * cols, "n:m decode: output length");
    for r in 0..rows {
        view.decode_row_into(r, &mut out[r * cols..(r + 1) * cols]);
    }
}

/// Apply an existing mask to a dense buffer in place, zeroing every pruned
/// position. Returns the number of **violations** — pruned positions that
/// held a nonzero value (what an adapter merge must count to prove the
/// merged model is still N:M sparse).
pub fn apply_mask(values: &mut [f32], masks: &[u8], rows: usize, cols: usize, m: usize) -> usize {
    assert!((1..=8).contains(&m), "n:m apply_mask: 1 <= m <= 8");
    assert_eq!(values.len(), rows * cols, "n:m apply_mask: value count");
    assert_eq!(
        masks.len(),
        total_masks(rows, cols, m),
        "n:m apply_mask: mask count"
    );
    let gpr = groups_per_row(cols, m);
    let mut violations = 0usize;
    for r in 0..rows {
        let row = &mut values[r * cols..(r + 1) * cols];
        for (g, group) in row.chunks_mut(m).enumerate() {
            let mask = masks[r * gpr + g];
            for (j, v) in group.iter_mut().enumerate() {
                if mask & (1 << j) == 0 {
                    if *v != 0.0 {
                        violations += 1;
                    }
                    *v = 0.0;
                }
            }
        }
    }
    violations
}

/// Round every value through the codec in place (magnitude-prune, keep
/// survivors bit-exactly, zero the rest) — what a differential test applies
/// to an f32 model so it computes the exact function its N:M-stored twin
/// does. Idempotent in values: re-pruning an already-pruned buffer zeroes
/// nothing new.
pub fn round_slice(values: &mut [f32], rows: usize, cols: usize, n: usize, m: usize) {
    let masks = prune_mask(values, rows, cols, n, m);
    apply_mask(values, &masks, rows, cols, m);
}

/// Borrowed view over N:M compacted storage. The flat index space is the
/// row-major element index of the original `rows x cols` matrix, so strided
/// consumers (GEMM pack routines) need no layout translation; group-level
/// accessors expose the occupancy structure the zero-group-skipping pack
/// arm exploits.
#[derive(Clone, Copy, Debug)]
pub struct NmView<'a> {
    vals: &'a [f32],
    masks: &'a [u8],
    rows: usize,
    cols: usize,
    n: usize,
    m: usize,
}

impl<'a> NmView<'a> {
    pub fn new(
        vals: &'a [f32],
        masks: &'a [u8],
        rows: usize,
        cols: usize,
        n: usize,
        m: usize,
    ) -> Self {
        check_ratio(n, m);
        assert_eq!(
            vals.len(),
            total_slots(rows, cols, n, m),
            "n:m view: {rows}x{cols} at {n}:{m} needs {} value slots, got {}",
            total_slots(rows, cols, n, m),
            vals.len()
        );
        assert_eq!(
            masks.len(),
            total_masks(rows, cols, m),
            "n:m view: {rows}x{cols} at groups of {m} needs {} mask bytes, got {}",
            total_masks(rows, cols, m),
            masks.len()
        );
        NmView {
            vals,
            masks,
            rows,
            cols,
            n,
            m,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Logical element count of the dense matrix this view decodes to.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn n(&self) -> usize {
        self.n
    }

    pub fn m(&self) -> usize {
        self.m
    }

    pub fn groups_per_row(&self) -> usize {
        groups_per_row(self.cols, self.m)
    }

    /// Decode the element at flat row-major index `idx`.
    #[inline(always)]
    pub fn get(&self, idx: usize) -> f32 {
        let (r, c) = (idx / self.cols, idx % self.cols);
        let (g, j) = (c / self.m, c % self.m);
        let mask = self.masks[r * groups_per_row(self.cols, self.m) + g];
        if mask & (1 << j) == 0 {
            return 0.0;
        }
        let rank = (mask & ((1u8 << j) - 1)).count_ones() as usize;
        // Every group before `g` in this row is a full group holding exactly
        // `n` slots (only the last group can be a tail), so the slot base is
        // a multiply, not a prefix sum.
        self.vals[r * slots_per_row(self.cols, self.n, self.m) + g * self.n + rank]
    }

    /// The mask byte of group `g` in row `r`.
    #[inline(always)]
    pub fn group_mask(&self, r: usize, g: usize) -> u8 {
        self.masks[r * groups_per_row(self.cols, self.m) + g]
    }

    /// The compacted slots of group `g` in row `r` (kept values in ascending
    /// position order; trailing zero padding when the mask keeps fewer).
    #[inline(always)]
    pub fn group_slots(&self, r: usize, g: usize) -> &'a [f32] {
        let spr = slots_per_row(self.cols, self.n, self.m);
        let base = r * spr + g * self.n;
        let end = (base + self.n).min((r + 1) * spr);
        &self.vals[base..end]
    }

    /// Whether group `g` of row `r` decodes to anything with nonzero *bits* —
    /// the predicate the zero-group-skipping pack arm tests before touching a
    /// group's slots. The comparison is bitwise (not `!= 0.0`) so a kept
    /// `-0.0` keeps its sign through the skip path: skipping writes into a
    /// pre-zeroed (`+0.0`) panel must be bit-identical to packing the decoded
    /// dense matrix.
    #[inline(always)]
    pub fn group_nonzero(&self, r: usize, g: usize) -> bool {
        let mask = self.group_mask(r, g);
        mask != 0
            && self
                .group_slots(r, g)
                .iter()
                .take(mask.count_ones() as usize)
                .any(|&v| v.to_bits() != 0)
    }

    /// Row `r`'s mask bytes and value slots as raw slices (group `g` is
    /// `masks[g]` / `slots[g·n ..]`). Group-walking consumers (the pack
    /// fills) hoist this per row instead of paying the per-group index
    /// arithmetic of [`group_mask`](Self::group_mask)/
    /// [`group_slots`](Self::group_slots) — that arithmetic divides by `m`
    /// on every call, which dominates a tight walk.
    #[inline(always)]
    pub fn row(&self, r: usize) -> (&'a [u8], &'a [f32]) {
        let gpr = groups_per_row(self.cols, self.m);
        let spr = slots_per_row(self.cols, self.n, self.m);
        (
            &self.masks[r * gpr..(r + 1) * gpr],
            &self.vals[r * spr..(r + 1) * spr],
        )
    }

    /// Decode row `r` into `out` (`out.len() == cols`), bit-identical to the
    /// elementwise [`get`](Self::get) path.
    pub fn decode_row_into(&self, r: usize, out: &mut [f32]) {
        assert_eq!(out.len(), self.cols, "n:m decode_row: output length");
        let gpr = groups_per_row(self.cols, self.m);
        let spr = slots_per_row(self.cols, self.n, self.m);
        for (g, chunk) in out.chunks_mut(self.m).enumerate() {
            let mask = self.masks[r * gpr + g];
            let mut slot = r * spr + g * self.n;
            for (j, o) in chunk.iter_mut().enumerate() {
                *o = if mask & (1 << j) != 0 {
                    let v = self.vals[slot];
                    slot += 1;
                    v
                } else {
                    0.0
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::pseudo;

    fn decode_vec(
        vals: &[f32],
        masks: &[u8],
        rows: usize,
        cols: usize,
        n: usize,
        m: usize,
    ) -> Vec<f32> {
        let mut out = vec![f32::NAN; rows * cols];
        decode(vals, masks, rows, cols, n, m, &mut out);
        out
    }

    #[test]
    fn layout_arithmetic_covers_tails() {
        assert_eq!(groups_per_row(8, 4), 2);
        assert_eq!(groups_per_row(9, 4), 3);
        assert_eq!(groups_per_row(0, 4), 0);
        assert_eq!(slots_per_row(8, 2, 4), 4);
        assert_eq!(slots_per_row(9, 2, 4), 5); // tail of 1 keeps min(2,1)=1
        assert_eq!(slots_per_row(10, 2, 4), 6); // tail of 2 keeps 2
        assert_eq!(slots_per_row(11, 2, 4), 6); // tail of 3 keeps 2
        assert_eq!(total_slots(3, 10, 2, 4), 18);
        assert_eq!(total_masks(3, 10, 4), 9);
    }

    #[test]
    fn kept_values_round_trip_bit_exactly() {
        for (rows, cols, seed) in [(4usize, 16usize, 1u32), (3, 10, 2), (5, 7, 3), (1, 4, 4)] {
            let dense = pseudo(rows * cols, 2.0, seed);
            let (vals, masks) = encode(&dense, rows, cols, 2, 4);
            let out = decode_vec(&vals, &masks, rows, cols, 2, 4);
            let view = NmView::new(&vals, &masks, rows, cols, 2, 4);
            for (i, (&orig, &dec)) in dense.iter().zip(&out).enumerate() {
                // Either the original bits survive or the position is exact 0.
                assert!(
                    dec.to_bits() == orig.to_bits() || dec == 0.0,
                    "idx {i}: {orig} -> {dec}"
                );
                assert_eq!(view.get(i).to_bits(), dec.to_bits(), "get vs decode at {i}");
            }
            // Exactly n survivors per full group.
            for r in 0..rows {
                for g in 0..groups_per_row(cols, 4) {
                    let glen = 4.min(cols - g * 4);
                    assert_eq!(
                        view.group_mask(r, g).count_ones() as usize,
                        2.min(glen),
                        "row {r} group {g}"
                    );
                }
            }
        }
    }

    #[test]
    fn every_tail_length_round_trips() {
        for cols in [1usize, 2, 3, 4, 5, 6, 7, 9, 11, 13] {
            let dense = pseudo(3 * cols, 1.0, 50 + cols as u32);
            let (vals, masks) = encode(&dense, 3, cols, 2, 4);
            assert_eq!(vals.len(), total_slots(3, cols, 2, 4));
            assert_eq!(masks.len(), total_masks(3, cols, 4));
            let out = decode_vec(&vals, &masks, 3, cols, 2, 4);
            for (i, (&orig, &dec)) in dense.iter().zip(&out).enumerate() {
                assert!(
                    dec.to_bits() == orig.to_bits() || dec == 0.0,
                    "cols {cols} idx {i}"
                );
            }
        }
    }

    #[test]
    fn magnitude_pruning_keeps_the_two_largest_with_stable_ties() {
        let dense = [1.0f32, -3.0, 2.0, 0.5, /* row 2 */ 7.0, 7.0, 7.0, 7.0];
        let masks = prune_mask(&dense, 2, 4, 2, 4);
        assert_eq!(masks[0], 0b0110, "keeps |-3| and |2|");
        assert_eq!(masks[1], 0b0011, "ties keep the lower indices");
    }

    #[test]
    fn all_zero_group_encodes_and_decodes_to_exact_zeros() {
        let mut dense = pseudo(8, 1.0, 9);
        for v in dense[4..8].iter_mut() {
            *v = 0.0;
        }
        let (vals, masks) = encode(&dense, 1, 8, 2, 4);
        // The all-zero group still keeps n positions (of value 0).
        assert_eq!(masks[1].count_ones(), 2);
        let out = decode_vec(&vals, &masks, 1, 8, 2, 4);
        assert_eq!(&out[4..8], &[0.0; 4]);
        let view = NmView::new(&vals, &masks, 1, 8, 2, 4);
        assert!(
            !view.group_nonzero(0, 1),
            "kept zeros are still a zero group"
        );
        assert!(view.group_nonzero(0, 0));
    }

    #[test]
    fn absent_group_via_external_mask_decodes_to_zeros() {
        let dense = pseudo(8, 1.0, 10);
        let masks = vec![0b0101u8, 0b0000]; // second group absent entirely
        let vals = encode_with_mask(&dense, 1, 8, 2, 4, &masks);
        assert_eq!(vals.len(), 4, "absent group still owns zero-padded slots");
        assert_eq!(&vals[2..4], &[0.0, 0.0]);
        let out = decode_vec(&vals, &masks, 1, 8, 2, 4);
        assert_eq!(&out[4..8], &[0.0; 4]);
        assert_eq!(out[0].to_bits(), dense[0].to_bits());
        assert_eq!(out[2].to_bits(), dense[2].to_bits());
        assert_eq!(out[1], 0.0);
        let view = NmView::new(&vals, &masks, 1, 8, 2, 4);
        assert!(!view.group_nonzero(0, 1));
        for i in 4..8 {
            assert_eq!(view.get(i), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "only 2 slots")]
    fn external_mask_with_too_many_survivors_panics() {
        let dense = pseudo(4, 1.0, 11);
        let _ = encode_with_mask(&dense, 1, 4, 2, 4, &[0b0111]);
    }

    #[test]
    #[should_panic(expected = "beyond group")]
    fn external_mask_with_bits_past_the_tail_panics() {
        let dense = pseudo(6, 1.0, 12);
        // Tail group has 2 elements; bit 2 is out of range.
        let _ = encode_with_mask(&dense, 1, 6, 2, 4, &[0b0011, 0b0100]);
    }

    #[test]
    fn round_slice_is_idempotent_in_values() {
        let mut vals = pseudo(6 * 12, 3.0, 13);
        round_slice(&mut vals, 6, 12, 2, 4);
        let once = vals.clone();
        round_slice(&mut vals, 6, 12, 2, 4);
        assert_eq!(vals, once);
        // Exactly half the positions survive (full groups, 2:4).
        let nonzero_capacity = total_slots(6, 12, 2, 4);
        assert!(vals.iter().filter(|v| **v != 0.0).count() <= nonzero_capacity);
    }

    #[test]
    fn apply_mask_counts_violations() {
        let mut dense = pseudo(8, 1.0, 14)
            .iter()
            .map(|v| v + 2.0)
            .collect::<Vec<_>>();
        let masks = prune_mask(&dense, 1, 8, 2, 4);
        // All 8 values are nonzero, 4 survive → 4 violations on first apply.
        assert_eq!(apply_mask(&mut dense, &masks, 1, 8, 4), 4);
        // Second apply: already clean.
        assert_eq!(apply_mask(&mut dense, &masks, 1, 8, 4), 0);
    }

    #[test]
    fn windowed_row_decode_is_bit_identical_to_full_decode() {
        let dense = pseudo(7 * 13, 1.5, 15);
        let (vals, masks) = encode(&dense, 7, 13, 2, 4);
        let full = decode_vec(&vals, &masks, 7, 13, 2, 4);
        let view = NmView::new(&vals, &masks, 7, 13, 2, 4);
        let mut row = vec![0.0f32; 13];
        for r in [0usize, 3, 6] {
            view.decode_row_into(r, &mut row);
            for (c, &v) in row.iter().enumerate() {
                assert_eq!(v.to_bits(), full[r * 13 + c].to_bits(), "row {r} col {c}");
            }
        }
    }

    #[test]
    fn non_finite_survivors_are_stored_verbatim_and_ranked_deterministically() {
        let dense = [f32::NAN, 1.0, f32::INFINITY, -2.0];
        let masks = prune_mask(&dense, 1, 4, 2, 4);
        assert_eq!(masks[0], 0b1100, "inf and |-2| outrank 1.0; NaN ranks as 0");
        let vals = encode_with_mask(&dense, 1, 4, 2, 4, &masks);
        assert_eq!(vals[0], f32::INFINITY);
        assert_eq!(vals[1], -2.0);
        let masks2 = prune_mask(&dense, 1, 4, 2, 4);
        assert_eq!(masks, masks2, "pruning is deterministic");
    }

    #[test]
    fn other_ratios_are_representable() {
        for (n, m) in [(1usize, 4usize), (4, 8), (1, 2), (3, 4)] {
            let dense = pseudo(5 * 16, 1.0, 20 + (n * 8 + m) as u32);
            let (vals, masks) = encode(&dense, 5, 16, n, m);
            let out = decode_vec(&vals, &masks, 5, 16, n, m);
            let kept = out.iter().filter(|v| **v != 0.0).count();
            assert!(kept <= 5 * 16 * n / m, "{n}:{m} keeps at most n/m");
            for (i, (&orig, &dec)) in dense.iter().zip(&out).enumerate() {
                assert!(
                    dec.to_bits() == orig.to_bits() || dec == 0.0,
                    "{n}:{m} idx {i}"
                );
            }
        }
    }
}
