//! Example binaries for the Long Exposure workspace live at the package
//! root (`quickstart.rs`, `instruction_tuning.rs`, `sparsity_explorer.rs`,
//! `operator_playground.rs`); run them with
//! `cargo run --release -p lx-examples --example <name>`.
