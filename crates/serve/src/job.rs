//! Job descriptions and completion reports.

use lx_data::e2e::E2eGenerator;
use lx_data::instruct::InstructGenerator;
use lx_data::{Batcher, SyntheticWorld};
use lx_peft::PeftMethod;
use std::time::Duration;

/// Which synthetic corpus a tenant fine-tunes on. Streams are fully
/// determined by `(vocab, world_seed, salt)`, so a job resubmitted after a
/// restart sees identical data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetSpec {
    /// E2E-style table-to-text records.
    E2e { world_seed: u64, salt: u64 },
    /// Alpaca-style instruction/response pairs.
    Instruct { world_seed: u64, salt: u64 },
}

impl DatasetSpec {
    /// Materialise the token stream for this dataset at the given vocab.
    pub fn build_batcher(&self, vocab: u32, stream_len: usize) -> Batcher {
        match *self {
            DatasetSpec::E2e { world_seed, salt } => {
                let world = SyntheticWorld::new(vocab, world_seed);
                Batcher::new(E2eGenerator::new(world).stream(stream_len, salt))
            }
            DatasetSpec::Instruct { world_seed, salt } => {
                let world = SyntheticWorld::new(vocab, world_seed);
                Batcher::new(InstructGenerator::new(world).stream(stream_len, salt))
            }
        }
    }
}

/// A tenant's fine-tuning request: dataset + PEFT method + step budget.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Unique tenant identifier (also the registry key). Restricted to
    /// `[A-Za-z0-9_-]` so it can double as a file stem.
    pub tenant: String,
    pub method: PeftMethod,
    pub dataset: DatasetSpec,
    /// Total training steps this job is entitled to.
    pub steps: u64,
    pub batch: usize,
    pub seq: usize,
    /// Learning rate for the tenant's AdamW optimizer.
    pub lr: f32,
    /// Seed for adapter initialisation (module injection).
    pub adapter_seed: u64,
    /// Token stream length to materialise for the dataset.
    pub stream_len: usize,
    /// Micro-batches accumulated per optimizer step (gradient accumulation):
    /// each step draws this many `(batch, seq)` batches from the stream and
    /// runs one update over their combined effective batch.
    pub micro_batches: usize,
    /// Evaluation-only job: every step is a forward/loss pass under the
    /// service's execution mode — no gradients, no optimizer, the stored
    /// adapter is left exactly as it was. Used to measure an existing
    /// adapter's loss trajectory on a dataset.
    pub eval_only: bool,
}

impl JobSpec {
    /// A reasonable default job: LoRA over E2E-style data.
    pub fn lora(tenant: impl Into<String>, steps: u64, batch: usize, seq: usize) -> Self {
        let tenant = tenant.into();
        let salt = tenant.bytes().fold(0u64, |h, b| {
            h.wrapping_mul(0x100000001b3).wrapping_add(b as u64)
        });
        JobSpec {
            tenant,
            method: PeftMethod::lora_default(),
            dataset: DatasetSpec::E2e {
                world_seed: 0x5eed,
                salt,
            },
            steps,
            batch,
            seq,
            lr: 1e-3,
            adapter_seed: salt ^ 0xada9,
            stream_len: 50_000,
            micro_batches: 1,
            eval_only: false,
        }
    }

    pub fn validate(&self) -> Result<(), String> {
        if self.tenant.is_empty() {
            return Err("tenant id must not be empty".into());
        }
        if self.micro_batches == 0 {
            return Err("micro_batches must be at least 1".into());
        }
        if self.eval_only && self.micro_batches != 1 {
            return Err(
                "eval-only jobs take one batch per step (no gradients to accumulate)".into(),
            );
        }
        if !self
            .tenant
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
        {
            return Err(format!(
                "tenant id {:?} must be [A-Za-z0-9_-] only",
                self.tenant
            ));
        }
        if !self.method.is_detachable() {
            return Err(format!(
                "method {} trains backbone weights in place; multi-tenant serving requires a detachable method (LoRA, adapters, prompt tuning)",
                self.method.name()
            ));
        }
        if self.steps == 0 || self.batch == 0 || self.seq == 0 {
            return Err("steps, batch and seq must all be positive".into());
        }
        Ok(())
    }
}

/// Lifecycle of a submitted job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    Queued,
    Running,
    Completed(JobReport),
    Rejected(String),
}

/// One training (or evaluation) step as observed by a tenant: emitted by the
/// scheduler after every step and streamed to clients through
/// `JobTicket::progress()`, so tenants watch loss/density/throughput live
/// instead of waiting for the terminal [`JobReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct StepEvent {
    pub tenant: String,
    /// 1-based step index within the job.
    pub step: u64,
    /// The job's total step budget.
    pub total_steps: u64,
    pub loss: f32,
    /// Mean attention density of the executed plan (`None` when dense).
    pub attn_density: Option<f32>,
    /// Mean MLP neuron-block density of the executed plan.
    pub mlp_density: Option<f32>,
    /// Wall time of this step (all micro-batches plus the optimizer).
    pub step_time: Duration,
    /// Micro-batches accumulated into this step.
    pub micro_batches: usize,
    /// Whether this was an evaluation-only step.
    pub eval: bool,
}

impl StepEvent {
    /// Tokens processed by this step.
    pub fn tokens(&self, batch: usize, seq: usize) -> u64 {
        (batch * seq * self.micro_batches) as u64
    }

    /// Tokens per second of this step.
    pub fn tokens_per_sec(&self, batch: usize, seq: usize) -> f64 {
        let s = self.step_time.as_secs_f64();
        if s > 0.0 {
            self.tokens(batch, seq) as f64 / s
        } else {
            0.0
        }
    }
}

/// Final accounting for one finished job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    pub tenant: String,
    pub steps: u64,
    /// Per-step training losses, in execution order.
    pub losses: Vec<f32>,
    /// Time spent inside this tenant's train steps (excludes queueing).
    pub busy: Duration,
    /// Adapter parameter count (the tenant's marginal state).
    pub adapter_params: usize,
}

impl JobReport {
    pub fn final_loss(&self) -> f32 {
        self.losses.last().copied().unwrap_or(f32::NAN)
    }

    pub fn steps_per_sec(&self) -> f64 {
        let s = self.busy.as_secs_f64();
        if s > 0.0 {
            self.steps as f64 / s
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_validates() {
        assert!(JobSpec::lora("tenant-a", 10, 1, 16).validate().is_ok());
    }

    #[test]
    fn accumulation_and_eval_settings_validate() {
        let mut spec = JobSpec::lora("t", 4, 1, 16);
        spec.micro_batches = 4;
        assert!(spec.validate().is_ok());
        spec.micro_batches = 0;
        assert!(spec.validate().is_err());
        spec.micro_batches = 2;
        spec.eval_only = true;
        assert!(spec.validate().is_err(), "eval cannot accumulate");
        spec.micro_batches = 1;
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn bad_tenant_ids_rejected() {
        assert!(JobSpec::lora("", 1, 1, 8).validate().is_err());
        assert!(JobSpec::lora("a/b", 1, 1, 8).validate().is_err());
        assert!(JobSpec::lora("..", 1, 1, 8).validate().is_err());
    }

    #[test]
    fn non_detachable_method_rejected() {
        let mut spec = JobSpec::lora("t", 1, 1, 8);
        spec.method = PeftMethod::BitFit;
        assert!(spec.validate().is_err());
        spec.method = PeftMethod::Full;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn datasets_are_deterministic() {
        let spec = DatasetSpec::E2e {
            world_seed: 1,
            salt: 2,
        };
        let mut a = spec.build_batcher(1024, 1000);
        let mut b = spec.build_batcher(1024, 1000);
        assert_eq!(a.next_batch(2, 16), b.next_batch(2, 16));
    }

    #[test]
    fn distinct_salts_give_distinct_streams() {
        let a = DatasetSpec::Instruct {
            world_seed: 1,
            salt: 2,
        }
        .build_batcher(1024, 1000)
        .next_batch(2, 32);
        let b = DatasetSpec::Instruct {
            world_seed: 1,
            salt: 3,
        }
        .build_batcher(1024, 1000)
        .next_batch(2, 32);
        assert_ne!(a, b);
    }
}
