//! Service observability: queue depth, per-tenant rates, aggregate throughput.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Per-tenant accounting.
#[derive(Debug, Clone, Default)]
pub struct TenantMetrics {
    pub steps: u64,
    pub tokens: u64,
    /// Wall time spent inside this tenant's train steps.
    pub busy: Duration,
    /// Time spent attaching/detaching the tenant's adapter (the multi-tenant
    /// overhead the shared-backbone design must keep small).
    pub swap: Duration,
    pub slices: u64,
    pub last_loss: f32,
}

impl TenantMetrics {
    pub fn steps_per_sec(&self) -> f64 {
        rate(self.steps, self.busy)
    }

    pub fn tokens_per_sec(&self) -> f64 {
        rate(self.tokens, self.busy)
    }
}

fn rate(count: u64, d: Duration) -> f64 {
    let s = d.as_secs_f64();
    // Guard both legs of the division: an empty snapshot (no work, zero
    // elapsed) must read 0.0 everywhere, never NaN from 0/0.
    if count == 0 || !s.is_finite() || s <= 0.0 {
        0.0
    } else {
        count as f64 / s
    }
}

/// Default cap on per-tenant Prometheus series: the top
/// [`DEFAULT_TENANT_SERIES_CAP`] tenants by traffic get their own labeled
/// series, everything else rolls up into `tenant="other"`.
pub const DEFAULT_TENANT_SERIES_CAP: usize = 32;

/// Live metrics owned by the scheduler; snapshot with [`ServeMetrics::snapshot`].
#[derive(Debug)]
pub struct ServeMetrics {
    started: Instant,
    pub queue_depth: usize,
    pub completed_jobs: u64,
    pub total_steps: u64,
    pub total_tokens: u64,
    pub total_busy: Duration,
    pub per_tenant: BTreeMap<String, TenantMetrics>,
    /// Label-cardinality guard for [`MetricsSnapshot::render_prometheus`]:
    /// only the top-K tenants by tokens processed are exposed as individual
    /// `tenant="…"` series; the rest aggregate into `tenant="other"`. A
    /// 1000-tenant fleet must not bloat the exposition (or the scrape
    /// database) with 6000 series.
    pub tenant_series_cap: usize,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics {
            started: Instant::now(),
            queue_depth: 0,
            completed_jobs: 0,
            total_steps: 0,
            total_tokens: 0,
            total_busy: Duration::ZERO,
            per_tenant: BTreeMap::new(),
            tenant_series_cap: DEFAULT_TENANT_SERIES_CAP,
        }
    }
}

impl ServeMetrics {
    pub fn record_slice(
        &mut self,
        tenant: &str,
        steps: u64,
        tokens: u64,
        busy: Duration,
        swap: Duration,
        last_loss: f32,
    ) {
        self.total_steps += steps;
        self.total_tokens += tokens;
        self.total_busy += busy;
        let t = self.per_tenant.entry(tenant.to_string()).or_default();
        t.steps += steps;
        t.tokens += tokens;
        t.busy += busy;
        t.swap += swap;
        t.slices += 1;
        t.last_loss = last_loss;
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            uptime: self.started.elapsed(),
            queue_depth: self.queue_depth,
            completed_jobs: self.completed_jobs,
            total_steps: self.total_steps,
            total_tokens: self.total_tokens,
            total_busy: self.total_busy,
            per_tenant: self.per_tenant.clone(),
            tenant_series_cap: self.tenant_series_cap,
        }
    }

    /// Fold another scheduler's metrics into this one (cluster aggregation:
    /// every replica worker records into one shared `ServeMetrics`, or
    /// per-replica metrics merge at report time).
    pub fn merge(&mut self, other: &ServeMetrics) {
        self.completed_jobs += other.completed_jobs;
        self.total_steps += other.total_steps;
        self.total_tokens += other.total_tokens;
        self.total_busy += other.total_busy;
        for (tenant, m) in &other.per_tenant {
            let t = self.per_tenant.entry(tenant.clone()).or_default();
            t.steps += m.steps;
            t.tokens += m.tokens;
            t.busy += m.busy;
            t.swap += m.swap;
            t.slices += m.slices;
            t.last_loss = m.last_loss;
        }
    }
}

/// Immutable view of the service's counters at one instant.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    pub uptime: Duration,
    pub queue_depth: usize,
    pub completed_jobs: u64,
    pub total_steps: u64,
    pub total_tokens: u64,
    pub total_busy: Duration,
    pub per_tenant: BTreeMap<String, TenantMetrics>,
    /// See [`ServeMetrics::tenant_series_cap`].
    pub tenant_series_cap: usize,
}

impl MetricsSnapshot {
    /// Aggregate steps/sec over service wall time (includes scheduling gaps).
    pub fn aggregate_steps_per_sec(&self) -> f64 {
        rate(self.total_steps, self.uptime)
    }

    /// Aggregate tokens/sec over service wall time.
    pub fn aggregate_tokens_per_sec(&self) -> f64 {
        rate(self.total_tokens, self.uptime)
    }

    /// Fraction of wall time the backbone was doing tenant work. Always in
    /// `[0, 1]` — an empty snapshot (zero uptime, zero busy) reads 0.0.
    pub fn utilisation(&self) -> f64 {
        let up = self.uptime.as_secs_f64();
        let busy = self.total_busy.as_secs_f64();
        if up > 0.0 && busy.is_finite() {
            (busy / up).clamp(0.0, 1.0)
        } else {
            0.0
        }
    }

    /// Render the snapshot in Prometheus text exposition format, followed by
    /// every counter and histogram in the global [`lx_obs`] registry (GEMM
    /// call counts, workspace pool behaviour, per-tenant slice histograms).
    /// Serve this from a scrape endpoint or dump it on shutdown.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let mut series = |name: &str, kind: &str, help: &str, value: f64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
            let _ = writeln!(out, "{name} {value}");
        };
        series(
            "lx_serve_uptime_seconds",
            "gauge",
            "Wall time since the scheduler started.",
            self.uptime.as_secs_f64(),
        );
        series(
            "lx_serve_queue_depth",
            "gauge",
            "Jobs waiting or running in the scheduler.",
            self.queue_depth as f64,
        );
        series(
            "lx_serve_completed_jobs_total",
            "counter",
            "Fine-tune jobs run to completion.",
            self.completed_jobs as f64,
        );
        series(
            "lx_serve_steps_total",
            "counter",
            "Train steps executed across all tenants.",
            self.total_steps as f64,
        );
        series(
            "lx_serve_tokens_total",
            "counter",
            "Tokens processed across all tenants.",
            self.total_tokens as f64,
        );
        series(
            "lx_serve_busy_seconds_total",
            "counter",
            "Wall time spent inside tenant train steps.",
            self.total_busy.as_secs_f64(),
        );
        series(
            "lx_serve_utilisation",
            "gauge",
            "Fraction of uptime spent on tenant work.",
            self.utilisation(),
        );
        series(
            "lx_serve_steps_per_second",
            "gauge",
            "Aggregate steps/sec over service wall time.",
            self.aggregate_steps_per_sec(),
        );
        // Cardinality guard: individual series only for the top-K tenants by
        // traffic (tokens processed, ties broken by name for a deterministic
        // exposition); everything past the cap aggregates into one
        // `tenant="other"` rollup, so a 1000-tenant run emits a bounded
        // number of lines.
        let mut ranked: Vec<(&String, &TenantMetrics)> = self.per_tenant.iter().collect();
        ranked.sort_by(|a, b| b.1.tokens.cmp(&a.1.tokens).then_with(|| a.0.cmp(b.0)));
        let cap = self.tenant_series_cap.max(1).min(ranked.len());
        let mut tenant_series = |label: &str, m: &TenantMetrics, with_loss: bool| {
            let t = label.replace('"', "'");
            let _ = writeln!(
                out,
                "lx_serve_tenant_steps_total{{tenant=\"{t}\"}} {}",
                m.steps
            );
            let _ = writeln!(
                out,
                "lx_serve_tenant_tokens_total{{tenant=\"{t}\"}} {}",
                m.tokens
            );
            let _ = writeln!(
                out,
                "lx_serve_tenant_busy_seconds_total{{tenant=\"{t}\"}} {}",
                m.busy.as_secs_f64()
            );
            let _ = writeln!(
                out,
                "lx_serve_tenant_swap_seconds_total{{tenant=\"{t}\"}} {}",
                m.swap.as_secs_f64()
            );
            let _ = writeln!(
                out,
                "lx_serve_tenant_slices_total{{tenant=\"{t}\"}} {}",
                m.slices
            );
            if with_loss {
                let _ = writeln!(
                    out,
                    "lx_serve_tenant_last_loss{{tenant=\"{t}\"}} {}",
                    m.last_loss
                );
            }
        };
        for (tenant, m) in &ranked[..cap] {
            tenant_series(tenant, m, true);
        }
        if ranked.len() > cap {
            let mut rollup = TenantMetrics::default();
            for (_, m) in &ranked[cap..] {
                rollup.steps += m.steps;
                rollup.tokens += m.tokens;
                rollup.busy += m.busy;
                rollup.swap += m.swap;
                rollup.slices += m.slices;
            }
            // No last_loss for the rollup: a loss averaged across tenants is
            // not a meaningful series.
            tenant_series("other", &rollup, false);
        }
        out.push_str(&lx_obs::registry().render_prometheus());
        out
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "serve: {} tenants | queue {} | {} steps | {:.1} steps/s | {:.0} tok/s | util {:.0}%",
            self.per_tenant.len(),
            self.queue_depth,
            self.total_steps,
            self.aggregate_steps_per_sec(),
            self.aggregate_tokens_per_sec(),
            100.0 * self.utilisation(),
        )?;
        for (tenant, m) in &self.per_tenant {
            writeln!(
                f,
                "  {tenant:<16} {:>6} steps  {:>8.1} steps/s  {:>10.0} tok/s  loss {:.4}  swap {:.1}ms",
                m.steps,
                m.steps_per_sec(),
                m.tokens_per_sec(),
                m.last_loss,
                m.swap.as_secs_f64() * 1e3 / m.slices.max(1) as f64,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_accumulate() {
        let mut m = ServeMetrics::default();
        m.record_slice("a", 4, 64, Duration::from_millis(100), Duration::ZERO, 2.0);
        m.record_slice("a", 4, 64, Duration::from_millis(100), Duration::ZERO, 1.5);
        m.record_slice("b", 2, 32, Duration::from_millis(50), Duration::ZERO, 3.0);
        let snap = m.snapshot();
        assert_eq!(snap.total_steps, 10);
        assert_eq!(snap.total_tokens, 160);
        let a = &snap.per_tenant["a"];
        assert_eq!(a.steps, 8);
        assert_eq!(a.slices, 2);
        assert!((a.last_loss - 1.5).abs() < 1e-6);
        assert!((a.steps_per_sec() - 40.0).abs() < 1.0);
        assert!(!format!("{snap}").is_empty());
    }

    #[test]
    fn zero_time_rates_are_zero() {
        let t = TenantMetrics::default();
        assert_eq!(t.steps_per_sec(), 0.0);
        assert_eq!(t.tokens_per_sec(), 0.0);
    }

    #[test]
    fn empty_snapshot_yields_finite_zero_rates() {
        // Regression: an all-zero snapshot (service just started, or a
        // snapshot taken in the same instant as startup) must not produce
        // NaN from 0/0 in any derived rate.
        let snap = MetricsSnapshot {
            uptime: Duration::ZERO,
            queue_depth: 0,
            completed_jobs: 0,
            total_steps: 0,
            total_tokens: 0,
            total_busy: Duration::ZERO,
            per_tenant: BTreeMap::new(),
            tenant_series_cap: DEFAULT_TENANT_SERIES_CAP,
        };
        for v in [
            snap.aggregate_steps_per_sec(),
            snap.aggregate_tokens_per_sec(),
            snap.utilisation(),
        ] {
            assert!(v.is_finite());
            assert_eq!(v, 0.0);
        }
        let text = format!("{snap}");
        assert!(!text.contains("NaN"), "display must stay NaN-free: {text}");
    }

    #[test]
    fn prometheus_rendering_includes_service_and_registry_series() {
        let mut m = ServeMetrics::default();
        m.record_slice(
            "acme",
            4,
            64,
            Duration::from_millis(100),
            Duration::ZERO,
            2.0,
        );
        let text = m.snapshot().render_prometheus();
        assert!(text.contains("# TYPE lx_serve_steps_total counter"));
        assert!(text.contains("lx_serve_steps_total 4"));
        assert!(text.contains("lx_serve_tenant_steps_total{tenant=\"acme\"} 4"));
        assert!(text.contains("lx_serve_utilisation"));
        // Every line is either a comment or `name[{labels}] value`.
        for line in text
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
        {
            let (_, value) = line.rsplit_once(' ').expect("series line");
            assert!(value.parse::<f64>().is_ok(), "bad series line: {line}");
        }
    }

    #[test]
    fn tenant_series_are_capped_with_an_other_rollup() {
        // 1000 tenants, distinct traffic: the exposition must stay bounded
        // at cap tenants' series plus one `other` rollup, and the rollup
        // must conserve the totals the capped tenants no longer carry.
        let mut m = ServeMetrics {
            tenant_series_cap: 8,
            ..ServeMetrics::default()
        };
        for i in 0..1000u64 {
            m.record_slice(
                &format!("tenant-{i:04}"),
                2,
                // tenant-0999 has the most traffic, tenant-0000 the least.
                16 * (i + 1),
                Duration::from_millis(10),
                Duration::ZERO,
                1.0,
            );
        }
        let snap = m.snapshot();
        let text = snap.render_prometheus();
        let tenant_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("lx_serve_tenant_"))
            .collect();
        // 8 tenants x 6 series + 1 rollup x 5 series (no last_loss).
        assert_eq!(tenant_lines.len(), 8 * 6 + 5, "bounded exposition");
        // Top-by-traffic survives; the long tail does not.
        assert!(text.contains("tenant=\"tenant-0999\""));
        assert!(!text.contains("tenant=\"tenant-0000\""));
        assert!(!text.contains("lx_serve_tenant_last_loss{tenant=\"other\"}"));
        // The rollup conserves steps: 1000 tenants x 2 steps each.
        let rollup_steps: u64 = text
            .lines()
            .find(|l| l.starts_with("lx_serve_tenant_steps_total{tenant=\"other\"}"))
            .and_then(|l| l.rsplit_once(' '))
            .map(|(_, v)| v.parse().unwrap())
            .expect("other rollup present");
        assert_eq!(rollup_steps, (1000 - 8) * 2);
        // Aggregate service totals are untouched by the cap.
        assert!(text.contains(&format!("lx_serve_steps_total {}", 1000 * 2)));
    }

    #[test]
    fn merge_folds_per_tenant_and_totals() {
        let mut a = ServeMetrics::default();
        a.record_slice("x", 4, 64, Duration::from_millis(100), Duration::ZERO, 2.0);
        let mut b = ServeMetrics::default();
        b.record_slice("x", 2, 32, Duration::from_millis(50), Duration::ZERO, 1.0);
        b.record_slice("y", 1, 16, Duration::from_millis(25), Duration::ZERO, 3.0);
        b.completed_jobs = 2;
        a.merge(&b);
        let snap = a.snapshot();
        assert_eq!(snap.total_steps, 7);
        assert_eq!(snap.total_tokens, 112);
        assert_eq!(snap.completed_jobs, 2);
        assert_eq!(snap.per_tenant["x"].steps, 6);
        assert_eq!(snap.per_tenant["x"].slices, 2);
        assert_eq!(snap.per_tenant["y"].steps, 1);
    }
}
