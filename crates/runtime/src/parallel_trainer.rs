//! Thread-based data-parallel trainer (the Fig. 14 strong-scaling substrate).
//!
//! Each "device" is a model replica driven by its own OS thread: the global
//! batch is sharded, every replica runs forward/backward on its shard, the
//! main thread all-reduces (sums) gradients into replica 0, steps the
//! optimizer there, and broadcasts the updated trainable parameters. Long
//! Exposure adds no communication of its own, so scaling is governed by the
//! per-shard compute shrinking with worker count — exactly the paper's
//! argument for linear scaling.

use lx_model::{Optimizer, SparsePlan, StepRequest, TransformerModel};
use lx_tensor::{Tensor, Workspace, WorkspaceStats};
use std::time::{Duration, Instant};

pub struct DataParallelTrainer {
    replicas: Vec<TransformerModel>,
    /// Per-worker gradient snapshots for the all-reduce, reused across steps
    /// (the buffers are overwritten in place instead of re-cloned per step).
    gathered: Vec<Vec<Option<Tensor>>>,
    /// Broadcast snapshot of the updated trainable parameters, ditto.
    updated: Vec<Option<Tensor>>,
    /// Pool backing the grad-exchange region (gather, reduce, optimizer
    /// update, broadcast): snapshot clones triggered by shape changes and any
    /// optimizer-state tensors draw from and park into this workspace, so the
    /// exchange stays allocation-free in steady state alongside the replicas'
    /// own step workspaces.
    exchange_ws: Workspace,
}

/// Overwrite `slot` with `src` — in place when a matching buffer is already
/// there, cloning only on first use or shape change.
fn snapshot_into(slot: &mut Option<Tensor>, src: Option<&Tensor>) {
    match (slot.as_mut(), src) {
        (Some(t), Some(s)) if t.shape() == s.shape() => {
            t.as_mut_slice().copy_from_slice(s.as_slice());
        }
        (_, Some(s)) => *slot = Some(s.clone()),
        (_, None) => *slot = None,
    }
}

impl DataParallelTrainer {
    /// Build `n_workers` identical replicas with a constructor closure.
    pub fn new(n_workers: usize, build: impl Fn() -> TransformerModel) -> Self {
        assert!(n_workers >= 1);
        DataParallelTrainer {
            replicas: (0..n_workers).map(|_| build()).collect(),
            gathered: (0..n_workers - 1).map(|_| Vec::new()).collect(),
            updated: Vec::new(),
            exchange_ws: Workspace::from_env(),
        }
    }

    pub fn n_workers(&self) -> usize {
        self.replicas.len()
    }

    /// Access the canonical replica (index 0) for evaluation.
    pub fn primary(&mut self) -> &mut TransformerModel {
        &mut self.replicas[0]
    }

    /// Reuse counters of the grad-exchange workspace: steady-state steps hit
    /// the pool (or copy in place) instead of allocating.
    pub fn exchange_workspace_stats(&self) -> WorkspaceStats {
        self.exchange_ws.stats()
    }

    /// One synchronous data-parallel step over a global batch whose size
    /// must divide by the worker count. Returns `(mean loss, wall time)`.
    pub fn step(
        &mut self,
        ids: &[u32],
        targets: &[i32],
        batch: usize,
        seq: usize,
        plan: Option<&SparsePlan>,
        opt: &mut dyn Optimizer,
    ) -> (f32, Duration) {
        let Self {
            replicas,
            gathered,
            updated,
            exchange_ws,
        } = self;
        let n = replicas.len();
        assert_eq!(batch % n, 0, "global batch must divide by workers");
        let shard = batch / n;
        let eff = replicas[0].effective_seq(seq);
        assert_eq!(ids.len(), batch * seq);
        assert_eq!(targets.len(), batch * eff);
        let t0 = Instant::now();
        let losses: Vec<f32> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (w, replica) in replicas.iter_mut().enumerate() {
                let ids_shard = &ids[w * shard * seq..(w + 1) * shard * seq];
                let targets_shard = &targets[w * shard * eff..(w + 1) * shard * eff];
                handles.push(scope.spawn(move || {
                    // Grad mode: forward + backward, gradients stay in the
                    // replica for the all-reduce below.
                    let mut req = StepRequest::grad(ids_shard, targets_shard, shard, seq);
                    if let Some(p) = plan {
                        req = req.plan(p);
                    }
                    replica.execute(req).loss
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        // All-reduce: sum gradients into replica 0 (averaged by worker count
        // so the effective batch matches a single-device run). The snapshot
        // buffers persist across steps and are overwritten in place; any
        // clone the exchange does need (first step, shape change) draws from
        // and parks into the trainer's exchange workspace.
        let scale = 1.0 / n as f32;
        exchange_ws.scope(|| {
            for (replica, grads) in replicas[1..].iter_mut().zip(gathered.iter_mut()) {
                let mut idx = 0usize;
                replica.for_each_param(&mut |p| {
                    if grads.len() <= idx {
                        grads.push(None);
                    }
                    let src = if p.trainable { p.grad.as_ref() } else { None };
                    snapshot_into(&mut grads[idx], src);
                    idx += 1;
                });
            }
            {
                let primary = &mut replicas[0];
                let mut idx = 0usize;
                primary.for_each_param(&mut |p| {
                    if p.trainable {
                        let g = p.grad_mut();
                        g.scale(scale);
                        for other in gathered.iter() {
                            if let Some(og) = &other[idx] {
                                g.axpy(scale, og);
                            }
                        }
                    }
                    idx += 1;
                });
                opt.begin_step();
                primary.for_each_param(&mut |p| opt.update(p));
            }
            // Broadcast updated trainable params to the other replicas (same
            // reused-snapshot discipline as the gradient gather).
            {
                let mut idx = 0usize;
                replicas[0].for_each_param(&mut |p| {
                    if updated.len() <= idx {
                        updated.push(None);
                    }
                    let src = if p.trainable { Some(&p.value) } else { None };
                    snapshot_into(&mut updated[idx], src);
                    idx += 1;
                });
            }
            for replica in replicas[1..].iter_mut() {
                let mut idx = 0usize;
                replica.for_each_param(&mut |p| {
                    if let Some(v) = &updated[idx] {
                        p.value.as_mut_slice().copy_from_slice(v.as_slice());
                    }
                    idx += 1;
                });
            }
        });
        let elapsed = t0.elapsed();
        (losses.iter().sum::<f32>() / n as f32, elapsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lx_model::{prompt_aware_targets, ModelConfig, Sgd};
    use lx_peft::PeftMethod;

    fn build() -> TransformerModel {
        let mut m = TransformerModel::new(ModelConfig::test_tiny(), 9);
        PeftMethod::lora_default().apply(&mut m, 10);
        m
    }

    fn data(batch: usize, seq: usize) -> (Vec<u32>, Vec<i32>) {
        let ids: Vec<u32> = (0..batch * seq).map(|i| (i as u32 * 7) % 64).collect();
        let targets = prompt_aware_targets(&ids, batch, seq, 0);
        (ids, targets)
    }

    #[test]
    fn two_workers_match_single_worker_updates() {
        let (ids, targets) = data(4, 8);
        // Single worker.
        let mut single = DataParallelTrainer::new(1, build);
        let mut opt1 = Sgd::new(0.05);
        let (loss1, _) = single.step(&ids, &targets, 4, 8, None, &mut opt1);
        // Two workers, same seed / same data.
        let mut double = DataParallelTrainer::new(2, build);
        let mut opt2 = Sgd::new(0.05);
        let (loss2, _) = double.step(&ids, &targets, 4, 8, None, &mut opt2);
        assert!((loss1 - loss2).abs() < 1e-4, "losses: {loss1} vs {loss2}");
        // Parameters after the step must agree (same averaged gradient).
        let mut p1: Vec<f32> = Vec::new();
        single.primary().for_each_param(&mut |p| {
            if p.trainable {
                p1.extend_from_slice(p.value.as_slice());
            }
        });
        let mut p2: Vec<f32> = Vec::new();
        double.primary().for_each_param(&mut |p| {
            if p.trainable {
                p2.extend_from_slice(p.value.as_slice());
            }
        });
        assert_eq!(p1.len(), p2.len());
        for (a, b) in p1.iter().zip(&p2) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn replicas_stay_in_sync() {
        let (ids, targets) = data(4, 8);
        let mut trainer = DataParallelTrainer::new(2, build);
        let mut opt = Sgd::new(0.05);
        for _ in 0..3 {
            trainer.step(&ids, &targets, 4, 8, None, &mut opt);
        }
        // Trainable values in replica 1 must equal replica 0.
        let mut v0: Vec<f32> = Vec::new();
        trainer.replicas[0].for_each_param(&mut |p| {
            if p.trainable {
                v0.extend_from_slice(p.value.as_slice());
            }
        });
        let mut v1: Vec<f32> = Vec::new();
        trainer.replicas[1].for_each_param(&mut |p| {
            if p.trainable {
                v1.extend_from_slice(p.value.as_slice());
            }
        });
        assert_eq!(v0, v1);
    }

    #[test]
    fn training_reduces_loss_under_data_parallel() {
        let (ids, targets) = data(4, 8);
        let mut trainer = DataParallelTrainer::new(2, build);
        let mut opt = Sgd::new(0.05);
        let (first, _) = trainer.step(&ids, &targets, 4, 8, None, &mut opt);
        let mut last = first;
        for _ in 0..10 {
            last = trainer.step(&ids, &targets, 4, 8, None, &mut opt).0;
        }
        assert!(last < first, "{first} -> {last}");
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn batch_must_divide_by_workers() {
        let (ids, targets) = data(3, 8);
        let mut trainer = DataParallelTrainer::new(2, build);
        let mut opt = Sgd::new(0.05);
        trainer.step(&ids, &targets, 3, 8, None, &mut opt);
    }
}
