//! Seeded random buffer helpers. Every experiment in this repo is
//! deterministic given its seed; all randomness funnels through here or
//! through explicitly-seeded `StdRng` instances.

use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Standard-normal samples scaled by `std`.
pub fn randn_vec(len: usize, std: f32, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Box-Muller; avoids pulling in rand_distr just for gaussians.
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        out.push(r * theta.cos() * std);
        if out.len() < len {
            out.push(r * theta.sin() * std);
        }
    }
    out
}

/// Uniform samples in `[lo, hi)`.
pub fn uniform_vec(len: usize, lo: f32, hi: f32, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = Uniform::new(lo, hi);
    (0..len).map(|_| dist.sample(&mut rng)).collect()
}

/// A seeded RNG for ad-hoc sampling in experiments.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn randn_deterministic_and_centered() {
        let a = randn_vec(10_000, 1.0, 42);
        let b = randn_vec(10_000, 1.0, 42);
        assert_eq!(a, b);
        let mean: f32 = a.iter().sum::<f32>() / a.len() as f32;
        let var: f32 = a.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / a.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn randn_std_scales() {
        let a = randn_vec(10_000, 0.1, 1);
        let var: f32 = a.iter().map(|v| v * v).sum::<f32>() / a.len() as f32;
        assert!((var - 0.01).abs() < 0.005, "var {var}");
    }

    #[test]
    fn uniform_in_range() {
        let v = uniform_vec(1000, -2.0, 3.0, 9);
        assert!(v.iter().all(|&x| (-2.0..3.0).contains(&x)));
    }

    #[test]
    fn odd_length_randn() {
        assert_eq!(randn_vec(7, 1.0, 3).len(), 7);
    }
}
