//! Multi-tenant fine-tuning service walkthrough: three tenants with
//! different PEFT methods share one frozen backbone and one calibrated
//! predictor set, scheduled in time-slices by the async service; adapters
//! persist to a registry directory and survive a "restart".
//!
//! ```sh
//! cargo run --release -p lx-examples --example multi_tenant
//! ```

use long_exposure::engine::{EngineConfig, StepMode};
use lx_model::{ModelConfig, Precision, TransformerModel};
use lx_peft::PeftMethod;
use lx_serve::{
    AdapterRegistry, DatasetSpec, FinetuneService, JobSpec, SchedPolicy, Scheduler, ServeConfig,
};
use std::sync::Arc;

const BATCH: usize = 1;
const SEQ: usize = 64;
const BLOCK: usize = 16;

fn backbone() -> TransformerModel {
    // Emulated pre-trained structure (see DESIGN.md), then frozen: the
    // pristine shared state every tenant attaches to.
    let mut model = TransformerModel::new(ModelConfig::opt_sim_small(), 42);
    model.induce_activation_sparsity(0.93, 0.25, BLOCK, 11);
    model.sharpen_attention(3.0);
    model.freeze_all();
    model
}

fn scheduler(registry: Arc<AdapterRegistry>) -> Scheduler {
    Scheduler::new(
        backbone(),
        EngineConfig {
            block_size: BLOCK,
            attn_prob_threshold: 8.0 / SEQ as f32,
            calib_epochs: 80,
            ..EngineConfig::default()
        },
        ServeConfig {
            slice_steps: 2,
            policy: SchedPolicy::RoundRobin,
            mode: StepMode::Sparse,
            prefetch: true,
            // Half-stored shared backbone: the scaling axis for tenants per
            // box. Each tenant's adapter and optimizer state stay f32.
            precision: Precision::F16Frozen,
        },
        registry,
    )
}

fn tenant_jobs() -> Vec<JobSpec> {
    let mut lora = JobSpec::lora("acme-corp", 10, BATCH, SEQ);
    lora.dataset = DatasetSpec::E2e {
        world_seed: 0x5eed,
        salt: 1,
    };
    let mut adapters = JobSpec::lora("globex", 10, BATCH, SEQ);
    adapters.method = PeftMethod::adapter_default();
    adapters.dataset = DatasetSpec::Instruct {
        world_seed: 0x5eed,
        salt: 2,
    };
    let mut lora_all = JobSpec::lora("initech", 10, BATCH, SEQ);
    lora_all.method = PeftMethod::Lora {
        rank: 4,
        alpha: 8.0,
        targets: lx_peft::LoraTargets::all(),
    };
    lora_all.dataset = DatasetSpec::E2e {
        world_seed: 0x5eed,
        salt: 3,
    };
    vec![lora, adapters, lora_all]
}

fn main() {
    println!("== lx-serve multi-tenant walkthrough ==");
    let dir = std::env::temp_dir().join(format!("lx-multi-tenant-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let registry = Arc::new(AdapterRegistry::open(&dir).expect("open registry"));

    // 1. One backbone, one calibration — shared by every tenant.
    let mut sched = scheduler(registry.clone());
    let spec = DatasetSpec::E2e {
        world_seed: 0x5eed,
        salt: 0,
    };
    let mut batcher = spec.build_batcher(1024, 50_000);
    let calib: Vec<(Vec<u32>, usize, usize)> = (0..3)
        .map(|_| (batcher.next_batch(BATCH, SEQ), BATCH, SEQ))
        .collect();
    let report = sched.calibrate_shared(&calib);
    println!(
        "calibrated shared predictors (attn recall {:.1}%, mlp recall {:.1}%) — persisted to {}",
        100.0 * report.mean_attn_recall(),
        100.0 * report.mean_mlp_recall(),
        dir.display(),
    );

    // 2. Async service: submit three tenants, stream the first tenant's
    //    per-step progress live, wait on every ticket.
    let service = FinetuneService::spawn(sched);
    let tickets: Vec<_> = tenant_jobs()
        .into_iter()
        .map(|job| {
            println!("submitting {} ({})", job.tenant, job.method.name());
            (job.tenant.clone(), service.submit(job))
        })
        .collect();
    for event in tickets[0].1.progress() {
        println!(
            "  [{}] step {}/{}: loss {:.4}, mlp density {:.2}, {:.0} tok/s",
            event.tenant,
            event.step,
            event.total_steps,
            event.loss,
            event.mlp_density.unwrap_or(1.0),
            event.tokens_per_sec(BATCH, SEQ),
        );
    }
    for (tenant, ticket) in &tickets {
        let report = ticket.wait().expect("job failed");
        println!(
            "{tenant:<12} {} steps, final loss {:.4}, {:.1} steps/s, adapter {} params",
            report.steps,
            report.final_loss(),
            report.steps_per_sec(),
            report.adapter_params,
        );
    }
    println!("\n{}", service.metrics());
    service.shutdown();

    // 3. "Restart": a fresh process reopens the registry — adapters and the
    //    shared predictor calibration are both still there, so a returning
    //    tenant warm-starts instead of recalibrating and retraining.
    let registry2 = Arc::new(AdapterRegistry::open(&dir).expect("reopen registry"));
    let mut sched2 = scheduler(registry2.clone());
    println!(
        "after restart: {} adapters on disk {:?}, predictors imported: {}",
        registry2.len(),
        registry2.tenants(),
        sched2.calibrated(),
    );
    let mut resume = JobSpec::lora("acme-corp", 4, BATCH, SEQ);
    resume.dataset = DatasetSpec::E2e {
        world_seed: 0x5eed,
        salt: 1,
    };
    sched2.submit(resume).expect("resume");
    let resumed = sched2.run_to_completion().remove(0);
    println!(
        "acme-corp resumed from its stored adapter: first loss {:.4} (a cold tenant starts near ln(vocab) = {:.2})",
        resumed.losses[0],
        (1024f32).ln(),
    );
    let _ = std::fs::remove_dir_all(&dir);
}
