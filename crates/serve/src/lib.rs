//! `lx-serve` — multi-tenant PEFT fine-tuning over one shared backbone.
//!
//! The ROADMAP's north star is a production system serving heavy traffic
//! from many users. For fine-tuning, that means many *concurrent* jobs over
//! the same frozen base model — the regime where Long Exposure's economics
//! shine: the expensive state (backbone weights, calibrated sparsity
//! predictors) is shared across every tenant, while the per-tenant marginal
//! state is a LoRA/adapter delta a few thousand parameters large.
//!
//! The subsystem has four layers:
//!
//! * [`job`] — tenant job descriptions ([`JobSpec`]: dataset + `PeftMethod`
//!   + step budget) and completion reports;
//! * [`registry`] — the durable [`AdapterRegistry`]: per-tenant
//!   [`lx_peft::TenantAdapter`] blobs plus the *shared* calibrated
//!   predictor checkpoint (`long_exposure::checkpoint` format), so both
//!   adapters and the one-time calibration survive restarts;
//! * [`tenant`] — the per-tenant execution unit ([`TenantTask`]): all of a
//!   job's mutable state (adapter, optimizer, data cursor, warm workspace)
//!   plus the slice-execution logic, reusable by both the single-backbone
//!   scheduler below and `lx-cluster`'s replicated dispatcher — including
//!   cross-tenant fused eval slices ([`run_fused_eval_slice`]);
//! * [`scheduler`] — the deterministic core: round-robin / fair-share
//!   time-slices that attach a tenant's adapter to the shared frozen
//!   backbone, train with the tenant's own optimizer, and detach. Because
//!   all mutable per-tenant state swaps with the tenant, interleaved
//!   execution is **bit-identical** to sequential per-tenant training (the
//!   integration suite proves it);
//! * [`service`] — the asynchronous shell: submissions from any thread,
//!   training on a dedicated scheduler thread, [`JobTicket`]s to wait on or
//!   stream per-step [`StepEvent`]s from ([`JobTicket::progress`]).
//!
//! Jobs can also accumulate gradients over several micro-batches per
//! optimizer step (`JobSpec::micro_batches` — the large-effective-batch
//! scenario) or run evaluation-only passes (`JobSpec::eval_only`).
//!
//! ```no_run
//! use lx_model::{ModelConfig, TransformerModel};
//! use lx_serve::{AdapterRegistry, FinetuneService, JobSpec, Scheduler, ServeConfig};
//! use long_exposure::engine::EngineConfig;
//! use std::sync::Arc;
//!
//! let mut backbone = TransformerModel::new(ModelConfig::opt_sim_small(), 42);
//! backbone.freeze_all();
//! let registry = Arc::new(AdapterRegistry::open("adapters.d").unwrap());
//! let scheduler = Scheduler::new(
//!     backbone,
//!     EngineConfig::default(),
//!     ServeConfig::default(),
//!     registry,
//! );
//! let service = FinetuneService::spawn(scheduler);
//! let ticket = service.submit(JobSpec::lora("tenant-a", 100, 2, 64));
//! let report = ticket.wait().unwrap();
//! println!("tenant-a: {} steps, final loss {:.3}", report.steps, report.final_loss());
//! ```

pub mod job;
pub mod metrics;
pub mod registry;
pub mod scheduler;
pub mod service;
pub mod tenant;

pub use job::{DatasetSpec, JobReport, JobSpec, JobState, StepEvent};
pub use metrics::{MetricsSnapshot, ServeMetrics, TenantMetrics};
pub use registry::AdapterRegistry;
pub use scheduler::{SchedPolicy, Scheduler, ServeConfig};
pub use service::{FinetuneService, JobTicket, ProgressStream};
pub use tenant::{run_fused_eval_slice, ProgressSink, SliceOutcome, TenantTask};
