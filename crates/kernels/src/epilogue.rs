//! Fused post-GEMM epilogues.
//!
//! Every FC layer in the model follows its GEMM with a bias add and (for
//! GELU MLPs) an activation — classically a second and third read-modify-write
//! pass over the whole output. An [`Epilogue`] handed to the `*_ep` GEMM
//! entry points is instead applied to each macro-block of C right after its
//! final k-block is accumulated, while the block is still cache-warm — the
//! extra serial passes disappear and the epilogue work runs on the same
//! workers that computed the block, so it parallelises with the GEMM.
//!
//! Numerics: the epilogue is applied element-wise *after* the complete
//! accumulation (including the `beta` pre-scale), in the same order an
//! unfused `gemm` + bias pass + activation pass would apply it, using the
//! same scalar [`gelu`]. Fused and unfused results are therefore
//! bit-identical per backend — the differential suite asserts exactly that.

/// `sqrt(2/π)`, the tanh-approximation constant. `lx-tensor`'s activation
/// ops delegate to [`gelu`] below so the fused epilogue and the unfused
/// activation pass can never drift apart.
pub const GELU_C: f32 = 0.797_884_6;

/// Scalar tanh-approximation GELU — the single definition shared by the
/// fused epilogue and `lx_tensor::ops`.
#[inline]
pub fn gelu(x: f32) -> f32 {
    0.5 * x * (1.0 + (GELU_C * (x + 0.044715 * x * x * x)).tanh())
}

/// Transform fused into the GEMM write-back. Bias slices are indexed by the
/// GEMM call's output column (0..n) and must be at least `n` long.
#[derive(Clone, Copy, Default, Debug)]
pub enum Epilogue<'a> {
    /// Plain GEMM: `C = beta·C + A·B`.
    #[default]
    None,
    /// `C[i,j] = beta·C[i,j] + (A·B)[i,j] + bias[j]`.
    Bias(&'a [f32]),
    /// `C[i,j] = gelu(beta·C[i,j] + (A·B)[i,j] + bias[j])`.
    BiasGelu(&'a [f32]),
}

impl Epilogue<'_> {
    #[inline]
    pub fn is_none(&self) -> bool {
        matches!(self, Epilogue::None)
    }

    /// Validate the bias against the GEMM's output width.
    #[track_caller]
    pub(crate) fn check(&self, n: usize) {
        if let Epilogue::Bias(b) | Epilogue::BiasGelu(b) = self {
            assert!(
                b.len() >= n,
                "epilogue bias has {} elements but the GEMM writes {} columns",
                b.len(),
                n
            );
        }
    }

    /// Apply to an `mr`×`nr` window of C whose first column is output column
    /// `j0`. No-op for `None`; the packed driver calls this with full
    /// macro-block rows (`mr == 1`, `nr == nc`) so the inner loop amortises
    /// its setup over long contiguous runs.
    #[inline]
    pub(crate) fn apply_tile(&self, c: &mut [f32], ldc: usize, mr: usize, nr: usize, j0: usize) {
        match *self {
            Epilogue::None => {}
            Epilogue::Bias(bias) => {
                let b = &bias[j0..j0 + nr];
                for i in 0..mr {
                    let row = &mut c[i * ldc..i * ldc + nr];
                    for (v, &bv) in row.iter_mut().zip(b) {
                        *v += bv;
                    }
                }
            }
            Epilogue::BiasGelu(bias) => {
                let b = &bias[j0..j0 + nr];
                for i in 0..mr {
                    let row = &mut c[i * ldc..i * ldc + nr];
                    for (v, &bv) in row.iter_mut().zip(b) {
                        *v = gelu(*v + bv);
                    }
                }
            }
        }
    }
}

/// Apply `ep` to an `m`×`n` block of `c` as a standalone pass — the unfused
/// fallback used by the default `*_ep` trait methods and by degenerate
/// `k == 0` GEMMs (where the "accumulation" is just the beta pre-scale).
#[track_caller]
pub fn apply_epilogue(c: &mut [f32], m: usize, n: usize, ldc: usize, ep: Epilogue<'_>) {
    if ep.is_none() || m == 0 || n == 0 {
        return;
    }
    ep.check(n);
    for i in 0..m {
        ep.apply_tile(&mut c[i * ldc..], ldc, 1, n, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bias_epilogue_adds_per_column() {
        let mut c = vec![1.0f32; 6];
        apply_epilogue(&mut c, 2, 3, 3, Epilogue::Bias(&[0.5, -1.0, 2.0]));
        assert_eq!(c, vec![1.5, 0.0, 3.0, 1.5, 0.0, 3.0]);
    }

    #[test]
    fn bias_gelu_matches_manual_composition() {
        let bias = [0.25f32, -0.75];
        let mut fused = vec![0.3f32, -1.2, 2.0, 0.0];
        let mut manual = fused.clone();
        apply_epilogue(&mut fused, 2, 2, 2, Epilogue::BiasGelu(&bias));
        for (i, v) in manual.iter_mut().enumerate() {
            *v = gelu(*v + bias[i % 2]);
        }
        for (f, m) in fused.iter().zip(&manual) {
            assert_eq!(f.to_bits(), m.to_bits());
        }
    }

    #[test]
    fn strided_view_only_touches_the_window() {
        let mut c = vec![0.0f32; 10]; // 2 rows, ldc 5, window n=2
        apply_epilogue(&mut c, 2, 2, 5, Epilogue::Bias(&[1.0, 2.0]));
        assert_eq!(c, vec![1.0, 2.0, 0.0, 0.0, 0.0, 1.0, 2.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "epilogue bias")]
    fn short_bias_is_rejected() {
        let mut c = vec![0.0f32; 4];
        apply_epilogue(&mut c, 2, 2, 2, Epilogue::Bias(&[1.0]));
    }
}
