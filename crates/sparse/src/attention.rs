//! SDD / DSD block-sparse attention kernels (paper §VI-A).
//!
//! Sparse attention decomposes into two block-sparse matmuls:
//! `S = Q·Kᵀ` where only masked blocks of S are produced (**SDD**: sparse =
//! dense × dense), and `O = P·V` where a block-sparse P multiplies a dense V
//! (**DSD**). The backward pass reuses the same layout: `dP = dO·Vᵀ` is
//! another SDD, `dV = Pᵀ·dO` and `dK = dSᵀ·Q` are transposed DSDs driven by
//! the CSC view of the lookup table.
//!
//! Block data convention: CSR entry `e` of a layout owns
//! `data[e·b² .. (e+1)·b²]`, row-major within the block. Entries of one
//! block-row are contiguous, so row-wise softmax touches a contiguous span.

use crate::layout::BlockCsr;
use lx_parallel::parallel_for;

/// What to write into causally-masked positions of diagonal blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CausalFill {
    /// `-∞`: for attention *scores*, so softmax zeroes them.
    NegInf,
    /// `0`: for gradients flowing through masked positions.
    Zero,
    /// Leave untouched (pattern already handles masking).
    None,
}

fn fill_value(fill: CausalFill) -> Option<f32> {
    match fill {
        CausalFill::NegInf => Some(f32::NEG_INFINITY),
        CausalFill::Zero => Some(0.0),
        CausalFill::None => None,
    }
}

fn check_dims(layout: &BlockCsr, s: usize) {
    let b = layout.block_size;
    assert_eq!(
        s,
        layout.n_brows * b,
        "sequence length {s} != {} blocks × {b}",
        layout.n_brows
    );
    assert_eq!(
        layout.n_brows, layout.n_bcols,
        "attention layouts are square"
    );
}

/// SDD: `out_blocks = scale · A·Bᵀ` on active blocks only.
///
/// `a` and `b_mat` are `s×dh` row-major (Q and K for the forward scores;
/// dO and V for the `dP` backward). `out` must have `layout.data_len()`
/// elements. Masked positions of diagonal blocks get `fill`.
#[allow(clippy::too_many_arguments)]
pub fn sdd_nt(
    a: &[f32],
    b_mat: &[f32],
    s: usize,
    dh: usize,
    scale: f32,
    layout: &BlockCsr,
    fill: CausalFill,
    out: &mut [f32],
) {
    check_dims(layout, s);
    let b = layout.block_size;
    assert_eq!(a.len(), s * dh, "SDD: A is s×dh");
    assert_eq!(b_mat.len(), s * dh, "SDD: B is s×dh");
    assert_eq!(out.len(), layout.data_len(), "SDD: out sized to layout");
    let fillv = fill_value(fill);
    let out_ptr = SendPtr(out.as_mut_ptr());
    // One task per block-row: entries of a row own disjoint `out` spans.
    let grain = (1 << 14) / (b * b * dh).max(1);
    parallel_for(0..layout.n_brows, grain.max(1), |brs| {
        let out_ptr = &out_ptr;
        for br in brs {
            for e in layout.row_entries(br) {
                let bc = layout.col_idx[e] as usize;
                // SAFETY: entry `e` spans are disjoint across tasks.
                let blk =
                    unsafe { std::slice::from_raw_parts_mut(out_ptr.0.add(e * b * b), b * b) };
                for i in 0..b {
                    let a_row = &a[(br * b + i) * dh..(br * b + i + 1) * dh];
                    for j in 0..b {
                        let masked = bc * b + j > br * b + i;
                        if masked {
                            if let Some(v) = fillv {
                                blk[i * b + j] = v;
                                continue;
                            }
                        }
                        let b_row = &b_mat[(bc * b + j) * dh..(bc * b + j + 1) * dh];
                        blk[i * b + j] = scale * dot(a_row, b_row);
                    }
                }
            }
        }
    });
}

/// DSD: `out[s×dh] = P · V` where P is block-sparse data over `layout`.
pub fn dsd(p: &[f32], v: &[f32], s: usize, dh: usize, layout: &BlockCsr, out: &mut [f32]) {
    check_dims(layout, s);
    let b = layout.block_size;
    assert_eq!(p.len(), layout.data_len(), "DSD: P sized to layout");
    assert_eq!(v.len(), s * dh, "DSD: V is s×dh");
    assert_eq!(out.len(), s * dh, "DSD: out is s×dh");
    let out_ptr = SendPtr(out.as_mut_ptr());
    let grain = (1 << 14) / (b * b * dh).max(1);
    parallel_for(0..layout.n_brows, grain.max(1), |brs| {
        let out_ptr = &out_ptr;
        for br in brs {
            for i in 0..b {
                let row = br * b + i;
                // SAFETY: each global row is written by exactly one task.
                let out_row =
                    unsafe { std::slice::from_raw_parts_mut(out_ptr.0.add(row * dh), dh) };
                out_row.fill(0.0);
                for e in layout.row_entries(br) {
                    let bc = layout.col_idx[e] as usize;
                    let p_row = &p[e * b * b + i * b..e * b * b + (i + 1) * b];
                    for (t, &pv) in p_row.iter().enumerate() {
                        if pv == 0.0 {
                            continue;
                        }
                        let v_row = &v[(bc * b + t) * dh..(bc * b + t + 1) * dh];
                        axpy(out_row, pv, v_row);
                    }
                }
            }
        }
    });
}

/// Transposed DSD: `out[s×dh] = Pᵀ · X` via the CSC view
/// (`dV = Pᵀ·dO`, `dK = dSᵀ·Q`).
pub fn dsd_tn(p: &[f32], x: &[f32], s: usize, dh: usize, layout: &BlockCsr, out: &mut [f32]) {
    check_dims(layout, s);
    let b = layout.block_size;
    assert_eq!(p.len(), layout.data_len(), "DSD-T: P sized to layout");
    assert_eq!(x.len(), s * dh, "DSD-T: X is s×dh");
    assert_eq!(out.len(), s * dh, "DSD-T: out is s×dh");
    let out_ptr = SendPtr(out.as_mut_ptr());
    let grain = (1 << 14) / (b * b * dh).max(1);
    parallel_for(0..layout.n_bcols, grain.max(1), |bcs| {
        let out_ptr = &out_ptr;
        for bc in bcs {
            for t in 0..b {
                let row = bc * b + t;
                // SAFETY: each output row belongs to exactly one block-col task.
                let out_row =
                    unsafe { std::slice::from_raw_parts_mut(out_ptr.0.add(row * dh), dh) };
                out_row.fill(0.0);
                for e2 in layout.col_entries(bc) {
                    let br = layout.row_idx[e2] as usize;
                    let e = layout.csc_to_csr[e2] as usize;
                    for i in 0..b {
                        let pv = p[e * b * b + i * b + t];
                        if pv == 0.0 {
                            continue;
                        }
                        let x_row = &x[(br * b + i) * dh..(br * b + i + 1) * dh];
                        axpy(out_row, pv, x_row);
                    }
                }
            }
        }
    });
}

/// Row-wise softmax over block-sparse score data. `-∞` entries become 0;
/// rows with no active blocks stay empty.
pub fn block_row_softmax(data: &mut [f32], layout: &BlockCsr) {
    let b = layout.block_size;
    assert_eq!(data.len(), layout.data_len());
    let ptr = SendPtr(data.as_mut_ptr());
    parallel_for(0..layout.n_brows, 1, |brs| {
        let ptr = &ptr;
        for br in brs {
            let entries = layout.row_entries(br);
            if entries.is_empty() {
                continue;
            }
            let span_start = entries.start * b * b;
            let span_len = entries.len() * b * b;
            // SAFETY: a block-row's entries form a contiguous, task-exclusive span.
            let span = unsafe { std::slice::from_raw_parts_mut(ptr.0.add(span_start), span_len) };
            let n_entries = entries.len();
            for i in 0..b {
                // Pass 1: max.
                let mut max = f32::NEG_INFINITY;
                for e in 0..n_entries {
                    for &v in &span[e * b * b + i * b..e * b * b + (i + 1) * b] {
                        max = max.max(v);
                    }
                }
                if max == f32::NEG_INFINITY {
                    for e in 0..n_entries {
                        span[e * b * b + i * b..e * b * b + (i + 1) * b].fill(0.0);
                    }
                    continue;
                }
                // Pass 2: exp + sum.
                let mut sum = 0.0f32;
                for e in 0..n_entries {
                    for v in span[e * b * b + i * b..e * b * b + (i + 1) * b].iter_mut() {
                        *v = (*v - max).exp();
                        sum += *v;
                    }
                }
                let inv = 1.0 / sum;
                for e in 0..n_entries {
                    for v in span[e * b * b + i * b..e * b * b + (i + 1) * b].iter_mut() {
                        *v *= inv;
                    }
                }
            }
        }
    });
}

/// Backward of [`block_row_softmax`]: `dx = y ⊙ (dy − ⟨y, dy⟩_row)`.
pub fn block_row_softmax_backward(y: &[f32], dy: &[f32], layout: &BlockCsr, dx: &mut [f32]) {
    let b = layout.block_size;
    assert_eq!(y.len(), layout.data_len());
    assert_eq!(dy.len(), layout.data_len());
    assert_eq!(dx.len(), layout.data_len());
    let dx_ptr = SendPtr(dx.as_mut_ptr());
    parallel_for(0..layout.n_brows, 1, |brs| {
        let dx_ptr = &dx_ptr;
        for br in brs {
            let entries = layout.row_entries(br);
            for i in 0..b {
                let mut dot = 0.0f32;
                for e in entries.clone() {
                    let off = e * b * b + i * b;
                    for t in 0..b {
                        dot += y[off + t] * dy[off + t];
                    }
                }
                for e in entries.clone() {
                    let off = e * b * b + i * b;
                    // SAFETY: row spans are disjoint across tasks.
                    let dx_row = unsafe { std::slice::from_raw_parts_mut(dx_ptr.0.add(off), b) };
                    for t in 0..b {
                        dx_row[t] = y[off + t] * (dy[off + t] - dot);
                    }
                }
            }
        }
    });
}

/// Expand block data to a dense `s×s` matrix (tests & visualisation).
pub fn block_data_to_dense(data: &[f32], layout: &BlockCsr) -> Vec<f32> {
    let b = layout.block_size;
    let s = layout.n_brows * b;
    let mut dense = vec![0.0; s * s];
    for br in 0..layout.n_brows {
        for e in layout.row_entries(br) {
            let bc = layout.col_idx[e] as usize;
            for i in 0..b {
                for j in 0..b {
                    dense[(br * b + i) * s + (bc * b + j)] = data[e * b * b + i * b + j];
                }
            }
        }
    }
    dense
}

/// Gather a dense `s×s` matrix into block data over `layout` (tests).
pub fn dense_to_block_data(dense: &[f32], layout: &BlockCsr) -> Vec<f32> {
    let b = layout.block_size;
    let s = layout.n_brows * b;
    assert_eq!(dense.len(), s * s);
    let mut data = vec![0.0; layout.data_len()];
    for br in 0..layout.n_brows {
        for e in layout.row_entries(br) {
            let bc = layout.col_idx[e] as usize;
            for i in 0..b {
                for j in 0..b {
                    data[e * b * b + i * b + j] = dense[(br * b + i) * s + (bc * b + j)];
                }
            }
        }
    }
    data
}

#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[inline]
fn axpy(out: &mut [f32], a: f32, x: &[f32]) {
    for (o, &v) in out.iter_mut().zip(x) {
        *o += a * v;
    }
}

struct SendPtr(*mut f32);
// SAFETY: all uses write disjoint regions per task.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::PatternSpec;
    use lx_tensor::ops::{apply_causal_mask, softmax_rows};
    use lx_tensor::rng::randn_vec;

    const B: usize = 4;
    const S: usize = 16; // 4 block rows
    const DH: usize = 8;

    fn layout(spec: PatternSpec) -> BlockCsr {
        BlockCsr::from_mask(&spec.mask(S / B), B)
    }

    fn dense_reference(
        q: &[f32],
        k: &[f32],
        v: &[f32],
        mask: &crate::BlockMask,
    ) -> (Vec<f32>, Vec<f32>) {
        // Dense path with block-mask + causal applied as -inf.
        let scale = 1.0 / (DH as f32).sqrt();
        let mut scores = vec![0.0f32; S * S];
        for i in 0..S {
            for j in 0..S {
                scores[i * S + j] = scale * dot(&q[i * DH..(i + 1) * DH], &k[j * DH..(j + 1) * DH]);
                if !mask.get(i / B, j / B) {
                    scores[i * S + j] = f32::NEG_INFINITY;
                }
            }
        }
        apply_causal_mask(&mut scores, S);
        softmax_rows(&mut scores, S);
        let mut out = vec![0.0f32; S * DH];
        for i in 0..S {
            for j in 0..S {
                let p = scores[i * S + j];
                for t in 0..DH {
                    out[i * DH + t] += p * v[j * DH + t];
                }
            }
        }
        (scores, out)
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + y.abs()),
                "idx {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn sparse_attention_matches_dense_on_causal_pattern() {
        let q = randn_vec(S * DH, 1.0, 1);
        let k = randn_vec(S * DH, 1.0, 2);
        let v = randn_vec(S * DH, 1.0, 3);
        for spec in [
            PatternSpec::Causal,
            PatternSpec::LocalWindow { w: 2 },
            PatternSpec::LocalGlobal { w: 1, g: 1 },
            PatternSpec::Strided { w: 1, stride: 2 },
        ] {
            let lay = layout(spec);
            let scale = 1.0 / (DH as f32).sqrt();
            let mut p = vec![0.0; lay.data_len()];
            sdd_nt(&q, &k, S, DH, scale, &lay, CausalFill::NegInf, &mut p);
            block_row_softmax(&mut p, &lay);
            let mut out = vec![0.0; S * DH];
            dsd(&p, &v, S, DH, &lay, &mut out);

            let (dense_scores, dense_out) = dense_reference(&q, &k, &v, &lay.to_mask());
            let sparse_scores = block_data_to_dense(&p, &lay);
            assert_close(&sparse_scores, &dense_scores, 1e-4);
            assert_close(&out, &dense_out, 1e-4);
        }
    }

    #[test]
    fn dsd_tn_is_transpose_of_dsd() {
        let lay = layout(PatternSpec::LocalGlobal { w: 2, g: 1 });
        let p = randn_vec(lay.data_len(), 1.0, 4);
        let x = randn_vec(S * DH, 1.0, 5);
        let mut out = vec![0.0; S * DH];
        dsd_tn(&p, &x, S, DH, &lay, &mut out);
        // Reference: dense transpose multiply.
        let dense_p = block_data_to_dense(&p, &lay);
        let mut expect = vec![0.0; S * DH];
        for i in 0..S {
            for j in 0..S {
                let pv = dense_p[i * S + j];
                for t in 0..DH {
                    expect[j * DH + t] += pv * x[i * DH + t];
                }
            }
        }
        assert_close(&out, &expect, 1e-4);
    }

    #[test]
    fn softmax_backward_matches_dense_reference() {
        let lay = layout(PatternSpec::LocalWindow { w: 2 });
        let q = randn_vec(S * DH, 1.0, 6);
        let k = randn_vec(S * DH, 1.0, 7);
        let mut scores = vec![0.0; lay.data_len()];
        sdd_nt(&q, &k, S, DH, 0.5, &lay, CausalFill::NegInf, &mut scores);
        let mut y = scores.clone();
        block_row_softmax(&mut y, &lay);
        let dy = randn_vec(lay.data_len(), 1.0, 8);
        let mut dx = vec![0.0; lay.data_len()];
        block_row_softmax_backward(&y, &dy, &lay, &mut dx);

        // Dense reference row by row.
        let dense_y = block_data_to_dense(&y, &lay);
        let dense_dy = block_data_to_dense(&dy, &lay);
        let mut dense_dx = vec![0.0; S * S];
        for r in 0..S {
            // Only positions active in the layout participate.
            let mut dot = 0.0;
            for c in 0..S {
                if lay.to_mask().get(r / B, c / B) {
                    dot += dense_y[r * S + c] * dense_dy[r * S + c];
                }
            }
            for c in 0..S {
                if lay.to_mask().get(r / B, c / B) {
                    dense_dx[r * S + c] = dense_y[r * S + c] * (dense_dy[r * S + c] - dot);
                }
            }
        }
        let sparse_dx = block_data_to_dense(&dx, &lay);
        assert_close(&sparse_dx, &dense_dx, 1e-4);
    }

    #[test]
    fn causal_fill_zero_for_gradients() {
        let lay = layout(PatternSpec::Causal);
        let a = randn_vec(S * DH, 1.0, 9);
        let b = randn_vec(S * DH, 1.0, 10);
        let mut out = vec![f32::NAN; lay.data_len()];
        sdd_nt(&a, &b, S, DH, 1.0, &lay, CausalFill::Zero, &mut out);
        let dense = block_data_to_dense(&out, &lay);
        for i in 0..S {
            for j in (i + 1)..S {
                assert_eq!(dense[i * S + j], 0.0, "masked grad at ({i},{j}) must be 0");
            }
        }
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn block_data_dense_roundtrip() {
        let lay = layout(PatternSpec::LocalGlobal { w: 1, g: 1 });
        let data = randn_vec(lay.data_len(), 1.0, 11);
        let dense = block_data_to_dense(&data, &lay);
        let back = dense_to_block_data(&dense, &lay);
        assert_eq!(data, back);
    }

    #[test]
    fn empty_layout_noops() {
        let mask = crate::BlockMask::square(S / B);
        let lay = BlockCsr::from_mask(&mask, B);
        let q = randn_vec(S * DH, 1.0, 12);
        let mut p: Vec<f32> = vec![];
        sdd_nt(&q, &q, S, DH, 1.0, &lay, CausalFill::NegInf, &mut p);
        block_row_softmax(&mut p, &lay);
        let mut out = vec![7.0; S * DH];
        dsd(&p, &q, S, DH, &lay, &mut out);
        assert!(out.iter().all(|&v| v == 0.0), "no blocks -> zero output");
    }

    #[test]
    fn flops_scale_with_active_blocks() {
        // Not a timing test: verify data_len (proxy for work) is linear in
        // active blocks, the Fig. 12 premise.
        let full = layout(PatternSpec::Causal);
        let narrow = layout(PatternSpec::LocalWindow { w: 1 });
        assert!(full.data_len() > 2 * narrow.data_len());
    }
}
