//! **Table I**: OPT fine-tuning time breakdown (ms/batch) across PEFT
//! methods, dense execution (the paper's motivation table).
//!
//! Paper (OPT-1.3B, A100): Full 407.2 (27.7/54.9/17.3%), LoRA 334.6,
//! Adapter 292.9, BitFit 290.3, P-Tuning 342.6 — PEFT slashes the optimizer
//! step but leaves forward/backward dominant.

use long_exposure::engine::StepMode;
use lx_bench::{calibrated_engine, default_opt, fmt_ms, header, mean_step, row};
use lx_model::ModelConfig;
use lx_peft::PeftMethod;

fn main() {
    let cli = lx_bench::BenchCli::parse("table1_breakdown");
    let (batch, seq, steps) = (2, 256, 3);
    let cfg = ModelConfig::opt_sim_small();
    println!(
        "== Table I: fine-tuning time breakdown ({}, batch {batch}, seq {seq}) ==\n",
        cfg.name
    );
    header(&[
        "method",
        "forward",
        "backward",
        "optim",
        "total (ms/batch)",
        "fwd%",
        "bwd%",
        "opt%",
    ]);
    let methods = [
        ("Full Param.", PeftMethod::Full),
        ("LoRA", PeftMethod::lora_default()),
        ("Adapter", PeftMethod::adapter_default()),
        ("Bitfit", PeftMethod::BitFit),
        ("P-Tuning", PeftMethod::PromptTuning { prompt_len: 16 }),
    ];
    for (name, method) in methods {
        let (mut engine, mut batcher) = calibrated_engine(cfg.clone(), method, batch, seq, 42);
        let mut opt = default_opt();
        let s = mean_step(
            &mut engine,
            &mut batcher,
            batch,
            seq,
            StepMode::Dense,
            steps,
            &mut opt,
        );
        let total = s.total().as_secs_f64();
        row(&[
            name.to_string(),
            fmt_ms(s.forward),
            fmt_ms(s.backward),
            fmt_ms(s.optim),
            fmt_ms(s.total()),
            format!("{:.1}%", 100.0 * s.forward.as_secs_f64() / total),
            format!("{:.1}%", 100.0 * s.backward.as_secs_f64() / total),
            format!("{:.1}%", 100.0 * s.optim.as_secs_f64() / total),
        ]);
    }
    println!("\npaper reference (OPT-1.3B/A100, ms/batch):");
    println!("  Full 407.2 (27.7/54.9/17.3%) | LoRA 334.6 (40.4/58.7/0.6%) | Adapter 292.9 | Bitfit 290.3 | P-Tuning 342.6");
    println!("shape to check: PEFT optimizer-step % collapses to ~0 while fwd+bwd stay dominant.");
    cli.finish();
}
