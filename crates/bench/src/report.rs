//! Machine-readable results for the experiment binaries.
//!
//! Every bin prints Markdown-ish tables through [`header`]/[`row`]; this
//! module transparently collects what was printed and, when the bin was
//! invoked with `--json` (parsed by [`crate::BenchCli`], emitted by
//! `BenchCli::finish`), serialises it to `BENCH_<name>.json` in the current
//! directory. That file is the unit of the perf trajectory: CI and
//! developers commit/compare them across PRs instead of scraping stdout.
//!
//! The JSON is written by hand (the workspace is offline — no serde):
//!
//! ```json
//! {
//!   "bench": "fig12_operators",
//!   "tables": [
//!     {"header": ["sparsity", "time ms"], "rows": [["0.00", "1.23"], ...]}
//!   ]
//! }
//! ```
//!
//! Collection is thread-local: bins print their tables from `main`, so the
//! main thread's log is the report.

use std::cell::RefCell;
use std::io::Write;
use std::path::PathBuf;

#[derive(Default)]
struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

thread_local! {
    static TABLES: RefCell<Vec<Table>> = const { RefCell::new(Vec::new()) };
}

/// Print a table header + separator and start a new collected table.
pub fn header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    TABLES.with(|t| {
        t.borrow_mut().push(Table {
            header: cells.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        })
    });
}

/// Print a Markdown-ish table row and append it to the current table.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
    TABLES.with(|t| {
        let mut tables = t.borrow_mut();
        if tables.is_empty() {
            tables.push(Table::default());
        }
        tables
            .last_mut()
            .expect("just ensured")
            .rows
            .push(cells.to_vec());
    });
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_array(items: &[String]) -> String {
    let quoted: Vec<String> = items
        .iter()
        .map(|s| format!("\"{}\"", json_escape(s)))
        .collect();
    format!("[{}]", quoted.join(","))
}

/// Serialise everything collected so far to `BENCH_<name>.json`.
pub fn emit_json(name: &str) -> std::io::Result<PathBuf> {
    let path = PathBuf::from(format!("BENCH_{name}.json"));
    let body = TABLES.with(|t| {
        let tables = t.borrow();
        let rendered: Vec<String> = tables
            .iter()
            .map(|tab| {
                let rows: Vec<String> = tab.rows.iter().map(|r| json_array(r)).collect();
                format!(
                    "{{\"header\":{},\"rows\":[{}]}}",
                    json_array(&tab.header),
                    rows.join(",")
                )
            })
            .collect();
        format!(
            "{{\"bench\":\"{}\",\"tables\":[{}]}}\n",
            json_escape(name),
            rendered.join(",")
        )
    });
    let mut f = std::fs::File::create(&path)?;
    f.write_all(body.as_bytes())?;
    Ok(path)
}

/// A parsed `BENCH_<name>.json` report (see the module docs for the format).
#[derive(Debug)]
pub struct BenchReport {
    pub bench: String,
    /// `(header, rows)` per collected table.
    pub tables: Vec<(Vec<String>, Vec<Vec<String>>)>,
}

/// Load a report previously written by [`emit_json`]. The parser accepts
/// general JSON syntax for the subset the format uses (objects, arrays,
/// strings), so hand-edited baselines with whitespace also load.
pub fn load_bench_json(path: &std::path::Path) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let value = json::parse(&text)?;
    let obj = value.as_object().ok_or("top level must be an object")?;
    let bench = obj
        .get("bench")
        .and_then(|v| v.as_str())
        .ok_or("missing \"bench\"")?
        .to_string();
    let mut tables = Vec::new();
    for table in obj
        .get("tables")
        .and_then(|v| v.as_array())
        .ok_or("missing \"tables\"")?
    {
        let t = table.as_object().ok_or("table must be an object")?;
        let header = json::string_array(t.get("header").ok_or("missing header")?)?;
        let rows = t
            .get("rows")
            .and_then(|v| v.as_array())
            .ok_or("missing rows")?
            .iter()
            .map(json::string_array)
            .collect::<Result<Vec<_>, _>>()?;
        tables.push((header, rows));
    }
    Ok(BenchReport { bench, tables })
}

/// Compare the tables collected *so far in this process* against a baseline
/// report: every row (matched by table index + first cell) whose header cell
/// contains `column` is parsed as a ratio (a trailing `x` is tolerated) and
/// must not fall below `baseline · (1 − tolerance)`. Improvements never
/// fail. Returns `(checked, regressions)`: one message per comparison that
/// passed, and one per regression — an empty second list means the gate is
/// green (an empty first list too means nothing matched, which callers
/// should treat as a mis-pointed baseline). Rows or tables absent from the
/// baseline are skipped, so adding shapes to a bench does not require
/// regenerating the baseline atomically.
pub fn compare_to_baseline(
    baseline: &BenchReport,
    column: &str,
    tolerance: f64,
) -> (Vec<String>, Vec<String>) {
    let mut checked = Vec::new();
    let mut regressions = Vec::new();
    TABLES.with(|t| {
        for (ti, table) in t.borrow().iter().enumerate() {
            let Some((base_header, base_rows)) = baseline.tables.get(ti) else {
                continue;
            };
            for (ci, name) in table.header.iter().enumerate() {
                if !name.contains(column) {
                    continue;
                }
                let Some(base_ci) = base_header.iter().position(|h| h == name) else {
                    continue;
                };
                for row in &table.rows {
                    let key = row.first().cloned().unwrap_or_default();
                    let Some(base_row) = base_rows.iter().find(|r| r.first() == row.first()) else {
                        continue;
                    };
                    let (Some(cur), Some(base)) = (
                        row.get(ci).and_then(|v| parse_ratio(v)),
                        base_row.get(base_ci).and_then(|v| parse_ratio(v)),
                    ) else {
                        continue;
                    };
                    let floor = base * (1.0 - tolerance);
                    if cur < floor {
                        regressions.push(format!(
                            "{key}: {name} regressed to {cur:.2} (baseline {base:.2}, \
                             floor {floor:.2} at {:.0}% tolerance)",
                            tolerance * 100.0
                        ));
                    } else {
                        checked.push(format!("{key}: {name} {cur:.2} vs baseline {base:.2} ok"));
                    }
                }
            }
        }
    });
    (checked, regressions)
}

fn parse_ratio(cell: &str) -> Option<f64> {
    cell.trim().trim_end_matches('x').parse().ok()
}

/// Just-enough JSON: objects, arrays, strings (with escapes), numbers,
/// booleans and null — the workspace is offline, so no serde.
mod json {
    use std::collections::HashMap;

    #[derive(Debug)]
    pub enum Value {
        Object(HashMap<String, Value>),
        Array(Vec<Value>),
        String(String),
        Other,
    }

    impl Value {
        pub fn as_object(&self) -> Option<&HashMap<String, Value>> {
            match self {
                Value::Object(m) => Some(m),
                _ => None,
            }
        }

        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(v) => Some(v),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }
    }

    pub fn string_array(v: &Value) -> Result<Vec<String>, String> {
        v.as_array()
            .ok_or("expected an array of strings")?
            .iter()
            .map(|s| {
                s.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "expected a string".to_string())
            })
            .collect()
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            chars: text.chars().collect(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.chars.len() {
            return Err(format!("trailing input at {}", p.pos));
        }
        Ok(v)
    }

    struct Parser {
        chars: Vec<char>,
        pos: usize,
    }

    impl Parser {
        fn peek(&self) -> Option<char> {
            self.chars.get(self.pos).copied()
        }

        fn bump(&mut self) -> Result<char, String> {
            let c = self.peek().ok_or("unexpected end of input")?;
            self.pos += 1;
            Ok(c)
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
                self.pos += 1;
            }
        }

        fn expect(&mut self, c: char) -> Result<(), String> {
            self.skip_ws();
            let got = self.bump()?;
            if got != c {
                return Err(format!("expected '{c}' at {}, got '{got}'", self.pos - 1));
            }
            Ok(())
        }

        fn value(&mut self) -> Result<Value, String> {
            self.skip_ws();
            match self.peek().ok_or("unexpected end of input")? {
                '{' => self.object(),
                '[' => self.array(),
                '"' => Ok(Value::String(self.string()?)),
                c if c == '-' || c.is_ascii_digit() => {
                    while matches!(self.peek(), Some('-' | '+' | '.' | 'e' | 'E' | '0'..='9')) {
                        self.pos += 1;
                    }
                    Ok(Value::Other)
                }
                _ => {
                    for lit in ["true", "false", "null"] {
                        if self.chars[self.pos..].starts_with(&lit.chars().collect::<Vec<_>>()[..])
                        {
                            self.pos += lit.len();
                            return Ok(Value::Other);
                        }
                    }
                    Err(format!("unexpected character at {}", self.pos))
                }
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect('{')?;
            let mut map = HashMap::new();
            self.skip_ws();
            if self.peek() == Some('}') {
                self.pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.expect(':')?;
                map.insert(key, self.value()?);
                self.skip_ws();
                match self.bump()? {
                    ',' => continue,
                    '}' => return Ok(Value::Object(map)),
                    c => return Err(format!("expected ',' or '}}', got '{c}'")),
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect('[')?;
            let mut out = Vec::new();
            self.skip_ws();
            if self.peek() == Some(']') {
                self.pos += 1;
                return Ok(Value::Array(out));
            }
            loop {
                out.push(self.value()?);
                self.skip_ws();
                match self.bump()? {
                    ',' => continue,
                    ']' => return Ok(Value::Array(out)),
                    c => return Err(format!("expected ',' or ']', got '{c}'")),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect('"')?;
            let mut out = String::new();
            loop {
                match self.bump()? {
                    '"' => return Ok(out),
                    '\\' => match self.bump()? {
                        'n' => out.push('\n'),
                        't' => out.push('\t'),
                        'r' => out.push('\r'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                code = code * 16
                                    + self.bump()?.to_digit(16).ok_or("bad \\u escape")?;
                            }
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        c => out.push(c),
                    },
                    c => out.push(c),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip_and_baseline_compare() {
        // Thread-local collection: isolate from parallel tests.
        std::thread::spawn(|| {
            header(&["shape", "speedup"]);
            row(&["square".into(), "3.00x".into()]);
            row(&["tall".into(), "1.50x".into()]);
            let dir = std::env::temp_dir().join(format!("lx-bench-test-{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            let json_dir = std::env::current_dir().unwrap();
            let path = emit_json("roundtrip_test").unwrap();
            let report = load_bench_json(&path).unwrap();
            assert_eq!(report.bench, "roundtrip_test");
            assert_eq!(report.tables.len(), 1);
            assert_eq!(report.tables[0].1[0], vec!["square", "3.00x"]);
            // Same values: no regressions at any tolerance.
            let (checked, regressions) = compare_to_baseline(&report, "speedup", 0.0);
            assert_eq!(checked.len(), 2, "{checked:?}");
            assert!(regressions.is_empty(), "{regressions:?}");
            // A higher baseline triggers the gate.
            let mut stale = report;
            stale.tables[0].1[0][1] = "9.00x".into();
            let (_, regressions) = compare_to_baseline(&stale, "speedup", 0.25);
            assert_eq!(regressions.len(), 1, "{regressions:?}");
            assert!(regressions[0].contains("square"), "{regressions:?}");
            let _ = std::fs::remove_file(json_dir.join(path));
            let _ = std::fs::remove_dir_all(dir);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn parser_handles_whitespace_and_escapes() {
        let text = "{ \"bench\" : \"x\",\n \"tables\": [ { \"header\": [\"a \\\"q\\\"\"], \
                    \"rows\": [ [\"1\"] ] } ] }";
        let dir = std::env::temp_dir();
        let path = dir.join(format!("lx-bench-parse-{}.json", std::process::id()));
        std::fs::write(&path, text).unwrap();
        let report = load_bench_json(&path).unwrap();
        assert_eq!(report.tables[0].0[0], "a \"q\"");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn collects_and_serialises_tables() {
        // Thread-local state: run in an isolated thread so parallel tests
        // (and earlier prints) can't interleave.
        std::thread::spawn(|| {
            header(&["a", "b"]);
            row(&["1".into(), "x \"quoted\"".into()]);
            header(&["c"]);
            row(&["2".into()]);
            let body = TABLES.with(|t| {
                let tables = t.borrow();
                assert_eq!(tables.len(), 2);
                assert_eq!(tables[0].rows.len(), 1);
                tables[0].rows[0][1].clone()
            });
            assert_eq!(body, "x \"quoted\"");
            assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        })
        .join()
        .unwrap();
    }
}
