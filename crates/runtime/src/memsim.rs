//! Fine-tuning memory accounting (paper Fig. 8).
//!
//! Components per device for one training step:
//! parameters (f16), gradients + optimizer state for the trainable fraction
//! (f32), and activations — where dense attention keeps `O(s²)` score
//! buffers but Long Exposure keeps only the active blocks (`O(s)`), and the
//! "optimal" variant additionally leaves frozen MLP weights on the host,
//! shipping only active neuron blocks to the device.

use crate::cost::DeviceSpec;
use lx_model::ModelConfig;
use lx_tensor::Dtype;

/// Execution variant being accounted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryMode {
    /// Dense PEFT baseline.
    Dense,
    /// Long Exposure: block-sparse attention buffers.
    LongExposure,
    /// Long Exposure + CPU-offloaded frozen MLP weights (paper's "optimal").
    LongExposureOptimal,
}

/// Byte-level breakdown of device memory for one step.
#[derive(Debug, Clone)]
pub struct MemoryBreakdown {
    pub params: f64,
    pub grads_and_optimizer: f64,
    pub activations: f64,
    pub attention_buffers: f64,
}

impl MemoryBreakdown {
    pub fn total(&self) -> f64 {
        self.params + self.grads_and_optimizer + self.activations + self.attention_buffers
    }

    pub fn total_gb(&self) -> f64 {
        self.total() / 1e9
    }

    /// Does this footprint exceed the device?
    pub fn oom_on(&self, dev: &DeviceSpec) -> bool {
        self.total_gb() > dev.mem_capacity_gb
    }
}

/// Account one training step with the paper's `F16Frozen` parameter plan.
///
/// `attn_density` / `mlp_density` are the Long Exposure block densities
/// (ignored in `Dense` mode); `trainable_fraction` drives grads + optimizer.
pub fn step_memory(
    cfg: &ModelConfig,
    batch: usize,
    seq: usize,
    mode: MemoryMode,
    attn_density: f64,
    mlp_density: f64,
    trainable_fraction: f64,
) -> MemoryBreakdown {
    step_memory_at(
        cfg,
        batch,
        seq,
        mode,
        attn_density,
        mlp_density,
        trainable_fraction,
        Dtype::F16,
    )
}

/// Bytes the backbone occupies when `count` parameters are stored at
/// `dtype` — [`Dtype::bytes_for`], so the block-quantized dtypes include
/// their per-block scales exactly as `QuantTensor` registers them.
fn param_bytes(count: f64, dtype: Dtype) -> f64 {
    dtype.bytes_for(count as usize) as f64
}

/// [`step_memory`] with an explicit backbone-storage dtype (f16 for the
/// paper's plan, `I8Block`/`Nf4Block` for the lx-quant plans).
#[allow(clippy::too_many_arguments)]
pub fn step_memory_at(
    cfg: &ModelConfig,
    batch: usize,
    seq: usize,
    mode: MemoryMode,
    attn_density: f64,
    mlp_density: f64,
    trainable_fraction: f64,
    param_dtype: Dtype,
) -> MemoryBreakdown {
    let (b, s) = (batch as f64, seq as f64);
    let d = cfg.d_model as f64;
    let ff = cfg.d_ff as f64;
    let l = cfg.n_layers as f64;
    let h = cfg.n_heads as f64;
    let v = cfg.vocab_size as f64;
    let n_params = cfg.param_count() as f64;
    // Element sizes come from the storage layer's dtype table, not local
    // constants, so this model cannot drift from what `HalfTensor`/
    // `QuantTensor`/`Tensor` actually occupy (and register with memtrack).
    let f32b = Dtype::F32.size_bytes() as f64;

    // Parameters at the frozen-storage dtype. In optimal mode, frozen MLP
    // weights (the bulk) live on the host; only active blocks are resident.
    let mlp_weight_params = l * 2.0 * d * ff;
    let params = match mode {
        MemoryMode::LongExposureOptimal => {
            param_bytes(n_params - mlp_weight_params, param_dtype)
                + param_bytes(mlp_weight_params, param_dtype) * mlp_density
        }
        _ => param_bytes(n_params, param_dtype),
    };

    // Trainable fraction: f32 grads + Adam m,v (three f32 words per param).
    let grads_and_optimizer = 3.0 * f32b * n_params * trainable_fraction;

    // Activation checkpoints kept for backward: per layer ≈ 6 hidden-sized
    // tensors (f32) plus MLP activations; plus the logits buffer.
    let mlp_act = match mode {
        MemoryMode::Dense => b * s * ff,
        _ => b * s * ff * mlp_density,
    };
    let activations = f32b * (l * (6.0 * b * s * d + mlp_act) + b * s * v);

    // Attention probability buffers (the O(s²) vs O(s) term), f32.
    let attention_buffers = match mode {
        MemoryMode::Dense => f32b * l * b * h * s * s,
        _ => f32b * l * b * h * s * s * attn_density,
    };

    MemoryBreakdown {
        params,
        grads_and_optimizer,
        activations,
        attention_buffers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LORA_FRAC: f64 = 0.003;

    #[test]
    fn attention_buffers_scale_quadratically_when_dense() {
        let cfg = ModelConfig::opt_1_3b();
        let m512 = step_memory(&cfg, 4, 512, MemoryMode::Dense, 1.0, 1.0, LORA_FRAC);
        let m1024 = step_memory(&cfg, 4, 1024, MemoryMode::Dense, 1.0, 1.0, LORA_FRAC);
        let ratio = m1024.attention_buffers / m512.attention_buffers;
        assert!((ratio - 4.0).abs() < 0.01, "quadratic: {ratio}");
    }

    #[test]
    fn long_exposure_reduces_memory() {
        let cfg = ModelConfig::opt_1_3b();
        let dense = step_memory(&cfg, 4, 1024, MemoryMode::Dense, 1.0, 1.0, LORA_FRAC);
        let lx = step_memory(
            &cfg,
            4,
            1024,
            MemoryMode::LongExposure,
            0.12,
            0.45,
            LORA_FRAC,
        );
        let opt = step_memory(
            &cfg,
            4,
            1024,
            MemoryMode::LongExposureOptimal,
            0.12,
            0.45,
            LORA_FRAC,
        );
        assert!(lx.total() < dense.total());
        assert!(opt.total() < lx.total());
        // Paper reports up to 2.77× reduction for the optimal variant at
        // long sequences; accept a broad band around that shape.
        let reduction = dense.total() / opt.total();
        assert!((1.5..4.0).contains(&reduction), "reduction {reduction}");
    }

    #[test]
    fn oom_detection_matches_paper_pattern() {
        // Paper Fig. 8: OPT-1.3B dense runs out of memory at long sequences
        // on A100 while Long Exposure fits.
        let cfg = ModelConfig::opt_1_3b();
        let dev = DeviceSpec::a100();
        let dense_long = step_memory(&cfg, 4, 4096, MemoryMode::Dense, 1.0, 1.0, LORA_FRAC);
        let lx_long = step_memory(
            &cfg,
            4,
            4096,
            MemoryMode::LongExposure,
            0.08,
            0.45,
            LORA_FRAC,
        );
        assert!(dense_long.oom_on(&dev), "dense at 4k seq should OOM");
        assert!(!lx_long.oom_on(&dev), "Long Exposure at 4k seq should fit");
    }

    #[test]
    fn offload_reduces_params_only() {
        let cfg = ModelConfig::opt_350m();
        let lx = step_memory(&cfg, 2, 512, MemoryMode::LongExposure, 0.2, 0.5, LORA_FRAC);
        let opt = step_memory(
            &cfg,
            2,
            512,
            MemoryMode::LongExposureOptimal,
            0.2,
            0.5,
            LORA_FRAC,
        );
        assert!(opt.params < lx.params);
        assert_eq!(opt.activations, lx.activations);
        assert_eq!(opt.attention_buffers, lx.attention_buffers);
    }

    #[test]
    fn quantized_backbone_shrinks_params_only() {
        let cfg = ModelConfig::opt_1_3b();
        let at =
            |dtype| step_memory_at(&cfg, 4, 1024, MemoryMode::Dense, 1.0, 1.0, LORA_FRAC, dtype);
        let f16 = at(Dtype::F16);
        let i8 = at(Dtype::I8Block);
        let nf4 = at(Dtype::Nf4Block);
        // Codes + per-block scales: int8 ≈ (1 + 4/64)/2 of f16, NF4 ≈ half
        // of int8 again.
        assert!((i8.params / f16.params - 0.53125).abs() < 0.01);
        assert!((nf4.params / f16.params - 0.28125).abs() < 0.01);
        // Everything that is not parameter storage is dtype-independent.
        assert_eq!(i8.activations, f16.activations);
        assert_eq!(i8.attention_buffers, f16.attention_buffers);
        assert_eq!(i8.grads_and_optimizer, f16.grads_and_optimizer);
    }

    #[test]
    fn full_ft_optimizer_state_dwarfs_lora() {
        let cfg = ModelConfig::opt_1_3b();
        let full = step_memory(&cfg, 4, 512, MemoryMode::Dense, 1.0, 1.0, 1.0);
        let lora = step_memory(&cfg, 4, 512, MemoryMode::Dense, 1.0, 1.0, LORA_FRAC);
        assert!(full.grads_and_optimizer > 100.0 * lora.grads_and_optimizer);
    }
}
