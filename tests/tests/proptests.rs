//! Property-based tests on the core data structures and kernel invariants.

use lx_sparse::attention::{
    block_data_to_dense, block_row_softmax, dense_to_block_data, dsd, dsd_tn, sdd_nt, CausalFill,
};
use lx_sparse::neuron::{fc1_forward, fc2_forward};
use lx_sparse::{BlockCsr, BlockMask, NeuronBlockSet, PatternSpec};
use lx_tensor::f16::round_f16;
use lx_tensor::rng::randn_vec;
use proptest::prelude::*;

fn arb_mask(max_n: usize) -> impl Strategy<Value = BlockMask> {
    (2..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(proptest::bool::ANY, n * n).prop_map(move |bits| {
            let mut m = BlockMask::square(n);
            for i in 0..n {
                m.set(i, i, true); // keep rows alive for softmax invariants
                for j in 0..i {
                    if bits[i * n + j] {
                        m.set(i, j, true);
                    }
                }
            }
            m
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn block_csr_roundtrips_any_mask(mask in arb_mask(8)) {
        let csr = BlockCsr::from_mask(&mask, 4);
        prop_assert_eq!(csr.to_mask(), mask.clone());
        prop_assert_eq!(csr.nnz_blocks(), mask.count());
        // CSC view is a permutation of the CSR entries.
        let mut seen: Vec<bool> = vec![false; csr.nnz_blocks()];
        for bc in 0..csr.n_bcols {
            for e in csr.col_entries(bc) {
                let csr_e = csr.csc_to_csr[e] as usize;
                prop_assert!(!seen[csr_e]);
                seen[csr_e] = true;
                prop_assert_eq!(csr.col_idx[csr_e] as usize, bc);
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn block_data_dense_roundtrip(mask in arb_mask(6), seed in 0u64..1000) {
        let csr = BlockCsr::from_mask(&mask, 4);
        let data = randn_vec(csr.data_len(), 1.0, seed);
        let dense = block_data_to_dense(&data, &csr);
        let back = dense_to_block_data(&dense, &csr);
        prop_assert_eq!(back, data);
    }

    #[test]
    fn sparse_softmax_rows_are_distributions(mask in arb_mask(6), seed in 0u64..1000) {
        let block = 4;
        let csr = BlockCsr::from_mask(&mask, block);
        let s = csr.n_brows * block;
        let q = randn_vec(s * 8, 1.0, seed);
        let k = randn_vec(s * 8, 1.0, seed + 1);
        let mut p = vec![0.0f32; csr.data_len()];
        sdd_nt(&q, &k, s, 8, 0.35, &csr, CausalFill::NegInf, &mut p);
        block_row_softmax(&mut p, &csr);
        let dense = block_data_to_dense(&p, &csr);
        for i in 0..s {
            let row_sum: f32 = dense[i * s..(i + 1) * s].iter().sum();
            // Every row has its diagonal block, so sums to 1.
            prop_assert!((row_sum - 1.0).abs() < 1e-4, "row {} sums {}", i, row_sum);
            // Causality.
            for j in (i + 1)..s {
                prop_assert_eq!(dense[i * s + j], 0.0);
            }
        }
    }

    #[test]
    fn dsd_and_dsd_tn_are_adjoint(mask in arb_mask(5), seed in 0u64..1000) {
        // ⟨P·V, W⟩ == ⟨V, Pᵀ·W⟩ for any block data P and dense V, W.
        let block = 4;
        let dh = 6;
        let csr = BlockCsr::from_mask(&mask, block);
        let s = csr.n_brows * block;
        let p = randn_vec(csr.data_len(), 1.0, seed);
        let v = randn_vec(s * dh, 1.0, seed + 1);
        let w = randn_vec(s * dh, 1.0, seed + 2);
        let mut pv = vec![0.0f32; s * dh];
        dsd(&p, &v, s, dh, &csr, &mut pv);
        let mut ptw = vec![0.0f32; s * dh];
        dsd_tn(&p, &w, s, dh, &csr, &mut ptw);
        let lhs: f32 = pv.iter().zip(&w).map(|(a, b)| a * b).sum();
        let rhs: f32 = v.iter().zip(&ptw).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() <= 1e-3 * (1.0 + lhs.abs()), "{} vs {}", lhs, rhs);
    }

    #[test]
    fn pattern_specs_always_causal_with_diagonal(
        w in 1u32..5, g in 1u32..4, r in 0u32..3, stride in 1u32..6, n in 2usize..10, seed in 0u64..100
    ) {
        for spec in [
            PatternSpec::LocalWindow { w },
            PatternSpec::GlobalStripe { g },
            PatternSpec::LocalGlobal { w, g },
            PatternSpec::BigBird { w, g, r, seed },
            PatternSpec::Strided { w, stride },
            PatternSpec::Causal,
        ] {
            let m = spec.mask(n);
            for i in 0..n {
                prop_assert!(m.get(i, i), "{:?} missing diag {}", spec, i);
                for j in (i + 1)..n {
                    prop_assert!(!m.get(i, j), "{:?} acausal at ({},{})", spec, i, j);
                }
            }
        }
    }

    #[test]
    fn f16_roundtrip_error_bounded(bits in proptest::num::u32::ANY) {
        let v = f32::from_bits(bits);
        if v.is_finite() && v.abs() < 60000.0 {
            let r = round_f16(v);
            if v.abs() >= 6.2e-5 {
                // Normal range: relative error < 2^-10.
                prop_assert!((r - v).abs() <= v.abs() * 1.0e-3, "{} -> {}", v, r);
            } else {
                // Subnormal range: absolute error < smallest subnormal step.
                prop_assert!((r - v).abs() <= 6.0e-8, "{} -> {}", v, r);
            }
        }
    }

    #[test]
    fn neuron_kernels_match_masked_dense(
        active_bits in proptest::collection::vec(proptest::bool::ANY, 4),
        seed in 0u64..1000
    ) {
        let block = 4;
        let n_blk = 4;
        let (rows, d) = (5usize, 6usize);
        let d_ff = n_blk * block;
        let mut mask = active_bits.clone();
        if !mask.iter().any(|&b| b) {
            mask[0] = true;
        }
        let set = NeuronBlockSet::from_mask(&mask, block);
        let x = randn_vec(rows * d, 1.0, seed);
        let w1t = randn_vec(d_ff * d, 0.5, seed + 1);
        let w2 = randn_vec(d_ff * d, 0.5, seed + 2);
        // Sparse path.
        let width = set.active_neurons();
        let mut z = vec![0.0f32; rows * width];
        fc1_forward(&x, rows, &w1t, d, None, &set, &mut z);
        for v in z.iter_mut() { if *v < 0.0 { *v = 0.0; } }
        let mut y = vec![0.0f32; rows * d];
        fc2_forward(&z, rows, &w2, d, None, &set, &mut y);
        // Dense reference with inactive neurons zeroed.
        let all = NeuronBlockSet::all(n_blk, block);
        let mut zf = vec![0.0f32; rows * d_ff];
        fc1_forward(&x, rows, &w1t, d, None, &all, &mut zf);
        for r in 0..rows {
            for nrn in 0..d_ff {
                let blk = nrn / block;
                if !mask[blk] || zf[r * d_ff + nrn] < 0.0 {
                    zf[r * d_ff + nrn] = 0.0;
                }
            }
        }
        let mut yf = vec![0.0f32; rows * d];
        fc2_forward(&zf, rows, &w2, d, None, &all, &mut yf);
        for (a, b) in y.iter().zip(&yf) {
            prop_assert!((a - b).abs() <= 1e-3 * (1.0 + b.abs()), "{} vs {}", a, b);
        }
    }

    #[test]
    fn mask_union_is_monotone(m1 in arb_mask(6)) {
        let n = m1.rows();
        let m2 = PatternSpec::LocalWindow { w: 2 }.mask(n);
        let mut u = m1.clone();
        u.union_with(&m2);
        prop_assert!(u.count() >= m1.count());
        prop_assert!(u.count() >= m2.count());
        prop_assert_eq!(m1.covered_by(&u), m1.count());
        prop_assert_eq!(m2.covered_by(&u), m2.count());
    }
}
