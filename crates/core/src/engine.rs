//! The Long Exposure fine-tuning engine.
//!
//! Wires the three components together around any PEFT-configured model:
//! offline **calibration** (dense capture passes → exposer targets →
//! predictor training), then **sparse training steps** composed as
//! [`StepRequest`]s: the engine asks a [`SparsityPolicy`] for the step's
//! plan source (inline prediction for Long Exposure, ground-truth capture
//! for the oracle, pre-built plans for the random ablations) and hands the
//! request to [`TransformerModel::execute`]. Every phase is timed so the
//! paper's breakdown experiments (Table I, Fig. 10) fall out of the
//! returned [`StepOutcome`]s. Multi-micro-batch requests accumulate
//! gradients across shards and run the optimizer once — the
//! large-effective-batch scenario that also amortises predictor calls.

use crate::exposer::Exposer;
use crate::policy::{
    DensePolicy, OraclePolicy, PlanRefreshConfig, PlanReuseStats, PredictedPolicy, RandomPolicy,
    RandomTarget, SparsityPolicy,
};
use crate::predictor::{pool_blocks, AttnSample, MlpSample};
use lx_model::{
    Activation, CaptureConfig, MicroBatch, Optimizer, PrepareHook, StepOutcome, StepRequest,
    TransformerModel,
};
use lx_sparse::{NeuronBlockSet, PatternPool, PatternSpec};
use lx_tensor::Tensor;
use std::time::{Duration, Instant};

/// Engine hyperparameters. Defaults follow the paper's setup scaled to the
/// sim models (block 32 on paper-sized runs; tests override to smaller).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    pub block_size: usize,
    pub predictor_rank: usize,
    /// Ground-truth importance: an attention block matters when its max
    /// probability reaches this.
    pub attn_prob_threshold: f32,
    /// Minimum fraction of predicted blocks a pooled pattern must cover.
    pub attn_min_recall: f32,
    /// MLP importance filter: fraction of the peak block importance. The
    /// paper sweeps 1–5% on OPT checkpoints; the sim models' synthetic
    /// activation distribution has a compressed dynamic range, so the
    /// equivalent operating point here is ~0.3 (see EXPERIMENTS.md for the
    /// threshold mapping).
    pub mlp_threshold: f32,
    pub enable_attn: bool,
    pub enable_mlp: bool,
    pub calib_epochs: usize,
    pub predictor_lr: f32,
    pub noise_std: f32,
    /// Recall weighting of the predictor loss (false-negative cost).
    pub pos_weight: f32,
    /// Cross-step plan reuse for the predicted policy (shadowy-sparsity
    /// amortisation). Defaults to every-step prediction, overridable via
    /// `LX_PLAN_REFRESH` / `LX_PLAN_MIN_OVERLAP`.
    pub plan_refresh: PlanRefreshConfig,
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            block_size: 32,
            predictor_rank: 8,
            attn_prob_threshold: 0.05,
            attn_min_recall: 0.95,
            mlp_threshold: 0.3,
            enable_attn: true,
            enable_mlp: true,
            calib_epochs: 150,
            predictor_lr: 0.5,
            noise_std: 0.02,
            pos_weight: 4.0,
            plan_refresh: PlanRefreshConfig::from_env(PlanRefreshConfig::default()),
            seed: 0x10e0,
        }
    }
}

/// Predictor quality after calibration, per layer.
#[derive(Debug, Clone, Default)]
pub struct CalibrationReport {
    pub attn_recall: Vec<f32>,
    pub attn_precision: Vec<f32>,
    pub mlp_recall: Vec<f32>,
    pub mlp_precision: Vec<f32>,
}

impl CalibrationReport {
    pub fn mean_mlp_recall(&self) -> f32 {
        mean(&self.mlp_recall)
    }

    pub fn mean_attn_recall(&self) -> f32 {
        mean(&self.attn_recall)
    }
}

fn mean(v: &[f32]) -> f32 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f32>() / v.len() as f32
    }
}

/// Execution mode for a training step (the Fig. 11a arms). Each mode names
/// one of the engine's built-in [`SparsityPolicy`] objects; external
/// policies go through [`FinetuneEngine::train_step_policy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepMode {
    /// Dense baseline (HuggingFace-PEFT stand-in).
    Dense,
    /// Predicted sparsity (Long Exposure).
    Sparse,
    /// Exposer ground truth: a dense capture pass plans each step exactly
    /// (the predictor-quality upper bound; costs an extra dense forward).
    Oracle,
    /// Random attention patterns, dense MLP (ablation arm).
    RandomAttn,
    /// Random MLP neuron blocks, dense attention (ablation arm).
    RandomMlp,
}

/// Per-layer sparsity measurements for the Fig. 9 experiment.
#[derive(Debug, Clone)]
pub struct LayerSparsityReport {
    pub layer: usize,
    /// Sparsity of the uniform union mask relative to causal work.
    pub shadowy_attn: f32,
    /// Sparsity of fixed Longformer / BigBird masks (uniform across heads).
    pub longformer_attn: f32,
    pub bigbird_attn: f32,
    /// Mean sparsity of the head-specific Long Exposure patterns.
    pub longexposure_attn: f32,
    /// Raw union sparsity of MLP activations ("shadowy").
    pub shadowy_mlp: f32,
    /// `(threshold, sparsity)` pairs for the importance filter sweep.
    pub lx_mlp: Vec<(f32, f32)>,
}

pub struct FinetuneEngine {
    pub model: TransformerModel,
    pub config: EngineConfig,
    dense: DensePolicy,
    predicted: PredictedPolicy,
    oracle: OraclePolicy,
    random_attn: RandomPolicy,
    random_mlp: RandomPolicy,
    pub calibrated: bool,
}

/// Resolve a [`StepMode`] to the engine's built-in policy object without
/// borrowing the whole engine (the model is borrowed separately).
macro_rules! policy_for_mode {
    ($self:ident, $mode:expr, $policy:ident => $body:expr) => {{
        match $mode {
            StepMode::Dense => {
                let $policy: &mut dyn SparsityPolicy = &mut $self.dense;
                $body
            }
            StepMode::Sparse => {
                assert!($self.calibrated, "calibrate() before sparse training");
                let $policy: &mut dyn SparsityPolicy = &mut $self.predicted;
                $body
            }
            StepMode::Oracle => {
                let $policy: &mut dyn SparsityPolicy = &mut $self.oracle;
                $body
            }
            StepMode::RandomAttn => {
                let $policy: &mut dyn SparsityPolicy = &mut $self.random_attn;
                $body
            }
            StepMode::RandomMlp => {
                let $policy: &mut dyn SparsityPolicy = &mut $self.random_mlp;
                $body
            }
        }
    }};
}

/// One step through a policy: ask it for the plan source, compose the
/// request (all `batches` as accumulated micro-batches), execute. `opt:
/// None` runs an evaluation pass instead of a training step.
///
/// Plan granularity under accumulation: an inline planner
/// (`PredictedPolicy`) re-plans per shard from each shard's block inputs; a
/// stateless pre-built plan (`RandomPolicy`) is reused across shards — same
/// compute budget either way. A policy that derives a *batch-specific*
/// ground-truth plan from the batch contents (`OraclePolicy::metered`)
/// cannot do either honestly, so accumulation with it is rejected.
fn step_with(
    model: &mut TransformerModel,
    policy: &mut dyn SparsityPolicy,
    batches: &[MicroBatch<'_>],
    batch: usize,
    seq: usize,
    opt: Option<&mut dyn Optimizer>,
    prepare: Option<PrepareHook<'_>>,
) -> StepOutcome {
    assert!(!batches.is_empty(), "at least one micro-batch");
    let metered = policy.metered();
    assert!(
        batches.len() == 1 || !policy.batch_specific(),
        "{}: the plan is ground truth for one specific batch; micro-batch \
         accumulation needs an inline or batch-agnostic plan source \
         (Dense/Sparse/Random)",
        policy.name()
    );
    let t0 = Instant::now();
    let source = policy.source(model, batches[0].ids, batch, seq);
    let setup = if metered {
        t0.elapsed()
    } else {
        Duration::ZERO
    };
    let mut req = match opt {
        Some(o) => StepRequest::train(batches[0].ids, batches[0].targets, batch, seq, o),
        None => StepRequest::eval(batches[0].ids, batches[0].targets, batch, seq),
    }
    .plan_source(source);
    for mb in &batches[1..] {
        req = req.micro_batch(mb.ids, mb.targets);
    }
    if let Some(hook) = prepare {
        req = req.on_micro_batch(hook);
    }
    let mut out = model.execute(req);
    out.predict += setup;
    out
}

impl FinetuneEngine {
    pub fn new(model: TransformerModel, config: EngineConfig) -> Self {
        let mut predicted = PredictedPolicy::new(
            &model.config,
            config.block_size,
            config.predictor_rank,
            config.attn_min_recall,
            config.enable_attn,
            config.enable_mlp,
            config.seed,
        );
        predicted.set_refresh(config.plan_refresh);
        let oracle = OraclePolicy::new(
            config.block_size,
            config.attn_prob_threshold,
            config.mlp_threshold,
            config.attn_min_recall,
            config.enable_attn,
            config.enable_mlp && model.config.activation == Activation::Relu,
        );
        let random_attn =
            RandomPolicy::new(RandomTarget::Attention, config.block_size, config.seed);
        let random_mlp = RandomPolicy::new(RandomTarget::Mlp, config.block_size, config.seed);
        FinetuneEngine {
            model,
            config,
            dense: DensePolicy,
            predicted,
            oracle,
            random_attn,
            random_mlp,
            calibrated: false,
        }
    }

    fn mlp_sparsity_applicable(&self) -> bool {
        self.config.enable_mlp && self.model.config.activation == Activation::Relu
    }

    /// Offline phase: dense capture passes on `batches` (each
    /// `(ids, batch, seq)`), exposer targets, predictor training.
    pub fn calibrate(&mut self, batches: &[(Vec<u32>, usize, usize)]) -> CalibrationReport {
        let _span = lx_obs::Span::enter("engine.calibrate").cat("engine");
        let exposer = Exposer::new(
            self.config.block_size,
            self.config.attn_prob_threshold,
            self.config.mlp_threshold,
        );
        let n_layers = self.model.config.n_layers;
        let heads = self.model.config.n_heads;
        let d_ff = self.model.config.d_ff;
        let blk = self.config.block_size;
        let mlp_on = self.mlp_sparsity_applicable();
        let mut attn_samples: Vec<Vec<AttnSample>> = (0..n_layers).map(|_| Vec::new()).collect();
        let mut mlp_samples: Vec<Vec<MlpSample>> = (0..n_layers).map(|_| Vec::new()).collect();
        for (ids, batch, seq) in batches {
            let (batch, seq) = (*batch, *seq);
            let eff = self.model.effective_seq(seq);
            assert_eq!(eff % blk, 0, "effective seq {eff} must be block-aligned");
            let caps = self
                .model
                .execute(StepRequest::capture(
                    ids,
                    batch,
                    seq,
                    CaptureConfig {
                        attn: self.config.enable_attn,
                        mlp: mlp_on,
                    },
                ))
                .captures
                .expect("capture mode records captures");
            for (l, cap) in caps.iter().enumerate() {
                let block_input = cap.block_input.as_ref().expect("capture input");
                let pooled = pool_blocks(block_input, batch, eff, blk);
                if let Some(probs) = &cap.attn_probs {
                    for (b, pooled_b) in pooled.iter().enumerate() {
                        // Slice this batch element's probabilities.
                        let start = b * heads * eff;
                        let slice = Tensor::from_vec(
                            probs.as_slice()[start * eff..(start + heads * eff) * eff].to_vec(),
                            &[heads * eff, eff],
                        );
                        let targets = exposer.attention_head_masks(&slice, 1, heads, eff);
                        attn_samples[l].push(AttnSample {
                            pooled: pooled_b.clone(),
                            targets,
                        });
                    }
                }
                if let Some(acts) = &cap.mlp_activations {
                    for b in 0..batch {
                        let x = Tensor::from_vec(
                            block_input.as_slice()
                                [b * eff * block_input.cols()..(b + 1) * eff * block_input.cols()]
                                .to_vec(),
                            &[eff, block_input.cols()],
                        );
                        let acts_b = Tensor::from_vec(
                            acts.as_slice()[b * eff * d_ff..(b + 1) * eff * d_ff].to_vec(),
                            &[eff, d_ff],
                        );
                        let reduced = exposer.mlp_filter(&exposer.mlp_block_importance(&acts_b));
                        mlp_samples[l].push(MlpSample { x, reduced });
                    }
                }
            }
        }
        // Train predictors.
        for l in 0..n_layers {
            for e in 0..self.config.calib_epochs {
                if !attn_samples[l].is_empty() {
                    self.predicted.attn[l].train_epoch(
                        &attn_samples[l],
                        self.config.predictor_lr,
                        self.config.noise_std,
                        self.config.pos_weight,
                        self.config.seed + e as u64,
                    );
                }
                if !mlp_samples[l].is_empty() {
                    self.predicted.mlp[l].train_epoch(
                        &mlp_samples[l],
                        self.config.predictor_lr,
                        self.config.noise_std,
                        self.config.pos_weight,
                        self.config.seed + 1000 + e as u64,
                    );
                }
            }
        }
        // Evaluate.
        let mut report = CalibrationReport::default();
        for l in 0..n_layers {
            if !attn_samples[l].is_empty() {
                let (r, p) = self.predicted.attn[l].evaluate(&attn_samples[l]);
                report.attn_recall.push(r);
                report.attn_precision.push(p);
            }
            if !mlp_samples[l].is_empty() {
                let (r, p) = self.predicted.mlp[l].evaluate(&mlp_samples[l]);
                report.mlp_recall.push(r);
                report.mlp_precision.push(p);
            }
        }
        self.calibrated = true;
        // The predictors just changed under the policy; a cached plan from
        // the pre-calibration predictors must not be replayed.
        self.predicted.invalidate_plan_cache();
        report
    }

    /// One timed training step in the given mode.
    pub fn train_step_mode(
        &mut self,
        ids: &[u32],
        targets: &[i32],
        batch: usize,
        seq: usize,
        opt: &mut dyn Optimizer,
        mode: StepMode,
    ) -> StepOutcome {
        self.train_step_accum(&[MicroBatch { ids, targets }], batch, seq, opt, mode)
    }

    /// One timed training step accumulating gradients over `batches`
    /// micro-batches (each `(batch, seq)`-shaped): every shard runs
    /// forward/backward under the mode's plan source, the optimizer steps
    /// once. With an inline planner (`Sparse`) this re-plans per shard — the
    /// predictor cost is amortised over the larger effective batch; the
    /// random ablations reuse one plan across shards. `Oracle` is rejected
    /// for multi-shard steps (its plan is ground truth for one batch).
    pub fn train_step_accum(
        &mut self,
        batches: &[MicroBatch<'_>],
        batch: usize,
        seq: usize,
        opt: &mut dyn Optimizer,
        mode: StepMode,
    ) -> StepOutcome {
        policy_for_mode!(self, mode, policy => {
            step_with(&mut self.model, policy, batches, batch, seq, Some(opt), None)
        })
    }

    /// One step through an *external* [`SparsityPolicy`] — the hook the
    /// predictor ablations use to compare plan sources under identical
    /// engine plumbing.
    pub fn train_step_policy(
        &mut self,
        batches: &[MicroBatch<'_>],
        batch: usize,
        seq: usize,
        opt: &mut dyn Optimizer,
        policy: &mut dyn SparsityPolicy,
    ) -> StepOutcome {
        step_with(
            &mut self.model,
            policy,
            batches,
            batch,
            seq,
            Some(opt),
            None,
        )
    }

    /// Evaluation-only pass in the given mode: forward and loss under the
    /// mode's plan source, no gradients, no optimizer.
    pub fn eval_step(
        &mut self,
        ids: &[u32],
        targets: &[i32],
        batch: usize,
        seq: usize,
        mode: StepMode,
    ) -> StepOutcome {
        policy_for_mode!(self, mode, policy => {
            step_with(
                &mut self.model,
                policy,
                &[MicroBatch { ids, targets }],
                batch,
                seq,
                None,
                None,
            )
        })
    }

    /// Fused evaluation pass over several independent micro-batches
    /// (cross-tenant batch fusion): every shard runs a stateless Eval
    /// forward under the mode's plan source, `prepare` is invoked with the
    /// model and shard index before each shard (the caller swaps tenant
    /// adapters there), and [`StepOutcome::micro_losses`] carries each
    /// shard's raw loss — bit-identical to running the shards as separate
    /// [`Self::eval_step`] calls. Batch-specific policies (`Oracle`) are
    /// rejected, same as accumulation.
    pub fn eval_step_fused(
        &mut self,
        batches: &[MicroBatch<'_>],
        batch: usize,
        seq: usize,
        mode: StepMode,
        prepare: Option<PrepareHook<'_>>,
    ) -> StepOutcome {
        policy_for_mode!(self, mode, policy => {
            step_with(&mut self.model, policy, batches, batch, seq, None, prepare)
        })
    }

    /// Long Exposure step (predicted sparsity).
    pub fn train_step(
        &mut self,
        ids: &[u32],
        targets: &[i32],
        batch: usize,
        seq: usize,
        opt: &mut dyn Optimizer,
    ) -> StepOutcome {
        self.train_step_mode(ids, targets, batch, seq, opt, StepMode::Sparse)
    }

    /// Dense baseline step.
    pub fn train_step_dense(
        &mut self,
        ids: &[u32],
        targets: &[i32],
        batch: usize,
        seq: usize,
        opt: &mut dyn Optimizer,
    ) -> StepOutcome {
        self.train_step_mode(ids, targets, batch, seq, opt, StepMode::Dense)
    }

    /// Serialise the calibrated predictors (see [`crate::checkpoint`]).
    pub fn export_predictors(&self) -> bytes::Bytes {
        let cfg = &self.model.config;
        let meta = crate::checkpoint::CheckpointMeta {
            d_model: cfg.d_model,
            n_heads: cfg.n_heads,
            rank: self.config.predictor_rank,
            n_layers: cfg.n_layers,
            mlp_blocks: cfg.d_ff / self.config.block_size,
            block_size: self.config.block_size,
        };
        crate::checkpoint::save_predictors(&meta, &self.predicted.attn, &self.predicted.mlp)
    }

    /// Restore predictors from a checkpoint; marks the engine calibrated.
    pub fn import_predictors(&mut self, data: bytes::Bytes) -> Result<(), String> {
        let (meta, attn, mlp) = crate::checkpoint::load_predictors(data)?;
        let cfg = &self.model.config;
        if meta.d_model != cfg.d_model
            || meta.n_heads != cfg.n_heads
            || meta.n_layers != cfg.n_layers
            || meta.block_size != self.config.block_size
            || meta.mlp_blocks * meta.block_size != cfg.d_ff
        {
            return Err(format!("checkpoint shape mismatch: {meta:?}"));
        }
        self.predicted.attn = attn;
        self.predicted.mlp = mlp;
        self.predicted.invalidate_plan_cache();
        self.calibrated = true;
        Ok(())
    }

    /// Reconfigure the predicted policy's cross-step plan reuse (resets any
    /// cached plan).
    pub fn set_plan_refresh(&mut self, refresh: PlanRefreshConfig) {
        self.config.plan_refresh = refresh;
        self.predicted.set_refresh(refresh);
    }

    /// Plan-reuse counters of the predicted policy (predicted vs. replayed
    /// steps, last inter-prediction overlap, drift state).
    pub fn plan_reuse_stats(&self) -> PlanReuseStats {
        self.predicted.plan_reuse_stats()
    }

    /// Drop the predicted policy's cached plan. Callers that change what the
    /// model computes between steps (e.g. `lx-serve` attaching a different
    /// tenant's adapter) must invalidate so a plan predicted in the old
    /// context is never replayed into the new one.
    pub fn invalidate_plan_cache(&mut self) {
        self.predicted.invalidate_plan_cache();
    }

    /// Predicted per-head attention masks for a layer given its block input
    /// (exposed for analysis/visualisation — Fig. 11b).
    pub fn predict_attention_masks(
        &self,
        layer: usize,
        x: &Tensor,
        batch: usize,
        seq: usize,
    ) -> Vec<lx_sparse::BlockMask> {
        self.predicted.attn[layer].predict_masks(x, batch, seq, self.config.block_size)
    }

    /// Predicted MLP neuron-block set for a layer given its block input.
    pub fn predict_mlp_set(&self, layer: usize, x: &Tensor) -> NeuronBlockSet {
        self.predicted.mlp[layer].predict(x)
    }

    /// Fig. 9 per-layer sparsity analysis on one capture batch.
    pub fn sparsity_report(
        &mut self,
        ids: &[u32],
        batch: usize,
        seq: usize,
        mlp_thresholds: &[f32],
    ) -> Vec<LayerSparsityReport> {
        let blk = self.config.block_size;
        let eff = self.model.effective_seq(seq);
        assert_eq!(eff % blk, 0);
        let n = eff / blk;
        let pool = PatternPool::default_pool(blk, &[n]);
        let heads = self.model.config.n_heads;
        let mlp_on = self.model.config.activation == Activation::Relu;
        let caps = self
            .model
            .execute(StepRequest::capture(
                ids,
                batch,
                seq,
                CaptureConfig {
                    attn: true,
                    mlp: mlp_on,
                },
            ))
            .captures
            .expect("capture mode records captures");
        let exposer = Exposer::new(
            blk,
            self.config.attn_prob_threshold,
            self.config.mlp_threshold,
        );
        let causal_cost = PatternSpec::Causal.cost(n) as f32;
        let longformer = 1.0 - PatternSpec::LocalGlobal { w: 4, g: 2 }.cost(n) as f32 / causal_cost;
        let bigbird = 1.0
            - PatternSpec::BigBird {
                w: 2,
                g: 1,
                r: 2,
                seed: 7,
            }
            .cost(n) as f32
                / causal_cost;
        caps.iter()
            .enumerate()
            .map(|(l, cap)| {
                let probs = cap.attn_probs.as_ref().expect("attn capture");
                let head_masks = exposer.attention_head_masks(probs, batch, heads, eff);
                let union = Exposer::attention_union_mask(&head_masks);
                let shadowy_attn = Exposer::causal_relative_sparsity(&union);
                // Long Exposure: head-specific pooled patterns.
                let lx_attn = {
                    let mut total_cost = 0.0;
                    for m in &head_masks {
                        let (spec, _) = pool.best_match(m, self.config.attn_min_recall);
                        total_cost += spec.cost(n) as f32;
                    }
                    1.0 - total_cost / (causal_cost * heads as f32)
                };
                let (shadowy_mlp, lx_mlp) = if let Some(acts) = &cap.mlp_activations {
                    let imp = exposer.mlp_block_importance(acts);
                    let sweep = mlp_thresholds
                        .iter()
                        .map(|&th| {
                            let e = Exposer::new(blk, self.config.attn_prob_threshold, th);
                            (th, e.mlp_filter(&imp).sparsity())
                        })
                        .collect();
                    (Exposer::mlp_union_sparsity(acts), sweep)
                } else {
                    (0.0, Vec::new())
                };
                LayerSparsityReport {
                    layer: l,
                    shadowy_attn,
                    longformer_attn: longformer,
                    bigbird_attn: bigbird,
                    longexposure_attn: lx_attn,
                    shadowy_mlp,
                    lx_mlp,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lx_model::{prompt_aware_targets, ModelConfig, Sgd};
    use lx_peft::PeftMethod;

    fn small_engine() -> FinetuneEngine {
        let mut cfg = ModelConfig::test_tiny();
        cfg.d_ff = 32;
        let mut model = TransformerModel::new(cfg, 5);
        PeftMethod::lora_default().apply(&mut model, 6);
        FinetuneEngine::new(
            model,
            EngineConfig {
                block_size: 4,
                predictor_rank: 4,
                calib_epochs: 80,
                ..EngineConfig::default()
            },
        )
    }

    fn batch(seed: u64) -> (Vec<u32>, usize, usize) {
        let ids: Vec<u32> = lx_tensor::rng::uniform_vec(2 * 16, 0.0, 64.0, seed)
            .into_iter()
            .map(|v| v as u32)
            .collect();
        (ids, 2, 16)
    }

    #[test]
    fn calibration_produces_reasonable_recall() {
        let mut e = small_engine();
        let report = e.calibrate(&[batch(1), batch(2)]);
        assert!(e.calibrated);
        assert_eq!(report.attn_recall.len(), 2);
        assert_eq!(report.mlp_recall.len(), 2);
        // Attention targets on a tiny *random* model are mostly noise; the
        // bar here is "clearly better than chance". Structured-data quality
        // is exercised by fig11_predictor and the quickstart example.
        assert!(
            report.mean_attn_recall() > 0.55,
            "attn recall {}",
            report.mean_attn_recall()
        );
        assert!(
            report.mean_mlp_recall() > 0.7,
            "mlp recall {}",
            report.mean_mlp_recall()
        );
    }

    #[test]
    fn sparse_step_trains_and_reports_density() {
        let mut e = small_engine();
        e.calibrate(&[batch(1)]);
        let (ids, b, s) = batch(3);
        let targets = prompt_aware_targets(&ids, b, s, 0);
        let mut opt = Sgd::new(0.05);
        let first = e.train_step(&ids, &targets, b, s, &mut opt);
        assert!(first.attn_density.unwrap() <= 1.0);
        assert!(first.mlp_density.unwrap() <= 1.0);
        assert!(first.loss.is_finite());
        let mut last = first.loss;
        for _ in 0..8 {
            last = e.train_step(&ids, &targets, b, s, &mut opt).loss;
        }
        assert!(
            last < first.loss,
            "sparse training must reduce loss: {} -> {last}",
            first.loss
        );
    }

    #[test]
    fn dense_step_has_no_predict_time() {
        let mut e = small_engine();
        let (ids, b, s) = batch(4);
        let targets = prompt_aware_targets(&ids, b, s, 0);
        let mut opt = Sgd::new(0.01);
        let stats = e.train_step_dense(&ids, &targets, b, s, &mut opt);
        assert_eq!(stats.predict, Duration::ZERO);
        assert!(stats.attn_density.is_none());
    }

    #[test]
    #[should_panic(expected = "calibrate")]
    fn sparse_step_requires_calibration() {
        let mut e = small_engine();
        let (ids, b, s) = batch(5);
        let targets = prompt_aware_targets(&ids, b, s, 0);
        let mut opt = Sgd::new(0.01);
        e.train_step(&ids, &targets, b, s, &mut opt);
    }

    #[test]
    fn random_modes_run_and_differ_from_sparse() {
        let mut e = small_engine();
        e.calibrate(&[batch(1)]);
        let (ids, b, s) = batch(6);
        let targets = prompt_aware_targets(&ids, b, s, 0);
        let mut opt = Sgd::new(0.01);
        let ra = e.train_step_mode(&ids, &targets, b, s, &mut opt, StepMode::RandomAttn);
        assert!(ra.attn_density.is_some());
        assert!(ra.mlp_density.is_none());
        let rm = e.train_step_mode(&ids, &targets, b, s, &mut opt, StepMode::RandomMlp);
        assert!(rm.attn_density.is_none());
        assert!((rm.mlp_density.unwrap() - 0.5).abs() < 0.2);
    }

    #[test]
    fn sparsity_report_structure() {
        let mut e = small_engine();
        let (ids, b, s) = batch(7);
        let reports = e.sparsity_report(&ids, b, s, &[0.01, 0.05]);
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert!(r.shadowy_attn >= 0.0 && r.shadowy_attn <= 1.0);
            assert!(r.longexposure_attn >= 0.0);
            assert_eq!(r.lx_mlp.len(), 2);
            // Higher threshold -> at least as sparse.
            assert!(r.lx_mlp[1].1 >= r.lx_mlp[0].1 - 1e-6);
            // Head-specific masks expose at least as much sparsity as the
            // union within matching tolerance of pattern pool quantisation.
            assert!(r.longexposure_attn + 0.35 >= r.shadowy_attn);
        }
    }

    #[test]
    fn predictor_checkpoint_roundtrip_through_engine() {
        let mut e = small_engine();
        e.calibrate(&[batch(1)]);
        let blob = e.export_predictors();
        // A fresh engine with the same shapes imports and runs sparse
        // without recalibrating.
        let mut e2 = small_engine();
        assert!(!e2.calibrated);
        e2.import_predictors(blob).expect("import");
        assert!(e2.calibrated);
        let (ids, b, s) = batch(11);
        let targets = prompt_aware_targets(&ids, b, s, 0);
        let mut opt = Sgd::new(0.01);
        let s1 = e.train_step(&ids, &targets, b, s, &mut opt);
        let mut opt2 = Sgd::new(0.01);
        let s2 = e2.train_step(&ids, &targets, b, s, &mut opt2);
        // Same predictors + same weights -> identical densities.
        assert_eq!(s1.attn_density, s2.attn_density);
        assert_eq!(s1.mlp_density, s2.mlp_density);
    }

    #[test]
    fn import_rejects_mismatched_shapes() {
        let mut e = small_engine();
        e.calibrate(&[batch(1)]);
        let blob = e.export_predictors();
        let mut other = {
            let mut cfg = ModelConfig::test_tiny();
            cfg.d_model = 32;
            cfg.d_ff = 32;
            let model = TransformerModel::new(cfg, 5);
            FinetuneEngine::new(
                model,
                EngineConfig {
                    block_size: 4,
                    ..EngineConfig::default()
                },
            )
        };
        assert!(other.import_predictors(blob).is_err());
    }

    #[test]
    fn oracle_mode_plans_without_calibration() {
        // Ground truth needs no predictors; its capture pass is metered as
        // prediction overhead.
        let mut e = small_engine();
        let (ids, b, s) = batch(12);
        let targets = prompt_aware_targets(&ids, b, s, 0);
        let mut opt = Sgd::new(0.01);
        let stats = e.train_step_mode(&ids, &targets, b, s, &mut opt, StepMode::Oracle);
        assert!(stats.attn_density.unwrap() <= 1.0);
        assert!(stats.mlp_density.unwrap() <= 1.0);
        assert!(stats.predict > Duration::ZERO, "oracle capture is metered");
        assert!(stats.loss.is_finite());
    }

    #[test]
    fn accumulated_step_steps_the_optimizer_once() {
        let mut e = small_engine();
        e.calibrate(&[batch(1)]);
        let (ids_a, b, s) = batch(13);
        let (ids_b, _, _) = batch(14);
        let t_a = prompt_aware_targets(&ids_a, b, s, 0);
        let t_b = prompt_aware_targets(&ids_b, b, s, 0);
        let mut opt = lx_model::Adam::new(0.01);
        let micros = [
            lx_model::MicroBatch {
                ids: &ids_a,
                targets: &t_a,
            },
            lx_model::MicroBatch {
                ids: &ids_b,
                targets: &t_b,
            },
        ];
        let stats = e.train_step_accum(&micros, b, s, &mut opt, StepMode::Sparse);
        assert_eq!(stats.micro_batches, 2);
        assert!(stats.loss.is_finite());
        // Adam's step counter advances once per optimizer step, not per
        // micro-batch: a second accumulated step lands at t == 2.
        e.train_step_accum(&micros, b, s, &mut opt, StepMode::Sparse);
        assert_eq!(opt.step_count(), 2);
    }

    #[test]
    #[should_panic(expected = "ground truth for one specific batch")]
    fn oracle_rejects_micro_batch_accumulation() {
        let mut e = small_engine();
        let (ids, b, s) = batch(16);
        let targets = prompt_aware_targets(&ids, b, s, 0);
        let micros = [
            lx_model::MicroBatch {
                ids: &ids,
                targets: &targets,
            },
            lx_model::MicroBatch {
                ids: &ids,
                targets: &targets,
            },
        ];
        let mut opt = Sgd::new(0.01);
        e.train_step_accum(&micros, b, s, &mut opt, StepMode::Oracle);
    }

    #[test]
    fn fused_eval_matches_separate_eval_steps_bit_identically() {
        let mut e = small_engine();
        let (ids_a, b, s) = batch(20);
        let (ids_b, _, _) = batch(21);
        let t_a = prompt_aware_targets(&ids_a, b, s, 0);
        let t_b = prompt_aware_targets(&ids_b, b, s, 0);
        let micros = [
            lx_model::MicroBatch {
                ids: &ids_a,
                targets: &t_a,
            },
            lx_model::MicroBatch {
                ids: &ids_b,
                targets: &t_b,
            },
        ];
        let calls = std::cell::RefCell::new(Vec::new());
        let mut hook = |_: &mut TransformerModel, i: usize| calls.borrow_mut().push(i);
        let fused = e.eval_step_fused(&micros, b, s, StepMode::Dense, Some(&mut hook));
        assert_eq!(*calls.borrow(), vec![0, 1], "hook fires once per shard");
        assert_eq!(fused.micro_batches, 2);
        let solo_a = e.eval_step(&ids_a, &t_a, b, s, StepMode::Dense);
        let solo_b = e.eval_step(&ids_b, &t_b, b, s, StepMode::Dense);
        assert_eq!(fused.micro_losses[0].to_bits(), solo_a.loss.to_bits());
        assert_eq!(fused.micro_losses[1].to_bits(), solo_b.loss.to_bits());
    }

    #[test]
    fn eval_step_leaves_parameters_unchanged() {
        let mut e = small_engine();
        e.calibrate(&[batch(1)]);
        let (ids, b, s) = batch(15);
        let targets = prompt_aware_targets(&ids, b, s, 0);
        let mut before = Vec::new();
        e.model.for_each_param(&mut |p| {
            if p.trainable {
                before.push(p.value.as_slice().to_vec());
            }
        });
        let stats = e.eval_step(&ids, &targets, b, s, StepMode::Sparse);
        assert!(stats.loss.is_finite());
        assert!(stats.mlp_density.is_some(), "sparse eval uses the plan");
        let mut after = Vec::new();
        e.model.for_each_param(&mut |p| {
            if p.trainable {
                after.push(p.value.as_slice().to_vec());
            }
        });
        assert_eq!(before, after, "eval must not update parameters");
    }

    #[test]
    fn gelu_model_skips_mlp_sparsity() {
        let mut cfg = ModelConfig::test_tiny();
        cfg.activation = Activation::Gelu;
        let model = TransformerModel::new(cfg, 8);
        let mut e = FinetuneEngine::new(
            model,
            EngineConfig {
                block_size: 4,
                calib_epochs: 5,
                ..EngineConfig::default()
            },
        );
        let (ids, b, s) = batch(9);
        e.calibrate(&[(ids.clone(), b, s)]);
        let targets = prompt_aware_targets(&ids, b, s, 0);
        let mut opt = Sgd::new(0.01);
        let stats = e.train_step(&ids, &targets, b, s, &mut opt);
        assert!(stats.mlp_density.is_none(), "GeLU model must run MLP dense");
        assert!(stats.attn_density.is_some());
    }
}
