//! Parameter-efficient fine-tuning methods (paper §II-A, Table I).
//!
//! Each method is a *policy* applied to a [`TransformerModel`]: freeze the
//! backbone, then either inject small trainable modules (LoRA low-rank pairs,
//! bottleneck adapters, a prompt prefix) or selectively unfreeze existing
//! parameters (BitFit's biases). All methods compose with the Long Exposure
//! sparse execution paths, because trainability is a property of parameters
//! while sparsity is a property of the execution plan.

pub mod adapter;
pub mod merge;

pub use adapter::{detach, NamedTensor, TenantAdapter};

use lx_model::TransformerModel;

/// Which linears LoRA attaches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoraTargets {
    pub q: bool,
    pub k: bool,
    pub v: bool,
    pub o: bool,
    pub mlp_fc1: bool,
    pub mlp_fc2: bool,
}

impl LoraTargets {
    /// The standard Hu et al. target set: query and value projections.
    pub fn qv() -> Self {
        LoraTargets {
            q: true,
            k: false,
            v: true,
            o: false,
            mlp_fc1: false,
            mlp_fc2: false,
        }
    }

    /// Everything — the configuration the paper's Fig. 2 MLP example implies.
    pub fn all() -> Self {
        LoraTargets {
            q: true,
            k: true,
            v: true,
            o: true,
            mlp_fc1: true,
            mlp_fc2: true,
        }
    }
}

/// A PEFT method with its hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PeftMethod {
    /// Full fine-tuning: everything trainable (the Table I baseline).
    Full,
    /// LoRA low-rank adaptation.
    Lora {
        rank: usize,
        alpha: f32,
        targets: LoraTargets,
    },
    /// Houlsby-style bottleneck adapters after both sub-layers.
    Adapter { bottleneck: usize },
    /// BitFit: train only bias-like parameters.
    BitFit,
    /// Prompt tuning (the paper's "P-Tuning" row): trainable virtual tokens.
    PromptTuning { prompt_len: usize },
}

impl PeftMethod {
    /// Default hyperparameters matching common practice.
    pub fn lora_default() -> Self {
        PeftMethod::Lora {
            rank: 8,
            alpha: 16.0,
            targets: LoraTargets::qv(),
        }
    }

    pub fn adapter_default() -> Self {
        PeftMethod::Adapter { bottleneck: 16 }
    }

    pub fn name(&self) -> &'static str {
        match self {
            PeftMethod::Full => "full",
            PeftMethod::Lora { .. } => "lora",
            PeftMethod::Adapter { .. } => "adapter",
            PeftMethod::BitFit => "bitfit",
            PeftMethod::PromptTuning { .. } => "prompt-tuning",
        }
    }

    /// Apply the method to a model: sets trainability and injects modules.
    pub fn apply(&self, model: &mut TransformerModel, seed: u64) {
        match *self {
            PeftMethod::Full => {
                // Trainable state must be f32: the optimizer updates value
                // buffers in place and keeps f32 moments.
                assert_eq!(
                    model.precision(),
                    lx_model::Precision::F32,
                    "full fine-tuning requires f32 parameter storage; \
                     call set_precision(Precision::F32) first"
                );
                model.for_each_param(&mut |p| p.trainable = true);
            }
            PeftMethod::Lora {
                rank,
                alpha,
                targets,
            } => {
                model.freeze_all();
                for (i, block) in model.blocks.iter_mut().enumerate() {
                    let s = seed + 37 * i as u64;
                    if targets.q {
                        block.attn.wq.attach_lora(rank, alpha, s);
                    }
                    if targets.k {
                        block.attn.wk.attach_lora(rank, alpha, s + 1);
                    }
                    if targets.v {
                        block.attn.wv.attach_lora(rank, alpha, s + 2);
                    }
                    if targets.o {
                        block.attn.wo.attach_lora(rank, alpha, s + 3);
                    }
                    if targets.mlp_fc1 {
                        block.mlp.attach_lora_fc1(rank, alpha, s + 4);
                    }
                    if targets.mlp_fc2 {
                        block.mlp.attach_lora_fc2(rank, alpha, s + 5);
                    }
                }
            }
            PeftMethod::Adapter { bottleneck } => {
                model.freeze_all();
                let d = model.config.d_model;
                for (i, block) in model.blocks.iter_mut().enumerate() {
                    block.attach_adapters(d, bottleneck, seed + 53 * i as u64, i);
                }
            }
            PeftMethod::BitFit => {
                model.freeze_all();
                model.for_each_param(&mut |p| {
                    if is_bias_like(&p.name) {
                        p.trainable = true;
                    }
                });
            }
            PeftMethod::PromptTuning { prompt_len } => {
                model.freeze_all();
                model.embedding.attach_prompt(prompt_len, seed);
            }
        }
    }
}

/// BitFit's definition of "bias": additive per-channel parameters.
fn is_bias_like(name: &str) -> bool {
    name.ends_with(".bias")
        || name.ends_with(".b1")
        || name.ends_with(".b2")
        || name.ends_with(".beta")
}

/// Per-parameter-group trainability report (for experiment logs).
pub fn trainable_summary(model: &mut TransformerModel) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    model.for_each_param(&mut |p| {
        if p.trainable {
            out.push((p.name.clone(), p.numel()));
        }
    });
    out
}

/// Fraction of parameters that are trainable.
pub fn trainable_fraction(model: &mut TransformerModel) -> f64 {
    let total = model.num_params() as f64;
    let trainable = model.num_trainable() as f64;
    trainable / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use lx_model::{prompt_aware_targets, ModelConfig, Sgd, StepRequest};

    fn model() -> TransformerModel {
        TransformerModel::new(ModelConfig::test_tiny(), 7)
    }

    fn train_batch(m: &mut TransformerModel, method: &PeftMethod, steps: usize) -> (f32, f32) {
        let seq = 8;
        let ids: Vec<u32> = (0..16u32).map(|i| (i * 3) % 64).collect();
        let prompt_len = m.embedding.prompt_len();
        let targets = prompt_aware_targets(&ids, 2, seq, prompt_len);
        let mut opt = Sgd::new(0.05);
        let first = m
            .execute(StepRequest::train(&ids, &targets, 2, seq, &mut opt))
            .loss;
        let mut last = first;
        for _ in 0..steps {
            last = m
                .execute(StepRequest::train(&ids, &targets, 2, seq, &mut opt))
                .loss;
        }
        let _ = method;
        (first, last)
    }

    #[test]
    fn lora_trainable_fraction_is_tiny() {
        let mut m = model();
        PeftMethod::lora_default().apply(&mut m, 1);
        let frac = trainable_fraction(&mut m);
        assert!(
            frac < 0.30,
            "LoRA should train a small fraction, got {frac}"
        );
        assert!(m.num_trainable() > 0);
        // Only LoRA params are trainable.
        let summary = trainable_summary(&mut m);
        assert!(
            summary.iter().all(|(n, _)| n.contains("lora")),
            "{summary:?}"
        );
    }

    #[test]
    fn each_method_reduces_loss_on_overfit_batch() {
        for method in [
            PeftMethod::Full,
            PeftMethod::lora_default(),
            PeftMethod::adapter_default(),
            PeftMethod::BitFit,
            PeftMethod::PromptTuning { prompt_len: 4 },
        ] {
            let mut m = model();
            method.apply(&mut m, 3);
            let (first, last) = train_batch(&mut m, &method, 25);
            assert!(
                last < first,
                "{}: loss must drop ({first} -> {last})",
                method.name()
            );
        }
    }

    #[test]
    fn bitfit_trains_only_biases() {
        let mut m = model();
        PeftMethod::BitFit.apply(&mut m, 1);
        let summary = trainable_summary(&mut m);
        assert!(!summary.is_empty());
        for (name, _) in &summary {
            assert!(is_bias_like(name), "non-bias trainable: {name}");
        }
        // Weights must stay frozen.
        let mut any_weight_trainable = false;
        m.for_each_param(&mut |p| {
            if p.name.ends_with(".weight") && p.trainable {
                any_weight_trainable = true;
            }
        });
        assert!(!any_weight_trainable);
    }

    #[test]
    fn adapter_injects_trainable_modules() {
        let mut m = model();
        let before = m.num_params();
        PeftMethod::adapter_default().apply(&mut m, 2);
        let after = m.num_params();
        assert!(after > before, "adapters add parameters");
        assert_eq!(m.num_trainable(), after - before);
    }

    #[test]
    fn prompt_tuning_extends_sequence() {
        let mut m = model();
        PeftMethod::PromptTuning { prompt_len: 4 }.apply(&mut m, 3);
        assert_eq!(m.effective_seq(8), 12);
        assert_eq!(m.num_trainable(), 4 * m.config.d_model);
    }

    #[test]
    fn lora_all_targets_cover_mlp() {
        let mut m = model();
        PeftMethod::Lora {
            rank: 2,
            alpha: 4.0,
            targets: LoraTargets::all(),
        }
        .apply(&mut m, 4);
        let summary = trainable_summary(&mut m);
        assert!(summary.iter().any(|(n, _)| n.contains("w1.lora")));
        assert!(summary.iter().any(|(n, _)| n.contains("w2.lora")));
        assert!(summary.iter().any(|(n, _)| n.contains("wo.lora")));
    }

    #[test]
    fn full_ft_trains_everything() {
        let mut m = model();
        PeftMethod::Full.apply(&mut m, 5);
        assert_eq!(m.num_trainable(), m.num_params());
    }

    #[test]
    fn method_names_are_stable() {
        assert_eq!(PeftMethod::Full.name(), "full");
        assert_eq!(PeftMethod::lora_default().name(), "lora");
        assert_eq!(PeftMethod::adapter_default().name(), "adapter");
        assert_eq!(PeftMethod::BitFit.name(), "bitfit");
        assert_eq!(
            PeftMethod::PromptTuning { prompt_len: 1 }.name(),
            "prompt-tuning"
        );
    }
}
