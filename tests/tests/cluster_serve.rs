//! Cluster-serving integration: the replicated-backbone scheduler must be a
//! *numerically invisible* scale-out of the single-backbone `lx_serve`
//! scheduler. A tenant's loss stream is a function of its own state (data
//! cursor, adapter, optimizer moments), all of which travels inside the
//! `TenantTask` — so replica count, placement, interleaving, work stealing
//! and fusion may change *when and where* a slice runs but never *what it
//! computes*.

use long_exposure::engine::{EngineConfig, StepMode};
use lx_cluster::{ClusterConfig, ClusterScheduler, QosClass, QosQuotas, Submit};
use lx_model::{ModelConfig, Precision, TransformerModel};
use lx_serve::{AdapterRegistry, DatasetSpec, JobSpec, SchedPolicy, Scheduler, ServeConfig};
use std::sync::Arc;

fn backbone() -> TransformerModel {
    let mut m = TransformerModel::new(ModelConfig::test_tiny(), 23);
    m.freeze_all();
    m
}

fn engine_cfg() -> EngineConfig {
    EngineConfig {
        block_size: 4,
        ..EngineConfig::default()
    }
}

fn cluster(config: ClusterConfig) -> ClusterScheduler {
    ClusterScheduler::new(
        |_| backbone(),
        engine_cfg(),
        config,
        Arc::new(AdapterRegistry::in_memory()),
    )
}

fn spec(tenant: &str, steps: u64) -> JobSpec {
    JobSpec {
        stream_len: 2_000,
        ..JobSpec::lora(tenant, steps, 1, 16)
    }
}

/// Per-tenant losses from an N-replica interleaved drive are bit-identical
/// to the single-backbone `lx_serve::Scheduler` running the same specs —
/// the scale-out is invisible to every tenant's numerics.
#[test]
fn replicated_drive_matches_single_backbone_scheduler_bitwise() {
    let specs: Vec<JobSpec> = (0..4).map(|i| spec(&format!("t{i}"), 6)).collect();

    // Reference: the plain single-backbone fair-share scheduler.
    let mut reference = Scheduler::new(
        backbone(),
        engine_cfg(),
        ServeConfig {
            slice_steps: 2,
            policy: SchedPolicy::FairShare,
            mode: StepMode::Dense,
            prefetch: false,
            precision: Precision::F32,
        },
        Arc::new(AdapterRegistry::in_memory()),
    );
    for s in &specs {
        reference.submit(s.clone()).expect("submit");
    }
    let reference_reports = reference.run_to_completion();

    // Candidate: three replicas, work stealing, mixed QoS classes — maximal
    // interleaving freedom.
    let mut c = cluster(ClusterConfig {
        replicas: 3,
        slice_steps: 2,
        ..ClusterConfig::default()
    });
    let classes = [
        QosClass::Interactive,
        QosClass::Batch,
        QosClass::BestEffort,
        QosClass::Batch,
    ];
    for (s, class) in specs.iter().zip(classes) {
        assert!(c.submit(s.clone(), class).is_admitted());
    }
    let report = c.run_to_completion();
    assert!(report.failures.is_empty());
    assert!(report.quarantined.is_empty());

    for r in &reference_reports {
        let clustered = report.report_for(&r.tenant).expect("tenant completed");
        assert_eq!(
            clustered.losses, r.losses,
            "{}: cluster placement must not change the loss stream",
            r.tenant
        );
        assert_eq!(clustered.adapter_params, r.adapter_params);
    }
}

/// `precision = Nm24Frozen` flows through every cluster replica exactly like
/// the other frozen-storage modes: each replica's backbone is 2:4-pruned at
/// construction, `calibrate_shared` still broadcasts one predictor blob to
/// all replicas, and an interleaved multi-replica sparse drive stays
/// bit-identical to the single-backbone scheduler draining the same jobs
/// sequentially on an identically pruned backbone.
#[test]
fn pruned_backbone_cluster_matches_sequential_single_backbone_bitwise() {
    let specs: Vec<JobSpec> = (0..3).map(|i| spec(&format!("p{i}"), 6)).collect();
    let calib: Vec<(Vec<u32>, usize, usize)> = {
        let spec = DatasetSpec::E2e {
            world_seed: 5,
            salt: 1,
        };
        let mut batcher = spec.build_batcher(64, 2_000);
        (0..2).map(|_| (batcher.next_batch(1, 16), 1, 16)).collect()
    };

    // Reference: single backbone, pruned, one tenant at a time.
    let mut reference = Scheduler::new(
        backbone(),
        engine_cfg(),
        ServeConfig {
            slice_steps: 64,
            policy: SchedPolicy::RoundRobin,
            mode: StepMode::Sparse,
            prefetch: false,
            precision: Precision::Nm24Frozen,
        },
        Arc::new(AdapterRegistry::in_memory()),
    );
    reference.calibrate_shared(&calib);
    let mut reference_reports = Vec::new();
    for s in &specs {
        reference.submit(s.clone()).expect("submit");
        reference_reports.extend(reference.run_to_completion());
    }

    // Candidate: two pruned replicas, small slices, maximal interleaving.
    let mut c = cluster(ClusterConfig {
        replicas: 2,
        slice_steps: 2,
        mode: StepMode::Sparse,
        precision: Precision::Nm24Frozen,
        ..ClusterConfig::default()
    });
    c.calibrate_shared(&calib);
    assert!(c.calibrated(), "broadcast reaches every replica");
    for s in &specs {
        assert!(c.submit(s.clone(), QosClass::Batch).is_admitted());
    }
    let report = c.run_to_completion();
    assert!(report.failures.is_empty());
    assert!(report.quarantined.is_empty());

    for r in &reference_reports {
        let clustered = report.report_for(&r.tenant).expect("tenant completed");
        assert_eq!(
            clustered.losses, r.losses,
            "{}: 2:4 pruning must not break the scale-out equivalence",
            r.tenant
        );
    }
}

/// Fused multi-tenant eval slices produce exactly the losses of unfused
/// per-tenant slices: fusion is a batching optimisation, not an
/// approximation.
#[test]
fn fused_eval_losses_are_bit_identical_to_unfused() {
    let eval_specs = || {
        (0..3).map(|i| {
            let mut j = spec(&format!("e{i}"), 5);
            j.eval_only = true;
            j.dataset = DatasetSpec::Instruct {
                world_seed: 7,
                salt: 3 + i,
            };
            j
        })
    };
    let run = |fusion: bool| {
        let mut c = cluster(ClusterConfig {
            replicas: 1,
            slice_steps: 5,
            fusion,
            ..ClusterConfig::default()
        });
        for j in eval_specs() {
            assert!(c.submit(j, QosClass::Interactive).is_admitted());
        }
        c.run_to_completion()
    };
    let fused = run(true);
    let unfused = run(false);
    assert!(
        fused.fused_steps > 0,
        "three co-queued shape-compatible eval tenants must fuse"
    );
    assert_eq!(unfused.fused_steps, 0);
    for r in &unfused.reports {
        let f = fused.report_for(&r.tenant).expect("tenant completed");
        assert_eq!(
            f.losses, r.losses,
            "{}: de-fused losses must match the solo run bitwise",
            r.tenant
        );
    }
}

/// A replica that panics mid-slice is quarantined; its queued *and*
/// in-flight jobs are requeued onto survivors and still complete their full
/// step budget, with the loss streams unchanged from a healthy run.
#[test]
fn quarantined_replica_requeues_jobs_without_changing_numerics() {
    let drive = |inject: bool| {
        let mut c = cluster(ClusterConfig {
            replicas: 2,
            slice_steps: 2,
            ..ClusterConfig::default()
        });
        for t in ["a", "b", "c", "d"] {
            assert!(c.submit(spec(t, 6), QosClass::Batch).is_admitted());
        }
        if inject {
            c.inject_slice_panic("c");
        }
        c.run_to_completion()
    };
    let healthy = drive(false);
    assert!(healthy.quarantined.is_empty());
    let degraded = drive(true);
    assert_eq!(degraded.quarantined.len(), 1, "one replica lost");
    assert!(degraded.failures.is_empty(), "survivor absorbs the work");
    assert_eq!(degraded.reports.len(), 4);
    for r in &healthy.reports {
        let d = degraded.report_for(&r.tenant).expect("tenant completed");
        assert_eq!(d.steps, 6, "{}: full budget despite the fault", r.tenant);
        assert_eq!(
            d.losses, r.losses,
            "{}: requeue must resume, not restart",
            r.tenant
        );
    }
}

/// Admission control under seeded overload is deterministic: the same
/// submission sequence yields the same accept/reject pattern and the same
/// retry hints, so clients can implement honest backoff.
#[test]
fn backpressure_is_deterministic_under_overload() {
    let submit_wave = || {
        let mut c = cluster(ClusterConfig {
            replicas: 2,
            quotas: QosQuotas {
                interactive: 2,
                batch: 3,
                ..QosQuotas::default()
            },
            ..ClusterConfig::default()
        });
        let mut outcomes = Vec::new();
        for i in 0..6 {
            let class = if i % 2 == 0 {
                QosClass::Interactive
            } else {
                QosClass::Batch
            };
            outcomes.push(match c.submit(spec(&format!("t{i}"), 2), class) {
                Submit::Admitted => (true, None),
                Submit::Rejected { retry_after, .. } => (false, retry_after),
            });
        }
        outcomes
    };
    let first = submit_wave();
    let second = submit_wave();
    assert_eq!(first, second, "identical waves, identical admissions");
    // Interactive quota 2: submissions 0 and 2 admitted, 4 bounced with the
    // class retry hint. Batch quota 3: 1, 3, 5 all admitted.
    assert_eq!(first[0], (true, None));
    assert_eq!(first[2], (true, None));
    assert_eq!(
        first[4],
        (false, Some(QosClass::Interactive.base_retry())),
        "overflowing interactive job carries the deterministic retry hint"
    );
    assert!(first[1].0 && first[3].0 && first[5].0);
}
