//! Shadowy-sparsity Exposer (paper §IV).
//!
//! Ground-truth analysis of where sparsity hides during fine-tuning:
//!
//! * **Attention**: one uniform mask that covers *all* heads' significant
//!   scores (the "shadowy" view) is nearly dense, because each head is
//!   activated by some token in the sequence. Building a *separate* block
//!   mask per head exposes far more sparsity (Fig. 9a).
//! * **MLP**: the union of ReLU activation patterns across a whole sequence
//!   is scattered and weakly sparse. Ranking neuron blocks by importance and
//!   filtering those below a threshold (a % of the peak importance) converts
//!   it into structured block sparsity (Fig. 9b).
//!
//! The exposer runs on dense calibration captures; its outputs are the
//! training targets for the [`crate::predictor`]s and the ground truth for
//! the sparsity-ratio experiments.

use lx_sparse::{BlockMask, NeuronBlockSet};
use lx_tensor::Tensor;

/// Threshold-driven sparsity analysis over calibration captures.
#[derive(Debug, Clone)]
pub struct Exposer {
    /// Score-block edge (attention) and neuron-block size (MLP).
    pub block_size: usize,
    /// A block of attention scores is *important* when its max probability
    /// reaches this value.
    pub attn_prob_threshold: f32,
    /// An MLP neuron block is *important* when its importance reaches this
    /// fraction of the layer's peak block importance.
    pub mlp_threshold: f32,
}

impl Exposer {
    pub fn new(block_size: usize, attn_prob_threshold: f32, mlp_threshold: f32) -> Self {
        Exposer {
            block_size,
            attn_prob_threshold,
            mlp_threshold,
        }
    }

    // ---------------- Attention ----------------

    /// Per-head important-block masks from dense probabilities
    /// (head-major `[B·h·S, S]`). A block is active if any sample in the
    /// batch puts a probability ≥ threshold anywhere inside it.
    pub fn attention_head_masks(
        &self,
        probs: &Tensor,
        batch: usize,
        heads: usize,
        seq: usize,
    ) -> Vec<BlockMask> {
        assert_eq!(probs.rows(), batch * heads * seq, "probs rows");
        assert_eq!(probs.cols(), seq, "probs width");
        assert_eq!(seq % self.block_size, 0, "seq must be block-aligned");
        let n = seq / self.block_size;
        let mut masks = vec![BlockMask::square(n); heads];
        for b in 0..batch {
            #[allow(clippy::needless_range_loop)]
            for h in 0..heads {
                let mask = &mut masks[h];
                for s in 0..seq {
                    let row = probs.row((b * heads + h) * seq + s);
                    let br = s / self.block_size;
                    for (j, &p) in row.iter().enumerate() {
                        if p >= self.attn_prob_threshold {
                            mask.set(br, j / self.block_size, true);
                        }
                    }
                }
            }
        }
        for m in &mut masks {
            // A token always attends to itself: keep the diagonal so every
            // row has at least one block.
            for i in 0..n {
                m.set(i, i, true);
            }
            m.intersect_causal();
        }
        masks
    }

    /// The "shadowy" uniform mask: union over all heads (what a single
    /// shared mask would have to cover).
    pub fn attention_union_mask(head_masks: &[BlockMask]) -> BlockMask {
        let mut union = head_masks[0].clone();
        for m in &head_masks[1..] {
            union.union_with(m);
        }
        union
    }

    /// Mean sparsity of the causal-feasible region for a set of head masks.
    /// Reported relative to the full causal lower triangle (the attention
    /// work a dense implementation must do).
    pub fn causal_relative_sparsity(mask: &BlockMask) -> f32 {
        let n = mask.rows();
        let causal_blocks = n * (n + 1) / 2;
        let mut active_causal = 0;
        for (r, c) in mask.iter_active() {
            if c <= r {
                active_causal += 1;
            }
        }
        1.0 - active_causal as f32 / causal_blocks as f32
    }

    // ---------------- MLP ----------------

    /// Per-block importance: max |activation| over all rows and neurons in
    /// the block. (`acts` is `[rows, d_ff]` post-ReLU.)
    pub fn mlp_block_importance(&self, acts: &Tensor) -> Vec<f32> {
        let d_ff = acts.cols();
        assert_eq!(d_ff % self.block_size, 0, "d_ff must be block-aligned");
        let n_blk = d_ff / self.block_size;
        let mut imp = vec![0.0f32; n_blk];
        for r in 0..acts.rows() {
            let row = acts.row(r);
            for (blk, imp_v) in imp.iter_mut().enumerate() {
                for &v in &row[blk * self.block_size..(blk + 1) * self.block_size] {
                    if v.abs() > *imp_v {
                        *imp_v = v.abs();
                    }
                }
            }
        }
        imp
    }

    /// Filter blocks below `mlp_threshold × peak importance`; always keeps at
    /// least one block so downstream kernels never degenerate.
    pub fn mlp_filter(&self, importance: &[f32]) -> NeuronBlockSet {
        let peak = importance.iter().copied().fold(0.0f32, f32::max);
        let cut = peak * self.mlp_threshold;
        let mut active: Vec<u32> = importance
            .iter()
            .enumerate()
            .filter_map(|(i, &v)| (v >= cut && v > 0.0).then_some(i as u32))
            .collect();
        if active.is_empty() {
            // Degenerate capture (all zeros): keep the single most important
            // block (ties -> block 0).
            let best = importance
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i as u32)
                .unwrap_or(0);
            active.push(best);
        }
        NeuronBlockSet::from_indices(active, importance.len(), self.block_size)
    }

    /// The raw "shadowy" sparsity of the MLP: fraction of neurons that are
    /// zero across the *entire* capture (the union over the sequence).
    pub fn mlp_union_sparsity(acts: &Tensor) -> f32 {
        let d_ff = acts.cols();
        let mut ever_active = vec![false; d_ff];
        for r in 0..acts.rows() {
            for (n, &v) in acts.row(r).iter().enumerate() {
                if v != 0.0 {
                    ever_active[n] = true;
                }
            }
        }
        1.0 - ever_active.iter().filter(|&&a| a).count() as f32 / d_ff as f32
    }

    /// Mean per-token sparsity (what inference with one token would see) —
    /// the gap between this and [`Self::mlp_union_sparsity`] *is* shadowy
    /// sparsity.
    pub fn mlp_per_token_sparsity(acts: &Tensor) -> f32 {
        if acts.rows() == 0 {
            return 0.0;
        }
        let mut total = 0.0f32;
        for r in 0..acts.rows() {
            let zeros = acts.row(r).iter().filter(|&&v| v == 0.0).count();
            total += zeros as f32 / acts.cols() as f32;
        }
        total / acts.rows() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exposer() -> Exposer {
        Exposer::new(4, 0.1, 0.05)
    }

    #[test]
    fn head_masks_pick_up_heavy_blocks() {
        let (batch, heads, seq) = (1, 2, 8);
        let mut probs = Tensor::zeros(&[batch * heads * seq, seq]);
        // Head 0: heavy score at (row 5, col 1) -> block (1, 0).
        probs.row_mut(5)[1] = 0.9;
        // Head 1: heavy score at (row 8+7, col 6) -> block (1, 1).
        probs.row_mut(8 + 7)[6] = 0.5;
        let masks = exposer().attention_head_masks(&probs, batch, heads, seq);
        assert!(masks[0].get(1, 0));
        assert!(!masks[1].get(1, 0));
        assert!(masks[1].get(1, 1));
        // Diagonal always kept.
        assert!(masks[0].get(0, 0) && masks[0].get(1, 1));
    }

    #[test]
    fn union_mask_is_denser_than_heads() {
        let (batch, heads, seq) = (1, 4, 16);
        let mut probs = Tensor::zeros(&[batch * heads * seq, seq]);
        // Each head activates a different column stripe.
        for h in 0..heads {
            for s in 0..seq {
                let col = (h * 3) % (s + 1);
                probs.row_mut(h * seq + s)[col] = 0.8;
            }
        }
        let masks = exposer().attention_head_masks(&probs, batch, heads, seq);
        let union = Exposer::attention_union_mask(&masks);
        let mean_head: f32 = masks.iter().map(|m| m.count() as f32).sum::<f32>() / heads as f32;
        assert!(
            (union.count() as f32) > mean_head,
            "union {} vs mean head {mean_head}",
            union.count()
        );
    }

    #[test]
    fn causal_relative_sparsity_of_diagonal() {
        let mut m = BlockMask::square(4);
        for i in 0..4 {
            m.set(i, i, true);
        }
        // 4 active of 10 causal blocks -> sparsity 0.6.
        assert!((Exposer::causal_relative_sparsity(&m) - 0.6).abs() < 1e-6);
    }

    #[test]
    fn mlp_importance_and_filter() {
        let e = exposer();
        // 3 blocks of 4 neurons: block 0 strong, block 1 weak, block 2 zero.
        let mut acts = Tensor::zeros(&[2, 12]);
        acts.row_mut(0)[1] = 10.0;
        acts.row_mut(1)[5] = 0.01;
        let imp = e.mlp_block_importance(&acts);
        assert_eq!(imp, vec![10.0, 0.01, 0.0]);
        let set = e.mlp_filter(&imp);
        // Threshold 5% of peak = 0.5: only block 0 survives.
        assert_eq!(set.active, vec![0]);
    }

    #[test]
    fn mlp_filter_keeps_at_least_one_block() {
        let e = exposer();
        let set = e.mlp_filter(&[0.0, 0.0, 0.0]);
        assert_eq!(set.n_active(), 1);
    }

    #[test]
    fn shadowy_gap_between_token_and_union_sparsity() {
        // Two tokens, each 50% sparse but on complementary neurons: per-token
        // sparsity 0.5, union sparsity 0 — the textbook shadowy effect.
        let mut acts = Tensor::zeros(&[2, 8]);
        for n in 0..4 {
            acts.row_mut(0)[n] = 1.0;
            acts.row_mut(1)[n + 4] = 1.0;
        }
        assert!((Exposer::mlp_per_token_sparsity(&acts) - 0.5).abs() < 1e-6);
        assert_eq!(Exposer::mlp_union_sparsity(&acts), 0.0);
    }

    #[test]
    fn lower_threshold_keeps_more_blocks() {
        let imp = vec![1.0, 0.04, 0.02, 0.009];
        let strict = Exposer::new(4, 0.1, 0.05).mlp_filter(&imp);
        let loose = Exposer::new(4, 0.1, 0.01).mlp_filter(&imp);
        assert!(loose.n_active() > strict.n_active());
        assert_eq!(strict.active, vec![0]);
        assert_eq!(loose.active, vec![0, 1, 2]);
    }
}
