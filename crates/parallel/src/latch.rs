//! Counting latch used to wait for a scoped task group.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A count-down latch: starts at `n`, `count_down` decrements, `wait` blocks
/// until zero. Waiters in this crate prefer [`Latch::is_done`] polling plus
/// queue-helping; `wait` is the fallback when the queue is empty.
pub struct Latch {
    remaining: AtomicUsize,
    lock: Mutex<()>,
    cond: Condvar,
}

impl Latch {
    pub fn new(count: usize) -> Self {
        Latch {
            remaining: AtomicUsize::new(count),
            lock: Mutex::new(()),
            cond: Condvar::new(),
        }
    }

    /// Decrement the counter, waking waiters when it reaches zero.
    pub fn count_down(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.lock.lock();
            self.cond.notify_all();
        }
    }

    pub fn is_done(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }

    /// Block until the counter reaches zero.
    pub fn wait(&self) {
        if self.is_done() {
            return;
        }
        let mut guard = self.lock.lock();
        while !self.is_done() {
            self.cond.wait(&mut guard);
        }
    }

    /// Block until the counter reaches zero or `timeout` elapses; returns
    /// whether the latch completed.
    pub fn wait_timeout(&self, timeout: std::time::Duration) -> bool {
        if self.is_done() {
            return true;
        }
        let mut guard = self.lock.lock();
        if self.is_done() {
            return true;
        }
        self.cond.wait_for(&mut guard, timeout);
        self.is_done()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn latch_releases_after_counts() {
        let latch = Arc::new(Latch::new(4));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let l = latch.clone();
            handles.push(std::thread::spawn(move || l.count_down()));
        }
        latch.wait();
        assert!(latch.is_done());
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn zero_count_is_immediately_done() {
        let latch = Latch::new(0);
        assert!(latch.is_done());
        latch.wait();
    }

    #[test]
    fn wait_timeout_reports_incomplete() {
        let latch = Latch::new(1);
        assert!(!latch.wait_timeout(std::time::Duration::from_millis(5)));
        latch.count_down();
        assert!(latch.wait_timeout(std::time::Duration::from_millis(5)));
    }
}
