//! Trainable parameter: a tensor, its (lazily allocated) gradient, and a
//! trainability flag. PEFT methods work by flipping these flags and adding
//! small extra parameters — exactly the paper's Table I setting.
//!
//! Storage precision: a parameter normally holds its values in [`value`]
//! (f32). Under [`Precision::F16Frozen`](crate::Precision) frozen backbone
//! matrices are *demoted* to half storage ([`Param::to_half`]): the f16 bits
//! live in [`half`], [`value`] becomes an empty placeholder, and the compute
//! paths consume the bits through the fused f16-input GEMMs (or decode rows
//! on load). Trainable parameters are never half-stored — gradients and
//! optimizer state stay f32, as the paper's mixed-precision recipe requires.
//!
//! [`value`]: Param::value
//! [`half`]: Param::half

use lx_tensor::f16::f16_bits_to_f32;
use lx_tensor::gemm::{matmul, matmul_f16, matmul_nt, matmul_nt_f16};
use lx_tensor::{Dtype, HalfTensor, Tensor};

/// A named model parameter.
#[derive(Debug)]
pub struct Param {
    pub name: String,
    /// f32 storage. Empty (`len() == 0`) while the parameter is half-stored.
    pub value: Tensor,
    /// Half-precision storage; `Some` only for frozen parameters demoted by
    /// [`Param::to_half`]. Holds the authoritative shape while present.
    pub half: Option<HalfTensor>,
    /// Allocated on first accumulation; `None` for frozen params that never
    /// received a gradient (saving the optimizer-state memory PEFT avoids).
    pub grad: Option<Tensor>,
    pub trainable: bool,
}

impl Param {
    pub fn new(name: impl Into<String>, value: Tensor, trainable: bool) -> Self {
        Param {
            name: name.into(),
            value,
            half: None,
            grad: None,
            trainable,
        }
    }

    /// Frozen parameter (the pre-trained backbone default under PEFT).
    pub fn frozen(name: impl Into<String>, value: Tensor) -> Self {
        Self::new(name, value, false)
    }

    pub fn numel(&self) -> usize {
        match &self.half {
            Some(h) => h.len(),
            None => self.value.len(),
        }
    }

    /// Logical shape, whichever storage holds the values.
    pub fn shape(&self) -> &[usize] {
        match &self.half {
            Some(h) => h.shape(),
            None => self.value.shape(),
        }
    }

    /// Storage precision of this parameter right now.
    pub fn dtype(&self) -> Dtype {
        if self.half.is_some() {
            Dtype::F16
        } else {
            Dtype::F32
        }
    }

    pub fn is_half(&self) -> bool {
        self.half.is_some()
    }

    /// Bytes occupied by the value storage (excludes any gradient).
    pub fn storage_bytes(&self) -> usize {
        self.numel() * self.dtype().size_bytes()
    }

    /// Demote to half storage (round-to-nearest-even). No-op when already
    /// half. Panics for trainable parameters: the optimizer updates `value`
    /// in place, so trainable state must stay f32.
    pub fn to_half(&mut self) {
        if self.half.is_some() {
            return;
        }
        assert!(
            !self.trainable,
            "{}: trainable parameters must stay f32 (demote only frozen backbone weights)",
            self.name
        );
        let h = HalfTensor::from_tensor(&self.value);
        self.value = Tensor::zeros(&[0]);
        self.half = Some(h);
    }

    /// Promote back to f32 storage (exact decode). No-op when already f32.
    pub fn to_f32(&mut self) {
        if let Some(h) = self.half.take() {
            self.value = h.to_tensor();
        }
    }

    /// `x · W` on the trailing-2-D view of the value, fused-decoding when
    /// half-stored. This is the forward hot path for frozen weights.
    pub fn matmul(&self, x: &Tensor) -> Tensor {
        match &self.half {
            Some(h) => matmul_f16(x, h),
            None => matmul(x, &self.value),
        }
    }

    /// `x · Wᵀ`, fused-decoding when half-stored (the `dx` backward shape
    /// and the `x·Aᵀ`-style forward shape).
    pub fn matmul_nt(&self, x: &Tensor) -> Tensor {
        match &self.half {
            Some(h) => matmul_nt_f16(x, h),
            None => matmul_nt(x, &self.value),
        }
    }

    /// Copy row `r` of the 2-D view into `out`, decoding if half-stored
    /// (embedding-table lookups).
    pub fn copy_row_into(&self, r: usize, out: &mut [f32]) {
        let c = *self.shape().last().unwrap_or(&0);
        debug_assert_eq!(out.len(), c, "{}: row width", self.name);
        match &self.half {
            Some(h) => h.decode_rows(r, 1, out),
            None => out.copy_from_slice(&self.value.as_slice()[r * c..(r + 1) * c]),
        }
    }

    /// Add row `r` of the 2-D view into `out`, decoding if half-stored
    /// (positional-embedding accumulation).
    pub fn add_row_into(&self, r: usize, out: &mut [f32]) {
        let c = *self.shape().last().unwrap_or(&0);
        debug_assert_eq!(out.len(), c, "{}: row width", self.name);
        match &self.half {
            Some(h) => {
                for (o, &b) in out.iter_mut().zip(h.row_bits(r)) {
                    *o += f16_bits_to_f32(b);
                }
            }
            None => {
                for (o, v) in out
                    .iter_mut()
                    .zip(&self.value.as_slice()[r * c..(r + 1) * c])
                {
                    *o += v;
                }
            }
        }
    }

    /// Accumulate a gradient tensor (allocates on first use).
    pub fn accumulate_grad(&mut self, grad: &Tensor) {
        match &mut self.grad {
            Some(g) => g.add_assign(grad),
            None => self.grad = Some(grad.clone()),
        }
    }

    /// Mutable access to the gradient buffer, allocating zeros if absent.
    pub fn grad_mut(&mut self) -> &mut Tensor {
        if self.grad.is_none() {
            self.grad = Some(Tensor::zeros(self.shape()));
        }
        self.grad.as_mut().unwrap()
    }

    /// Zero the gradient in place (keeps the allocation).
    pub fn zero_grad(&mut self) {
        if let Some(g) = &mut self.grad {
            g.zero_();
        }
    }

    /// Drop the gradient allocation entirely.
    pub fn clear_grad(&mut self) {
        self.grad = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_allocates_then_adds() {
        let mut p = Param::new("w", Tensor::zeros(&[2, 2]), true);
        assert!(p.grad.is_none());
        let g = Tensor::full(&[2, 2], 1.0);
        p.accumulate_grad(&g);
        p.accumulate_grad(&g);
        assert_eq!(p.grad.as_ref().unwrap().as_slice(), &[2.0; 4]);
    }

    #[test]
    fn zero_keeps_allocation_clear_drops_it() {
        let mut p = Param::new("w", Tensor::zeros(&[3]), true);
        p.grad_mut().as_mut_slice()[0] = 5.0;
        p.zero_grad();
        assert_eq!(p.grad.as_ref().unwrap().as_slice(), &[0.0; 3]);
        p.clear_grad();
        assert!(p.grad.is_none());
    }

    #[test]
    fn frozen_constructor() {
        let p = Param::frozen("emb", Tensor::zeros(&[4]));
        assert!(!p.trainable);
        assert_eq!(p.numel(), 4);
        assert_eq!(p.dtype(), Dtype::F32);
    }

    #[test]
    fn half_roundtrip_preserves_shape_and_counts() {
        let mut p = Param::frozen("w", Tensor::randn(&[8, 6], 1.0, 3));
        let before = p.value.clone();
        assert_eq!(p.storage_bytes(), 8 * 6 * 4);
        p.to_half();
        assert!(p.is_half());
        assert_eq!(p.numel(), 48);
        assert_eq!(p.shape(), &[8, 6]);
        assert_eq!(p.storage_bytes(), 8 * 6 * 2);
        assert_eq!(p.value.len(), 0, "f32 buffer must be released");
        p.to_f32();
        assert!(!p.is_half());
        // Values round-tripped through f16 rounding.
        for (a, b) in p.value.as_slice().iter().zip(before.as_slice()) {
            assert!((a - b).abs() <= b.abs() * 1e-3 + 1e-7, "{a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "stay f32")]
    fn trainable_params_cannot_be_demoted() {
        let mut p = Param::new("w", Tensor::zeros(&[2, 2]), true);
        p.to_half();
    }

    #[test]
    fn matmul_helpers_agree_across_storage() {
        let x = Tensor::randn(&[5, 8], 1.0, 11);
        let mut p = Param::frozen("w", Tensor::randn(&[8, 7], 1.0, 12));
        let y32 = p.matmul(&x);
        p.to_half();
        // Oracle: decode the half weights and run the f32 kernel.
        let decoded = Param::frozen("w", p.half.as_ref().unwrap().to_tensor());
        let oracle = decoded.matmul(&x);
        let y16 = p.matmul(&x);
        for (a, b) in y16.as_slice().iter().zip(oracle.as_slice()) {
            assert!((a - b).abs() <= 1e-4 * (1.0 + b.abs()), "{a} vs {b}");
        }
        // And the rounded result stays near the full-precision one.
        for (a, b) in y16.as_slice().iter().zip(y32.as_slice()) {
            assert!((a - b).abs() <= 3e-2 * (1.0 + b.abs()), "{a} vs {b}");
        }
        // matmul_nt: y·Wᵀ shape check against the same oracle.
        let g = Tensor::randn(&[5, 7], 1.0, 13);
        let wt_oracle = decoded.matmul_nt(&g);
        let wt = p.matmul_nt(&g);
        for (a, b) in wt.as_slice().iter().zip(wt_oracle.as_slice()) {
            assert!((a - b).abs() <= 1e-4 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn row_helpers_decode() {
        let t = Tensor::randn(&[4, 6], 1.0, 9);
        let mut p = Param::frozen("emb", t.clone());
        let mut row32 = vec![0.0f32; 6];
        p.copy_row_into(2, &mut row32);
        assert_eq!(row32, t.row(2));
        p.to_half();
        let mut row16 = vec![0.0f32; 6];
        p.copy_row_into(2, &mut row16);
        for (a, b) in row16.iter().zip(t.row(2)) {
            assert!((a - b).abs() <= b.abs() * 1e-3 + 1e-7);
        }
        let mut acc = row16.clone();
        p.add_row_into(2, &mut acc);
        for (a, b) in acc.iter().zip(&row16) {
            assert!((a - 2.0 * b).abs() < 1e-6);
        }
    }
}
