//! Five downstream evaluation tasks (Table III stand-ins), each a
//! candidate-scoring problem over the world's partner structure with a
//! distinct surface form — different candidate counts, prompt lengths, and
//! query depths, mirroring how the real benchmarks differ while staying
//! solvable by a model that learned the planted signal.

use crate::world::{SyntheticWorld, TOK_BOS, TOK_NO, TOK_SEP, TOK_YES};
use rand::Rng;

/// Which benchmark a generator mimics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// 2 candidates, short physical-commonsense-style prompt.
    Piqa,
    /// 2 candidates, pronoun-disambiguation-style (two entities, pick one).
    Winogrande,
    /// Entailment: score YES/NO after a premise/hypothesis pair.
    Rte,
    /// 2 candidates, cause/effect with a longer context.
    Copa,
    /// 4 candidates, ending completion.
    HellaSwag,
}

impl TaskKind {
    pub fn all() -> [TaskKind; 5] {
        [
            TaskKind::Piqa,
            TaskKind::Winogrande,
            TaskKind::Rte,
            TaskKind::Copa,
            TaskKind::HellaSwag,
        ]
    }

    pub fn name(&self) -> &'static str {
        match self {
            TaskKind::Piqa => "PIQA-like",
            TaskKind::Winogrande => "Winogrande-like",
            TaskKind::Rte => "RTE-like",
            TaskKind::Copa => "COPA-like",
            TaskKind::HellaSwag => "HellaSwag-like",
        }
    }
}

/// One scoring example: pick the candidate continuation with the highest
/// model log-likelihood (the lm-eval protocol).
#[derive(Debug, Clone)]
pub struct TaskExample {
    pub prompt: Vec<u32>,
    pub candidates: Vec<Vec<u32>>,
    pub label: usize,
}

pub struct Task {
    pub kind: TaskKind,
    world: SyntheticWorld,
}

impl Task {
    pub fn new(kind: TaskKind, world: SyntheticWorld) -> Self {
        Task { kind, world }
    }

    /// Generate `n` examples, deterministic in (world seed, kind, index).
    pub fn examples(&self, n: usize) -> Vec<TaskExample> {
        (0..n).map(|i| self.example(i as u64)).collect()
    }

    pub fn example(&self, salt: u64) -> TaskExample {
        let kind_salt = match self.kind {
            TaskKind::Piqa => 0x1000,
            TaskKind::Winogrande => 0x2000,
            TaskKind::Rte => 0x3000,
            TaskKind::Copa => 0x4000,
            TaskKind::HellaSwag => 0x5000,
        };
        let mut rng = self.world.rng(salt.wrapping_add(kind_salt));
        let w = &self.world;
        match self.kind {
            TaskKind::Piqa => {
                // Prompt: goal bigram context + query token.
                let mut prompt = vec![TOK_BOS];
                prompt.extend(w.sentence(2, &mut rng));
                let q = w.sample_content(&mut rng);
                prompt.push(q);
                let correct = vec![w.partner(q)];
                let wrong = vec![w.sample_distractor(q, &mut rng)];
                shuffle_two(prompt, correct, wrong, &mut rng)
            }
            TaskKind::Winogrande => {
                // Two entities; the query refers to the second one.
                let mut prompt = vec![TOK_BOS];
                let e1 = w.sample_content(&mut rng);
                let e2 = w.sample_content(&mut rng);
                prompt.extend([e1, w.partner(e1), e2, TOK_SEP, e2]);
                let correct = vec![w.partner(e2)];
                let wrong = vec![w.partner(e1)];
                shuffle_two(prompt, correct, wrong, &mut rng)
            }
            TaskKind::Rte => {
                // Premise: t and partner; hypothesis repeats (entailed) or
                // breaks (not entailed) the pairing; answer YES/NO.
                let t = w.sample_content(&mut rng);
                let entailed = rng.gen_bool(0.5);
                let hyp = if entailed {
                    w.partner(t)
                } else {
                    w.sample_distractor(t, &mut rng)
                };
                let prompt = vec![TOK_BOS, t, w.partner(t), TOK_SEP, t, hyp, TOK_SEP];
                TaskExample {
                    prompt,
                    candidates: vec![vec![TOK_YES], vec![TOK_NO]],
                    label: if entailed { 0 } else { 1 },
                }
            }
            TaskKind::Copa => {
                // Longer causal context, then cause→effect query.
                let mut prompt = vec![TOK_BOS];
                prompt.extend(w.sentence(3, &mut rng));
                prompt.push(TOK_SEP);
                let cause = w.sample_content(&mut rng);
                prompt.push(cause);
                let correct = vec![w.partner(cause)];
                let wrong = vec![w.sample_distractor(cause, &mut rng)];
                shuffle_two(prompt, correct, wrong, &mut rng)
            }
            TaskKind::HellaSwag => {
                // 4-way ending completion: two-token endings, only one
                // respecting the pairing for both positions.
                let mut prompt = vec![TOK_BOS];
                prompt.extend(w.sentence(2, &mut rng));
                let q1 = w.sample_content(&mut rng);
                let q2 = w.sample_content(&mut rng);
                prompt.push(q1);
                prompt.push(w.partner(q1));
                prompt.push(q2);
                let correct = vec![w.partner(q2), TOK_SEP];
                let mut candidates = vec![correct];
                for _ in 0..3 {
                    candidates.push(vec![w.sample_distractor(q2, &mut rng), TOK_SEP]);
                }
                // Rotate the correct answer to a pseudo-random position.
                let label = rng.gen_range(0..4);
                candidates.swap(0, label);
                TaskExample {
                    prompt,
                    candidates,
                    label,
                }
            }
        }
    }
}

fn shuffle_two(
    prompt: Vec<u32>,
    correct: Vec<u32>,
    wrong: Vec<u32>,
    rng: &mut rand::rngs::StdRng,
) -> TaskExample {
    if rng.gen_bool(0.5) {
        TaskExample {
            prompt,
            candidates: vec![correct, wrong],
            label: 0,
        }
    } else {
        TaskExample {
            prompt,
            candidates: vec![wrong, correct],
            label: 1,
        }
    }
}

/// Accuracy of a scorer (`f(prompt, candidate) -> loglik`) over examples.
pub fn evaluate_accuracy<F>(examples: &[TaskExample], mut score: F) -> f32
where
    F: FnMut(&[u32], &[u32]) -> f32,
{
    if examples.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    for ex in examples {
        let best = ex
            .candidates
            .iter()
            .enumerate()
            .map(|(i, c)| (i, score(&ex.prompt, c)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(i, _)| i)
            .unwrap();
        if best == ex.label {
            correct += 1;
        }
    }
    correct as f32 / examples.len() as f32
}

/// Standard error of a binomial accuracy estimate (the paper reports both).
pub fn accuracy_stderr(acc: f32, n: usize) -> f32 {
    if n == 0 {
        return 0.0;
    }
    ((acc * (1.0 - acc)) / n as f32).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> SyntheticWorld {
        SyntheticWorld::new(256, 42)
    }

    #[test]
    fn all_tasks_generate_valid_examples() {
        for kind in TaskKind::all() {
            let task = Task::new(kind, world());
            let exs = task.examples(20);
            assert_eq!(exs.len(), 20);
            for ex in &exs {
                assert!(!ex.prompt.is_empty());
                assert!(ex.label < ex.candidates.len());
                assert!(ex.candidates.iter().all(|c| !c.is_empty()));
                let n_cands = match kind {
                    TaskKind::HellaSwag => 4,
                    _ => 2,
                };
                assert_eq!(ex.candidates.len(), n_cands, "{kind:?}");
            }
        }
    }

    #[test]
    fn examples_are_deterministic() {
        let t1 = Task::new(TaskKind::Piqa, world());
        let t2 = Task::new(TaskKind::Piqa, world());
        let a = t1.example(3);
        let b = t2.example(3);
        assert_eq!(a.prompt, b.prompt);
        assert_eq!(a.candidates, b.candidates);
        assert_eq!(a.label, b.label);
    }

    #[test]
    fn oracle_scorer_achieves_perfect_accuracy() {
        // A scorer that knows the partner map should ace every task.
        let w = world();
        for kind in TaskKind::all() {
            let task = Task::new(kind, w.clone());
            let exs = task.examples(40);
            let acc = evaluate_accuracy(&exs, |prompt, cand| {
                // Oracle: +1 if the first candidate token is the partner of
                // the last content token in the prompt; for RTE, YES iff the
                // hypothesis respects the pairing.
                match kind {
                    TaskKind::Rte => {
                        let hyp_pair = (prompt[prompt.len() - 3], prompt[prompt.len() - 2]);
                        let entailed = w.partner(hyp_pair.0) == hyp_pair.1;
                        let says_yes = cand[0] == TOK_YES;
                        if entailed == says_yes {
                            1.0
                        } else {
                            0.0
                        }
                    }
                    _ => {
                        let q = *prompt.last().unwrap();
                        if w.partner(q) == cand[0] {
                            1.0
                        } else {
                            0.0
                        }
                    }
                }
            });
            assert!(acc > 0.99, "{kind:?} oracle accuracy {acc}");
        }
    }

    #[test]
    fn random_scorer_is_at_chance() {
        let task = Task::new(TaskKind::HellaSwag, world());
        let exs = task.examples(200);
        let mut i = 0u64;
        let acc = evaluate_accuracy(&exs, |_, _| {
            i += 1;
            ((i * 2654435761) % 1000) as f32
        });
        assert!((0.1..0.45).contains(&acc), "4-way chance ≈ 0.25, got {acc}");
    }

    #[test]
    fn labels_are_balanced() {
        let task = Task::new(TaskKind::Piqa, world());
        let exs = task.examples(200);
        let zeros = exs.iter().filter(|e| e.label == 0).count();
        assert!((60..140).contains(&zeros), "label balance: {zeros}/200");
    }

    #[test]
    fn stderr_formula() {
        assert!((accuracy_stderr(0.5, 100) - 0.05).abs() < 1e-6);
        assert_eq!(accuracy_stderr(0.5, 0), 0.0);
    }
}
