//! The full decoder-only transformer: embeddings → blocks → final LN → tied
//! LM head, with capture hooks for Long Exposure's calibration phase.
//!
//! All execution goes through the unified request API in [`crate::exec`]:
//! build a [`crate::StepRequest`] and call [`TransformerModel::execute`]. The
//! raw forward/backward loops here are crate-private building blocks.

use crate::block::TransformerBlock;
use crate::config::ModelConfig;
use crate::embedding::Embedding;
use crate::exec::PlanSource;
use crate::layernorm::LayerNorm;
use crate::loss::IGNORE_INDEX;
use crate::param::Param;
use crate::plan::SparsePlan;
use crate::precision::Precision;
use lx_obs::TimedSpan;
use lx_tensor::gemm::matmul_tn;
use lx_tensor::{Dtype, Tensor, Workspace, WorkspaceStats};
use std::time::Duration;

/// What to record during a calibration forward pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct CaptureConfig {
    pub attn: bool,
    pub mlp: bool,
}

/// Ground-truth signals captured from one layer during a dense forward:
/// the block input the predictors will see at runtime, and the attention /
/// activation outcomes they must learn to anticipate.
#[derive(Debug)]
pub struct LayerCapture {
    /// Input to the whole block (pre-LN residual stream), `[B·S, d]`. This is
    /// what the runtime planner observes *before* the block computes.
    pub block_input: Option<Tensor>,
    /// Dense attention probabilities, head-major `[B·h·S, S]`.
    pub attn_probs: Option<Tensor>,
    /// Post-ReLU activations `[B·S, d_ff]`.
    pub mlp_activations: Option<Tensor>,
}

/// Captures for every layer of one forward pass.
pub type Captures = Vec<LayerCapture>;

/// Runtime per-layer plan provider: called with each block's input right
/// before the block executes (the paper's online prediction point).
pub trait LayerPlanner {
    fn plan_layer(
        &mut self,
        layer: usize,
        x: &Tensor,
        batch: usize,
        seq: usize,
    ) -> crate::plan::LayerPlan;
}

#[derive(Debug)]
pub struct TransformerModel {
    pub config: ModelConfig,
    pub embedding: Embedding,
    pub blocks: Vec<TransformerBlock>,
    pub ln_f: LayerNorm,
    precision: Precision,
    cache_h: Option<Tensor>,
    /// Step-persistent buffer pool: every [`TransformerModel::execute`] runs
    /// inside this workspace's scope (unless the request overrides it), so
    /// per-step tensor buffers recycle across steps and micro-batches.
    pub(crate) workspace: Workspace,
}

impl TransformerModel {
    pub fn new(config: ModelConfig, seed: u64) -> Self {
        let embedding = Embedding::new(config.vocab_size, config.max_seq, config.d_model, seed);
        let blocks = (0..config.n_layers)
            .map(|l| TransformerBlock::new(&config, l, seed + 1000 * (l as u64 + 1)))
            .collect();
        let ln_f = LayerNorm::new("ln_f", config.d_model, config.ln_eps);
        // LX_WORKSPACE=0 turns the step workspace off globally (debugging
        // escape hatch; steps then heap-allocate every intermediate).
        let workspace = Workspace::from_env();
        TransformerModel {
            config,
            embedding,
            blocks,
            ln_f,
            precision: Precision::F32,
            cache_h: None,
            workspace,
        }
    }

    /// Reuse counters and occupancy of the model's step workspace.
    pub fn workspace_stats(&self) -> WorkspaceStats {
        self.workspace.stats()
    }

    /// Enable or disable the step workspace (disabled ⇒ every step
    /// heap-allocates its intermediates — the differential-testing arm).
    pub fn set_workspace_enabled(&mut self, enabled: bool) {
        self.workspace.set_enabled(enabled);
    }

    /// Exchange the model's step workspace with `ws`. `lx-serve` keeps one
    /// workspace per tenant and swaps it in with the tenant's adapter, so
    /// pooled step buffers stay warm across scheduler slices.
    pub fn swap_workspace(&mut self, ws: &mut Workspace) {
        std::mem::swap(&mut self.workspace, ws);
    }

    /// Run `f` inside the model's step-workspace scope. [`Self::execute`]
    /// scopes itself; this is for surgery *around* steps that should recycle
    /// through the same pool — e.g. `lx-serve` attaches/extracts tenant
    /// adapters inside the tenant's workspace so the adapter and gradient
    /// buffers dropped at detach are parked for the tenant's next slice.
    pub fn workspace_scope<R>(&mut self, f: impl FnOnce(&mut TransformerModel) -> R) -> R {
        let mut ws = std::mem::take(&mut self.workspace);
        let out = ws.scope(|| f(self));
        self.workspace = ws;
        out
    }

    /// Summed `(decoded, carried-over)` active-slab counters across every
    /// layer's cross-step slab cache (reduced-stored sparse MLP path) — how
    /// much f16/int8/NF4→f32 decode work shadowy-sparsity reuse avoided.
    pub fn slab_cache_stats(&self) -> (u64, u64) {
        self.blocks
            .iter()
            .map(|b| b.mlp.slab_cache_stats())
            .fold((0, 0), |(d, r), (bd, br)| (d + bd, r + br))
    }

    /// Current parameter-storage plan.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Switch the parameter-storage plan.
    ///
    /// [`Precision::F16Frozen`] demotes every frozen parameter with two or
    /// more dimensions — attention projections, MLP weights, embedding
    /// tables — to half storage (round-to-nearest-even); biases, LayerNorm
    /// affine parameters and all trainable state stay f32.
    /// [`Precision::Int8Frozen`] and [`Precision::Nf4Frozen`] demote the
    /// same parameter set to block-quantized storage (symmetric int8 /
    /// NF4 codes plus per-block absmax scales) under the same rule, and
    /// [`Precision::Nm24Frozen`] magnitude-prunes it to 2:4 structured
    /// sparsity (compacted bit-exact survivors; **the pruned positions do
    /// not come back** on a later promotion).
    /// [`Precision::F32`] promotes everything back (an exact decode; values
    /// keep whatever rounding the previous storage applied).
    ///
    /// Apply *after* any weight surgery that edits f32 buffers in place
    /// (e.g. [`Self::induce_activation_sparsity`]) and before training.
    pub fn set_precision(&mut self, precision: Precision) {
        let demote: Option<&mut dyn FnMut(&mut Param)> = match precision {
            Precision::F32 => None,
            Precision::F16Frozen => Some(&mut |p: &mut Param| p.to_half()),
            Precision::Int8Frozen => Some(&mut |p: &mut Param| p.to_quant(Dtype::I8Block)),
            Precision::Nf4Frozen => Some(&mut |p: &mut Param| p.to_quant(Dtype::Nf4Block)),
            Precision::Nm24Frozen => Some(&mut |p: &mut Param| p.to_nm()),
        };
        match demote {
            None => self.for_each_param(&mut |p| p.to_f32()),
            Some(demote) => self.for_each_param(&mut |p| {
                if !p.trainable && p.shape().len() >= 2 {
                    demote(p);
                } else {
                    // A precision *switch* (e.g. f16 → int8) must not leave
                    // sub-matrix parameters in the previous reduced storage.
                    p.to_f32();
                }
            }),
        }
        // The cross-step slab caches gather from the (old) storage; a
        // storage change invalidates them.
        for b in &mut self.blocks {
            b.mlp.invalidate_slab_cache();
        }
        // A persisted autotune policy probed under the old storage family is
        // stale when re-demoting to a dtype it never measured (a pre-nm
        // version-1 file, say): drop it so the next autotune re-probes.
        if precision != self.precision {
            if let Some(dtype) = match precision {
                Precision::F32 => None,
                Precision::F16Frozen => Some(Dtype::F16),
                Precision::Int8Frozen => Some(Dtype::I8Block),
                Precision::Nf4Frozen => Some(Dtype::Nf4Block),
                Precision::Nm24Frozen => Some(Dtype::Nm24),
            } {
                lx_kernels::invalidate_stale_policy(dtype.name());
            }
        }
        self.precision = precision;
    }

    /// Bytes of parameter value storage at the current precision (excludes
    /// gradients and optimizer state) — what `fig8_memory` reports as the
    /// measured backbone footprint.
    pub fn param_storage_bytes(&mut self) -> usize {
        let mut bytes = 0;
        self.for_each_param(&mut |p| bytes += p.storage_bytes());
        bytes
    }

    /// Effective sequence length including any prompt prefix.
    pub fn effective_seq(&self, seq: usize) -> usize {
        self.embedding.effective_seq(seq)
    }

    /// One pass from token ids to logits `[batch·eff_seq, vocab]` (tied LM
    /// head), resolving the plan per layer from `plan`: `Provided` indexes
    /// the pre-built plan, `Planner` is invoked with each block's input right
    /// before that block runs (its time is metered into the returned
    /// `Duration`), and the produced plan is collected for density stats.
    pub(crate) fn forward_pass(
        &mut self,
        ids: &[u32],
        batch: usize,
        seq: usize,
        plan: &mut PlanSource<'_>,
        capture: Option<CaptureConfig>,
    ) -> (Tensor, Option<SparsePlan>, Duration) {
        let eff = self.effective_seq(seq);
        let mut x = self.embedding.forward(ids, batch, seq);
        let mut predict = Duration::ZERO;
        let mut used = match plan {
            PlanSource::Planner(_) => Some(SparsePlan::default()),
            _ => None,
        };
        for (i, block) in self.blocks.iter_mut().enumerate() {
            if let Some(cfg) = capture {
                block.set_capture(cfg);
            }
            match plan {
                PlanSource::Dense => x = block.forward(&x, batch, eff, None),
                PlanSource::Provided(p) => x = block.forward(&x, batch, eff, p.layer(i)),
                PlanSource::Planner(planner) => {
                    // `out.predict` is defined as the exact sum of these
                    // span durations — `finish` returns the same nanosecond
                    // count it publishes to the trace.
                    let sp = TimedSpan::enter("model.predict")
                        .cat("step")
                        .layer(i as u32);
                    let lp = planner.plan_layer(i, &x, batch, eff);
                    predict += sp.finish();
                    x = block.forward(&x, batch, eff, Some(&lp));
                    used.as_mut().expect("planner plan").layers.push(lp);
                }
            }
        }
        let h = self.ln_f.forward(&x);
        let logits = self.embedding.tokens.matmul_nt(&h);
        self.cache_h = Some(h);
        (logits, used, predict)
    }

    /// Backward from `dlogits`; accumulates grads into trainable params.
    pub(crate) fn backward(&mut self, dlogits: &Tensor) {
        let h = self.cache_h.take().expect("model backward without forward");
        // Tied head: dH = dLogits · E ; dE += dLogitsᵀ · H.
        let dh = self.embedding.tokens.matmul(dlogits);
        if self.embedding.tokens.trainable {
            let demb = matmul_tn(dlogits, &h);
            self.embedding.tokens.accumulate_grad(&demb);
        }
        let mut dx = self.ln_f.backward(&dh);
        for block in self.blocks.iter_mut().rev() {
            dx = block.backward(&dx);
        }
        self.embedding.backward(&dx);
    }

    /// Drop the forward cache after a pass that will never backprop.
    pub(crate) fn clear_step_cache(&mut self) {
        self.cache_h = None;
    }

    /// Collect (and clear) the captures armed by the last capture forward.
    pub(crate) fn take_captures(&mut self) -> Captures {
        self.blocks.iter_mut().map(|b| b.take_capture()).collect()
    }

    /// Emulate the activation concentration of a *pre-trained* ReLU LLM.
    ///
    /// Freshly initialised transformers fire ~50% of MLP neurons per token
    /// with no structure; trained OPT-class models fire ~5–10%, concentrated
    /// on input-dependent subsets (paper §II-B and refs \[28\]–\[30\]). Real
    /// checkpoints are out of reach on this substrate, so this helper shifts
    /// FC1 biases so that neuron `i` fires with probability ≈ `1 − target_i`
    /// under LayerNormed inputs (pre-activations are ≈ N(b_i, ‖w_i‖²)), with
    /// `hot_fraction` of `group`-aligned neuron groups given a lower target
    /// (the "heavy" neurons). Firing stays input-dependent — only the
    /// *rates* are calibrated. See DESIGN.md ("Substitutions").
    pub fn induce_activation_sparsity(
        &mut self,
        per_token_target: f32,
        hot_fraction: f32,
        group: usize,
        seed: u64,
    ) {
        use rand::Rng;
        assert!((0.5..1.0).contains(&per_token_target), "target in [0.5, 1)");
        assert_eq!(
            self.precision,
            Precision::F32,
            "weight surgery edits f32 buffers in place; call before set_precision"
        );
        let d = self.config.d_model;
        let mut rng = lx_tensor::rng::seeded(seed);
        // Hot groups also get larger activation magnitudes (compensated in
        // FC2 so the block's output scale is preserved) — trained LLMs show
        // a wide dynamic range between heavy and marginal neurons, which is
        // what the paper's percent-of-peak importance filter keys on.
        let hot_gain = 6.0f32;
        for block in &mut self.blocks {
            let mlp = &mut block.mlp;
            let d_ff = mlp.d_ff();
            let mut g = 0usize;
            while g * group < d_ff {
                let hot = rng.gen::<f32>() < hot_fraction;
                let target = if hot {
                    (per_token_target - 0.25).max(0.5)
                } else {
                    (per_token_target + 0.04).min(0.995)
                };
                let q = probit(target);
                for i in g * group..((g + 1) * group).min(d_ff) {
                    if hot {
                        for v in mlp.w1.value.as_mut_slice()[i * d..(i + 1) * d].iter_mut() {
                            *v *= hot_gain;
                        }
                        for v in mlp.w2.value.as_mut_slice()[i * d..(i + 1) * d].iter_mut() {
                            *v /= hot_gain;
                        }
                    }
                    let norm: f32 = mlp.w1.value.as_slice()[i * d..(i + 1) * d]
                        .iter()
                        .map(|v| v * v)
                        .sum::<f32>()
                        .sqrt();
                    // Small jitter so thresholds differ within a group.
                    let jitter = 1.0 + 0.1 * (rng.gen::<f32>() - 0.5);
                    mlp.b1.value.as_mut_slice()[i] -= q * norm * jitter;
                }
                g += 1;
            }
        }
    }

    /// Companion to [`Self::induce_activation_sparsity`] for the attention
    /// side: scale the query projections so softmax scores concentrate the
    /// way trained checkpoints do (random-init attention is near-uniform,
    /// which hides the per-head sparse structure §IV-A describes).
    pub fn sharpen_attention(&mut self, gain: f32) {
        assert!(gain > 0.0);
        assert_eq!(
            self.precision,
            Precision::F32,
            "weight surgery edits f32 buffers in place; call before set_precision"
        );
        for block in &mut self.blocks {
            block.attn.wq.weight.value.scale(gain);
            if let Some(b) = &mut block.attn.wq.bias {
                b.value.scale(gain);
            }
        }
    }

    pub fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.embedding.for_each_param(f);
        for b in &mut self.blocks {
            b.for_each_param(f);
        }
        self.ln_f.for_each_param(f);
    }

    pub fn zero_grads(&mut self) {
        self.for_each_param(&mut |p| p.zero_grad());
    }

    /// Mark every parameter frozen (PEFT starting point).
    pub fn freeze_all(&mut self) {
        self.for_each_param(&mut |p| {
            p.trainable = false;
            p.clear_grad();
        });
    }

    pub fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.for_each_param(&mut |p| n += p.numel());
        n
    }

    pub fn num_trainable(&mut self) -> usize {
        let mut n = 0;
        self.for_each_param(&mut |p| {
            if p.trainable {
                n += p.numel();
            }
        });
        n
    }
}

/// Inverse standard-normal CDF (Acklam's rational approximation, |ε|<1e-9
/// over (0,1)) — used to turn a firing-probability target into a bias shift.
pub fn probit(p: f32) -> f32 {
    let p = p as f64;
    assert!((0.0..1.0).contains(&p) && p > 0.0, "probit domain");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let p_low = 0.02425;
    let x = if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    x as f32
}

/// Build loss targets for next-token prediction with optional prompt prefix:
/// positions predicting real tokens get the token id, everything else (the
/// prompt region and the final position) is ignored.
pub fn prompt_aware_targets(ids: &[u32], batch: usize, seq: usize, prompt_len: usize) -> Vec<i32> {
    let eff = seq + prompt_len;
    let mut targets = vec![IGNORE_INDEX; batch * eff];
    for b in 0..batch {
        for s in 0..seq.saturating_sub(1) {
            // Row (prompt_len + s) predicts ids[s + 1].
            targets[b * eff + prompt_len + s] = ids[b * seq + s + 1] as i32;
        }
        if prompt_len > 0 && seq > 0 {
            // The last prompt row predicts the first real token.
            targets[b * eff + prompt_len - 1] = ids[b * seq] as i32;
        }
    }
    targets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::StepRequest;
    use crate::optim::Sgd;

    fn tiny() -> TransformerModel {
        TransformerModel::new(ModelConfig::test_tiny(), 42)
    }

    fn sample_batch(model: &TransformerModel, batch: usize, seq: usize, seed: u64) -> Vec<u32> {
        lx_tensor::rng::uniform_vec(batch * seq, 0.0, model.config.vocab_size as f32, seed)
            .into_iter()
            .map(|v| v as u32)
            .collect()
    }

    fn logits_of(m: &mut TransformerModel, ids: &[u32], batch: usize, seq: usize) -> Tensor {
        m.execute(StepRequest::infer(ids, batch, seq))
            .logits
            .expect("infer keeps logits")
    }

    #[test]
    fn forward_shapes() {
        let mut m = tiny();
        let ids = sample_batch(&m, 2, 8, 1);
        let logits = logits_of(&mut m, &ids, 2, 8);
        assert_eq!(logits.shape(), &[16, m.config.vocab_size]);
        assert!(logits.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn full_finetune_reduces_loss() {
        let mut m = tiny();
        m.for_each_param(&mut |p| p.trainable = true);
        let mut opt = Sgd::new(0.05);
        let ids = sample_batch(&m, 2, 8, 2);
        let targets = prompt_aware_targets(&ids, 2, 8, 0);
        let first = m
            .execute(StepRequest::train(&ids, &targets, 2, 8, &mut opt))
            .loss;
        let mut last = first;
        for _ in 0..10 {
            last = m
                .execute(StepRequest::train(&ids, &targets, 2, 8, &mut opt))
                .loss;
        }
        assert!(
            last < first * 0.9,
            "loss should drop when overfitting one batch: {first} -> {last}"
        );
    }

    #[test]
    fn frozen_model_does_not_change() {
        let mut m = tiny();
        m.freeze_all();
        let mut opt = Sgd::new(0.5);
        let ids = sample_batch(&m, 1, 8, 3);
        let targets = prompt_aware_targets(&ids, 1, 8, 0);
        let l1 = m
            .execute(StepRequest::train(&ids, &targets, 1, 8, &mut opt))
            .loss;
        let l2 = m
            .execute(StepRequest::train(&ids, &targets, 1, 8, &mut opt))
            .loss;
        assert!((l1 - l2).abs() < 1e-6, "all-frozen model must be static");
        assert_eq!(m.num_trainable(), 0);
    }

    #[test]
    fn captures_have_expected_shapes() {
        let mut m = tiny();
        let (b, s) = (2, 8);
        let ids = sample_batch(&m, b, s, 4);
        let caps = m
            .execute(StepRequest::capture(
                &ids,
                b,
                s,
                CaptureConfig {
                    attn: true,
                    mlp: true,
                },
            ))
            .captures
            .expect("capture mode records captures");
        assert_eq!(caps.len(), m.config.n_layers);
        let d = m.config.d_model;
        let h = m.config.n_heads;
        for cap in &caps {
            assert_eq!(cap.block_input.as_ref().unwrap().shape(), &[b * s, d]);
            assert_eq!(cap.attn_probs.as_ref().unwrap().shape(), &[b * h * s, s]);
            assert_eq!(
                cap.mlp_activations.as_ref().unwrap().shape(),
                &[b * s, m.config.d_ff]
            );
        }
    }

    #[test]
    fn relu_activations_are_sparse_in_captures() {
        let mut m = tiny();
        let ids = sample_batch(&m, 2, 8, 5);
        let caps = m
            .execute(StepRequest::capture(
                &ids,
                2,
                8,
                CaptureConfig {
                    attn: false,
                    mlp: true,
                },
            ))
            .captures
            .unwrap();
        let acts = caps[0].mlp_activations.as_ref().unwrap();
        let zero_frac = acts.zero_fraction();
        assert!(
            zero_frac > 0.2,
            "ReLU should zero a chunk of activations: {zero_frac}"
        );
    }

    #[test]
    fn prompt_aware_targets_layout() {
        // ids = [[5, 6, 7]] with prompt 2: eff=5.
        let t = prompt_aware_targets(&[5, 6, 7], 1, 3, 2);
        assert_eq!(t, vec![IGNORE_INDEX, 5, 6, 7, IGNORE_INDEX]);
        // No prompt: standard shift.
        let t2 = prompt_aware_targets(&[5, 6, 7], 1, 3, 0);
        assert_eq!(t2, vec![6, 7, IGNORE_INDEX]);
    }

    #[test]
    fn score_continuation_prefers_trained_sequence() {
        let mut m = tiny();
        m.for_each_param(&mut |p| p.trainable = true);
        let mut opt = Sgd::new(0.1);
        // Train on a fixed sequence so it becomes likely.
        let ids: Vec<u32> = vec![1, 2, 3, 4, 5, 6, 7, 8];
        let targets = prompt_aware_targets(&ids, 1, 8, 0);
        for _ in 0..30 {
            m.execute(StepRequest::train(&ids, &targets, 1, 8, &mut opt));
        }
        let good = crate::exec::score_continuation(&mut m, &[1, 2, 3, 4], &[5, 6]);
        let bad = crate::exec::score_continuation(&mut m, &[1, 2, 3, 4], &[9, 10]);
        assert!(
            good > bad,
            "trained continuation should score higher: {good} vs {bad}"
        );
    }

    #[test]
    fn f16_frozen_halves_backbone_storage_and_stays_close() {
        let mut a = tiny();
        let mut b = tiny(); // same seed ⇒ identical weights
        a.freeze_all();
        b.freeze_all();
        let f32_bytes = a.param_storage_bytes();
        b.set_precision(crate::Precision::F16Frozen);
        let f16_bytes = b.param_storage_bytes();
        // Matrices dominate; biases/LN stay f32, so the ratio is just over ½.
        let ratio = f16_bytes as f64 / f32_bytes as f64;
        assert!(ratio < 0.55, "storage ratio {ratio}");
        let ids = sample_batch(&a, 2, 8, 21);
        let la = logits_of(&mut a, &ids, 2, 8);
        let lb = logits_of(&mut b, &ids, 2, 8);
        for (x, y) in lb.as_slice().iter().zip(la.as_slice()) {
            assert!(
                (x - y).abs() <= 3e-2 * (1.0 + y.abs()),
                "f16-frozen logits drifted: {x} vs {y}"
            );
        }
    }

    #[test]
    fn precision_roundtrip_preserves_the_f16_function_exactly() {
        let mut m = tiny();
        m.freeze_all();
        m.set_precision(crate::Precision::F16Frozen);
        let ids = sample_batch(&m, 1, 8, 22);
        let before = logits_of(&mut m, &ids, 1, 8);
        // F32 promotion is an exact decode: the function is unchanged.
        m.set_precision(crate::Precision::F32);
        assert_eq!(m.precision(), crate::Precision::F32);
        let after = logits_of(&mut m, &ids, 1, 8);
        assert_eq!(before.as_slice(), after.as_slice());
    }

    #[test]
    fn scaled_training_on_f16_backbone_reduces_loss() {
        let mut m = tiny();
        m.freeze_all();
        m.set_precision(crate::Precision::F16Frozen);
        for block in &mut m.blocks {
            block.attn.wq.attach_lora(4, 8.0, 31);
            block.attn.wv.attach_lora(4, 8.0, 32);
            block.mlp.attach_lora_fc1(4, 8.0, 33);
            block.mlp.attach_lora_fc2(4, 8.0, 34);
        }
        let mut opt = crate::optim::Adam::new(0.02);
        let mut scaler = crate::optim::LossScaler::default();
        let ids = sample_batch(&m, 2, 8, 23);
        let targets = prompt_aware_targets(&ids, 2, 8, 0);
        let first =
            m.execute(StepRequest::train(&ids, &targets, 2, 8, &mut opt).loss_scale(&mut scaler));
        assert!(!first.skipped, "no overflow expected at 2^16 scale");
        let first = first.loss;
        let mut last = first;
        for _ in 0..30 {
            let out = m.execute(
                StepRequest::train(&ids, &targets, 2, 8, &mut opt).loss_scale(&mut scaler),
            );
            if !out.skipped {
                last = out.loss;
            }
        }
        assert_eq!(scaler.overflows(), 0);
        assert!(
            last < first * 0.95,
            "scaled LoRA training on f16 backbone must reduce loss: {first} -> {last}"
        );
    }

    #[test]
    fn quantized_frozen_shrinks_backbone_storage() {
        let mut m = tiny();
        m.freeze_all();
        let f32_bytes = m.param_storage_bytes();
        m.set_precision(crate::Precision::Int8Frozen);
        let i8_bytes = m.param_storage_bytes();
        m.set_precision(crate::Precision::Nf4Frozen);
        let nf4_bytes = m.param_storage_bytes();
        // Matrices land at ~0.266x (int8) / ~0.141x (NF4); biases and
        // LayerNorm stay f32, nudging the model-level ratio up slightly.
        let r8 = i8_bytes as f64 / f32_bytes as f64;
        let r4 = nf4_bytes as f64 / f32_bytes as f64;
        assert!(r8 < 0.32, "int8 storage ratio {r8}");
        assert!(r4 < 0.20, "nf4 storage ratio {r4}");
        assert!(r4 < r8, "nf4 must be smaller than int8");
        // Promotion back to f32 restores the full footprint.
        m.set_precision(crate::Precision::F32);
        assert_eq!(m.param_storage_bytes(), f32_bytes);
    }

    #[test]
    fn quantized_frozen_logits_stay_finite_and_close() {
        let mut a = tiny();
        a.freeze_all();
        let ids = sample_batch(&a, 2, 8, 24);
        let la = logits_of(&mut a, &ids, 2, 8);
        for precision in [crate::Precision::Int8Frozen, crate::Precision::Nf4Frozen] {
            let mut b = tiny(); // same seed ⇒ identical weights
            b.freeze_all();
            b.set_precision(precision);
            let lb = logits_of(&mut b, &ids, 2, 8);
            for (x, y) in lb.as_slice().iter().zip(la.as_slice()) {
                assert!(x.is_finite(), "{precision}: non-finite logit");
                // Coarse closeness bound — quantization perturbs more than
                // f16; the per-step loss envelope lives in the integration
                // differential tests.
                assert!(
                    (x - y).abs() <= 0.5 * (1.0 + y.abs()),
                    "{precision} logits drifted: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn precision_roundtrip_preserves_the_quantized_function_exactly() {
        for precision in [crate::Precision::Int8Frozen, crate::Precision::Nf4Frozen] {
            let mut m = tiny();
            m.freeze_all();
            m.set_precision(precision);
            let ids = sample_batch(&m, 1, 8, 25);
            let before = logits_of(&mut m, &ids, 1, 8);
            // F32 promotion is an exact decode: the function is unchanged.
            m.set_precision(crate::Precision::F32);
            let after = logits_of(&mut m, &ids, 1, 8);
            assert_eq!(before.as_slice(), after.as_slice(), "{precision}");
        }
    }

    #[test]
    fn nm24_frozen_shrinks_backbone_storage() {
        let mut m = tiny();
        m.freeze_all();
        let f32_bytes = m.param_storage_bytes();
        m.set_precision(crate::Precision::Nm24Frozen);
        assert_eq!(m.precision(), crate::Precision::Nm24Frozen);
        let nm_bytes = m.param_storage_bytes();
        // Matrices land at exactly 0.5625x (9 bytes per 16); biases and
        // LayerNorm stay f32, nudging the model-level ratio up slightly.
        let ratio = nm_bytes as f64 / f32_bytes as f64;
        assert!(ratio < 0.60, "nm24 storage ratio {ratio}");
        assert!(ratio > 0.5625, "matrices alone would be exactly 0.5625x");
        // Promotion back to f32 restores the full footprint (the pruned
        // zeros are stored dense again).
        m.set_precision(crate::Precision::F32);
        assert_eq!(m.param_storage_bytes(), f32_bytes);
    }

    #[test]
    fn precision_roundtrip_preserves_the_nm_function_exactly() {
        // Stronger than the quantized twin: the nm storage computes the
        // *same bits* as its dense decode, so the nm-stored forward must
        // already equal the promoted-f32 forward (not just survive the
        // round-trip).
        let mut m = tiny();
        m.freeze_all();
        m.set_precision(crate::Precision::Nm24Frozen);
        let ids = sample_batch(&m, 1, 8, 27);
        let before = logits_of(&mut m, &ids, 1, 8);
        m.set_precision(crate::Precision::F32);
        let after = logits_of(&mut m, &ids, 1, 8);
        assert_eq!(before.as_slice(), after.as_slice());
        // And all logits stay finite despite half the backbone being pruned.
        assert!(before.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn scaled_training_on_nm24_backbone_reduces_loss() {
        let mut m = tiny();
        m.freeze_all();
        m.set_precision(crate::Precision::Nm24Frozen);
        for block in &mut m.blocks {
            block.attn.wq.attach_lora(4, 8.0, 51);
            block.attn.wv.attach_lora(4, 8.0, 52);
            block.mlp.attach_lora_fc1(4, 8.0, 53);
            block.mlp.attach_lora_fc2(4, 8.0, 54);
        }
        let mut opt = crate::optim::Adam::new(0.02);
        let mut scaler = crate::optim::LossScaler::default();
        let ids = sample_batch(&m, 2, 8, 28);
        let targets = prompt_aware_targets(&ids, 2, 8, 0);
        let first =
            m.execute(StepRequest::train(&ids, &targets, 2, 8, &mut opt).loss_scale(&mut scaler));
        assert!(!first.skipped, "no overflow expected at 2^16 scale");
        let first = first.loss;
        let mut last = first;
        for _ in 0..30 {
            let out = m.execute(
                StepRequest::train(&ids, &targets, 2, 8, &mut opt).loss_scale(&mut scaler),
            );
            if !out.skipped {
                last = out.loss;
            }
        }
        assert_eq!(scaler.overflows(), 0);
        assert!(
            last < first * 0.95,
            "scaled LoRA training on a 2:4-pruned backbone must reduce loss: {first} -> {last}"
        );
    }

    #[test]
    fn redemotion_to_uncovered_dtype_drops_stale_kernel_policy() {
        // A persisted autotune policy that predates the nm probe arm
        // (version 1, or any file not covering nm-2:4) must be deleted when
        // the model re-demotes to Nm24Frozen, so the next autotune re-probes.
        let path =
            std::env::temp_dir().join(format!("lx_model_stale_policy_{}.json", std::process::id()));
        // A valid version-2 policy whose probe covered the pre-nm dtypes
        // only.
        std::fs::write(
            &path,
            "{\n  \"version\": 2,\n  \"isa\": \"scalar\",\n  \"threads\": 1,\n  \
             \"dtypes\": \"f32 f16 i8-block nf4-block\",\n  \"mc\": 96,\n  \"kc\": 256,\n  \
             \"nc\": 2048,\n  \"min_flops_packed\": 1000000\n}\n",
        )
        .unwrap();
        std::env::set_var("LX_KERNEL_POLICY", &path);
        let mut m = tiny();
        m.freeze_all();
        // f16 is covered by the persisted probe: the file must survive.
        m.set_precision(crate::Precision::F16Frozen);
        let survived_f16 = path.exists();
        // nm-2:4 is not: the re-demotion must drop the policy.
        m.set_precision(crate::Precision::Nm24Frozen);
        let gone = !path.exists();
        std::env::remove_var("LX_KERNEL_POLICY");
        std::fs::remove_file(&path).ok();
        assert!(survived_f16, "covered-dtype demotion must keep the policy");
        assert!(gone, "uncovered-dtype re-demotion must drop the policy");
    }

    #[test]
    fn scaled_training_on_nf4_backbone_reduces_loss() {
        let mut m = tiny();
        m.freeze_all();
        m.set_precision(crate::Precision::Nf4Frozen);
        for block in &mut m.blocks {
            block.attn.wq.attach_lora(4, 8.0, 41);
            block.attn.wv.attach_lora(4, 8.0, 42);
            block.mlp.attach_lora_fc1(4, 8.0, 43);
            block.mlp.attach_lora_fc2(4, 8.0, 44);
        }
        let mut opt = crate::optim::Adam::new(0.02);
        let mut scaler = crate::optim::LossScaler::default();
        let ids = sample_batch(&m, 2, 8, 26);
        let targets = prompt_aware_targets(&ids, 2, 8, 0);
        let first =
            m.execute(StepRequest::train(&ids, &targets, 2, 8, &mut opt).loss_scale(&mut scaler));
        assert!(!first.skipped, "no overflow expected at 2^16 scale");
        let first = first.loss;
        let mut last = first;
        for _ in 0..30 {
            let out = m.execute(
                StepRequest::train(&ids, &targets, 2, 8, &mut opt).loss_scale(&mut scaler),
            );
            if !out.skipped {
                last = out.loss;
            }
        }
        assert_eq!(scaler.overflows(), 0);
        assert!(
            last < first * 0.95,
            "scaled LoRA training on NF4 backbone must reduce loss: {first} -> {last}"
        );
    }

    #[test]
    #[should_panic(expected = "before set_precision")]
    fn weight_surgery_rejected_on_half_model() {
        let mut m = tiny();
        m.freeze_all();
        m.set_precision(crate::Precision::F16Frozen);
        m.sharpen_attention(2.0);
    }

    #[test]
    fn num_params_matches_config_estimate() {
        let mut m = tiny();
        let estimated = m.config.param_count();
        let actual = m.num_params();
        assert_eq!(actual, estimated);
    }

    #[test]
    fn probit_matches_known_quantiles() {
        assert!((probit(0.5)).abs() < 1e-6);
        assert!((probit(0.975) - 1.959_96).abs() < 1e-3);
        assert!((probit(0.9) - 1.281_55).abs() < 1e-3);
        assert!((probit(0.1) + 1.281_55).abs() < 1e-3);
        assert!((probit(0.001) + 3.090_23).abs() < 1e-3);
    }

    #[test]
    fn induced_sparsity_hits_target_band() {
        let mut cfg = ModelConfig::opt_sim_small();
        cfg.n_layers = 1;
        let mut m = TransformerModel::new(cfg, 3);
        let ids = sample_batch(&m, 2, 64, 9);
        let mlp_zero_fraction = |m: &mut TransformerModel| {
            m.execute(StepRequest::capture(
                &ids,
                2,
                64,
                CaptureConfig {
                    attn: false,
                    mlp: true,
                },
            ))
            .captures
            .unwrap()[0]
                .mlp_activations
                .as_ref()
                .unwrap()
                .zero_fraction()
        };
        let before = mlp_zero_fraction(&mut m);
        m.induce_activation_sparsity(0.92, 0.25, 16, 11);
        let after = mlp_zero_fraction(&mut m);
        assert!(before < 0.7, "random init is not very sparse: {before}");
        assert!(
            (0.75..0.99).contains(&after),
            "induced per-token sparsity {after} (target 0.92-ish)"
        );
    }
}
