//! Block-quantized storage: [`QuantTensor`].
//!
//! The quantized sibling of [`HalfTensor`](crate::f16::HalfTensor): frozen
//! parameters stored as `lx-quant` codes (symmetric int8 or NF4 nibbles)
//! plus one f32 absmax scale per 64-element block, registered with
//! [`memtrack`] at their true footprint. All *arithmetic* stays f32 — the
//! fused quantized-B GEMMs in `lx-kernels` dequantize inside their pack/load
//! stage, and row decodes (embedding lookups, active-neuron-slab gathers)
//! are strictly elementwise, so any decode window is bit-identical to a
//! full-buffer decode.

use crate::memtrack;
use crate::{Dtype, Tensor};
use lx_quant::{Q4View, Q8View};

/// The code buffer of a [`QuantTensor`] — which codec the bytes belong to.
#[derive(Debug, Clone, PartialEq)]
enum QuantCodes {
    /// One int8 code per element.
    I8(Vec<i8>),
    /// Two NF4 codebook indices per byte.
    Nf4(Vec<u8>),
}

/// A borrowed, dequantizing view over a [`QuantTensor`]'s storage — what the
/// fused GEMM entry points consume.
#[derive(Clone, Copy, Debug)]
pub enum QuantView<'a> {
    I8(Q8View<'a>),
    Nf4(Q4View<'a>),
}

impl QuantView<'_> {
    /// Dequantize the element at flat row-major index `idx`.
    #[inline(always)]
    pub fn get(&self, idx: usize) -> f32 {
        match self {
            QuantView::I8(v) => v.get(idx),
            QuantView::Nf4(v) => v.get(idx),
        }
    }
}

/// A tensor stored block-quantized: codes plus per-block scales and a shape.
///
/// Reads dequantize to f32; the buffers report their true footprint (code
/// bytes + 4 bytes per block scale) to the memory tracker, which is what
/// makes the Fig. 8 measured-memory experiments honest about quantized
/// storage.
#[derive(Debug)]
pub struct QuantTensor {
    codes: QuantCodes,
    scales: Vec<f32>,
    shape: Vec<usize>,
    len: usize,
}

impl QuantTensor {
    /// Quantize an f32 slice. `dtype` must be [`Dtype::I8Block`] or
    /// [`Dtype::Nf4Block`]; panics otherwise, or if the length does not
    /// match the shape.
    pub fn from_f32(values: &[f32], shape: &[usize], dtype: Dtype) -> Self {
        let len: usize = shape.iter().product();
        assert_eq!(
            values.len(),
            len,
            "data length {} does not match shape {:?}",
            values.len(),
            shape
        );
        let (codes, scales) = match dtype {
            Dtype::I8Block => {
                let (codes, scales) = lx_quant::q8::quantize(values);
                (QuantCodes::I8(codes), scales)
            }
            Dtype::Nf4Block => {
                let (codes, scales) = lx_quant::nf4::quantize(values);
                (QuantCodes::Nf4(codes), scales)
            }
            other => panic!("QuantTensor: {other} is not a block-quantized dtype"),
        };
        let t = QuantTensor {
            codes,
            scales,
            shape: shape.to_vec(),
            len,
        };
        memtrack::register(t.storage_capacity_bytes());
        t
    }

    /// Quantize a dense tensor.
    pub fn from_tensor(t: &Tensor, dtype: Dtype) -> Self {
        Self::from_f32(t.as_slice(), t.shape(), dtype)
    }

    /// The storage dtype ([`Dtype::I8Block`] or [`Dtype::Nf4Block`]).
    pub fn dtype(&self) -> Dtype {
        match self.codes {
            QuantCodes::I8(_) => Dtype::I8Block,
            QuantCodes::Nf4(_) => Dtype::Nf4Block,
        }
    }

    /// Borrowed dequantizing view — what the fused GEMMs consume.
    pub fn view(&self) -> QuantView<'_> {
        match &self.codes {
            QuantCodes::I8(codes) => QuantView::I8(Q8View::new(codes, &self.scales)),
            QuantCodes::Nf4(codes) => QuantView::Nf4(Q4View::new(codes, &self.scales, self.len)),
        }
    }

    /// Dequantize the whole buffer into a fresh f32 tensor.
    pub fn to_tensor(&self) -> Tensor {
        let mut out = Tensor::zeros(&self.shape);
        let view = self.view();
        for (i, o) in out.as_mut_slice().iter_mut().enumerate() {
            *o = view.get(i);
        }
        out
    }

    /// Dequantize the whole buffer into a plain `Vec<f32>`.
    pub fn to_f32_vec(&self) -> Vec<f32> {
        let view = self.view();
        (0..self.len).map(|i| view.get(i)).collect()
    }

    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of rows when viewed as 2-D (product of all but the last dim).
    pub fn rows(&self) -> usize {
        if self.shape.is_empty() {
            0
        } else {
            self.len / self.cols().max(1)
        }
    }

    /// Size of the last dimension.
    pub fn cols(&self) -> usize {
        *self.shape.last().unwrap_or(&0)
    }

    /// Dequantize rows `[r0, r0 + n_rows)` of the 2-D view into `out`
    /// (`n_rows × cols`, contiguous). This is the load path for embedding
    /// lookups and active-neuron-slab gathers; being elementwise over flat
    /// indices, it is bit-identical to the same rows of a full decode even
    /// when the window straddles quantization-block boundaries.
    pub fn decode_rows(&self, r0: usize, n_rows: usize, out: &mut [f32]) {
        let c = self.cols();
        assert_eq!(out.len(), n_rows * c, "decode_rows: output length");
        let base = r0 * c;
        let view = self.view();
        for (i, o) in out.iter_mut().enumerate() {
            *o = view.get(base + i);
        }
    }

    /// Bytes occupied by the quantized storage (code bytes plus per-block
    /// scales) — always equals [`Dtype::bytes_for`] of the dtype and length.
    pub fn bytes(&self) -> usize {
        self.dtype().bytes_for(self.len)
    }

    /// What we actually told the memory tracker: capacity-based, so the
    /// register/unregister pair always balances. The quantize paths build
    /// exact-capacity vectors, so in practice this equals [`bytes`](Self::bytes).
    fn storage_capacity_bytes(&self) -> usize {
        let code_bytes = match &self.codes {
            QuantCodes::I8(codes) => codes.capacity(),
            QuantCodes::Nf4(codes) => codes.capacity(),
        };
        code_bytes + self.scales.capacity() * 4
    }
}

impl Clone for QuantTensor {
    fn clone(&self) -> Self {
        let t = QuantTensor {
            codes: self.codes.clone(),
            scales: self.scales.clone(),
            shape: self.shape.clone(),
            len: self.len,
        };
        memtrack::register(t.storage_capacity_bytes());
        t
    }
}

impl Drop for QuantTensor {
    fn drop(&mut self) {
        memtrack::unregister(self.storage_capacity_bytes());
    }
}

impl PartialEq for QuantTensor {
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape && self.codes == other.codes && self.scales == other.scales
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_matches_bytes_for_exactly() {
        for (dtype, shape) in [
            (Dtype::I8Block, vec![16usize, 20]), // 320 elems: tail block
            (Dtype::Nf4Block, vec![16, 20]),
            (Dtype::I8Block, vec![3, 21]), // 63 elems: single short block
            (Dtype::Nf4Block, vec![3, 21]),
        ] {
            let t = Tensor::randn(&shape, 1.0, 31);
            let numel = t.len();
            let before = crate::memtrack::current_bytes();
            let q = QuantTensor::from_tensor(&t, dtype);
            let delta = crate::memtrack::current_bytes() - before;
            assert_eq!(delta, dtype.bytes_for(numel), "{dtype} measured");
            assert_eq!(q.bytes(), dtype.bytes_for(numel), "{dtype} reported");
            drop(q);
            assert_eq!(crate::memtrack::current_bytes(), before);
        }
    }

    #[test]
    fn roundtrip_preserves_shape_and_bounds_error() {
        let t = Tensor::randn(&[9, 33], 1.0, 32);
        for dtype in [Dtype::I8Block, Dtype::Nf4Block] {
            let q = QuantTensor::from_tensor(&t, dtype);
            assert_eq!(q.dtype(), dtype);
            assert_eq!(q.shape(), &[9, 33]);
            assert_eq!(q.rows(), 9);
            assert_eq!(q.cols(), 33);
            let back = q.to_tensor();
            assert_eq!(back.shape(), t.shape());
            // Loose sanity bound (exact bounds are tested in lx-quant): the
            // worst NF4 gap is ~0.18·absmax, absmax ≲ 5σ here.
            for (a, b) in t.as_slice().iter().zip(back.as_slice()) {
                assert!((a - b).abs() < 1.0, "{a} vs {b}");
            }
            assert_eq!(back.as_slice(), &q.to_f32_vec()[..]);
        }
    }

    #[test]
    fn decode_rows_is_bit_identical_to_full_decode() {
        // 33 cols: every row boundary lands mid-block, the case the sparse
        // slab gathers depend on.
        let t = Tensor::randn(&[12, 33], 1.0, 33);
        for dtype in [Dtype::I8Block, Dtype::Nf4Block] {
            let q = QuantTensor::from_tensor(&t, dtype);
            let full = q.to_f32_vec();
            for (r0, n_rows) in [(0usize, 1usize), (3, 2), (7, 5), (11, 1)] {
                let mut window = vec![0.0f32; n_rows * 33];
                q.decode_rows(r0, n_rows, &mut window);
                for (i, v) in window.iter().enumerate() {
                    let f = full[r0 * 33 + i];
                    assert_eq!(v.to_bits(), f.to_bits(), "{dtype} row {r0}+{i}");
                }
            }
        }
    }

    #[test]
    fn clone_registers_its_own_buffer() {
        let t = Tensor::randn(&[8, 8], 1.0, 34);
        let before = crate::memtrack::current_bytes();
        let a = QuantTensor::from_tensor(&t, Dtype::I8Block);
        let b = a.clone();
        assert_eq!(
            crate::memtrack::current_bytes() - before,
            2 * Dtype::I8Block.bytes_for(64)
        );
        assert_eq!(a, b);
        drop(a);
        drop(b);
        assert_eq!(crate::memtrack::current_bytes(), before);
    }

    #[test]
    #[should_panic(expected = "not a block-quantized dtype")]
    fn rejects_non_quant_dtypes() {
        let _ = QuantTensor::from_f32(&[1.0], &[1], Dtype::F16);
    }
}
