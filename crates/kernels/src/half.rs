//! IEEE binary16 ("half") conversion primitives.
//!
//! These are the canonical software f16 routines for the whole workspace:
//! `lx-tensor::f16` delegates here so the storage layer and the fused
//! f16-input GEMM paths (see [`KernelBackend::gemm_f16`] and the packed
//! backend's pack-time decode) can never disagree on rounding semantics.
//!
//! Conversion policy: f32→f16 rounds to nearest, ties to even; overflow
//! saturates to ±inf; NaN stays NaN with the quiet bit forced so a payload
//! that truncates to zero cannot turn into an infinity. f16→f32 is exact.
//!
//! [`KernelBackend::gemm_f16`]: crate::KernelBackend::gemm_f16

/// Convert an `f32` to IEEE binary16 bits (round-to-nearest-even).
pub fn f32_to_f16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let frac = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf / NaN. Preserve a NaN payload bit so NaN stays NaN.
        let nan_bit = if frac != 0 { 0x0200 } else { 0 };
        return sign | 0x7c00 | nan_bit | ((frac >> 13) as u16 & 0x03ff);
    }

    // Re-bias exponent from 127 to 15.
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7c00; // overflow -> inf
    }
    if unbiased >= -14 {
        // Normal half. Round-to-nearest-even on the 13 truncated bits.
        let mut mant = frac >> 13;
        let rem = frac & 0x1fff;
        if rem > 0x1000 || (rem == 0x1000 && (mant & 1) == 1) {
            mant += 1;
        }
        let mut e = (unbiased + 15) as u32;
        if mant == 0x400 {
            // Mantissa rounded up past 10 bits: bump exponent.
            mant = 0;
            e += 1;
            if e >= 31 {
                return sign | 0x7c00;
            }
        }
        return sign | ((e as u16) << 10) | (mant as u16);
    }
    if unbiased >= -24 {
        // Subnormal half.
        let full = frac | 0x0080_0000; // implicit leading 1
        let shift = (-14 - unbiased) as u32 + 13;
        let mut mant = full >> shift;
        let rem_mask = (1u32 << shift) - 1;
        let rem = full & rem_mask;
        let half = 1u32 << (shift - 1);
        if rem > half || (rem == half && (mant & 1) == 1) {
            mant += 1;
        }
        return sign | (mant as u16);
    }
    sign // underflow -> signed zero
}

/// Convert IEEE binary16 bits back to `f32` (exact).
#[inline]
pub fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = ((bits >> 10) & 0x1f) as u32;
    let frac = (bits & 0x03ff) as u32;
    let out = if exp == 0 {
        if frac == 0 {
            sign
        } else {
            // Subnormal: normalise.
            let mut e = 127 - 15 + 1;
            let mut f = frac;
            while f & 0x0400 == 0 {
                f <<= 1;
                e -= 1;
            }
            sign | ((e as u32) << 23) | ((f & 0x03ff) << 13)
        }
    } else if exp == 0x1f {
        sign | 0x7f80_0000 | (frac << 13)
    } else {
        sign | ((exp + 127 - 15) << 23) | (frac << 13)
    };
    f32::from_bits(out)
}

/// Round an `f32` through f16 precision (the storage round-trip).
#[inline]
pub fn round_f16(value: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(value))
}

/// Decode a slice of f16 bits into an f32 buffer of the same length.
pub fn decode_slice(bits: &[u16], out: &mut [f32]) {
    assert_eq!(bits.len(), out.len(), "decode_slice length mismatch");
    for (o, &b) in out.iter_mut().zip(bits) {
        *o = f16_bits_to_f32(b);
    }
}

/// Encode a slice of f32 values into f16 bits (round-to-nearest-even).
pub fn encode_slice(values: &[f32]) -> Vec<u16> {
    values.iter().map(|&v| f32_to_f16_bits(v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_roundtrip() {
        for &v in &[0.0f32, 1.0, -1.0, 0.5, 2.0, -0.25, 65504.0] {
            assert_eq!(round_f16(v), v, "{v} should be exactly representable");
        }
    }

    #[test]
    fn slice_codecs_roundtrip() {
        let vals = vec![1.0f32, -2.5, 0.125, 3.0];
        let bits = encode_slice(&vals);
        let mut back = vec![0.0f32; vals.len()];
        decode_slice(&bits, &mut back);
        assert_eq!(back, vals);
    }
}
