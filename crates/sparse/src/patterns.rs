//! The atomic-pattern pool: offline layout construction + online combination
//! (paper §VI-A, Fig. 6).
//!
//! Existing sparse-attention masks (Longformer, BigBird, strided, …) are
//! combinations of a few *atomic* ingredients: a local sliding window, global
//! stripes, strided columns, random blocks. The pool precomputes the
//! [`BlockCsr`] lookup table of every (pattern, grid-size) pair it expects to
//! see; at runtime each attention head picks one pooled pattern and the heads
//! are combined into a [`MultiHeadLayout`] by offset arithmetic only.

use crate::layout::{BlockCsr, MultiHeadLayout};
use crate::mask::BlockMask;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

/// A typical sparse-attention pattern over the block grid.
///
/// All patterns are restricted to the causal lower triangle because
/// fine-tuning decoder-only LMs always applies the causal mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternSpec {
    /// Full causal lower triangle (the "dense" fallback).
    Causal,
    /// Sliding window of `w` block-diagonals.
    LocalWindow { w: u32 },
    /// First `g` block-columns (sink/global tokens) plus the block diagonal.
    GlobalStripe { g: u32 },
    /// Longformer-style: sliding window ∪ global stripe.
    LocalGlobal { w: u32, g: u32 },
    /// BigBird-style: window ∪ global ∪ `r` random blocks per block-row.
    BigBird { w: u32, g: u32, r: u32, seed: u64 },
    /// Dilated: sliding window ∪ every `stride`-th block-column.
    Strided { w: u32, stride: u32 },
}

impl PatternSpec {
    /// Materialise the block mask for an `n × n` grid.
    pub fn mask(&self, n: usize) -> BlockMask {
        let mut m = BlockMask::square(n);
        match *self {
            PatternSpec::Causal => {
                for r in 0..n {
                    for c in 0..=r {
                        m.set(r, c, true);
                    }
                }
            }
            PatternSpec::LocalWindow { w } => {
                set_window(&mut m, n, w as usize);
            }
            PatternSpec::GlobalStripe { g } => {
                set_window(&mut m, n, 1);
                set_global(&mut m, n, g as usize);
            }
            PatternSpec::LocalGlobal { w, g } => {
                set_window(&mut m, n, w as usize);
                set_global(&mut m, n, g as usize);
            }
            PatternSpec::BigBird { w, g, r, seed } => {
                set_window(&mut m, n, w as usize);
                set_global(&mut m, n, g as usize);
                let mut rng = StdRng::seed_from_u64(seed ^ n as u64);
                for row in 0..n {
                    for _ in 0..r {
                        let c = rng.gen_range(0..=row);
                        m.set(row, c, true);
                    }
                }
            }
            PatternSpec::Strided { w, stride } => {
                set_window(&mut m, n, w as usize);
                let stride = (stride as usize).max(1);
                for row in 0..n {
                    let mut c = 0;
                    while c <= row {
                        m.set(row, c, true);
                        c += stride;
                    }
                }
            }
        }
        m
    }

    /// Active blocks on an `n × n` grid (the pattern's cost).
    pub fn cost(&self, n: usize) -> usize {
        self.mask(n).count()
    }

    /// Short display name for experiment tables.
    pub fn name(&self) -> String {
        match *self {
            PatternSpec::Causal => "causal".into(),
            PatternSpec::LocalWindow { w } => format!("local{w}"),
            PatternSpec::GlobalStripe { g } => format!("global{g}"),
            PatternSpec::LocalGlobal { w, g } => format!("local{w}+global{g}"),
            PatternSpec::BigBird { w, g, r, .. } => format!("bigbird({w},{g},{r})"),
            PatternSpec::Strided { w, stride } => format!("strided({w},{stride})"),
        }
    }
}

fn set_window(m: &mut BlockMask, n: usize, w: usize) {
    let w = w.max(1);
    for r in 0..n {
        for c in r.saturating_sub(w - 1)..=r {
            m.set(r, c, true);
        }
    }
}

fn set_global(m: &mut BlockMask, n: usize, g: usize) {
    for r in 0..n {
        for c in 0..g.min(r + 1) {
            m.set(r, c, true);
        }
    }
    // Global tokens also attend broadly within the causal constraint.
    for r in 0..g.min(n) {
        for c in 0..=r {
            m.set(r, c, true);
        }
    }
}

/// The offline-constructed pool of pattern layouts.
pub struct PatternPool {
    block_size: usize,
    specs: Vec<PatternSpec>,
    layouts: HashMap<(PatternSpec, usize), Arc<BlockCsr>>,
}

impl PatternPool {
    /// Precompute lookup tables for every `spec × grid` combination.
    ///
    /// This is the paper's *offline pool construction*: it runs once before
    /// fine-tuning starts, so its cost is off the training path.
    pub fn build(block_size: usize, specs: &[PatternSpec], grids: &[usize]) -> Self {
        let mut layouts = HashMap::new();
        for &spec in specs {
            for &n in grids {
                let mask = spec.mask(n);
                layouts.insert((spec, n), Arc::new(BlockCsr::from_mask(&mask, block_size)));
            }
        }
        PatternPool {
            block_size,
            specs: specs.to_vec(),
            layouts,
        }
    }

    /// A reasonable default pool covering the paper's expert-mask families.
    pub fn default_pool(block_size: usize, grids: &[usize]) -> Self {
        let specs = vec![
            PatternSpec::LocalWindow { w: 1 },
            PatternSpec::LocalWindow { w: 2 },
            PatternSpec::LocalWindow { w: 4 },
            PatternSpec::GlobalStripe { g: 1 },
            PatternSpec::LocalGlobal { w: 2, g: 1 },
            PatternSpec::LocalGlobal { w: 4, g: 2 },
            PatternSpec::Strided { w: 1, stride: 4 },
            PatternSpec::BigBird {
                w: 2,
                g: 1,
                r: 1,
                seed: 7,
            },
            PatternSpec::Causal,
        ];
        Self::build(block_size, &specs, grids)
    }

    pub fn block_size(&self) -> usize {
        self.block_size
    }

    pub fn specs(&self) -> &[PatternSpec] {
        &self.specs
    }

    /// Fetch a pooled layout. Panics if the (spec, grid) pair was not built —
    /// grids are known ahead of fine-tuning, so a miss is a programming error.
    pub fn layout(&self, spec: PatternSpec, n_brows: usize) -> Arc<BlockCsr> {
        self.layouts
            .get(&(spec, n_brows))
            .unwrap_or_else(|| panic!("pattern {spec:?} for grid {n_brows} not in pool"))
            .clone()
    }

    /// Extend the pool with another grid size (still an offline operation).
    pub fn add_grid(&mut self, n: usize) {
        for &spec in self.specs.clone().iter() {
            self.layouts
                .entry((spec, n))
                .or_insert_with(|| Arc::new(BlockCsr::from_mask(&spec.mask(n), self.block_size)));
        }
    }

    /// **Online combination**: assemble the multi-head layout for one
    /// attention operation from per-head pooled patterns. Costs O(heads)
    /// pointer copies + a prefix sum; no mask scan, no LUT rebuild.
    pub fn combine(&self, n_brows: usize, per_head: &[PatternSpec]) -> MultiHeadLayout {
        let heads = per_head.iter().map(|&s| self.layout(s, n_brows)).collect();
        MultiHeadLayout::combine(heads)
    }

    /// Categorise a predicted mask into the cheapest pooled pattern that
    /// covers at least `min_recall` of its active blocks (paper §V-A: the
    /// predictor's binarised mask "is then categorized into one of several
    /// pre-defined typical masks"). Returns the chosen spec and its recall.
    pub fn best_match(&self, predicted: &BlockMask, min_recall: f32) -> (PatternSpec, f32) {
        let n = predicted.rows();
        let wanted = predicted.count();
        if wanted == 0 {
            // Nothing predicted active: cheapest pattern wins outright.
            let spec = *self
                .specs
                .iter()
                .min_by_key(|s| self.layout(**s, n).nnz_blocks())
                .expect("pool has at least one spec");
            return (spec, 1.0);
        }
        let mut best: Option<(PatternSpec, f32, usize)> = None;
        let mut fallback: Option<(PatternSpec, f32, usize)> = None;
        for &spec in &self.specs {
            let layout = self.layout(spec, n);
            let mask = layout.to_mask();
            let covered = predicted.covered_by(&mask);
            let recall = covered as f32 / wanted as f32;
            let cost = layout.nnz_blocks();
            if recall >= min_recall {
                match best {
                    Some((_, _, c)) if c <= cost => {}
                    _ => best = Some((spec, recall, cost)),
                }
            }
            // Track the highest-recall (then cheapest) spec as a fallback.
            match fallback {
                Some((_, r, c)) if r > recall || (r == recall && c <= cost) => {}
                _ => fallback = Some((spec, recall, cost)),
            }
        }
        let (spec, recall, _) = best.or(fallback).expect("pool has at least one spec");
        (spec, recall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn causal_pattern_is_lower_triangle() {
        let m = PatternSpec::Causal.mask(4);
        assert_eq!(m.count(), 10);
        assert!(!m.get(0, 1));
        assert!(m.get(3, 0));
    }

    #[test]
    fn window_width_counts() {
        let m = PatternSpec::LocalWindow { w: 2 }.mask(5);
        // Row 0: 1 block; rows 1..5: 2 blocks each.
        assert_eq!(m.count(), 1 + 2 * 4);
        assert!(m.get(4, 3) && m.get(4, 4) && !m.get(4, 2));
    }

    #[test]
    fn global_stripe_covers_first_columns_and_diag() {
        let m = PatternSpec::GlobalStripe { g: 1 }.mask(4);
        for r in 0..4 {
            assert!(m.get(r, 0), "global col missing at row {r}");
            assert!(m.get(r, r), "diagonal missing at row {r}");
        }
    }

    #[test]
    fn all_patterns_are_causal() {
        let specs = [
            PatternSpec::Causal,
            PatternSpec::LocalWindow { w: 3 },
            PatternSpec::GlobalStripe { g: 2 },
            PatternSpec::LocalGlobal { w: 2, g: 1 },
            PatternSpec::BigBird {
                w: 2,
                g: 1,
                r: 3,
                seed: 1,
            },
            PatternSpec::Strided { w: 1, stride: 3 },
        ];
        for spec in specs {
            let m = spec.mask(6);
            for r in 0..6 {
                for c in (r + 1)..6 {
                    assert!(!m.get(r, c), "{spec:?} violates causality at ({r},{c})");
                }
            }
            // Diagonal always present (a token attends to itself).
            for r in 0..6 {
                assert!(m.get(r, r), "{spec:?} missing diagonal at {r}");
            }
        }
    }

    #[test]
    fn bigbird_is_deterministic_in_seed() {
        let a = PatternSpec::BigBird {
            w: 1,
            g: 1,
            r: 2,
            seed: 5,
        }
        .mask(8);
        let b = PatternSpec::BigBird {
            w: 1,
            g: 1,
            r: 2,
            seed: 5,
        }
        .mask(8);
        assert_eq!(a, b);
    }

    #[test]
    fn pool_lookup_and_combine() {
        let pool = PatternPool::default_pool(16, &[4, 8]);
        let l = pool.layout(PatternSpec::LocalWindow { w: 1 }, 4);
        assert_eq!(l.nnz_blocks(), 4);
        let ml = pool.combine(
            4,
            &[
                PatternSpec::LocalWindow { w: 1 },
                PatternSpec::Causal,
                PatternSpec::LocalWindow { w: 2 },
            ],
        );
        assert_eq!(ml.n_heads(), 3);
        assert_eq!(ml.total_blocks(), 4 + 10 + 7);
        // Data offsets are contiguous prefix sums of block areas.
        assert_eq!(ml.data_offsets[1] - ml.data_offsets[0], 4 * 16 * 16);
    }

    #[test]
    #[should_panic(expected = "not in pool")]
    fn pool_miss_panics() {
        let pool = PatternPool::default_pool(16, &[4]);
        pool.layout(PatternSpec::Causal, 32);
    }

    #[test]
    fn add_grid_extends_pool() {
        let mut pool = PatternPool::default_pool(16, &[4]);
        pool.add_grid(32);
        assert_eq!(pool.layout(PatternSpec::Causal, 32).n_brows, 32);
    }

    #[test]
    fn best_match_prefers_cheapest_covering() {
        let pool = PatternPool::default_pool(8, &[8]);
        // A pure diagonal prediction is fully covered by LocalWindow{1}.
        let pred = PatternSpec::LocalWindow { w: 1 }.mask(8);
        let (spec, recall) = pool.best_match(&pred, 0.95);
        assert_eq!(spec, PatternSpec::LocalWindow { w: 1 });
        assert!((recall - 1.0).abs() < 1e-6);
    }

    #[test]
    fn best_match_falls_back_to_highest_recall() {
        // Build a pool with only narrow windows, then predict a full causal
        // mask: nothing reaches the recall bar, so the highest-recall spec
        // (the widest window) must win.
        let pool = PatternPool::build(
            8,
            &[
                PatternSpec::LocalWindow { w: 1 },
                PatternSpec::LocalWindow { w: 4 },
            ],
            &[8],
        );
        let pred = PatternSpec::Causal.mask(8);
        let (spec, recall) = pool.best_match(&pred, 0.99);
        assert_eq!(spec, PatternSpec::LocalWindow { w: 4 });
        assert!(recall < 0.99);
    }

    #[test]
    fn best_match_respects_global_stripe_predictions() {
        let pool = PatternPool::default_pool(8, &[8]);
        let pred = PatternSpec::GlobalStripe { g: 1 }.mask(8);
        let (spec, recall) = pool.best_match(&pred, 0.99);
        assert!(recall >= 0.99);
        // The chosen pattern must cover the stripe; cost must not exceed
        // the full causal cost.
        assert!(spec.cost(8) <= PatternSpec::Causal.cost(8));
        let cover = pred.covered_by(&spec.mask(8));
        assert_eq!(cover, pred.count());
    }

    #[test]
    fn strided_hits_every_stride_column() {
        let m = PatternSpec::Strided { w: 1, stride: 2 }.mask(6);
        assert!(m.get(5, 0) && m.get(5, 2) && m.get(5, 4) && m.get(5, 5));
        assert!(!m.get(5, 1) && !m.get(5, 3));
    }
}
