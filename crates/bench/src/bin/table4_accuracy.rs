//! **Table IV** (+ Table III task inventory): downstream accuracy with vs
//! without Long Exposure after instruction fine-tuning.
//!
//! Paper: across PIQA / Winogrande / RTE / COPA / HellaSwag and three OPT
//! sizes, Long Exposure costs at most a fraction of a point of accuracy.
//! Here: two sim model sizes fine-tuned on Alpaca-like synthetic
//! instructions, evaluated by candidate log-likelihood (lm-eval protocol),
//! with binomial standard errors.

use long_exposure::engine::StepMode;
use lx_bench::{calibrated_engine, default_opt, header, row};
use lx_data::tasks::{accuracy_stderr, evaluate_accuracy, Task, TaskKind};
use lx_data::{instruct::InstructGenerator, Batcher, SyntheticWorld};
use lx_model::{prompt_aware_targets, score_continuation, ModelConfig};
use lx_peft::{LoraTargets, PeftMethod};

fn finetuned(
    cfg: &ModelConfig,
    mode: StepMode,
    steps: usize,
    seed: u64,
) -> long_exposure::FinetuneEngine {
    let (batch, seq) = (2, 128);
    let method = PeftMethod::Lora {
        rank: 8,
        alpha: 16.0,
        targets: LoraTargets::all(),
    };
    let (mut engine, _) = calibrated_engine(cfg.clone(), method, batch, seq, seed);
    // The sim backbone is not actually pre-trained on language, so let the
    // embedding learn alongside LoRA — both arms get the same treatment.
    engine.model.embedding.tokens.trainable = true;
    let world = SyntheticWorld::new(cfg.vocab_size as u32, 5);
    let mut batcher = Batcher::new(InstructGenerator::new(world).stream(200_000, 1));
    let mut opt = default_opt();
    for _ in 0..steps {
        let ids = batcher.next_batch(batch, seq);
        let targets = prompt_aware_targets(&ids, batch, seq, 0);
        engine.train_step_mode(&ids, &targets, batch, seq, &mut opt, mode);
    }
    engine
}

fn main() {
    let cli = lx_bench::BenchCli::parse("table4_accuracy");
    let steps = 60;
    let n_examples = 50;
    println!("== Table III: downstream task inventory ==\n");
    header(&["task", "description"]);
    for kind in TaskKind::all() {
        let desc = match kind {
            TaskKind::Piqa => "physical-commonsense-style pairing completion (2-way)",
            TaskKind::Winogrande => "entity disambiguation via pairing (2-way)",
            TaskKind::Rte => "pairing entailment, YES/NO",
            TaskKind::Copa => "cause→effect pairing with long context (2-way)",
            TaskKind::HellaSwag => "two-token ending completion (4-way)",
        };
        row(&[kind.name().to_string(), desc.to_string()]);
    }

    println!("\n== Table IV: accuracy after instruction fine-tuning, w/o vs w/ Long Exposure ==\n");
    for cfg in [ModelConfig::opt_sim_small(), ModelConfig::opt_sim_base()] {
        println!(
            "model {} ({} steps of LoRA instruction tuning):",
            cfg.name, steps
        );
        header(&["task", "w/o acc", "stderr", "w/ acc", "stderr", "delta"]);
        let mut dense = finetuned(&cfg, StepMode::Dense, steps, 42);
        let mut sparse = finetuned(&cfg, StepMode::Sparse, steps, 42);
        let world = SyntheticWorld::new(cfg.vocab_size as u32, 5);
        for kind in TaskKind::all() {
            let task = Task::new(kind, world.clone());
            let examples = task.examples(n_examples);
            let acc_d =
                evaluate_accuracy(&examples, |p, c| score_continuation(&mut dense.model, p, c));
            let acc_s = evaluate_accuracy(&examples, |p, c| {
                score_continuation(&mut sparse.model, p, c)
            });
            row(&[
                kind.name().to_string(),
                format!("{:.1}%", 100.0 * acc_d),
                format!("{:.1}%", 100.0 * accuracy_stderr(acc_d, n_examples)),
                format!("{:.1}%", 100.0 * acc_s),
                format!("{:.1}%", 100.0 * accuracy_stderr(acc_s, n_examples)),
                format!("{:+.1}pp", 100.0 * (acc_s - acc_d)),
            ]);
        }
        println!();
    }
    println!("paper reference (OPT-1.3B): PIQA 72.25→72.09, Winogrande 58.88→58.80, RTE 54.15→54.51, COPA 81→81, HellaSwag 42.08→42.11.");
    println!("shape to check: per-task deltas within ~±1 stderr — sparsity does not change what is learned.");
    cli.finish();
}
