//! Kernel backend comparison: `Reference` loops vs the `Packed` tiled
//! microkernels across Fig. 12-style operator shapes.
//!
//! Shapes cover the hot paths the backends serve: square training GEMMs, the
//! attention score/context products (`s×dh×s` / `s×s×dh`), the MLP FC1/FC2
//! shapes, and the `dW = Xᵀ·dY` gradient (`tn`) shape. Each shape is timed on
//! both backends, cross-checked numerically (≤1e-4 relative), and reported
//! with the dispatcher's per-shape choice.
//!
//! A second "gates" table checks the two wins this backend round is about:
//! the parallel macro-kernel (pooled vs single-worker packed GEMM, floor
//! ≥1.4x at 2 threads on the large shape class) and the fused bias+GELU
//! epilogue (vs the unfused gemm-then-bias-then-GELU composition, floor
//! ≥1.1x). Both floors only *enforce* when the pool has ≥2 threads and the
//! host exposes ≥2 cores — on a single-core box the ratios are meaningless,
//! so the gate prints an explicit SKIP line instead of silently passing.
//! Bit-identity between the compared variants is asserted unconditionally.
//!
//! Flags:
//! * `--smoke` — small shapes, few reps; asserts numerical equivalence and a
//!   sane dispatcher, exits non-zero on mismatch (the CI regression gate).
//! * `--probe-isa <name>` — exit 0 if this CPU can run the named ISA arm
//!   (`scalar|avx2|avx512|neon`), 2 otherwise; no benching. CI uses this to
//!   skip matrix arms the runner cannot execute, with a visible log line.
//! * `--json`  — also write `BENCH_kernel_bench.json` (the perf trajectory).
//! * `--compare <baseline.json>` — gate the `speedup` column against a
//!   committed baseline (see `ci/baselines/`); exits non-zero when any shape
//!   regresses below `baseline · (1 − tolerance)`. Speedups are ratios of
//!   two kernels on the same box, so they transfer across machines in a way
//!   absolute milliseconds never would.
//! * `--tolerance <frac>` — regression tolerance for `--compare`
//!   (default 0.35: shared CI boxes are noisy; the gate is for "packed
//!   stopped being faster", not ±5% jitter).

use lx_bench::{header, load_bench_json, row, BenchCli};
use lx_kernels::{Epilogue, Isa, KernelBackend, AUTO, PACKED, REFERENCE};
use lx_tensor::rng::randn_vec;
use std::time::Instant;

#[derive(Clone, Copy)]
enum Variant {
    Nn,
    Nt,
    Tn,
    /// `Nn` with B stored as f16 bits: both backends run their fused
    /// f16-input path (mixed-precision storage, f32 accumulate).
    NnF16,
    /// `Nn` with B stored as per-block-scaled int8 codes: the fused
    /// dequant-in-pack path (`gemm_q8`).
    NnQ8,
    /// `Nn` with B stored as NF4 nibbles (`gemm_q4`).
    NnQ4,
    /// `Nt` with B stored 2:4-compacted (`gemm_nt_nm`): the pruned frozen-
    /// backbone forward shape, expanded group-by-group inside `pack_b` with
    /// fully-zero K-groups skipped.
    NtNm,
}

struct Shape {
    label: &'static str,
    variant: Variant,
    m: usize,
    k: usize,
    n: usize,
}

const fn shape(label: &'static str, variant: Variant, m: usize, k: usize, n: usize) -> Shape {
    Shape {
        label,
        variant,
        m,
        k,
        n,
    }
}

fn shapes(smoke: bool) -> Vec<Shape> {
    if smoke {
        vec![
            shape("square", Variant::Nn, 192, 192, 192),
            shape("attn scores", Variant::Nt, 128, 64, 128),
            shape("mlp fc1", Variant::Nn, 128, 128, 256),
            shape("mlp fc1 f16-w", Variant::NnF16, 128, 128, 256),
            shape("mlp fc1 int8-w", Variant::NnQ8, 128, 128, 256),
            shape("mlp fc1 nf4-w", Variant::NnQ4, 128, 128, 256),
            shape("mlp fc1 nm24-w", Variant::NtNm, 128, 128, 256),
            shape("grad dW", Variant::Tn, 128, 128, 128),
        ]
    } else {
        vec![
            shape("square 256", Variant::Nn, 256, 256, 256),
            shape("square 512", Variant::Nn, 512, 512, 512),
            shape("square 1024", Variant::Nn, 1024, 1024, 1024),
            shape("square 512 f16-w", Variant::NnF16, 512, 512, 512),
            shape("attn scores s=512", Variant::Nt, 512, 64, 512),
            shape("attn context s=512", Variant::Nn, 512, 512, 64),
            shape("mlp fc1 512x256x1024", Variant::Nn, 512, 256, 1024),
            shape("mlp fc1 f16-w 512x256x1024", Variant::NnF16, 512, 256, 1024),
            shape("mlp fc1 int8-w 512x256x1024", Variant::NnQ8, 512, 256, 1024),
            shape("mlp fc1 nf4-w 512x256x1024", Variant::NnQ4, 512, 256, 1024),
            shape("mlp fc1 nm24-w 512x256x1024", Variant::NtNm, 512, 256, 1024),
            shape("mlp fc2 512x1024x256", Variant::Nn, 512, 1024, 256),
            shape("grad dW 256x512x1024", Variant::Tn, 256, 512, 1024),
        ]
    }
}

struct Operands {
    a: Vec<f32>,
    b: Vec<f32>,
    /// f16 encoding of `b`, used by the `NnF16` variant.
    bits: Vec<u16>,
    /// Int8 block encoding of `b` (codes, scales), used by `NnQ8`.
    q8: (Vec<i8>, Vec<f32>),
    /// NF4 block encoding of `b` (packed nibbles, scales), used by `NnQ4`.
    q4: (Vec<u8>, Vec<f32>),
    /// 2:4 compacted encoding of `b` (kept values, group masks), used by
    /// `NtNm` (B is n×k there).
    nm: (Vec<f32>, Vec<u8>),
}

fn run(be: &dyn KernelBackend, s: &Shape, ops: &Operands, c: &mut [f32]) {
    let (m, k, n) = (s.m, s.k, s.n);
    let (a, b) = (&ops.a[..], &ops.b[..]);
    match s.variant {
        Variant::Nn => be.gemm(m, k, n, a, k, b, n, c, n, 0.0),
        Variant::Nt => be.gemm_nt(m, k, n, a, k, b, k, c, n, 0.0),
        Variant::Tn => be.gemm_tn(m, k, n, a, m, b, n, c, n, 0.0),
        Variant::NnF16 => be.gemm_f16(m, k, n, a, k, &ops.bits, n, c, n, 0.0),
        Variant::NnQ8 => {
            let view = lx_kernels::Q8View::new(&ops.q8.0, &ops.q8.1);
            be.gemm_q8(m, k, n, a, k, view, n, c, n, 0.0)
        }
        Variant::NnQ4 => {
            let view = lx_kernels::Q4View::new(&ops.q4.0, &ops.q4.1, s.k * s.n);
            be.gemm_q4(m, k, n, a, k, view, n, c, n, 0.0)
        }
        Variant::NtNm => {
            let view = lx_kernels::NmView::new(&ops.nm.0, &ops.nm.1, s.n, s.k, 2, 4);
            be.gemm_nt_nm(m, k, n, a, k, view, k, c, n, 0.0)
        }
    }
}

/// Best-of-`reps` timing: the minimum is the standard noise-robust
/// microbenchmark statistic — one scheduler hiccup on a shared CI box
/// inflates the mean but cannot shrink the min, which is what keeps the
/// `--compare` speedup gate from flaking.
fn time(be: &dyn KernelBackend, s: &Shape, ops: &Operands, c: &mut [f32], reps: usize) -> f64 {
    run(be, s, ops, c); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        run(be, s, ops, c);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn max_rel_diff(x: &[f32], y: &[f32]) -> f32 {
    x.iter()
        .zip(y)
        .map(|(a, b)| {
            let d = (a - b).abs() / (1.0 + b.abs());
            // NaN must fail the gate, not vanish in fold(max).
            if d.is_finite() {
                d
            } else {
                f32::INFINITY
            }
        })
        .fold(0.0, f32::max)
}

fn main() {
    let cli = BenchCli::parse("kernel_bench");
    // `--probe-isa` answers "can this runner execute that matrix arm?" and
    // nothing else — it must run before any policy install or benching.
    if let Some(name) = cli.value("--probe-isa") {
        match Isa::parse(name) {
            Some(isa) if isa.supported() => {
                println!("kernel_bench: isa '{}' supported on this CPU", isa.name());
                std::process::exit(0);
            }
            Some(isa) => {
                println!(
                    "kernel_bench: isa '{}' NOT supported on this CPU",
                    isa.name()
                );
                std::process::exit(2);
            }
            None => {
                eprintln!("kernel_bench: unknown isa '{name}' (expected scalar|avx2|avx512|neon)");
                std::process::exit(2);
            }
        }
    }
    let smoke = cli.smoke;
    let policy = lx_runtime::kernel_policy::install_tuned();
    let threads = lx_parallel::pool().threads();
    println!(
        "== kernel_bench: Reference vs Packed (policy: MC={} KC={} NC={}, packed ≥ {} flops, \
         isa: {}, threads: {}{}) ==\n",
        policy.tiles.mc,
        policy.tiles.kc,
        policy.tiles.nc,
        policy.min_flops_packed,
        lx_kernels::active_isa().name(),
        threads,
        if smoke { ", smoke" } else { "" }
    );
    header(&[
        "shape",
        "m×k×n",
        "ref ms",
        "packed ms",
        "speedup",
        "auto picks",
        "max rel diff",
    ]);
    let mut failures = 0usize;
    let mut best_speedup = 0.0f64;
    for s in shapes(smoke) {
        let (asz, bsz) = match s.variant {
            Variant::Nn | Variant::NnF16 | Variant::NnQ8 | Variant::NnQ4 => (s.m * s.k, s.k * s.n),
            Variant::Nt | Variant::NtNm => (s.m * s.k, s.n * s.k),
            Variant::Tn => (s.k * s.m, s.k * s.n),
        };
        let a = randn_vec(asz, 1.0, 1);
        let b = randn_vec(bsz, 1.0, 2);
        let bits = match s.variant {
            Variant::NnF16 => lx_kernels::half::encode_slice(&b),
            _ => Vec::new(),
        };
        let q8 = match s.variant {
            Variant::NnQ8 => lx_quant::q8::quantize(&b),
            _ => (Vec::new(), Vec::new()),
        };
        let q4 = match s.variant {
            Variant::NnQ4 => lx_quant::nf4::quantize(&b),
            _ => (Vec::new(), Vec::new()),
        };
        let nm = match s.variant {
            Variant::NtNm => lx_quant::nm::encode(&b, s.n, s.k, 2, 4),
            _ => (Vec::new(), Vec::new()),
        };
        let ops = Operands {
            a,
            b,
            bits,
            q8,
            q4,
            nm,
        };
        let mut c_ref = vec![0.0f32; s.m * s.n];
        let mut c_packed = vec![0.0f32; s.m * s.n];
        let flops = 2.0 * (s.m * s.k * s.n) as f64;
        let reps = if smoke {
            // Enough samples for the min to be stable: the compared smoke
            // shapes run in tens of microseconds, so 5 reps are still cheap.
            5
        } else {
            ((2e9 / flops) as usize).clamp(2, 20)
        };
        let t_ref = time(&REFERENCE, &s, &ops, &mut c_ref, reps);
        let t_packed = time(&PACKED, &s, &ops, &mut c_packed, reps);
        let diff = max_rel_diff(&c_packed, &c_ref);
        if diff > 1e-4 {
            failures += 1;
        }
        let speedup = t_ref / t_packed;
        best_speedup = best_speedup.max(speedup);
        // What the dispatcher actually does for this shape.
        let auto_picks = lx_kernels::auto_choice(s.m, s.k, s.n);
        let mut c_auto = vec![0.0f32; s.m * s.n];
        run(&AUTO, &s, &ops, &mut c_auto);
        if max_rel_diff(&c_auto, &c_ref) > 1e-4 {
            failures += 1;
        }
        row(&[
            s.label.to_string(),
            format!("{}x{}x{}", s.m, s.k, s.n),
            format!("{:.2}", t_ref * 1e3),
            format!("{:.2}", t_packed * 1e3),
            format!("{speedup:.2}x"),
            auto_picks.to_string(),
            format!("{diff:.2e}"),
        ]);
    }
    println!(
        "\nbest packed speedup: {best_speedup:.2}x (acceptance bar: ≥2x on at least one shape)"
    );
    let mut gate_failed = false;

    // ---- Gates: parallel scaling and fused-epilogue wins ------------------
    // Floors only enforce where the ratios mean something: the pool must
    // actually have ≥2 workers AND the host must expose ≥2 cores (a 1-core
    // box timeslices the "parallel" leg and any ratio is noise).
    let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
    let enforce = threads >= 2 && avail >= 2;
    // The gate shapes run in well under a millisecond, so a deeper best-of
    // min is cheap and is what keeps sub-1.5x ratio floors from flaking.
    let gate_reps = if smoke { 15 } else { 30 };
    println!();
    header(&[
        "gate", "m×k×n", "base ms", "new ms", "speedup", "floor", "status",
    ]);

    // Parallel scaling: the same packed GEMM single-worker vs pooled, on the
    // large shape class (256³ clears every min_flops crossover). The two legs
    // write worker-disjoint row panels in the same order, so the results must
    // be bit-identical.
    {
        let (m, k, n) = (256usize, 256usize, 256usize);
        let a = randn_vec(m * k, 1.0, 11);
        let b = randn_vec(k * n, 1.0, 12);
        let mut c_seq = vec![0.0f32; m * n];
        let mut c_par = vec![0.0f32; m * n];
        let t_seq = lx_kernels::with_sequential(|| {
            PACKED.gemm(m, k, n, &a, k, &b, n, &mut c_seq, n, 0.0);
            let mut best = f64::INFINITY;
            for _ in 0..gate_reps {
                let t0 = Instant::now();
                PACKED.gemm(m, k, n, &a, k, &b, n, &mut c_seq, n, 0.0);
                best = best.min(t0.elapsed().as_secs_f64());
            }
            best
        });
        PACKED.gemm(m, k, n, &a, k, &b, n, &mut c_par, n, 0.0);
        let mut t_par = f64::INFINITY;
        for _ in 0..gate_reps {
            let t0 = Instant::now();
            PACKED.gemm(m, k, n, &a, k, &b, n, &mut c_par, n, 0.0);
            t_par = t_par.min(t0.elapsed().as_secs_f64());
        }
        let identical = c_seq
            .iter()
            .zip(&c_par)
            .all(|(x, y)| x.to_bits() == y.to_bits());
        if !identical {
            eprintln!("kernel_bench: parallel packed GEMM is not bit-identical to sequential");
            failures += 1;
        }
        let speedup = t_seq / t_par;
        let status = if !identical {
            "FAIL (bits)"
        } else if !enforce {
            eprintln!(
                "kernel_bench: SKIP parallel-scaling floor — pool has {threads} thread(s), \
                 host exposes {avail} core(s)"
            );
            "skip"
        } else if speedup >= 1.4 {
            "ok"
        } else {
            eprintln!(
                "kernel_bench: parallel scaling {speedup:.2}x below the 1.40x floor \
                 at {threads} threads"
            );
            gate_failed = true;
            "FAIL"
        };
        row(&[
            "parallel scaling".to_string(),
            format!("{m}x{k}x{n}"),
            format!("{:.2}", t_seq * 1e3),
            format!("{:.2}", t_par * 1e3),
            format!("{speedup:.2}x"),
            "1.40x".to_string(),
            status.to_string(),
        ]);
    }

    // Fused epilogues: gemm + serial epilogue passes (what the model paths
    // did before fusion) vs one `gemm_ep` call. The fused write-back applies
    // the identical scalar ops per element after full accumulation, so the
    // outputs must match bit-for-bit — asserted unconditionally for both
    // rows. The perf floor enforces on the bias+GELU row: the tanh sweep
    // dominates and the fused variant runs it on the GEMM workers instead of
    // as a serial pass, so at ≥2 threads the win is compute-bound and
    // machine-independent. The bias-only row (the production fusion — the
    // MLP keeps GELU unfused because backward needs the pre-activation) is
    // reported but not gated: its win is saved C traffic, which a large
    // last-level cache can legitimately erase.
    {
        // FC1-shaped with an 8 MiB C: the fusion win is skipping a
        // read-modify-write pass over C, which only shows once C spills the
        // last-level cache — at 1 MiB the serial pass is LLC-resident and
        // free, and the gate would measure noise.
        let (m, k, n) = (512usize, 64usize, 4096usize);
        let a = randn_vec(m * k, 1.0, 13);
        let b = randn_vec(k * n, 1.0, 14);
        let bias = randn_vec(n, 1.0, 15);
        let mut fusion_gate = |label: &str, gelu_after: bool, floor: Option<f64>, reps: usize| {
            let mut c_unfused = vec![0.0f32; m * n];
            let mut c_fused = vec![0.0f32; m * n];
            let unfused = |c: &mut [f32]| {
                PACKED.gemm(m, k, n, &a, k, &b, n, c, n, 0.0);
                for r in 0..m {
                    for (v, bj) in c[r * n..(r + 1) * n].iter_mut().zip(&bias) {
                        *v += bj;
                    }
                }
                if gelu_after {
                    for v in c.iter_mut() {
                        *v = lx_kernels::gelu(*v);
                    }
                }
            };
            let ep = if gelu_after {
                Epilogue::BiasGelu(&bias)
            } else {
                Epilogue::Bias(&bias)
            };
            let fused = |c: &mut [f32]| {
                PACKED.gemm_ep(m, k, n, &a, k, &b, n, c, n, 0.0, ep);
            };
            unfused(&mut c_unfused);
            let mut t_unfused = f64::INFINITY;
            for _ in 0..reps {
                let t0 = Instant::now();
                unfused(&mut c_unfused);
                t_unfused = t_unfused.min(t0.elapsed().as_secs_f64());
            }
            fused(&mut c_fused);
            let mut t_fused = f64::INFINITY;
            for _ in 0..reps {
                let t0 = Instant::now();
                fused(&mut c_fused);
                t_fused = t_fused.min(t0.elapsed().as_secs_f64());
            }
            let identical = c_unfused
                .iter()
                .zip(&c_fused)
                .all(|(x, y)| x.to_bits() == y.to_bits());
            if !identical {
                eprintln!("kernel_bench: fused {label} epilogue is not bit-identical to unfused");
                failures += 1;
            }
            let speedup = t_unfused / t_fused;
            let status = if !identical {
                "FAIL (bits)"
            } else if floor.is_none() {
                "report-only"
            } else if !enforce {
                eprintln!(
                    "kernel_bench: SKIP fused-{label} floor — pool has {threads} thread(s), \
                     host exposes {avail} core(s)"
                );
                "skip"
            } else if speedup >= floor.expect("checked above") {
                "ok"
            } else {
                eprintln!(
                    "kernel_bench: fused {label} {speedup:.2}x below the {:.2}x floor",
                    floor.expect("checked above")
                );
                gate_failed = true;
                "FAIL"
            };
            row(&[
                format!("fused {label}"),
                format!("{m}x{k}x{n}"),
                format!("{:.2}", t_unfused * 1e3),
                format!("{:.2}", t_fused * 1e3),
                format!("{speedup:.2}x"),
                floor.map_or("-".to_string(), |f| format!("{f:.2}x")),
                status.to_string(),
            ]);
        };
        fusion_gate("bias", false, None, gate_reps);
        // A shallower min keeps the smoke run fast on the 2M-element GELU
        // sweeps; tanh throughput is stable enough that it still gates.
        fusion_gate("bias+gelu", true, Some(1.1), gate_reps.min(5));
    }

    // Pack-skip: the fused nm GEMM expands 2:4 storage inside `pack_b`
    // (skipping fully-zero K-groups) instead of materialising a dense f32
    // weight first. The baseline leg is what a storage-only port must do on
    // every call: decode the compacted weight into a dense scratch, then run
    // the dense packed `gemm_nt`. A serving-style skinny m on a 1024x1024
    // backbone makes the per-call decode the dominant cost, which is exactly
    // the regime the fusion exists for. Unlike the parallel/epilogue floors
    // this one enforces even on one core: both legs run the same GEMM, the
    // win is elided decode work, and a ratio of best-of mins on the same box
    // is stable without parallelism.
    {
        let (m, k, n) = (8usize, 1024usize, 1024usize);
        let a = randn_vec(m * k, 1.0, 16);
        let w = randn_vec(n * k, 1.0, 17);
        let (vals, masks) = lx_quant::nm::encode(&w, n, k, 2, 4);
        let view = || lx_kernels::NmView::new(&vals, &masks, n, k, 2, 4);
        let mut c_dense = vec![0.0f32; m * n];
        let mut c_fused = vec![0.0f32; m * n];
        let mut scratch = vec![0.0f32; n * k];
        let dense_leg = |c: &mut [f32], scratch: &mut [f32]| {
            lx_quant::nm::decode(&vals, &masks, n, k, 2, 4, scratch);
            PACKED.gemm_nt(m, k, n, &a, k, scratch, k, c, n, 0.0);
        };
        dense_leg(&mut c_dense, &mut scratch);
        let mut t_dense = f64::INFINITY;
        for _ in 0..gate_reps {
            let t0 = Instant::now();
            dense_leg(&mut c_dense, &mut scratch);
            t_dense = t_dense.min(t0.elapsed().as_secs_f64());
        }
        PACKED.gemm_nt_nm(m, k, n, &a, k, view(), k, &mut c_fused, n, 0.0);
        let mut t_fused = f64::INFINITY;
        for _ in 0..gate_reps {
            let t0 = Instant::now();
            PACKED.gemm_nt_nm(m, k, n, &a, k, view(), k, &mut c_fused, n, 0.0);
            t_fused = t_fused.min(t0.elapsed().as_secs_f64());
        }
        let identical = c_dense
            .iter()
            .zip(&c_fused)
            .all(|(x, y)| x.to_bits() == y.to_bits());
        if !identical {
            eprintln!("kernel_bench: fused nm GEMM is not bit-identical to decode-then-dense");
            failures += 1;
        }
        let speedup = t_dense / t_fused;
        let status = if !identical {
            "FAIL (bits)"
        } else if speedup >= 1.3 {
            "ok"
        } else {
            eprintln!("kernel_bench: nm pack-skip {speedup:.2}x below the 1.30x floor");
            gate_failed = true;
            "FAIL"
        };
        row(&[
            "nm pack-skip".to_string(),
            format!("{m}x{k}x{n}"),
            format!("{:.2}", t_dense * 1e3),
            format!("{:.2}", t_fused * 1e3),
            format!("{speedup:.2}x"),
            "1.30x".to_string(),
            status.to_string(),
        ]);
    }

    cli.finish();
    if let Some(path) = cli.value("--compare") {
        let tolerance = cli
            .value("--tolerance")
            .map(|t| {
                t.parse::<f64>()
                    .expect("--tolerance takes a fraction, e.g. 0.35")
            })
            .unwrap_or(0.35);
        match load_bench_json(std::path::Path::new(&path)) {
            Ok(baseline) => {
                let (checked, regressions) =
                    lx_bench::compare_to_baseline(&baseline, "speedup", tolerance);
                println!(
                    "\nbench-regression gate vs {path}: {} comparisons at {:.0}% tolerance",
                    checked.len(),
                    tolerance * 100.0
                );
                for line in &checked {
                    println!("  {line}");
                }
                for line in &regressions {
                    eprintln!("  REGRESSION {line}");
                }
                if checked.is_empty() && regressions.is_empty() {
                    eprintln!("kernel_bench: baseline matched no rows — wrong file?");
                    gate_failed = true;
                }
                gate_failed |= !regressions.is_empty();
            }
            Err(e) => {
                eprintln!("kernel_bench: cannot load baseline: {e}");
                gate_failed = true;
            }
        }
    }
    if failures > 0 {
        eprintln!("kernel_bench: {failures} backend mismatches above 1e-4");
        std::process::exit(1);
    }
    if smoke && best_speedup < 1.0 {
        // The smoke gate is deliberately lenient on shared CI boxes: packed
        // must at least not *lose* end-to-end on the probe shapes.
        eprintln!("kernel_bench: packed slower than reference on every smoke shape");
        std::process::exit(1);
    }
    if gate_failed {
        std::process::exit(1);
    }
}
