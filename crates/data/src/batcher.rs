//! Fixed-shape batch assembly from token streams.

/// Packs a token stream into `(batch × seq)` id buffers, advancing a cursor
/// so successive calls yield fresh data (wrapping at the end).
pub struct Batcher {
    stream: Vec<u32>,
    cursor: usize,
}

impl Batcher {
    pub fn new(stream: Vec<u32>) -> Self {
        assert!(!stream.is_empty(), "empty stream");
        Batcher { stream, cursor: 0 }
    }

    /// Next `batch × seq` ids (row-major), wrapping around the stream.
    pub fn next_batch(&mut self, batch: usize, seq: usize) -> Vec<u32> {
        let need = batch * seq;
        let mut out = Vec::with_capacity(need);
        while out.len() < need {
            let take = (need - out.len()).min(self.stream.len() - self.cursor);
            out.extend_from_slice(&self.stream[self.cursor..self.cursor + take]);
            self.cursor = (self.cursor + take) % self.stream.len();
        }
        out
    }

    pub fn stream_len(&self) -> usize {
        self.stream.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_advance_and_wrap() {
        let mut b = Batcher::new((0..10u32).collect());
        assert_eq!(b.next_batch(1, 4), vec![0, 1, 2, 3]);
        assert_eq!(b.next_batch(1, 4), vec![4, 5, 6, 7]);
        // Wraps.
        assert_eq!(b.next_batch(1, 4), vec![8, 9, 0, 1]);
    }

    #[test]
    fn batch_larger_than_stream() {
        let mut b = Batcher::new(vec![1, 2, 3]);
        let out = b.next_batch(2, 4);
        assert_eq!(out, vec![1, 2, 3, 1, 2, 3, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "empty stream")]
    fn empty_stream_rejected() {
        Batcher::new(vec![]);
    }
}
