//! **Figure 14**: strong scalability — fixed global batch, growing device
//! count. Long Exposure adds no communication, so per-step time scales
//! nearly linearly with devices.
//!
//! Measured: the thread-based data-parallel trainer at 1 and 2 workers (this
//! box has 2 cores). Modelled: the roofline + all-reduce cost model at the
//! paper's dims for 1/2/4 GPUs.

use lx_bench::{header, row, sim_model};
use lx_data::e2e::E2eGenerator;
use lx_data::{Batcher, SyntheticWorld};
use lx_model::{prompt_aware_targets, ModelConfig, Sgd};
use lx_peft::PeftMethod;
use lx_runtime::cost::{scaled_step_cost, DeviceSpec, WorkloadParams};
use lx_runtime::DataParallelTrainer;

fn main() {
    let cli = lx_bench::BenchCli::parse("fig14_scaling");
    println!("== Fig. 14 (measured): thread data-parallel trainer, fixed global batch ==\n");
    let cfg = ModelConfig::opt_sim_small();
    let (batch, seq, steps) = (4, 128, 3);
    header(&["workers", "ms/step", "scaling efficiency"]);
    let mut t1_ms = 0.0f64;
    for workers in [1usize, 2] {
        let mut trainer = DataParallelTrainer::new(workers, || {
            let mut m = sim_model(cfg.clone(), 42);
            PeftMethod::lora_default().apply(&mut m, 7);
            m
        });
        let world = SyntheticWorld::new(cfg.vocab_size as u32, 3);
        let mut batcher = Batcher::new(E2eGenerator::new(world).stream(100_000, 0));
        let mut opt = Sgd::new(1e-3);
        // Warm-up then timed steps.
        let ids = batcher.next_batch(batch, seq);
        let targets = prompt_aware_targets(&ids, batch, seq, 0);
        trainer.step(&ids, &targets, batch, seq, None, &mut opt);
        let mut total = 0.0;
        for _ in 0..steps {
            let ids = batcher.next_batch(batch, seq);
            let targets = prompt_aware_targets(&ids, batch, seq, 0);
            let (_, t) = trainer.step(&ids, &targets, batch, seq, None, &mut opt);
            total += t.as_secs_f64();
        }
        let ms = total / steps as f64 * 1e3;
        if workers == 1 {
            t1_ms = ms;
        }
        row(&[
            workers.to_string(),
            format!("{ms:.1}"),
            format!("{:.0}%", 100.0 * t1_ms / (workers as f64 * ms)),
        ]);
    }
    println!("\n(2 physical cores: ideal measured scaling tops out near the core count)\n");

    println!("== Fig. 14 (modelled): paper dims, A100s, LoRA + Long Exposure ==\n");
    header(&[
        "model",
        "1 GPU ms",
        "2 GPUs ms",
        "4 GPUs ms",
        "4-GPU efficiency",
    ]);
    let dev = DeviceSpec::a100();
    for (name, cfg) in [
        ("opt-125m", ModelConfig::opt_125m()),
        ("opt-350m", ModelConfig::opt_350m()),
        ("opt-1.3b", ModelConfig::opt_1_3b()),
    ] {
        let w = WorkloadParams::long_exposure(8, 512, 0.003, 0.25, 0.45);
        let t1 = scaled_step_cost(&dev, &cfg, &w, 1);
        let t2 = scaled_step_cost(&dev, &cfg, &w, 2);
        let t4 = scaled_step_cost(&dev, &cfg, &w, 4);
        row(&[
            name.to_string(),
            format!("{:.1}", t1 * 1e3),
            format!("{:.1}", t2 * 1e3),
            format!("{:.1}", t4 * 1e3),
            format!("{:.0}%", 100.0 * t1 / (4.0 * t4)),
        ]);
    }
    println!("\nshape to check: near-linear scaling (paper: \"performance scales linearly\" — no extra communication).");
    cli.finish();
}
