//! Persistent thread-pool substrate used by every Long Exposure CPU kernel.
//!
//! The paper's dynamic-aware operators run on GPUs; this reproduction executes
//! them on a pool of CPU workers. The pool is deliberately simple and
//! predictable rather than work-stealing-clever:
//!
//! * one global pool sized to the machine (`pool()`),
//! * scoped task groups whose borrowed environment is guaranteed to outlive
//!   every task because the submitting thread blocks (and *helps* execute
//!   queued tasks) until its group completes,
//! * deterministic chunked `parallel_for` / `parallel_map` primitives so that
//!   reductions combine partial results in index order and experiments are
//!   reproducible run-to-run.
//!
//! Helping while waiting makes nested parallel sections safe: a worker that
//! submits a group and waits keeps draining the shared queue, so the pool can
//! never deadlock on its own tasks.

mod latch;
mod pool;
mod rows;

pub use latch::Latch;
pub use pool::{in_worker, pool, set_global_threads, ThreadPool};
pub use rows::{par_disjoint, par_rows};

use std::ops::Range;

/// Default minimum number of items a task should own before it is worth
/// paying queueing overhead. Callers can override per call site.
pub const DEFAULT_GRAIN: usize = 1024;

/// Run `body` over `range` in parallel chunks on the global pool.
///
/// `grain` is the smallest chunk size worth dispatching; ranges smaller than
/// `grain` run inline on the calling thread. `body` receives disjoint
/// sub-ranges that exactly cover `range`.
pub fn parallel_for<F>(range: Range<usize>, grain: usize, body: F)
where
    F: Fn(Range<usize>) + Sync,
{
    pool().parallel_for(range, grain, body);
}

/// Chunked map returning one `R` per chunk, **in chunk order**, so that a
/// subsequent sequential fold is deterministic regardless of which worker ran
/// which chunk.
pub fn parallel_map<R, F>(range: Range<usize>, grain: usize, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    pool().parallel_map(range, grain, body)
}

/// Deterministic parallel sum-style reduction over index chunks.
pub fn parallel_reduce<R, F, G>(
    range: Range<usize>,
    grain: usize,
    identity: R,
    body: F,
    fold: G,
) -> R
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
    G: Fn(R, R) -> R,
{
    pool()
        .parallel_map(range, grain, body)
        .into_iter()
        .fold(identity, fold)
}

/// Run two closures potentially in parallel and return both results.
pub fn join<RA, RB>(a: impl FnOnce() -> RA + Send, b: impl FnOnce() -> RB + Send) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    pool().join(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_for_covers_every_index_once() {
        let n = 10_001;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(0..n, 64, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_small_range_runs_inline() {
        let hits = AtomicUsize::new(0);
        parallel_for(0..10, 1024, |r| {
            hits.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn parallel_map_is_in_chunk_order() {
        let out = parallel_map(0..1000, 10, |r| r.start);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(out, sorted, "chunk results must be returned in index order");
    }

    #[test]
    fn parallel_reduce_matches_sequential() {
        let seq: u64 = (0..100_000u64).map(|i| i * i).sum();
        let par = parallel_reduce(
            0..100_000,
            128,
            0u64,
            |r| r.map(|i| (i as u64) * (i as u64)).sum::<u64>(),
            |a, b| a + b,
        );
        assert_eq!(seq, par);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 21 * 2, || "ok");
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn nested_parallelism_does_not_deadlock() {
        let total = AtomicUsize::new(0);
        parallel_for(0..8, 1, |outer| {
            for _ in outer {
                parallel_for(0..100, 10, |inner| {
                    total.fetch_add(inner.len(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 800);
    }

    #[test]
    #[should_panic(expected = "task in Long Exposure thread pool panicked")]
    fn panics_propagate_to_submitter() {
        parallel_for(0..4, 1, |r| {
            if r.start == 2 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn in_worker_flag_tracks_task_execution() {
        assert!(
            !crate::in_worker(),
            "submitting thread outside a task must not report in_worker"
        );
        let saw_worker = AtomicUsize::new(0);
        // Force enough chunks that at least one task runs through the pool
        // (worker thread or help-drain), where the flag must be set.
        parallel_for(0..64, 1, |_r| {
            if crate::in_worker() {
                saw_worker.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(
            saw_worker.load(Ordering::Relaxed) > 0,
            "pool tasks must observe in_worker() == true"
        );
        assert!(!crate::in_worker(), "flag must be restored after the scope");
    }

    #[test]
    fn empty_range_is_a_noop() {
        parallel_for(10..10, 1, |_| panic!("must not be called"));
        let v: Vec<usize> = parallel_map(0..0, 1, |r| r.start);
        assert!(v.is_empty());
    }
}
