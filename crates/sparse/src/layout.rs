//! Block-CSR layout lookup tables (the paper's Fig. 6 "lookup tables").
//!
//! A [`BlockCsr`] is the precomputed indexing structure for one sparse
//! pattern: row pointers + block-column indices (CSR order, which is also the
//! storage order of score-block data), plus a CSC view for the transposed
//! kernels in the backward pass. Building one costs a scan of the mask; the
//! whole point of the pattern pool is to do that *offline* and reuse it.

use crate::mask::BlockMask;
use std::sync::Arc;

/// Layout lookup table for a block-sparse matrix over an
/// `n_brows × n_bcols` grid of `block_size × block_size` tiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockCsr {
    pub block_size: usize,
    pub n_brows: usize,
    pub n_bcols: usize,
    /// CSR row pointers, length `n_brows + 1`.
    pub row_ptr: Vec<u32>,
    /// Block-column index per entry, sorted within each row.
    pub col_idx: Vec<u32>,
    /// CSC column pointers, length `n_bcols + 1`.
    pub col_ptr: Vec<u32>,
    /// Block-row index per CSC entry.
    pub row_idx: Vec<u32>,
    /// For each CSC entry, the CSR entry index owning the block data.
    pub csc_to_csr: Vec<u32>,
}

impl BlockCsr {
    /// Build the lookup table from a mask.
    pub fn from_mask(mask: &BlockMask, block_size: usize) -> Self {
        let n_brows = mask.rows();
        let n_bcols = mask.cols();
        let mut row_ptr = Vec::with_capacity(n_brows + 1);
        let mut col_idx = Vec::new();
        row_ptr.push(0u32);
        for r in 0..n_brows {
            for c in 0..n_bcols {
                if mask.get(r, c) {
                    col_idx.push(c as u32);
                }
            }
            row_ptr.push(col_idx.len() as u32);
        }
        // CSC view with back-pointers into CSR entry order.
        let nnzb = col_idx.len();
        let mut col_counts = vec![0u32; n_bcols + 1];
        for &c in &col_idx {
            col_counts[c as usize + 1] += 1;
        }
        for c in 0..n_bcols {
            col_counts[c + 1] += col_counts[c];
        }
        let col_ptr = col_counts.clone();
        let mut cursor = col_counts;
        let mut row_idx = vec![0u32; nnzb];
        let mut csc_to_csr = vec![0u32; nnzb];
        for r in 0..n_brows {
            for e in row_ptr[r]..row_ptr[r + 1] {
                let c = col_idx[e as usize] as usize;
                let pos = cursor[c] as usize;
                row_idx[pos] = r as u32;
                csc_to_csr[pos] = e;
                cursor[c] += 1;
            }
        }
        BlockCsr {
            block_size,
            n_brows,
            n_bcols,
            row_ptr,
            col_idx,
            col_ptr,
            row_idx,
            csc_to_csr,
        }
    }

    /// Number of active blocks.
    pub fn nnz_blocks(&self) -> usize {
        self.col_idx.len()
    }

    /// Length of the block-data buffer this layout addresses.
    pub fn data_len(&self) -> usize {
        self.nnz_blocks() * self.block_size * self.block_size
    }

    /// Active blocks / total grid blocks.
    pub fn density(&self) -> f32 {
        if self.n_brows * self.n_bcols == 0 {
            return 0.0;
        }
        self.nnz_blocks() as f32 / (self.n_brows * self.n_bcols) as f32
    }

    /// Entries (CSR order) of one block-row.
    pub fn row_entries(&self, br: usize) -> std::ops::Range<usize> {
        self.row_ptr[br] as usize..self.row_ptr[br + 1] as usize
    }

    /// Entries (CSC order) of one block-column.
    pub fn col_entries(&self, bc: usize) -> std::ops::Range<usize> {
        self.col_ptr[bc] as usize..self.col_ptr[bc + 1] as usize
    }

    /// Jaccard overlap of the active block sets of two layouts on the same
    /// grid: `|A ∩ B| / |A ∪ B|` over `(block-row, block-col)` coordinates
    /// (1.0 when both are empty). The shadowy-sparsity drift signal: plans
    /// whose layouts overlap highly can be reused across steps.
    pub fn overlap(&self, other: &BlockCsr) -> f32 {
        assert_eq!(
            (self.n_brows, self.n_bcols),
            (other.n_brows, other.n_bcols),
            "overlap needs matching grids"
        );
        let mut inter = 0usize;
        for br in 0..self.n_brows {
            let a = &self.col_idx[self.row_entries(br)];
            let b = &other.col_idx[other.row_entries(br)];
            // col_idx is sorted within a row: merge walk.
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        inter += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
        let union = self.nnz_blocks() + other.nnz_blocks() - inter;
        if union == 0 {
            1.0
        } else {
            inter as f32 / union as f32
        }
    }

    /// Reconstruct the mask (for tests / visualisation).
    pub fn to_mask(&self) -> BlockMask {
        let mut m = BlockMask::new(self.n_brows, self.n_bcols);
        for r in 0..self.n_brows {
            for e in self.row_entries(r) {
                m.set(r, self.col_idx[e] as usize, true);
            }
        }
        m
    }
}

/// The online-combined multi-head layout (paper Fig. 6, right).
///
/// Each head references a pooled (shared) `BlockCsr`; `data_offsets` place
/// every head's block data in one contiguous buffer. Combination is pure
/// offset arithmetic — the per-head lookup tables are reused as-is.
#[derive(Debug, Clone)]
pub struct MultiHeadLayout {
    pub heads: Vec<Arc<BlockCsr>>,
    /// Element offset of each head's block data in the shared buffer.
    pub data_offsets: Vec<usize>,
    /// Total elements across heads (`data_offsets.last() + last head len`).
    pub total_data_len: usize,
}

impl MultiHeadLayout {
    /// Combine per-head layouts by computing data offsets (prefix sum).
    pub fn combine(heads: Vec<Arc<BlockCsr>>) -> Self {
        let mut data_offsets = Vec::with_capacity(heads.len());
        let mut acc = 0usize;
        for h in &heads {
            data_offsets.push(acc);
            acc += h.data_len();
        }
        MultiHeadLayout {
            heads,
            data_offsets,
            total_data_len: acc,
        }
    }

    pub fn n_heads(&self) -> usize {
        self.heads.len()
    }

    /// Total active blocks across heads.
    pub fn total_blocks(&self) -> usize {
        self.heads.iter().map(|h| h.nnz_blocks()).sum()
    }

    /// Mean density across heads.
    pub fn mean_density(&self) -> f32 {
        if self.heads.is_empty() {
            return 0.0;
        }
        self.heads.iter().map(|h| h.density()).sum::<f32>() / self.heads.len() as f32
    }

    /// The slice bounds of head `h` inside the shared block-data buffer.
    pub fn head_data_range(&self, h: usize) -> std::ops::Range<usize> {
        let start = self.data_offsets[h];
        start..start + self.heads[h].data_len()
    }

    /// Block-weighted mean [`BlockCsr::overlap`] across heads (heads sharing
    /// the same pooled layout `Arc` short-circuit to a perfect match). 1.0
    /// when both layouts are empty.
    pub fn overlap(&self, other: &MultiHeadLayout) -> f32 {
        assert_eq!(self.n_heads(), other.n_heads(), "overlap needs equal heads");
        let mut weighted = 0.0f64;
        let mut weight = 0.0f64;
        for (a, b) in self.heads.iter().zip(&other.heads) {
            let w = (a.nnz_blocks() + b.nnz_blocks()).max(1) as f64;
            let o = if Arc::ptr_eq(a, b) {
                1.0
            } else {
                a.overlap(b) as f64
            };
            weighted += o * w;
            weight += w;
        }
        if weight == 0.0 {
            1.0
        } else {
            (weighted / weight) as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag_mask(n: usize) -> BlockMask {
        let mut m = BlockMask::square(n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    #[test]
    fn csr_overlap_is_jaccard_over_blocks() {
        let mut a = diag_mask(4);
        a.set(1, 0, true); // diag + one extra: 5 blocks
        let mut b = diag_mask(4);
        b.set(3, 0, true); // diag + a different extra: 5 blocks
        let ca = BlockCsr::from_mask(&a, 8);
        let cb = BlockCsr::from_mask(&b, 8);
        // Intersection = 4 (the diagonal), union = 6.
        assert!((ca.overlap(&cb) - 4.0 / 6.0).abs() < 1e-6);
        assert_eq!(ca.overlap(&ca), 1.0);
        let empty = BlockCsr::from_mask(&BlockMask::square(4), 8);
        assert_eq!(empty.overlap(&empty), 1.0);
        assert_eq!(ca.overlap(&empty), 0.0);
    }

    #[test]
    fn multi_head_overlap_weights_by_blocks() {
        let full = Arc::new(BlockCsr::from_mask(
            &{
                let mut m = BlockMask::square(4);
                for r in 0..4 {
                    for c in 0..=r {
                        m.set(r, c, true);
                    }
                }
                m
            },
            8,
        ));
        let diag = Arc::new(BlockCsr::from_mask(&diag_mask(4), 8));
        let a = MultiHeadLayout::combine(vec![full.clone(), diag.clone()]);
        let b = MultiHeadLayout::combine(vec![full.clone(), full.clone()]);
        // Head 0 shares an Arc (overlap 1); head 1 is diag-vs-full (4/10).
        let o = a.overlap(&b);
        assert!(o > 0.4 && o < 1.0, "overlap {o}");
        assert_eq!(a.overlap(&a), 1.0);
    }

    #[test]
    fn csr_roundtrips_mask() {
        let mut m = BlockMask::square(5);
        m.set(0, 0, true);
        m.set(2, 1, true);
        m.set(2, 2, true);
        m.set(4, 0, true);
        let csr = BlockCsr::from_mask(&m, 16);
        assert_eq!(csr.nnz_blocks(), 4);
        assert_eq!(csr.to_mask(), m);
    }

    #[test]
    fn csc_view_is_consistent() {
        let mut m = BlockMask::square(4);
        m.set(0, 0, true);
        m.set(1, 0, true);
        m.set(2, 1, true);
        m.set(3, 0, true);
        m.set(3, 3, true);
        let csr = BlockCsr::from_mask(&m, 8);
        // Every CSC entry must point back at a CSR entry with matching coords.
        for bc in 0..4 {
            for e in csr.col_entries(bc) {
                let br = csr.row_idx[e] as usize;
                let csr_e = csr.csc_to_csr[e] as usize;
                assert_eq!(csr.col_idx[csr_e] as usize, bc);
                assert!(csr.row_entries(br).contains(&csr_e));
            }
        }
        // Counts agree.
        let by_cols: usize = (0..4).map(|c| csr.col_entries(c).len()).sum();
        assert_eq!(by_cols, csr.nnz_blocks());
    }

    #[test]
    fn data_len_scales_with_block_size() {
        let csr = BlockCsr::from_mask(&diag_mask(3), 4);
        assert_eq!(csr.data_len(), 3 * 16);
        assert!((csr.density() - 3.0 / 9.0).abs() < 1e-6);
    }

    #[test]
    fn combine_offsets_are_prefix_sums() {
        let a = Arc::new(BlockCsr::from_mask(&diag_mask(2), 4)); // 2 blocks * 16
        let b = Arc::new(BlockCsr::from_mask(&diag_mask(3), 4)); // 3 blocks * 16
        let ml = MultiHeadLayout::combine(vec![a.clone(), b, a]);
        assert_eq!(ml.data_offsets, vec![0, 32, 80]);
        assert_eq!(ml.total_data_len, 112);
        assert_eq!(ml.total_blocks(), 7);
        assert_eq!(ml.head_data_range(1), 32..80);
    }

    #[test]
    fn empty_mask_layout() {
        let m = BlockMask::square(4);
        let csr = BlockCsr::from_mask(&m, 8);
        assert_eq!(csr.nnz_blocks(), 0);
        assert_eq!(csr.data_len(), 0);
        for r in 0..4 {
            assert!(csr.row_entries(r).is_empty());
        }
    }
}
