//! Mixed-precision differential tests: the reduced storage plans
//! (`F16Frozen`, `Int8Frozen`, `Nf4Frozen`, `Nm24Frozen`) must (a) actually shrink
//! measured backbone storage to their documented ratios, (b) leave the
//! sparse execution path numerically identical to an f32 model holding the
//! same (rounded) weights, (c) keep training dynamics within a documented
//! envelope of the f32 run, and (d) compose with the tenant-adapter
//! attach/extract/merge lifecycle.
//!
//! Documented tolerances (also stated in the README): over 24 LoRA training
//! steps on identical data, the per-step loss stays within **0.05 absolute**
//! of the f32 run for f16 storage, **0.10** for int8-block, **0.25** for
//! NF4-block, and **0.10** for the 2:4 structured-sparse plan (on
//! opt-sim-small). The backbone rounding perturbs the function once; it does not
//! compound, because the stored bits never change and all accumulation is
//! f32 — coarser codecs just start further from the f32 function.

use lx_model::{
    prompt_aware_targets, Adam, LossScaler, ModelConfig, Precision, StepRequest, TransformerModel,
};
use lx_peft::{PeftMethod, TenantAdapter};
use lx_sparse::NeuronBlockSet;
use lx_tensor::f16::round_f16;
use lx_tensor::memtrack;
use std::sync::Arc;

fn batch(model: &TransformerModel, n: usize, seq: usize, seed: u64) -> Vec<u32> {
    lx_tensor::rng::uniform_vec(n * seq, 0.0, model.config.vocab_size as f32, seed)
        .into_iter()
        .map(|v| v as u32)
        .collect()
}

#[test]
fn measured_backbone_footprint_is_at_most_055x() {
    let build = |precision: Precision| {
        let before = memtrack::current_bytes();
        let mut model = TransformerModel::new(ModelConfig::opt_sim_small(), 42);
        model.freeze_all();
        model.set_precision(precision);
        (model, memtrack::current_bytes() - before)
    };
    let (_m32, f32_bytes) = build(Precision::F32);
    let (mut m16, f16_bytes) = build(Precision::F16Frozen);
    let ratio = f16_bytes as f64 / f32_bytes as f64;
    assert!(
        ratio <= 0.55,
        "measured f16 backbone must be ≤0.55x of f32: {ratio} ({f16_bytes} vs {f32_bytes})"
    );
    // The dtype-accounted sum agrees with the allocator-tracked delta.
    assert_eq!(m16.param_storage_bytes(), f16_bytes);
}

#[test]
fn f16_storage_loss_curve_tracks_f32_within_documented_tolerance() {
    const TOLERANCE: f32 = 0.05; // documented: max per-step |Δloss|
    const STEPS: usize = 24; // ≥ 20 per the acceptance criterion
    let run = |precision: Precision| -> Vec<f32> {
        let mut model = TransformerModel::new(ModelConfig::test_tiny(), 7);
        model.freeze_all();
        model.set_precision(precision);
        PeftMethod::lora_default().apply(&mut model, 9);
        let mut opt = Adam::new(0.01);
        let mut losses = Vec::with_capacity(STEPS);
        for step in 0..STEPS {
            // Three fixed batches cycled, identical across both runs.
            let ids = batch(&model, 2, 8, 100 + (step % 3) as u64);
            let targets = prompt_aware_targets(&ids, 2, 8, 0);
            losses.push(
                model
                    .execute(StepRequest::train(&ids, &targets, 2, 8, &mut opt))
                    .loss,
            );
        }
        losses
    };
    let f32_curve = run(Precision::F32);
    let f16_curve = run(Precision::F16Frozen);
    let mut max_diff = 0.0f32;
    for (step, (a, b)) in f16_curve.iter().zip(&f32_curve).enumerate() {
        let d = (a - b).abs();
        assert!(
            d <= TOLERANCE,
            "step {step}: f16 loss {a} vs f32 loss {b} (|Δ| = {d} > {TOLERANCE})"
        );
        max_diff = max_diff.max(d);
    }
    // Both runs must actually train.
    assert!(f32_curve.last().unwrap() < f32_curve.first().unwrap());
    assert!(f16_curve.last().unwrap() < f16_curve.first().unwrap());
    println!("max per-step loss divergence over {STEPS} steps: {max_diff}");
}

/// The sparse MLP path under f16 storage decodes only the active slabs; the
/// result must equal an f32 model whose weights were pre-rounded through f16
/// — same function, different storage — on both forward and backward.
#[test]
fn sparse_path_on_f16_storage_matches_rounded_f32_model() {
    let cfg = ModelConfig::test_tiny();
    let mut half = TransformerModel::new(cfg.clone(), 13);
    let mut rounded = TransformerModel::new(cfg, 13); // same seed, same weights
    half.freeze_all();
    rounded.freeze_all();
    // Round every ≥2-D frozen param of `rounded` through f16 in place,
    // mirroring exactly what the storage demotion does to `half`.
    rounded.for_each_param(&mut |p| {
        if !p.trainable && p.shape().len() >= 2 {
            for v in p.value.as_mut_slice() {
                *v = round_f16(*v);
            }
        }
    });
    half.set_precision(Precision::F16Frozen);
    PeftMethod::lora_default().apply(&mut half, 21);
    PeftMethod::lora_default().apply(&mut rounded, 21);

    // A partial neuron-block plan on every layer forces the slab-decode
    // path (block 4 over d_ff = 32 → keep half the blocks).
    let mut plan = lx_model::SparsePlan::dense(half.config.n_layers);
    for layer in plan.layers.iter_mut() {
        layer.mlp = Some(Arc::new(NeuronBlockSet::from_indices(
            vec![0, 2, 5, 7],
            8,
            4,
        )));
    }
    let ids = batch(&half, 2, 8, 31);
    // Grad mode runs forward + cross-entropy backward in one request, so
    // both the decoded-slab forward and the §II-D sparse backward (which
    // reads the same decoded slabs) are compared.
    let targets = prompt_aware_targets(&ids, 2, 8, 0);
    let out_a = half.execute(
        StepRequest::grad(&ids, &targets, 2, 8)
            .plan(&plan)
            .keep_logits(),
    );
    let out_b = rounded.execute(
        StepRequest::grad(&ids, &targets, 2, 8)
            .plan(&plan)
            .keep_logits(),
    );
    let (ya, yb) = (out_a.logits.unwrap(), out_b.logits.unwrap());
    for (a, b) in ya.as_slice().iter().zip(yb.as_slice()) {
        assert!(
            (a - b).abs() <= 1e-4 * (1.0 + b.abs()),
            "sparse forward diverged: {a} vs {b}"
        );
    }
    let mut grads_a = Vec::new();
    half.for_each_param(&mut |p| {
        if let Some(g) = &p.grad {
            grads_a.push((p.name.clone(), g.as_slice().to_vec()));
        }
    });
    let mut checked = 0;
    rounded.for_each_param(&mut |p| {
        if let Some(g) = &p.grad {
            let (name, ga) = grads_a
                .iter()
                .find(|(n, _)| n == &p.name)
                .expect("grad present in both");
            for (x, y) in ga.iter().zip(g.as_slice()) {
                assert!(
                    (x - y).abs() <= 1e-3 * (1.0 + y.abs()),
                    "{name}: grad diverged: {x} vs {y}"
                );
            }
            checked += 1;
        }
    });
    assert!(checked > 0, "no gradients compared");
}

#[test]
fn measured_backbone_footprint_hits_quantized_gates() {
    let build = |precision: Precision| {
        let before = memtrack::current_bytes();
        let mut model = TransformerModel::new(ModelConfig::opt_sim_small(), 42);
        model.freeze_all();
        model.set_precision(precision);
        let measured = memtrack::current_bytes() - before;
        // The dtype-accounted sum agrees with the allocator-tracked delta.
        assert_eq!(model.param_storage_bytes(), measured, "{precision}");
        (model, measured)
    };
    let (_m32, f32_bytes) = build(Precision::F32);
    for (precision, gate) in [
        (Precision::Int8Frozen, 0.30),
        (Precision::Nf4Frozen, 0.17),
        // 2:4 matrices are 0.5625x (half the values plus one mask byte per
        // group of four); biases/LayerNorm staying f32 keeps it under 0.60.
        (Precision::Nm24Frozen, 0.60),
    ] {
        let (_m, bytes) = build(precision);
        let ratio = bytes as f64 / f32_bytes as f64;
        assert!(
            ratio <= gate,
            "measured {precision} backbone must be ≤{gate}x of f32: {ratio} \
             ({bytes} vs {f32_bytes})"
        );
    }
}

#[test]
fn quantized_storage_loss_curves_track_f32_within_envelope() {
    // Same shape as the f16 test, but the quantized arms train with dynamic
    // loss scaling (the QLoRA recipe this reproduces pairs a rounded
    // backbone with scaled adapter gradients). Coarser codecs sit further
    // from the f32 function, so their envelopes are wider — the property
    // under test is that the gap does not *compound* over steps.
    const STEPS: usize = 24;
    let run = |precision: Precision, scaled: bool| -> Vec<f32> {
        let mut model = TransformerModel::new(ModelConfig::test_tiny(), 7);
        model.freeze_all();
        model.set_precision(precision);
        PeftMethod::lora_default().apply(&mut model, 9);
        let mut opt = Adam::new(0.01);
        let mut scaler = LossScaler::default();
        let mut losses = Vec::with_capacity(STEPS);
        for step in 0..STEPS {
            let ids = batch(&model, 2, 8, 100 + (step % 3) as u64);
            let targets = prompt_aware_targets(&ids, 2, 8, 0);
            let req = StepRequest::train(&ids, &targets, 2, 8, &mut opt);
            let req = if scaled {
                req.loss_scale(&mut scaler)
            } else {
                req
            };
            let out = model.execute(req);
            assert!(!out.skipped, "{precision} step {step}: unexpected overflow");
            losses.push(out.loss);
        }
        assert_eq!(scaler.overflows(), 0, "{precision}");
        losses
    };
    let f32_curve = run(Precision::F32, false);
    for (precision, tolerance) in [
        (Precision::Int8Frozen, 0.10f32),
        (Precision::Nf4Frozen, 0.25f32),
    ] {
        let curve = run(precision, true);
        let mut max_diff = 0.0f32;
        for (step, (a, b)) in curve.iter().zip(&f32_curve).enumerate() {
            let d = (a - b).abs();
            assert!(
                d <= tolerance,
                "step {step}: {precision} loss {a} vs f32 loss {b} (|Δ| = {d} > {tolerance})"
            );
            max_diff = max_diff.max(d);
        }
        // The quantized run must actually train.
        assert!(
            curve.last().unwrap() < curve.first().unwrap(),
            "{precision}"
        );
        println!("{precision}: max per-step loss divergence over {STEPS} steps: {max_diff}");
    }
}

/// The quantized twin of the f16 sparse-path test, with a stronger claim:
/// because the slab decode is strictly elementwise over flat indices, the
/// quantized model's sparse execution must be **bit-identical** to an f32
/// model whose weights were pre-rounded through the codec up front — on
/// logits and on every gradient.
#[test]
fn sparse_path_on_quantized_storage_matches_rounded_f32_model_exactly() {
    for precision in [
        Precision::Int8Frozen,
        Precision::Nf4Frozen,
        Precision::Nm24Frozen,
    ] {
        let cfg = ModelConfig::test_tiny();
        let mut quant = TransformerModel::new(cfg.clone(), 13);
        let mut rounded = TransformerModel::new(cfg, 13); // same seed, same weights
        quant.freeze_all();
        rounded.freeze_all();
        // Round every ≥2-D frozen param of `rounded` through the codec in
        // place, mirroring exactly what the storage demotion does to `quant`.
        rounded.for_each_param(&mut |p| {
            if !p.trainable && p.shape().len() >= 2 {
                match precision {
                    Precision::Int8Frozen => lx_quant::q8::round_slice(p.value.as_mut_slice()),
                    Precision::Nf4Frozen => lx_quant::nf4::round_slice(p.value.as_mut_slice()),
                    Precision::Nm24Frozen => {
                        let cols = *p.shape().last().unwrap();
                        let rows = p.value.as_slice().len() / cols;
                        lx_tensor::nm::round_slice(p.value.as_mut_slice(), rows, cols, 2, 4);
                    }
                    _ => unreachable!(),
                }
            }
        });
        quant.set_precision(precision);
        PeftMethod::lora_default().apply(&mut quant, 21);
        PeftMethod::lora_default().apply(&mut rounded, 21);

        let mut plan = lx_model::SparsePlan::dense(quant.config.n_layers);
        for layer in plan.layers.iter_mut() {
            layer.mlp = Some(Arc::new(NeuronBlockSet::from_indices(
                vec![0, 2, 5, 7],
                8,
                4,
            )));
        }
        let ids = batch(&quant, 2, 8, 31);
        let targets = prompt_aware_targets(&ids, 2, 8, 0);
        let out_a = quant.execute(
            StepRequest::grad(&ids, &targets, 2, 8)
                .plan(&plan)
                .keep_logits(),
        );
        let out_b = rounded.execute(
            StepRequest::grad(&ids, &targets, 2, 8)
                .plan(&plan)
                .keep_logits(),
        );
        let (ya, yb) = (out_a.logits.unwrap(), out_b.logits.unwrap());
        for (i, (a, b)) in ya.as_slice().iter().zip(yb.as_slice()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{precision} logit {i}: {a} vs {b}"
            );
        }
        let mut grads_a = Vec::new();
        quant.for_each_param(&mut |p| {
            if let Some(g) = &p.grad {
                grads_a.push((p.name.clone(), g.as_slice().to_vec()));
            }
        });
        let mut checked = 0;
        rounded.for_each_param(&mut |p| {
            if let Some(g) = &p.grad {
                let (name, ga) = grads_a
                    .iter()
                    .find(|(n, _)| n == &p.name)
                    .expect("grad present in both");
                for (x, y) in ga.iter().zip(g.as_slice()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{precision} {name}: {x} vs {y}");
                }
                checked += 1;
            }
        });
        assert!(checked > 0, "no gradients compared");
    }
}

/// Slab-cache counters on a quantized backbone: steps that repeat a plan
/// must carry every slab over instead of re-running the nibble decode, and
/// a drifted plan re-decodes only what drifted in.
#[test]
fn carried_slabs_skip_re_dequant_on_quantized_backbone() {
    let mut m = TransformerModel::new(ModelConfig::test_tiny(), 19);
    m.freeze_all();
    m.set_precision(Precision::Nf4Frozen);
    PeftMethod::lora_default().apply(&mut m, 23);
    let n_layers = m.config.n_layers;
    let set = |blocks: Vec<u32>| {
        let mut plan = lx_model::SparsePlan::dense(n_layers);
        for layer in plan.layers.iter_mut() {
            layer.mlp = Some(Arc::new(NeuronBlockSet::from_indices(blocks.clone(), 8, 4)));
        }
        plan
    };
    let ids = batch(&m, 1, 8, 43);
    let targets = prompt_aware_targets(&ids, 1, 8, 0);
    let plan_a = set(vec![0, 2, 5]);
    m.execute(StepRequest::grad(&ids, &targets, 1, 8).plan(&plan_a));
    let (dec0, reused0) = m.slab_cache_stats();
    let layers = n_layers as u64;
    assert_eq!(dec0, 3 * layers, "first step decodes every active slab");
    assert_eq!(reused0, 0);
    // Unchanged plan: zero further decodes, every slab carried.
    m.execute(StepRequest::grad(&ids, &targets, 1, 8).plan(&plan_a));
    let (dec1, reused1) = m.slab_cache_stats();
    assert_eq!(dec1, dec0, "carried slabs must skip the nibble decode");
    assert_eq!(reused1, 3 * layers);
    // One block drifts: exactly one new decode per layer, two carried.
    let plan_b = set(vec![0, 2, 6]);
    m.execute(StepRequest::grad(&ids, &targets, 1, 8).plan(&plan_b));
    let (dec2, reused2) = m.slab_cache_stats();
    assert_eq!(dec2, dec1 + layers, "only the drifted-in slab decodes");
    assert_eq!(reused2, reused1 + 2 * layers);
}

#[test]
fn tenant_adapter_lifecycle_works_on_quantized_backbone() {
    for precision in [Precision::Int8Frozen, Precision::Nf4Frozen] {
        let mut m = TransformerModel::new(ModelConfig::test_tiny(), 29);
        m.freeze_all();
        m.set_precision(precision);
        let adapter = TenantAdapter::initialise(&mut m, PeftMethod::lora_default(), 3);
        assert_eq!(m.num_trainable(), 0);
        assert_eq!(m.precision(), precision, "detach keeps precision");
        adapter.attach_to(&mut m);
        let ids = batch(&m, 1, 8, 47);
        let before = m.execute(StepRequest::infer(&ids, 1, 8)).logits.unwrap();
        let extracted = TenantAdapter::extract_from(&mut m, PeftMethod::lora_default(), 3);
        lx_peft::detach(&mut m);
        extracted.attach_to(&mut m);
        let after = m.execute(StepRequest::infer(&ids, 1, 8)).logits.unwrap();
        assert_eq!(
            before.as_slice(),
            after.as_slice(),
            "{precision}: attach/extract on a quantized backbone must restore the function"
        );
        // Merging folds the adapter into (promoted) f32 weights; the merged
        // model must compute the same function the adapted one did.
        lx_peft::merge::merge_all(&mut m);
        let merged = m.execute(StepRequest::infer(&ids, 1, 8)).logits.unwrap();
        for (a, b) in merged.as_slice().iter().zip(after.as_slice()) {
            assert!(
                (a - b).abs() <= 1e-3 * (1.0 + b.abs()),
                "{precision}: merge changed the function: {a} vs {b}"
            );
        }
    }
}

#[test]
fn tenant_adapter_lifecycle_works_on_f16_backbone() {
    let mut m = TransformerModel::new(ModelConfig::test_tiny(), 17);
    m.freeze_all();
    m.set_precision(Precision::F16Frozen);
    let adapter = TenantAdapter::initialise(&mut m, PeftMethod::lora_default(), 3);
    assert_eq!(m.num_trainable(), 0);
    assert_eq!(
        m.precision(),
        Precision::F16Frozen,
        "detach keeps precision"
    );
    adapter.attach_to(&mut m);
    let ids = batch(&m, 1, 8, 41);
    let before = m.execute(StepRequest::infer(&ids, 1, 8)).logits.unwrap();
    let extracted = TenantAdapter::extract_from(&mut m, PeftMethod::lora_default(), 3);
    lx_peft::detach(&mut m);
    extracted.attach_to(&mut m);
    let after = m.execute(StepRequest::infer(&ids, 1, 8)).logits.unwrap();
    assert_eq!(
        before.as_slice(),
        after.as_slice(),
        "attach/extract on a half backbone must restore the exact function"
    );
}

/// SPP-style merge on a 2:4 backbone: folding trained adapter deltas into
/// the weights must re-apply the backbone's group masks, so every merged
/// matrix is provably still 2:4 — same mask bytes bit for bit, zero
/// violations when the captured mask is re-applied to the decoded result.
#[test]
fn merge_on_nm24_backbone_preserves_masks_bit_exactly() {
    let mut m = TransformerModel::new(ModelConfig::test_tiny(), 37);
    m.freeze_all();
    m.set_precision(Precision::Nm24Frozen);
    PeftMethod::lora_default().apply(&mut m, 41);
    let mut masks_before: Vec<(String, Vec<u8>)> = Vec::new();
    m.for_each_param(&mut |p| {
        if let Some(s) = &p.nm {
            masks_before.push((p.name.clone(), s.masks().to_vec()));
        }
    });
    assert!(!masks_before.is_empty(), "no N:M-stored backbone weights");
    // A few training steps make the LoRA deltas nonzero (lora_b starts at
    // zero, which would make the merge a trivial no-op).
    let mut opt = Adam::new(0.01);
    for step in 0..3 {
        let ids = batch(&m, 2, 8, 300 + step);
        let targets = prompt_aware_targets(&ids, 2, 8, 0);
        m.execute(StepRequest::train(&ids, &targets, 2, 8, &mut opt));
    }
    lx_peft::merge::merge_all(&mut m);
    let mut checked = 0;
    m.for_each_param(&mut |p| {
        let Some((_, expect)) = masks_before.iter().find(|(n, _)| n == &p.name) else {
            return;
        };
        let s =
            p.nm.as_ref()
                .unwrap_or_else(|| panic!("{}: merge must keep N:M storage", p.name));
        assert_eq!(s.masks(), &expect[..], "{}: mask bytes changed", p.name);
        // The decoded merged matrix obeys its own mask exactly: re-applying
        // it finds nothing left to zero.
        let mut dense = s.to_f32_vec();
        let (rows, cols) = (s.rows(), s.cols());
        assert_eq!(
            lx_tensor::nm::apply_mask(&mut dense, expect, rows, cols, lx_tensor::nm::NM_M),
            0,
            "{}: merged weights violate the 2:4 pattern",
            p.name
        );
        checked += 1;
    });
    assert_eq!(checked, masks_before.len(), "every N:M weight re-checked");
}

/// The N:M plan's training dynamics on opt-sim-small: 2:4 pruning perturbs
/// the function once, at demotion — the stored survivor bits never change
/// and all accumulation is f32, so the gap must not compound. Documented
/// envelope: over 24 LoRA steps the per-step loss stays within **0.10
/// absolute** of the dense f32 run.
#[test]
fn nm24_loss_curve_tracks_dense_f32_within_envelope() {
    const TOLERANCE: f32 = 0.10;
    const STEPS: usize = 24;
    let run = |precision: Precision| -> Vec<f32> {
        let mut model = TransformerModel::new(ModelConfig::opt_sim_small(), 7);
        model.freeze_all();
        model.set_precision(precision);
        PeftMethod::lora_default().apply(&mut model, 9);
        let mut opt = Adam::new(0.01);
        let mut losses = Vec::with_capacity(STEPS);
        for step in 0..STEPS {
            // Three fixed batches cycled, identical across both runs. Larger
            // batches than the tiny-model envelope tests: the one-time
            // pruning perturbation is compared per batch, so more tokens
            // average out the batch-specific component of the gap.
            let ids = batch(&model, 4, 16, 100 + (step % 3) as u64);
            let targets = prompt_aware_targets(&ids, 4, 16, 0);
            losses.push(
                model
                    .execute(StepRequest::train(&ids, &targets, 4, 16, &mut opt))
                    .loss,
            );
        }
        losses
    };
    let dense_curve = run(Precision::F32);
    let nm_curve = run(Precision::Nm24Frozen);
    let mut max_diff = 0.0f32;
    for (step, (a, b)) in nm_curve.iter().zip(&dense_curve).enumerate() {
        let d = (a - b).abs();
        assert!(
            d <= TOLERANCE,
            "step {step}: nm24 loss {a} vs dense loss {b} (|Δ| = {d} > {TOLERANCE})"
        );
        max_diff = max_diff.max(d);
    }
    // Both runs must actually train.
    assert!(dense_curve.last().unwrap() < dense_curve.first().unwrap());
    assert!(nm_curve.last().unwrap() < nm_curve.first().unwrap());
    println!("nm24: max per-step loss divergence over {STEPS} steps: {max_diff}");
}
