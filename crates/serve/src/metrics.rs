//! Service observability: queue depth, per-tenant rates, aggregate throughput.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Per-tenant accounting.
#[derive(Debug, Clone, Default)]
pub struct TenantMetrics {
    pub steps: u64,
    pub tokens: u64,
    /// Wall time spent inside this tenant's train steps.
    pub busy: Duration,
    /// Time spent attaching/detaching the tenant's adapter (the multi-tenant
    /// overhead the shared-backbone design must keep small).
    pub swap: Duration,
    pub slices: u64,
    pub last_loss: f32,
}

impl TenantMetrics {
    pub fn steps_per_sec(&self) -> f64 {
        rate(self.steps, self.busy)
    }

    pub fn tokens_per_sec(&self) -> f64 {
        rate(self.tokens, self.busy)
    }
}

fn rate(count: u64, d: Duration) -> f64 {
    let s = d.as_secs_f64();
    if s > 0.0 {
        count as f64 / s
    } else {
        0.0
    }
}

/// Live metrics owned by the scheduler; snapshot with [`ServeMetrics::snapshot`].
#[derive(Debug)]
pub struct ServeMetrics {
    started: Instant,
    pub queue_depth: usize,
    pub completed_jobs: u64,
    pub total_steps: u64,
    pub total_tokens: u64,
    pub total_busy: Duration,
    pub per_tenant: BTreeMap<String, TenantMetrics>,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics {
            started: Instant::now(),
            queue_depth: 0,
            completed_jobs: 0,
            total_steps: 0,
            total_tokens: 0,
            total_busy: Duration::ZERO,
            per_tenant: BTreeMap::new(),
        }
    }
}

impl ServeMetrics {
    pub fn record_slice(
        &mut self,
        tenant: &str,
        steps: u64,
        tokens: u64,
        busy: Duration,
        swap: Duration,
        last_loss: f32,
    ) {
        self.total_steps += steps;
        self.total_tokens += tokens;
        self.total_busy += busy;
        let t = self.per_tenant.entry(tenant.to_string()).or_default();
        t.steps += steps;
        t.tokens += tokens;
        t.busy += busy;
        t.swap += swap;
        t.slices += 1;
        t.last_loss = last_loss;
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            uptime: self.started.elapsed(),
            queue_depth: self.queue_depth,
            completed_jobs: self.completed_jobs,
            total_steps: self.total_steps,
            total_tokens: self.total_tokens,
            total_busy: self.total_busy,
            per_tenant: self.per_tenant.clone(),
        }
    }
}

/// Immutable view of the service's counters at one instant.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    pub uptime: Duration,
    pub queue_depth: usize,
    pub completed_jobs: u64,
    pub total_steps: u64,
    pub total_tokens: u64,
    pub total_busy: Duration,
    pub per_tenant: BTreeMap<String, TenantMetrics>,
}

impl MetricsSnapshot {
    /// Aggregate steps/sec over service wall time (includes scheduling gaps).
    pub fn aggregate_steps_per_sec(&self) -> f64 {
        rate(self.total_steps, self.uptime)
    }

    /// Aggregate tokens/sec over service wall time.
    pub fn aggregate_tokens_per_sec(&self) -> f64 {
        rate(self.total_tokens, self.uptime)
    }

    /// Fraction of wall time the backbone was doing tenant work.
    pub fn utilisation(&self) -> f64 {
        let up = self.uptime.as_secs_f64();
        if up > 0.0 {
            (self.total_busy.as_secs_f64() / up).min(1.0)
        } else {
            0.0
        }
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "serve: {} tenants | queue {} | {} steps | {:.1} steps/s | {:.0} tok/s | util {:.0}%",
            self.per_tenant.len(),
            self.queue_depth,
            self.total_steps,
            self.aggregate_steps_per_sec(),
            self.aggregate_tokens_per_sec(),
            100.0 * self.utilisation(),
        )?;
        for (tenant, m) in &self.per_tenant {
            writeln!(
                f,
                "  {tenant:<16} {:>6} steps  {:>8.1} steps/s  {:>10.0} tok/s  loss {:.4}  swap {:.1}ms",
                m.steps,
                m.steps_per_sec(),
                m.tokens_per_sec(),
                m.last_loss,
                m.swap.as_secs_f64() * 1e3 / m.slices.max(1) as f64,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_accumulate() {
        let mut m = ServeMetrics::default();
        m.record_slice("a", 4, 64, Duration::from_millis(100), Duration::ZERO, 2.0);
        m.record_slice("a", 4, 64, Duration::from_millis(100), Duration::ZERO, 1.5);
        m.record_slice("b", 2, 32, Duration::from_millis(50), Duration::ZERO, 3.0);
        let snap = m.snapshot();
        assert_eq!(snap.total_steps, 10);
        assert_eq!(snap.total_tokens, 160);
        let a = &snap.per_tenant["a"];
        assert_eq!(a.steps, 8);
        assert_eq!(a.slices, 2);
        assert!((a.last_loss - 1.5).abs() < 1e-6);
        assert!((a.steps_per_sec() - 40.0).abs() < 1.0);
        assert!(!format!("{snap}").is_empty());
    }

    #[test]
    fn zero_time_rates_are_zero() {
        let t = TenantMetrics::default();
        assert_eq!(t.steps_per_sec(), 0.0);
        assert_eq!(t.tokens_per_sec(), 0.0);
    }
}
