//! Criterion micro-benchmarks backing the operator-level figures:
//! dense GEMM baselines, SDD/DSD block kernels at several sparsity levels
//! (Fig. 12a), neuron-wise MLP kernels (Fig. 12b), the two-stage pattern
//! pool's online combination vs from-scratch layout builds (the §VI-A
//! ablation), and predictor overhead (§V-C).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lx_sparse::attention::{block_row_softmax, dsd, sdd_nt, CausalFill};
use lx_sparse::neuron::{fc1_forward, fc2_forward};
use lx_sparse::{BlockCsr, BlockMask, NeuronBlockSet, PatternPool, PatternSpec};
use lx_tensor::gemm::{gemm, gemm_nt};
use lx_tensor::rng::randn_vec;
use std::hint::black_box;

const S: usize = 256;
const DH: usize = 64;
const BLOCK: usize = 32;

fn mask_with_density(n: usize, density: f64, seed: u64) -> BlockMask {
    use rand::Rng;
    let mut rng = lx_tensor::rng::seeded(seed);
    let mut m = BlockMask::square(n);
    for i in 0..n {
        m.set(i, i, true);
        for j in 0..i {
            if rng.gen::<f64>() < density {
                m.set(i, j, true);
            }
        }
    }
    m
}

fn bench_gemm(c: &mut Criterion) {
    let a = randn_vec(S * DH, 1.0, 1);
    let b = randn_vec(DH * S, 1.0, 2);
    c.bench_function("gemm_256x64x256", |bch| {
        bch.iter(|| {
            let mut out = vec![0.0f32; S * S];
            gemm(S, DH, S, black_box(&a), black_box(&b), &mut out, 0.0);
            black_box(out)
        })
    });
}

fn bench_attention_ops(c: &mut Criterion) {
    let n = S / BLOCK;
    let q = randn_vec(S * DH, 1.0, 3);
    let k = randn_vec(S * DH, 1.0, 4);
    let v = randn_vec(S * DH, 1.0, 5);
    let mut group = c.benchmark_group("sparse_attention");
    // Dense baseline.
    group.bench_function("dense", |bch| {
        bch.iter(|| {
            let mut p = vec![0.0f32; S * S];
            gemm_nt(S, DH, S, black_box(&q), black_box(&k), &mut p, 0.0);
            lx_tensor::ops::softmax_rows(&mut p, S);
            let mut o = vec![0.0f32; S * DH];
            gemm(S, S, DH, &p, &v, &mut o, 0.0);
            black_box(o)
        })
    });
    for sparsity in [0.5f64, 0.8, 0.95] {
        let layout = BlockCsr::from_mask(&mask_with_density(n, 1.0 - sparsity, 9), BLOCK);
        group.bench_with_input(
            BenchmarkId::new("sdd_softmax_dsd", format!("sparsity_{sparsity}")),
            &layout,
            |bch, layout| {
                bch.iter(|| {
                    let mut p = vec![0.0f32; layout.data_len()];
                    sdd_nt(&q, &k, S, DH, 0.125, layout, CausalFill::NegInf, &mut p);
                    block_row_softmax(&mut p, layout);
                    let mut o = vec![0.0f32; S * DH];
                    dsd(&p, &v, S, DH, layout, &mut o);
                    black_box(o)
                })
            },
        );
    }
    group.finish();
}

fn bench_neuron_ops(c: &mut Criterion) {
    let (rows, d, d_ff) = (256usize, 256usize, 1024usize);
    let x = randn_vec(rows * d, 1.0, 6);
    let w1t = randn_vec(d_ff * d, 0.05, 7);
    let w2 = randn_vec(d_ff * d, 0.05, 8);
    let n_blk = d_ff / BLOCK;
    let mut group = c.benchmark_group("neuron_mlp");
    for keep_frac in [1.0f64, 0.5, 0.25] {
        let keep = ((n_blk as f64 * keep_frac) as usize).max(1);
        let set = NeuronBlockSet::from_indices((0..keep as u32).collect(), n_blk, BLOCK);
        group.bench_with_input(
            BenchmarkId::new("fc1_relu_fc2", format!("density_{keep_frac}")),
            &set,
            |bch, set| {
                bch.iter(|| {
                    let width = set.active_neurons();
                    let mut z = vec![0.0f32; rows * width];
                    fc1_forward(&x, rows, &w1t, d, None, set, &mut z);
                    lx_tensor::ops::relu_inplace(&mut z);
                    let mut y = vec![0.0f32; rows * d];
                    fc2_forward(&z, rows, &w2, d, None, set, &mut y);
                    black_box(y)
                })
            },
        );
    }
    group.finish();
}

fn bench_pattern_pool(c: &mut Criterion) {
    // The §VI-A ablation: online combination from the pooled LUTs vs
    // rebuilding every head's layout from its mask at runtime.
    let n = 32;
    let pool = PatternPool::default_pool(BLOCK, &[n]);
    let specs: Vec<PatternSpec> = (0..16)
        .map(|h| {
            if h % 2 == 0 {
                PatternSpec::LocalGlobal { w: 2, g: 1 }
            } else {
                PatternSpec::LocalWindow { w: 2 }
            }
        })
        .collect();
    let masks: Vec<BlockMask> = specs.iter().map(|s| s.mask(n)).collect();
    let mut group = c.benchmark_group("pattern_pool");
    group.bench_function("online_combine_pooled", |bch| {
        bch.iter(|| black_box(pool.combine(n, black_box(&specs))))
    });
    group.bench_function("rebuild_layouts_from_masks", |bch| {
        bch.iter(|| {
            let layouts: Vec<BlockCsr> = masks
                .iter()
                .map(|m| BlockCsr::from_mask(m, BLOCK))
                .collect();
            black_box(layouts)
        })
    });
    group.finish();
}

fn bench_predictor(c: &mut Criterion) {
    use long_exposure::predictor::{AttnPredictor, MlpPredictor};
    let (d, heads, rank) = (256usize, 8usize, 8usize);
    let attn = AttnPredictor::new(d, heads, rank, 1);
    let mlp = MlpPredictor::new(d, 1024, BLOCK, 2);
    let x = lx_tensor::Tensor::randn(&[S, d], 1.0, 3);
    let mut group = c.benchmark_group("predictor_overhead");
    group.bench_function("attn_predict_masks", |bch| {
        bch.iter(|| black_box(attn.predict_masks(black_box(&x), 1, S, BLOCK)))
    });
    group.bench_function("mlp_predict_set", |bch| {
        bch.iter(|| black_box(mlp.predict(black_box(&x))))
    });
    group.finish();
}

fn criterion_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench_gemm, bench_attention_ops, bench_neuron_ops, bench_pattern_pool, bench_predictor
}
criterion_main!(benches);
