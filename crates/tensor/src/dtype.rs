//! Element dtypes and their storage sizes.
//!
//! The single source of truth for "how many bytes does one element occupy":
//! the tensor types register these sizes with [`memtrack`](crate::memtrack),
//! and `lx-runtime`'s memory/cost models read them from here instead of
//! hard-coding byte counts — so the simulator cannot drift from what the
//! runtime actually stores.
//!
//! The block-quantized dtypes are *not* a whole number of bytes per element
//! (NF4 packs two codes per byte, and both carry one f32 scale per
//! 64-element block), so exact accounting goes through [`Dtype::bytes_for`];
//! [`Dtype::size_bytes`] stays for the byte-per-element dtypes and reports
//! the rounded-up code byte for the quantized ones.

/// Storage precision of a tensor buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dtype {
    /// IEEE binary32 — all compute, activations, gradients, optimizer state.
    F32,
    /// IEEE binary16 — frozen-parameter storage ([`HalfTensor`]).
    ///
    /// [`HalfTensor`]: crate::f16::HalfTensor
    F16,
    /// Symmetric int8 with one f32 absmax scale per 64-element block
    /// ([`QuantTensor`] storage; codecs in `lx-quant`).
    ///
    /// [`QuantTensor`]: crate::quant::QuantTensor
    I8Block,
    /// NF4 4-bit normal-float codes, two per byte, one f32 absmax scale per
    /// 64-element block ([`QuantTensor`] storage).
    ///
    /// [`QuantTensor`]: crate::quant::QuantTensor
    Nf4Block,
    /// 2:4 structured sparsity: per row-group of 4 elements keep 2, stored
    /// as compacted f32s plus one index-bitmask byte per group
    /// ([`NmTensor`] storage; codec in `lx-quant`). Kept values are stored
    /// bit-exactly — the dtype is lossless on survivors.
    ///
    /// [`NmTensor`]: crate::nm::NmTensor
    Nm24,
}

impl Dtype {
    /// Bytes per element, rounded **up** for the sub-byte/blocked dtypes
    /// (one code byte; excludes block scales). Exact totals — including NF4
    /// nibble packing and the per-block scales — come from
    /// [`bytes_for`](Self::bytes_for).
    pub const fn size_bytes(self) -> usize {
        match self {
            Dtype::F32 => 4,
            Dtype::F16 => 2,
            Dtype::I8Block | Dtype::Nf4Block => 1,
            // 2 f32 slots + 1 mask byte per 4 elements ≈ 2.25 bytes/elem,
            // rounded up.
            Dtype::Nm24 => 3,
        }
    }

    /// Exact storage bytes for a buffer of `numel` elements, including the
    /// per-block f32 scales of the quantized dtypes.
    pub const fn bytes_for(self, numel: usize) -> usize {
        match self {
            Dtype::F32 => 4 * numel,
            Dtype::F16 => 2 * numel,
            Dtype::I8Block => numel + lx_quant::n_blocks(numel) * 4,
            Dtype::Nf4Block => lx_quant::nibble_bytes(numel) + lx_quant::n_blocks(numel) * 4,
            // Flat view (one logical row): 2 compacted f32s per full group
            // of 4 plus one mask byte per group. Exact whenever the matrix
            // row length is a multiple of 4 (tail groups are per-row;
            // `NmTensor::bytes` accounts for them exactly).
            Dtype::Nm24 => {
                lx_quant::nm::slots_per_row(numel, 2, 4) * 4
                    + lx_quant::nm::groups_per_row(numel, 4)
            }
        }
    }

    pub const fn name(self) -> &'static str {
        match self {
            Dtype::F32 => "f32",
            Dtype::F16 => "f16",
            Dtype::I8Block => "i8-block",
            Dtype::Nf4Block => "nf4-block",
            Dtype::Nm24 => "nm-2:4",
        }
    }
}

impl std::fmt::Display for Dtype {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_storage_types() {
        assert_eq!(Dtype::F32.size_bytes(), std::mem::size_of::<f32>());
        assert_eq!(Dtype::F16.size_bytes(), std::mem::size_of::<u16>());
        assert_eq!(Dtype::F16.to_string(), "f16");
        assert_eq!(Dtype::I8Block.to_string(), "i8-block");
        assert_eq!(Dtype::Nf4Block.to_string(), "nf4-block");
    }

    #[test]
    fn bytes_for_counts_codes_and_scales_exactly() {
        assert_eq!(Dtype::F32.bytes_for(10), 40);
        assert_eq!(Dtype::F16.bytes_for(10), 20);
        // 64 codes + 1 scale.
        assert_eq!(Dtype::I8Block.bytes_for(64), 64 + 4);
        // Tail block: 65 codes + 2 scales.
        assert_eq!(Dtype::I8Block.bytes_for(65), 65 + 8);
        // 32 packed bytes + 1 scale; odd length rounds the nibbles up.
        assert_eq!(Dtype::Nf4Block.bytes_for(64), 32 + 4);
        assert_eq!(Dtype::Nf4Block.bytes_for(65), 33 + 8);
        assert_eq!(Dtype::Nf4Block.bytes_for(0), 0);
    }

    #[test]
    fn quant_compression_ratios_beat_the_fig8_gates() {
        // The ISSUE gates: int8 ≤ 0.30x and nf4 ≤ 0.17x of f32 for
        // matrix-sized buffers.
        let n = 256 * 1024;
        let f32b = Dtype::F32.bytes_for(n) as f64;
        assert!(Dtype::I8Block.bytes_for(n) as f64 / f32b < 0.27);
        assert!(Dtype::Nf4Block.bytes_for(n) as f64 / f32b < 0.15);
    }

    #[test]
    fn nm24_bytes_are_nine_per_sixteen_of_f32() {
        // 2 kept f32s (8 bytes) + 1 mask byte per group of 4 = 9 bytes where
        // f32 spends 16: the 0.5625x the fig8 smoke gate checks.
        assert_eq!(Dtype::Nm24.bytes_for(4), 9);
        assert_eq!(Dtype::Nm24.bytes_for(1024), 1024 / 4 * 9);
        assert_eq!(Dtype::Nm24.bytes_for(0), 0);
        let n = 256 * 1024;
        let ratio = Dtype::Nm24.bytes_for(n) as f64 / Dtype::F32.bytes_for(n) as f64;
        assert_eq!(ratio, 0.5625);
        assert_eq!(Dtype::Nm24.to_string(), "nm-2:4");
        assert_eq!(Dtype::Nm24.size_bytes(), 3);
    }
}
