//! Half-precision (IEEE binary16) storage.
//!
//! The paper fine-tunes with mixed precision: FP16 parameters, FP32 compute
//! (§VII-A). This reproduction keeps all *arithmetic* in f32 (CPU half
//! arithmetic would distort timings) but stores frozen parameters as
//! [`HalfTensor`] — contiguous `u16` bits, 2 bytes per element, registered
//! with [`memtrack`] at their true footprint — and decodes
//! to f32 on load. The fused f16-input GEMMs in `lx-kernels` consume the raw
//! bits directly, so the decode happens inside the pack routines rather than
//! via a materialised f32 copy.
//!
//! The conversion primitives are canonical in [`lx_kernels::half`] (the
//! kernels must agree with the storage layer on rounding); this module
//! re-exports them for callers that only depend on `lx-tensor`.

use crate::memtrack;
use crate::Tensor;

pub use lx_kernels::half::{f16_bits_to_f32, f32_to_f16_bits, round_f16};

/// A tensor stored at half precision: row-major `u16` f16 bits plus a shape.
///
/// Reads decompress to f32; the buffer reports its true (2-byte-per-element)
/// footprint to the memory tracker, which is what makes the Fig. 8 measured
/// memory experiments honest about mixed-precision storage.
#[derive(Debug)]
pub struct HalfTensor {
    bits: Vec<u16>,
    shape: Vec<usize>,
}

impl HalfTensor {
    /// Encode an f32 slice (round-to-nearest-even). Panics if the length
    /// does not match the shape.
    pub fn from_f32(values: &[f32], shape: &[usize]) -> Self {
        let len: usize = shape.iter().product();
        assert_eq!(
            values.len(),
            len,
            "data length {} does not match shape {:?}",
            values.len(),
            shape
        );
        let bits = lx_kernels::half::encode_slice(values);
        memtrack::register(bits.capacity() * 2);
        HalfTensor {
            bits,
            shape: shape.to_vec(),
        }
    }

    /// Encode a dense tensor into half storage.
    pub fn from_tensor(t: &Tensor) -> Self {
        Self::from_f32(t.as_slice(), t.shape())
    }

    /// Decode the whole buffer into a fresh f32 tensor.
    pub fn to_tensor(&self) -> Tensor {
        let mut out = Tensor::zeros(&self.shape);
        lx_kernels::half::decode_slice(&self.bits, out.as_mut_slice());
        out
    }

    /// Decode the whole buffer into a plain `Vec<f32>`.
    pub fn to_f32_vec(&self) -> Vec<f32> {
        self.bits.iter().map(|&b| f16_bits_to_f32(b)).collect()
    }

    /// Raw f16 bits (row-major) — what the fused f16 GEMMs consume.
    pub fn bits(&self) -> &[u16] {
        &self.bits
    }

    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    pub fn len(&self) -> usize {
        self.bits.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Number of rows when viewed as 2-D (product of all but the last dim).
    pub fn rows(&self) -> usize {
        if self.shape.is_empty() {
            0
        } else {
            self.len() / self.cols()
        }
    }

    /// Size of the last dimension.
    pub fn cols(&self) -> usize {
        *self.shape.last().unwrap_or(&0)
    }

    /// Raw bits of row `r` of the 2-D view.
    pub fn row_bits(&self, r: usize) -> &[u16] {
        let c = self.cols();
        &self.bits[r * c..(r + 1) * c]
    }

    /// Decode rows `[r0, r0 + n_rows)` of the 2-D view into `out`
    /// (`n_rows × cols`, contiguous). This is the load path for embedding
    /// lookups and active-neuron-slab gathers.
    pub fn decode_rows(&self, r0: usize, n_rows: usize, out: &mut [f32]) {
        let c = self.cols();
        lx_kernels::half::decode_slice(&self.bits[r0 * c..(r0 + n_rows) * c], out);
    }

    /// Bytes occupied by the half-precision storage.
    pub fn bytes(&self) -> usize {
        self.bits.len() * 2
    }
}

impl Clone for HalfTensor {
    fn clone(&self) -> Self {
        let bits = self.bits.clone();
        memtrack::register(bits.capacity() * 2);
        HalfTensor {
            bits,
            shape: self.shape.clone(),
        }
    }
}

impl Drop for HalfTensor {
    fn drop(&mut self) {
        memtrack::unregister(self.bits.capacity() * 2);
    }
}

impl PartialEq for HalfTensor {
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape && self.bits == other.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_values_roundtrip() {
        for &v in &[0.0f32, 1.0, -1.0, 0.5, 2.0, -0.25, 65504.0] {
            assert_eq!(round_f16(v), v, "{v} should be exactly representable");
        }
    }

    #[test]
    fn signed_zero_preserved() {
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
    }

    #[test]
    fn overflow_saturates_to_inf() {
        assert!(round_f16(1e6).is_infinite());
        assert!(round_f16(-1e6).is_infinite() && round_f16(-1e6) < 0.0);
    }

    #[test]
    fn nan_stays_nan() {
        assert!(round_f16(f32::NAN).is_nan());
    }

    #[test]
    fn nan_payload_bits_survive_where_representable() {
        // A signalling-ish NaN whose payload fits the 10-bit f16 mantissa
        // after the 13-bit truncation: the kept payload bits must survive,
        // and the quiet bit is forced so the result cannot become an inf.
        let payload = 0x0015u32 << 13; // bits 13.. of the f32 mantissa
        let nan = f32::from_bits(0x7f80_0000 | payload);
        let bits = f32_to_f16_bits(nan);
        assert_eq!(bits & 0x7c00, 0x7c00, "exponent must stay all-ones");
        assert_ne!(bits & 0x03ff, 0, "payload must not vanish");
        assert_eq!(bits & 0x0015, 0x0015, "kept payload bits preserved");
        assert!(f16_bits_to_f32(bits).is_nan());
    }

    #[test]
    fn subnormals_roundtrip_with_tolerance() {
        let v = 3.0e-6f32; // subnormal range of f16 (min normal ≈ 6.1e-5)
        let r = round_f16(v);
        assert!(r > 0.0 && (r - v).abs() / v < 0.05, "{v} -> {r}");
    }

    #[test]
    fn subnormal_sweep_stays_monotone_and_bounded() {
        // Seeded sweep across the entire f16 subnormal band
        // [2^-24, 2^-14): the round-trip must stay within half a subnormal
        // step (2^-25) and be monotone non-decreasing in the input.
        let step = 2.0_f32.powi(-24);
        let vals = crate::rng::uniform_vec(2_000, step, 2.0_f32.powi(-14), 0xF16);
        let mut pairs: Vec<(f32, f32)> = vals.iter().map(|&v| (v, round_f16(v))).collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut prev = 0.0f32;
        for (v, r) in pairs {
            assert!((r - v).abs() <= step / 2.0 + f32::EPSILON, "{v} -> {r}");
            assert!(
                r >= prev,
                "round-trip must be monotone: {v} -> {r} < {prev}"
            );
            prev = r;
        }
    }

    #[test]
    fn tiny_underflows_to_zero() {
        assert_eq!(round_f16(1e-9), 0.0);
    }

    #[test]
    fn roundtrip_error_is_bounded() {
        let vals = crate::rng::randn_vec(10_000, 1.0, 99);
        for v in vals {
            let r = round_f16(v);
            // Half has ~3.3 decimal digits: relative error < 2^-10.
            assert!((r - v).abs() <= v.abs() * 1e-3 + 1e-7, "{v} -> {r}");
        }
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between two f16 values; ties-to-even
        // keeps the even mantissa (1.0).
        let v = 1.0 + 2.0_f32.powi(-11);
        assert_eq!(round_f16(v), 1.0);
        // 1 + 3*2^-11 is halfway between mantissas 1 and 2; even mantissa (2)
        // wins, giving 1 + 2^-9.
        let v2 = 1.0 + 3.0 * 2.0_f32.powi(-11);
        assert_eq!(round_f16(v2), 1.0 + 2.0_f32.powi(-9));
    }

    #[test]
    fn tie_sweep_lands_on_even_mantissas() {
        // Construct exact ties at many scales: the f16 mantissa step is
        // 2^-10, so `(1 + (mant + ½)·2^-10)·2^e` sits exactly halfway
        // between mantissas `mant` and `mant+1` (representable exactly in
        // f32). RNE must pick whichever neighbour has an even mantissa.
        for e in [-3i32, -1, 0, 1, 4, 9] {
            for mant in [0u32, 1, 2, 5, 100, 511, 1022] {
                let lo = (1.0 + mant as f32 * 2.0_f32.powi(-10)) * 2.0_f32.powi(e);
                let hi = (1.0 + (mant + 1) as f32 * 2.0_f32.powi(-10)) * 2.0_f32.powi(e);
                let tie = (1.0 + (2 * mant + 1) as f32 * 2.0_f32.powi(-11)) * 2.0_f32.powi(e);
                let r = round_f16(tie);
                let expect = if mant % 2 == 0 { lo } else { hi };
                assert_eq!(r, expect, "tie at e={e} mant={mant}: {tie} -> {r}");
            }
        }
    }

    #[test]
    fn half_tensor_accounting_and_roundtrip() {
        let vals = vec![1.0f32, 2.5, -3.25, 0.0];
        let before = crate::memtrack::current_bytes();
        let buf = HalfTensor::from_f32(&vals, &[2, 2]);
        assert_eq!(buf.bytes(), 8);
        assert_eq!(crate::memtrack::current_bytes() - before, 8);
        assert_eq!(buf.to_f32_vec(), vals);
        assert_eq!(buf.rows(), 2);
        assert_eq!(buf.cols(), 2);
        let t = buf.to_tensor();
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.as_slice(), &vals[..]);
        drop(t);
        drop(buf);
        assert_eq!(crate::memtrack::current_bytes(), before);
    }

    #[test]
    fn decode_rows_matches_full_decode() {
        let t = Tensor::randn(&[6, 5], 1.0, 7);
        let h = HalfTensor::from_tensor(&t);
        let full = h.to_f32_vec();
        let mut window = vec![0.0f32; 2 * 5];
        h.decode_rows(3, 2, &mut window);
        assert_eq!(window, &full[15..25]);
        assert_eq!(h.row_bits(1).len(), 5);
    }

    #[test]
    fn clone_registers_its_own_buffer() {
        let before = crate::memtrack::current_bytes();
        let a = HalfTensor::from_f32(&[1.0; 10], &[10]);
        let b = a.clone();
        assert_eq!(crate::memtrack::current_bytes() - before, 2 * 10 * 2);
        assert_eq!(a, b);
        drop(a);
        drop(b);
        assert_eq!(crate::memtrack::current_bytes(), before);
    }
}
