//! Cross-crate observability integration: StepOutcome↔span equivalence,
//! concurrent span recording from worker threads, histogram percentile
//! accuracy against an exact oracle, and the serve-side trace dump.
//!
//! A trace session is process-global (one active ring), so every test that
//! starts one serialises on [`obs_lock`].

use lx_model::{
    prompt_aware_targets, LayerPlan, LayerPlanner, ModelConfig, PlanSource, Sgd, StepRequest,
    TransformerModel,
};
use lx_obs::{registry, validate_chrome_trace_file, Histogram, Span, SpanRecord, TraceSession};
use lx_sparse::{BlockCsr, MultiHeadLayout, NeuronBlockSet, PatternSpec};
use lx_tensor::Tensor;
use std::sync::{Arc, Mutex, MutexGuard};

const BATCH: usize = 2;
const SEQ: usize = 8;
const BLOCK: usize = 4;

fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Deterministic inline planner: causal attention, odd neuron blocks.
struct FixedPlanner;

impl LayerPlanner for FixedPlanner {
    fn plan_layer(&mut self, _layer: usize, _x: &Tensor, _b: usize, seq: usize) -> LayerPlan {
        let d_ff = ModelConfig::test_tiny().d_ff;
        let csr = Arc::new(BlockCsr::from_mask(
            &PatternSpec::Causal.mask(seq / BLOCK),
            BLOCK,
        ));
        let n_blk = d_ff / BLOCK;
        LayerPlan {
            attn: Some(Arc::new(MultiHeadLayout::combine(vec![csr; 2]))),
            mlp: Some(Arc::new(NeuronBlockSet::from_indices(
                (0..n_blk as u32).filter(|i| i % 2 == 1).collect(),
                n_blk,
                BLOCK,
            ))),
        }
    }
}

fn dur_sum(records: &[&SpanRecord]) -> u64 {
    records.iter().map(|r| r.dur_ns).sum()
}

/// The acceptance criterion for the tracing layer: the per-phase durations a
/// [`lx_model::StepOutcome`] reports are *bit-identical* to the spans the
/// same step published — fig10/fig11 columns and the Chrome trace can never
/// disagree.
#[test]
fn step_outcome_phase_durations_equal_span_durations() {
    let _guard = obs_lock();
    let mut model = TransformerModel::new(ModelConfig::test_tiny(), 7);
    let ids: Vec<u32> = (0..(BATCH * SEQ) as u32).map(|i| i % 64).collect();
    let ids2: Vec<u32> = ids.iter().map(|i| (i + 13) % 64).collect();
    let targets = prompt_aware_targets(&ids, BATCH, SEQ, 0);
    let targets2 = prompt_aware_targets(&ids2, BATCH, SEQ, 0);
    let mut opt = Sgd::new(0.01);
    let mut planner = FixedPlanner;

    let session = TraceSession::start().expect("no other session active");
    let out = model.execute(
        StepRequest::train(&ids, &targets, BATCH, SEQ, &mut opt)
            .micro_batch(&ids2, &targets2)
            .plan_source(PlanSource::Planner(&mut planner)),
    );
    let trace = session.finish();
    assert_eq!(trace.dropped, 0, "ring must not wrap in a one-step trace");

    let steps = trace.named("model.step");
    let micro = trace.named("model.micro_batch");
    let fwd = trace.named("model.forward_pass");
    let predict = trace.named("model.predict");
    let backward = trace.named("model.backward");
    let optim = trace.named("model.optimizer");
    assert_eq!(steps.len(), 1);
    assert_eq!(micro.len(), 2, "one span per micro-batch");
    assert_eq!(fwd.len(), 2);
    assert_eq!(predict.len(), 2 * 2, "n_layers spans per micro-batch");
    assert_eq!(backward.len(), 2);
    assert_eq!(optim.len(), 1);

    // Exact (bit-level) equivalence for the directly-measured phases.
    assert_eq!(out.predict.as_nanos() as u64, dur_sum(&predict));
    assert_eq!(out.backward.as_nanos() as u64, dur_sum(&backward));
    assert_eq!(out.optim.as_nanos() as u64, dur_sum(&optim));
    // `forward` is defined as the forward-pass span minus the planner time
    // metered inside it, per micro-batch.
    let forward_expected: u64 = fwd
        .iter()
        .map(|f| {
            let inner: u64 = predict
                .iter()
                .filter(|p| f.contains(p))
                .map(|p| p.dur_ns)
                .sum();
            f.dur_ns.saturating_sub(inner)
        })
        .sum();
    assert_eq!(out.forward.as_nanos() as u64, forward_expected);

    // Nesting: micro-batches sit inside the step; each forward pass sits
    // inside the micro-batch with the same index; every predict span sits
    // inside some forward pass.
    let step = steps[0];
    for m in &micro {
        assert!(step.contains(m), "micro_batch outside model.step");
    }
    for f in &fwd {
        let parent = micro
            .iter()
            .find(|m| m.index == f.index)
            .expect("micro_batch span for forward index");
        assert!(parent.contains(f), "forward_pass outside its micro_batch");
    }
    for p in &predict {
        assert!(
            fwd.iter().any(|f| f.contains(p)),
            "predict span outside every forward_pass"
        );
    }
}

#[test]
fn concurrent_worker_spans_are_neither_lost_nor_duplicated() {
    let _guard = obs_lock();
    const TASKS: usize = 8;
    const PER_TASK: usize = 200;
    let session = TraceSession::start().expect("no other session active");
    let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..TASKS)
        .map(|t| {
            Box::new(move || {
                for j in 0..PER_TASK {
                    let _s = Span::enter("test.worker")
                        .cat("test")
                        .index((t * PER_TASK + j) as u64);
                }
            }) as Box<dyn FnOnce() + Send>
        })
        .collect();
    lx_parallel::pool().run_scoped(tasks);
    let trace = session.finish();
    assert_eq!(trace.dropped, 0, "capacity covers every span");

    let workers = trace.named("test.worker");
    assert_eq!(workers.len(), TASKS * PER_TASK, "no lost records");
    let mut seen = vec![false; TASKS * PER_TASK];
    for r in &workers {
        let idx = r.index.expect("worker spans carry an index") as usize;
        assert!(!seen[idx], "duplicate record for index {idx}");
        seen[idx] = true;
    }
    assert!(seen.iter().all(|&s| s), "every index recorded exactly once");

    // Within one thread, publication order must match time order: records
    // grouped by tid carry non-decreasing start timestamps.
    let mut by_tid: std::collections::BTreeMap<u64, Vec<&SpanRecord>> = Default::default();
    for r in workers {
        by_tid.entry(r.tid).or_default().push(r);
    }
    for (tid, records) in by_tid {
        for pair in records.windows(2) {
            assert!(
                pair[0].start_ns <= pair[1].start_ns,
                "tid {tid}: non-monotonic start timestamps"
            );
        }
    }
}

#[test]
fn histogram_percentiles_track_a_sorted_oracle() {
    // Log-bucketed (8 sub-buckets per octave) ⇒ ≤ ~7% relative error per
    // value; allow 13% + 1 for midpoint rounding across distributions.
    let mut state: u64 = 0x9e3779b97f4a7c15;
    let mut lcg = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let distributions: Vec<(&str, Vec<u64>)> = vec![
        ("uniform", (0..4000).map(|_| lcg() % 1_000_000).collect()),
        ("small", (0..4000).map(|_| lcg() % 12).collect()),
        (
            "heavy-tail",
            (0..4000)
                .map(|_| {
                    let base = lcg() % 1000;
                    if lcg() % 50 == 0 {
                        base * 10_000
                    } else {
                        base
                    }
                })
                .collect(),
        ),
    ];
    for (name, values) in distributions {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let oracle =
                sorted[((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1)];
            let got = h.percentile(q);
            let tol = (oracle as f64 * 0.13) as u64 + 1;
            assert!(
                got.abs_diff(oracle) <= tol,
                "{name} p{q}: histogram {got} vs oracle {oracle} (tol {tol})"
            );
        }
        assert_eq!(h.count(), values.len() as u64);
        assert_eq!(h.min(), sorted[0]);
        assert_eq!(h.max(), *sorted.last().unwrap());
    }
}

#[test]
fn serve_shutdown_dumps_a_valid_chrome_trace() {
    let _guard = obs_lock();
    let dir = std::env::temp_dir().join(format!("lx_obs_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("serve_trace.json");

    let mut model = TransformerModel::new(ModelConfig::test_tiny(), 21);
    model.freeze_all();
    let scheduler = lx_serve::Scheduler::new(
        model,
        long_exposure::engine::EngineConfig {
            block_size: BLOCK,
            ..Default::default()
        },
        lx_serve::ServeConfig {
            slice_steps: 2,
            ..Default::default()
        },
        Arc::new(lx_serve::AdapterRegistry::in_memory()),
    );
    let svc = lx_serve::FinetuneService::spawn_traced(scheduler, path.clone());
    let spec = lx_serve::JobSpec {
        stream_len: 2_000,
        ..lx_serve::JobSpec::lora("traced", 4, 1, 16)
    };
    svc.submit(spec).wait().expect("job completes");

    // Scrape-style exposition reflects the run: service series plus the
    // global registry (GEMM counters, workspace pool, slice histograms).
    let prom = svc.metrics().render_prometheus();
    assert!(prom.contains("lx_serve_tenant_steps_total{tenant=\"traced\"} 4"));
    assert!(prom.contains("kernel_gemm_calls"));
    assert!(prom.contains("workspace_hits"));
    assert!(prom.contains("serve_slice_run_ns{tenant=\"traced\",quantile=\"0.99\"}"));

    svc.shutdown();
    let stats = validate_chrome_trace_file(&path).expect("trace file is valid");
    assert!(stats.events > 0, "trace captured the scheduled slices");
    let text = std::fs::read_to_string(&path).unwrap();
    for name in ["serve.slice", "serve.attach", "serve.detach", "model.step"] {
        assert!(text.contains(name), "trace missing {name} spans");
    }
    // The slice histograms fed the registry too.
    let hists = registry().histograms();
    let wait = hists
        .iter()
        .find(|(k, _)| k.starts_with("serve.slice.wait_ns") && k.contains("traced"))
        .expect("wait histogram registered");
    assert!(wait.1.count >= 2, "one wait sample per scheduled slice");
    std::fs::remove_dir_all(&dir).ok();
}
