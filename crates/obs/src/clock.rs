//! The process-wide trace epoch.
//!
//! Span records store their start as nanoseconds since a single lazily
//! initialised `Instant`, so records from different threads share one
//! timeline and Chrome-trace timestamps are small positive numbers.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// The shared epoch (first use wins; [`crate::TraceSession::start`] touches
/// it up front so session timestamps start near zero).
pub(crate) fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds elapsed since the process-wide trace epoch. Monotonic.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
