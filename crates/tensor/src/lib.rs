//! Dense tensor substrate for the Long Exposure reproduction.
//!
//! The paper's baseline ("dense") arm and all predictor computations run on
//! these kernels. Everything is row-major `f32`; parallelism comes from
//! [`lx_parallel`]'s global pool; allocations are tracked by [`memtrack`] so
//! the memory-footprint experiments (paper Fig. 8) can report real peaks.

mod dtype;
pub mod f16;
pub mod gemm;
pub mod memtrack;
pub mod nm;
pub mod ops;
pub mod quant;
pub mod rng;
mod tensor;
pub mod workspace;

pub use dtype::Dtype;
pub use f16::HalfTensor;
pub use nm::NmTensor;
pub use quant::{QuantTensor, QuantView};
pub use tensor::Tensor;
pub use workspace::{Workspace, WorkspaceStats};
