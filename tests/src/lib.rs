//! Shared fixtures for the cross-crate integration tests (in `tests/`).

use lx_model::{ModelConfig, TransformerModel};

/// A tiny block-aligned config used across integration tests.
pub fn tiny_cfg() -> ModelConfig {
    ModelConfig::test_tiny()
}

/// Tiny model with emulated pre-trained structure (see DESIGN.md).
pub fn tiny_model(seed: u64) -> TransformerModel {
    let mut m = TransformerModel::new(tiny_cfg(), seed);
    m.induce_activation_sparsity(0.9, 0.3, 4, seed + 1);
    m.sharpen_attention(2.0);
    m
}

/// Deterministic token batch.
pub fn batch_ids(batch: usize, seq: usize, vocab: usize, seed: u64) -> Vec<u32> {
    lx_tensor::rng::uniform_vec(batch * seq, 0.0, vocab as f32, seed)
        .into_iter()
        .map(|v| v as u32)
        .collect()
}
