//! Global allocation tracker for tensor buffers.
//!
//! Paper Fig. 8 reports fine-tuning memory footprints; we reproduce it by
//! accounting every tensor buffer the engine allocates. Tracking is
//! cooperative (tensors register/unregister themselves) rather than a global
//! allocator hook, which keeps it cheap and lets experiments scope peaks to a
//! region of interest.
//!
//! Two views are maintained:
//!
//! * **Live bytes** ([`current_bytes`] / [`peak_bytes`]): how much buffer
//!   memory tensors hold right now, whatever its provenance.
//! * **Fresh-allocation counters** ([`alloc_stats`]): how many *new* heap
//!   buffers `Tensor`/`HalfTensor` constructors created, and their bytes.
//!   Buffers recycled through a [`crate::Workspace`] register live bytes but
//!   do **not** advance these counters — which is exactly what makes
//!   "zero heap tensor allocations in a steady-state step" an assertable
//!   property instead of a vibe: snapshot [`alloc_stats`], run the step,
//!   and diff with [`AllocStats::since`].

use std::sync::atomic::{AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static ALLOC_COUNT: AtomicUsize = AtomicUsize::new(0);
static ALLOC_BYTES: AtomicUsize = AtomicUsize::new(0);

/// Register a freshly heap-allocated buffer: live bytes *and* the
/// fresh-allocation counters advance. Zero-byte buffers (empty tensors)
/// never touch the heap, so they don't count as allocations.
pub(crate) fn register(bytes: usize) {
    if bytes > 0 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(bytes, Ordering::Relaxed);
    }
    register_reuse(bytes);
}

/// Register a buffer recycled from a workspace pool: live bytes advance but
/// the fresh-allocation counters do not.
pub(crate) fn register_reuse(bytes: usize) {
    let now = CURRENT.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK.fetch_max(now, Ordering::Relaxed);
}

pub(crate) fn unregister(bytes: usize) {
    CURRENT.fetch_sub(bytes, Ordering::Relaxed);
}

/// Bytes currently held by live tensors.
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// High-water mark since process start or the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Reset the peak to the current level; returns the old peak.
pub fn reset_peak() -> usize {
    PEAK.swap(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed)
}

/// Cumulative fresh-allocation counters — a resettable mark: snapshot one,
/// do work, and ask [`AllocStats::since`] what was newly heap-allocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    /// Fresh buffers `Tensor`/`HalfTensor` constructors heap-allocated.
    pub count: usize,
    /// Their total bytes (at allocation capacity).
    pub bytes: usize,
}

impl AllocStats {
    /// Allocations between `mark` (an earlier snapshot) and this one.
    pub fn since(&self, mark: &AllocStats) -> AllocStats {
        AllocStats {
            count: self.count - mark.count,
            bytes: self.bytes - mark.bytes,
        }
    }
}

/// Snapshot the cumulative fresh-allocation counters (monotonic since
/// process start). Workspace-recycled buffers never advance them.
pub fn alloc_stats() -> AllocStats {
    AllocStats {
        count: ALLOC_COUNT.load(Ordering::Relaxed),
        bytes: ALLOC_BYTES.load(Ordering::Relaxed),
    }
}

/// Measure the peak tensor memory while `f` runs, in bytes above zero.
/// The global peak is reset on entry, so concurrent measurement regions
/// interfere; experiments run them sequentially.
pub fn measure_peak<R>(f: impl FnOnce() -> R) -> (R, usize) {
    reset_peak();
    let r = f();
    (r, peak_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    #[test]
    fn tensor_lifecycle_tracks_bytes() {
        let before = current_bytes();
        let t = Tensor::zeros(&[128, 64]);
        assert_eq!(current_bytes() - before, 128 * 64 * 4);
        drop(t);
        assert_eq!(current_bytes(), before);
    }

    #[test]
    fn clone_registers_its_own_buffer() {
        let before = current_bytes();
        let t = Tensor::zeros(&[10, 10]);
        let u = t.clone();
        assert_eq!(current_bytes() - before, 2 * 10 * 10 * 4);
        drop(t);
        drop(u);
        assert_eq!(current_bytes(), before);
    }

    #[test]
    fn measure_peak_sees_transient_allocation() {
        let (_, peak) = measure_peak(|| {
            let base = current_bytes();
            let t = Tensor::zeros(&[256, 256]);
            drop(t);
            base
        });
        assert!(peak >= 256 * 256 * 4);
    }

    #[test]
    fn alloc_stats_count_fresh_buffers() {
        let mark = alloc_stats();
        let t = Tensor::zeros(&[16, 16]);
        let u = t.clone();
        let d = alloc_stats().since(&mark);
        assert_eq!(d.count, 2);
        assert_eq!(d.bytes, 2 * 16 * 16 * 4);
        drop(t);
        drop(u);
        // Dropping frees live bytes but never rewinds the cumulative counters.
        assert_eq!(alloc_stats().since(&mark).count, 2);
    }
}
