//! Scheduler equivalence: tenants trained concurrently (interleaved
//! time-slices on the shared backbone) must produce **exactly** the same
//! per-step losses as tenants trained sequentially, because the backbone is
//! frozen and all mutable per-tenant state swaps with the tenant.

use long_exposure::engine::{EngineConfig, StepMode};
use lx_integration::tiny_model;
use lx_model::TransformerModel;
use lx_peft::PeftMethod;
use lx_serve::{
    AdapterRegistry, DatasetSpec, FinetuneService, JobReport, JobSpec, SchedPolicy, Scheduler,
    ServeConfig,
};
use std::collections::BTreeMap;
use std::sync::Arc;

fn backbone() -> TransformerModel {
    let mut m = tiny_model(77);
    m.freeze_all();
    m
}

fn engine_cfg() -> EngineConfig {
    EngineConfig {
        block_size: 4,
        calib_epochs: 40,
        ..EngineConfig::default()
    }
}

fn specs() -> Vec<JobSpec> {
    let mut a = JobSpec::lora("tenant-a", 9, 1, 16);
    a.stream_len = 3_000;
    let mut b = JobSpec::lora("tenant-b", 12, 1, 16);
    b.stream_len = 3_000;
    b.dataset = DatasetSpec::Instruct {
        world_seed: 3,
        salt: 9,
    };
    b.method = PeftMethod::Lora {
        rank: 4,
        alpha: 8.0,
        targets: lx_peft::LoraTargets::all(),
    };
    vec![a, b]
}

fn by_tenant(reports: Vec<JobReport>) -> BTreeMap<String, JobReport> {
    reports.into_iter().map(|r| (r.tenant.clone(), r)).collect()
}

fn run_concurrent(config: ServeConfig) -> BTreeMap<String, JobReport> {
    let mut s = Scheduler::new(
        backbone(),
        engine_cfg(),
        config,
        Arc::new(AdapterRegistry::in_memory()),
    );
    for spec in specs() {
        s.submit(spec).unwrap();
    }
    by_tenant(s.run_to_completion())
}

fn run_sequential(config: ServeConfig) -> BTreeMap<String, JobReport> {
    let mut s = Scheduler::new(
        backbone(),
        engine_cfg(),
        config,
        Arc::new(AdapterRegistry::in_memory()),
    );
    let mut reports = Vec::new();
    for spec in specs() {
        s.submit(spec).unwrap();
        reports.extend(s.run_to_completion());
    }
    by_tenant(reports)
}

#[test]
fn concurrent_and_sequential_losses_match_exactly() {
    for policy in [SchedPolicy::RoundRobin, SchedPolicy::FairShare] {
        let interleaved = run_concurrent(ServeConfig {
            slice_steps: 2,
            policy,
            ..ServeConfig::default()
        });
        let sequential = run_sequential(ServeConfig {
            slice_steps: 64, // big slices: effectively one tenant at a time
            policy,
            ..ServeConfig::default()
        });
        assert_eq!(interleaved.len(), 2);
        for (tenant, seq_report) in &sequential {
            let con_report = &interleaved[tenant];
            assert_eq!(con_report.steps, seq_report.steps, "{policy:?}/{tenant}");
            assert_eq!(
                con_report.losses, seq_report.losses,
                "{policy:?}/{tenant}: interleaved training must be bit-identical to sequential"
            );
        }
    }
}

#[test]
fn sparse_mode_shares_one_predictor_set_across_tenants() {
    let registry = Arc::new(AdapterRegistry::in_memory());
    let calib: Vec<(Vec<u32>, usize, usize)> = {
        let spec = DatasetSpec::E2e {
            world_seed: 5,
            salt: 1,
        };
        let mut batcher = spec.build_batcher(64, 3_000);
        (0..2).map(|_| (batcher.next_batch(1, 16), 1, 16)).collect()
    };
    // Calibrate once; the blob lands in the registry.
    let mut first = Scheduler::new(
        backbone(),
        engine_cfg(),
        ServeConfig {
            slice_steps: 3,
            mode: StepMode::Sparse,
            ..ServeConfig::default()
        },
        registry.clone(),
    );
    first.calibrate_shared(&calib);
    assert!(registry.predictors().is_some());
    for spec in specs() {
        first.submit(spec).unwrap();
    }
    let from_calibrated = by_tenant(first.run_to_completion());

    // A second scheduler (a "restarted process") imports the shared
    // predictors from the registry at construction instead of recalibrating,
    // and reproduces the same training losses exactly. A fresh registry is
    // used for its adapters so the first run's tenants don't warm-start it —
    // only the predictor blob is carried over.
    let fresh_registry = Arc::new(AdapterRegistry::in_memory());
    fresh_registry
        .set_predictors(registry.predictors().unwrap())
        .unwrap();
    let mut second = Scheduler::new(
        backbone(),
        engine_cfg(),
        ServeConfig {
            slice_steps: 3,
            mode: StepMode::Sparse,
            ..ServeConfig::default()
        },
        fresh_registry,
    );
    assert!(second.calibrated(), "predictors imported from registry");
    for spec in specs() {
        second.submit(spec).unwrap();
    }
    let from_imported = by_tenant(second.run_to_completion());
    for (tenant, a) in &from_calibrated {
        assert_eq!(
            a.losses, from_imported[tenant].losses,
            "{tenant}: imported predictors must reproduce calibrated-run losses"
        );
    }
}

#[test]
fn tenants_stream_per_step_progress_through_the_service() {
    // Multiple tenants interleave on the shared backbone while each client
    // consumes its own per-step StepEvent stream concurrently; the streams
    // must be complete (one event per step, in order), carry the same losses
    // as the terminal reports, and end when the job does.
    let scheduler = Scheduler::new(
        backbone(),
        engine_cfg(),
        ServeConfig {
            slice_steps: 2,
            ..ServeConfig::default()
        },
        Arc::new(AdapterRegistry::in_memory()),
    );
    let service = FinetuneService::spawn(scheduler);
    let tickets: Vec<_> = specs()
        .into_iter()
        .map(|spec| (spec.tenant.clone(), spec.steps, service.submit(spec)))
        .collect();
    // Drain every stream on its own thread while training proceeds.
    let collectors: Vec<_> = tickets
        .iter()
        .map(|(tenant, steps, ticket)| {
            let (tenant, steps, stream) = (tenant.clone(), *steps, ticket.progress());
            std::thread::spawn(move || {
                let events: Vec<_> = stream.collect();
                (tenant, steps, events)
            })
        })
        .collect();
    for handle in collectors {
        let (tenant, steps, events) = handle.join().expect("collector thread");
        assert_eq!(events.len(), steps as usize, "{tenant}: one event per step");
        let report = tickets
            .iter()
            .find(|(t, _, _)| *t == tenant)
            .unwrap()
            .2
            .wait()
            .expect("job completes");
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.tenant, tenant);
            assert_eq!(e.step, i as u64 + 1, "{tenant}: events arrive in order");
            assert_eq!(e.total_steps, steps);
            assert_eq!(
                e.loss, report.losses[i],
                "{tenant}: streamed loss mirrors the report"
            );
            assert!(e.step_time > std::time::Duration::ZERO);
        }
    }
    service.shutdown();
}

#[test]
fn four_tenants_share_backbone_and_all_converge() {
    let mut s = Scheduler::new(
        backbone(),
        engine_cfg(),
        ServeConfig {
            slice_steps: 3,
            policy: SchedPolicy::FairShare,
            ..ServeConfig::default()
        },
        Arc::new(AdapterRegistry::in_memory()),
    );
    for i in 0..4 {
        let mut spec = JobSpec::lora(format!("tenant-{i}"), 12, 1, 16);
        // Stream exactly one batch long: every step replays the same batch,
        // so each tenant overfits and the loss trend is unambiguous.
        spec.stream_len = 16;
        spec.lr = 1e-2;
        s.submit(spec).unwrap();
    }
    let reports = s.run_to_completion();
    assert_eq!(reports.len(), 4);
    for r in &reports {
        assert_eq!(r.steps, 12);
        let first = r.losses.first().unwrap();
        let last = r.losses.last().unwrap();
        assert!(
            last < first,
            "{}: loss should drop when overfitting one batch ({first} -> {last})",
            r.tenant
        );
    }
    let snap = s.metrics();
    assert_eq!(snap.total_steps, 48);
    assert_eq!(snap.per_tenant.len(), 4);
    assert_eq!(s.registry().len(), 4);
}
