//! Per-tenant adapter state, separable from the backbone.
//!
//! The seed design bakes trainability into the model in place: a PEFT method
//! mutates a [`TransformerModel`] and the adapter lives and dies with it.
//! Multi-tenant serving needs the opposite factoring — one frozen backbone,
//! many small adapters that attach, train for a slice, and detach — so this
//! module turns "the trainable deltas of a model" into a first-class value:
//!
//! * [`TenantAdapter::initialise`] applies a method to a pristine backbone
//!   and captures the fresh adapter;
//! * [`TenantAdapter::extract_from`] snapshots the current trainable state
//!   (after some training) without touching the backbone;
//! * [`TenantAdapter::attach_to`] re-applies the method and restores the
//!   captured values bit-for-bit;
//! * [`detach`] strips every injected module and re-freezes the model,
//!   returning the backbone to its pristine shared state.
//!
//! Only *injection* methods (LoRA, bottleneck adapters, prompt tuning) are
//! detachable: BitFit and full fine-tuning train backbone parameters in
//! place, which cannot be shared across tenants. [`PeftMethod::is_detachable`]
//! gates this.
//!
//! The wire format mirrors `long_exposure::checkpoint`: an 8-byte magic, a
//! little-endian header, then raw f32 payloads — adapters survive restarts
//! through `lx-serve`'s registry.

use crate::{LoraTargets, PeftMethod};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use lx_model::TransformerModel;

const MAGIC: &[u8; 8] = b"LXADPT01";

/// One named trainable tensor captured from a model.
#[derive(Debug, Clone, PartialEq)]
pub struct NamedTensor {
    pub name: String,
    pub shape: Vec<usize>,
    pub data: Vec<f32>,
}

/// The complete trainable state of one tenant: which method produced it,
/// the seed it was initialised with, and every trainable tensor by name.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantAdapter {
    pub method: PeftMethod,
    pub seed: u64,
    pub tensors: Vec<NamedTensor>,
}

impl PeftMethod {
    /// Whether this method's trainable state lives in *injected* modules
    /// that can be detached, leaving the backbone untouched.
    pub fn is_detachable(&self) -> bool {
        matches!(
            self,
            PeftMethod::Lora { .. } | PeftMethod::Adapter { .. } | PeftMethod::PromptTuning { .. }
        )
    }
}

/// Strip every injected PEFT module (LoRA pairs, bottleneck adapters, prompt
/// prefix) and freeze all parameters, returning the model to the pristine
/// shared-backbone state. Safe to call on a model with nothing attached.
pub fn detach(model: &mut TransformerModel) {
    for block in &mut model.blocks {
        block.attn.wq.lora = None;
        block.attn.wk.lora = None;
        block.attn.wv.lora = None;
        block.attn.wo.lora = None;
        block.mlp.lora1 = None;
        block.mlp.lora2 = None;
        block.adapter1 = None;
        block.adapter2 = None;
    }
    model.embedding.prompt = None;
    model.freeze_all();
}

/// Number of trainable parameters visible on the model right now.
fn trainable_count(model: &mut TransformerModel) -> usize {
    model.num_trainable()
}

impl TenantAdapter {
    /// Apply `method` to a pristine backbone, capture the freshly-initialised
    /// adapter, and detach again. The backbone is returned untouched.
    pub fn initialise(model: &mut TransformerModel, method: PeftMethod, seed: u64) -> Self {
        assert!(
            method.is_detachable(),
            "{} trains backbone parameters in place and cannot be extracted as a tenant adapter",
            method.name()
        );
        assert_eq!(
            trainable_count(model),
            0,
            "backbone must be pristine (detached) before initialising a tenant"
        );
        method.apply(model, seed);
        let adapter = Self::extract_from(model, method, seed);
        detach(model);
        adapter
    }

    /// Snapshot the trainable tensors of a model that currently has this
    /// tenant's method attached. Does not modify the model.
    pub fn extract_from(model: &mut TransformerModel, method: PeftMethod, seed: u64) -> Self {
        assert!(method.is_detachable(), "method must be detachable");
        let mut tensors = Vec::new();
        model.for_each_param(&mut |p| {
            if p.trainable {
                tensors.push(NamedTensor {
                    name: p.name.clone(),
                    shape: p.value.shape().to_vec(),
                    data: p.value.as_slice().to_vec(),
                });
            }
        });
        assert!(
            !tensors.is_empty(),
            "no trainable parameters found — was the method applied?"
        );
        TenantAdapter {
            method,
            seed,
            tensors,
        }
    }

    /// Attach this adapter to a pristine backbone: re-apply the method (same
    /// seed, so module shapes match), then overwrite every trainable tensor
    /// with the captured values. The restore is bit-exact.
    pub fn attach_to(&self, model: &mut TransformerModel) {
        assert_eq!(
            trainable_count(model),
            0,
            "backbone must be pristine (detached) before attaching a tenant"
        );
        self.method.apply(model, self.seed);
        let mut restored = 0usize;
        let mut missing: Vec<String> = Vec::new();
        model.for_each_param(&mut |p| {
            if !p.trainable {
                return;
            }
            match self.tensors.iter().find(|t| t.name == p.name) {
                Some(t) => {
                    assert_eq!(
                        p.value.shape(),
                        &t.shape[..],
                        "shape mismatch for {}: model {:?} vs adapter {:?}",
                        p.name,
                        p.value.shape(),
                        t.shape
                    );
                    p.value.as_mut_slice().copy_from_slice(&t.data);
                    restored += 1;
                }
                None => missing.push(p.name.clone()),
            }
        });
        assert!(
            missing.is_empty(),
            "adapter has no values for trainable params {missing:?}"
        );
        assert_eq!(
            restored,
            self.tensors.len(),
            "adapter carries tensors the model did not expose"
        );
    }

    /// Total adapter parameters (the per-tenant marginal state).
    pub fn num_params(&self) -> usize {
        self.tensors.iter().map(|t| t.data.len()).sum()
    }

    /// Serialise to the durable wire format.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        put_method(&mut buf, &self.method);
        buf.put_u64_le(self.seed);
        buf.put_u32_le(self.tensors.len() as u32);
        for t in &self.tensors {
            let name = t.name.as_bytes();
            buf.put_u32_le(name.len() as u32);
            buf.put_slice(name);
            buf.put_u32_le(t.shape.len() as u32);
            for &d in &t.shape {
                buf.put_u32_le(d as u32);
            }
            buf.put_u32_le(t.data.len() as u32);
            for &v in &t.data {
                buf.put_f32_le(v);
            }
        }
        buf.freeze()
    }

    /// Reconstruct from [`TenantAdapter::to_bytes`] output.
    pub fn from_bytes(mut data: Bytes) -> Result<Self, String> {
        if data.remaining() < MAGIC.len() {
            return Err("truncated adapter blob".into());
        }
        let mut magic = [0u8; 8];
        data.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(format!("bad adapter magic {magic:?}"));
        }
        let method = get_method(&mut data)?;
        if data.remaining() < 12 {
            return Err("truncated adapter header".into());
        }
        let seed = data.get_u64_le();
        let n_tensors = data.get_u32_le() as usize;
        // Each tensor needs at least 16 header bytes; bound the up-front
        // allocation by what the blob could actually hold so a corrupt
        // count yields an Err instead of an abort-on-OOM.
        if n_tensors > data.remaining() / 16 {
            return Err(format!(
                "implausible tensor count {n_tensors} for {} remaining bytes",
                data.remaining()
            ));
        }
        let mut tensors = Vec::with_capacity(n_tensors);
        for i in 0..n_tensors {
            let err = |what: &str| format!("truncated adapter tensor {i}: {what}");
            if data.remaining() < 4 {
                return Err(err("name length"));
            }
            let name_len = data.get_u32_le() as usize;
            if data.remaining() < name_len {
                return Err(err("name"));
            }
            let name_bytes = data.copy_to_bytes(name_len);
            let name = std::str::from_utf8(&name_bytes)
                .map_err(|e| format!("tensor {i} name not UTF-8: {e}"))?
                .to_string();
            if data.remaining() < 4 {
                return Err(err("rank"));
            }
            let ndim = data.get_u32_le() as usize;
            if ndim > 8 {
                return Err(format!("tensor {name}: implausible rank {ndim}"));
            }
            if data.remaining() < 4 * ndim {
                return Err(err("shape"));
            }
            let shape: Vec<usize> = (0..ndim).map(|_| data.get_u32_le() as usize).collect();
            if data.remaining() < 4 {
                return Err(err("payload length"));
            }
            let len = data.get_u32_le() as usize;
            let expect = shape
                .iter()
                .try_fold(1usize, |acc, &d| acc.checked_mul(d))
                .ok_or_else(|| format!("tensor {name}: shape {shape:?} overflows"))?;
            if len != expect {
                return Err(format!(
                    "tensor {name}: payload length {len} does not match shape {shape:?}"
                ));
            }
            if data.remaining() < 4 * len {
                return Err(err("payload"));
            }
            let mut values = Vec::with_capacity(len);
            for _ in 0..len {
                values.push(data.get_f32_le());
            }
            tensors.push(NamedTensor {
                name,
                shape,
                data: values,
            });
        }
        if data.has_remaining() {
            return Err(format!("{} trailing bytes", data.remaining()));
        }
        Ok(TenantAdapter {
            method,
            seed,
            tensors,
        })
    }
}

fn put_method(buf: &mut BytesMut, method: &PeftMethod) {
    match *method {
        PeftMethod::Full => buf.put_u8(0),
        PeftMethod::Lora {
            rank,
            alpha,
            targets,
        } => {
            buf.put_u8(1);
            buf.put_u32_le(rank as u32);
            buf.put_f32_le(alpha);
            let mut bits = 0u8;
            for (i, on) in [
                targets.q,
                targets.k,
                targets.v,
                targets.o,
                targets.mlp_fc1,
                targets.mlp_fc2,
            ]
            .into_iter()
            .enumerate()
            {
                if on {
                    bits |= 1 << i;
                }
            }
            buf.put_u8(bits);
        }
        PeftMethod::Adapter { bottleneck } => {
            buf.put_u8(2);
            buf.put_u32_le(bottleneck as u32);
        }
        PeftMethod::BitFit => buf.put_u8(3),
        PeftMethod::PromptTuning { prompt_len } => {
            buf.put_u8(4);
            buf.put_u32_le(prompt_len as u32);
        }
    }
}

fn get_method(data: &mut Bytes) -> Result<PeftMethod, String> {
    if !data.has_remaining() {
        return Err("truncated method tag".into());
    }
    match data.get_u8() {
        0 => Ok(PeftMethod::Full),
        1 => {
            if data.remaining() < 9 {
                return Err("truncated LoRA method".into());
            }
            let rank = data.get_u32_le() as usize;
            let alpha = data.get_f32_le();
            let bits = data.get_u8();
            let targets = LoraTargets {
                q: bits & 1 != 0,
                k: bits & 2 != 0,
                v: bits & 4 != 0,
                o: bits & 8 != 0,
                mlp_fc1: bits & 16 != 0,
                mlp_fc2: bits & 32 != 0,
            };
            Ok(PeftMethod::Lora {
                rank,
                alpha,
                targets,
            })
        }
        2 => {
            if data.remaining() < 4 {
                return Err("truncated Adapter method".into());
            }
            Ok(PeftMethod::Adapter {
                bottleneck: data.get_u32_le() as usize,
            })
        }
        3 => Ok(PeftMethod::BitFit),
        4 => {
            if data.remaining() < 4 {
                return Err("truncated PromptTuning method".into());
            }
            Ok(PeftMethod::PromptTuning {
                prompt_len: data.get_u32_le() as usize,
            })
        }
        tag => Err(format!("unknown method tag {tag}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lx_model::{prompt_aware_targets, ModelConfig, Sgd, StepRequest};

    fn backbone() -> TransformerModel {
        TransformerModel::new(ModelConfig::test_tiny(), 7)
    }

    fn train_a_bit(model: &mut TransformerModel, steps: usize) {
        let seq = 8;
        let ids: Vec<u32> = (0..16u32).map(|i| (i * 5) % 64).collect();
        let prompt = model.embedding.prompt_len();
        let targets = prompt_aware_targets(&ids, 2, seq, prompt);
        let mut opt = Sgd::new(0.05);
        for _ in 0..steps {
            model.execute(StepRequest::train(&ids, &targets, 2, seq, &mut opt));
        }
    }

    fn backbone_fingerprint(model: &mut TransformerModel) -> Vec<f32> {
        let mut out = Vec::new();
        model.for_each_param(&mut |p| {
            out.push(p.value.as_slice().iter().sum::<f32>());
        });
        out
    }

    #[test]
    fn initialise_leaves_backbone_pristine() {
        let mut m = backbone();
        m.freeze_all();
        let before = backbone_fingerprint(&mut m);
        let n_before = m.num_params();
        let adapter = TenantAdapter::initialise(&mut m, PeftMethod::lora_default(), 1);
        assert_eq!(m.num_trainable(), 0);
        assert_eq!(m.num_params(), n_before);
        assert_eq!(backbone_fingerprint(&mut m), before);
        assert!(adapter.num_params() > 0);
    }

    #[test]
    fn extract_attach_roundtrip_is_bit_exact() {
        for method in [
            PeftMethod::lora_default(),
            PeftMethod::adapter_default(),
            PeftMethod::PromptTuning { prompt_len: 4 },
        ] {
            let mut m = backbone();
            m.freeze_all();
            method.apply(&mut m, 3);
            train_a_bit(&mut m, 5);
            let adapter = TenantAdapter::extract_from(&mut m, method, 3);
            let prompt = m.embedding.prompt_len();
            let ids: Vec<u32> = (0..8u32).collect();
            let logits_before = m.execute(StepRequest::infer(&ids, 1, 8)).logits.unwrap();
            detach(&mut m);
            assert_eq!(m.num_trainable(), 0, "{}", method.name());
            adapter.attach_to(&mut m);
            assert_eq!(m.embedding.prompt_len(), prompt);
            let logits_after = m.execute(StepRequest::infer(&ids, 1, 8)).logits.unwrap();
            assert_eq!(
                logits_before.as_slice(),
                logits_after.as_slice(),
                "{}: detach/attach must restore the exact function",
                method.name()
            );
        }
    }

    #[test]
    fn serialization_roundtrip_is_bit_exact() {
        let mut m = backbone();
        m.freeze_all();
        PeftMethod::lora_default().apply(&mut m, 9);
        train_a_bit(&mut m, 4);
        let adapter = TenantAdapter::extract_from(&mut m, PeftMethod::lora_default(), 9);
        let blob = adapter.to_bytes();
        let restored = TenantAdapter::from_bytes(blob).expect("decode");
        assert_eq!(adapter, restored);
    }

    #[test]
    fn corrupt_blob_rejected() {
        let mut m = backbone();
        m.freeze_all();
        let adapter = TenantAdapter::initialise(&mut m, PeftMethod::lora_default(), 2);
        let mut raw = adapter.to_bytes().to_vec();
        raw[0] = b'X';
        assert!(TenantAdapter::from_bytes(Bytes::from(raw)).is_err());
        let good = adapter.to_bytes().to_vec();
        let cut = Bytes::from(good[..good.len() - 3].to_vec());
        assert!(TenantAdapter::from_bytes(cut).is_err());
        let mut trailing = adapter.to_bytes().to_vec();
        trailing.extend_from_slice(&[1, 2, 3]);
        assert!(TenantAdapter::from_bytes(Bytes::from(trailing)).is_err());
    }

    #[test]
    fn method_encoding_roundtrips() {
        for method in [
            PeftMethod::Full,
            PeftMethod::Lora {
                rank: 4,
                alpha: 8.0,
                targets: LoraTargets::all(),
            },
            PeftMethod::adapter_default(),
            PeftMethod::BitFit,
            PeftMethod::PromptTuning { prompt_len: 6 },
        ] {
            let mut buf = BytesMut::new();
            put_method(&mut buf, &method);
            let mut data = buf.freeze();
            assert_eq!(get_method(&mut data).unwrap(), method);
            assert!(!data.has_remaining());
        }
    }

    #[test]
    #[should_panic(expected = "cannot be extracted")]
    fn bitfit_is_not_detachable() {
        let mut m = backbone();
        m.freeze_all();
        TenantAdapter::initialise(&mut m, PeftMethod::BitFit, 1);
    }

    #[test]
    #[should_panic(expected = "pristine")]
    fn attach_requires_pristine_backbone() {
        let mut m = backbone();
        m.freeze_all();
        let adapter = TenantAdapter::initialise(&mut m, PeftMethod::lora_default(), 1);
        PeftMethod::lora_default().apply(&mut m, 2);
        adapter.attach_to(&mut m);
    }
}
