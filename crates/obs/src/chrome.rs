//! Chrome trace-event export, text summaries, and a format validator.
//!
//! The export targets the [Trace Event Format] "JSON Object Format": a
//! top-level object whose `traceEvents` array holds complete (`"ph":"X"`)
//! events with microsecond `ts`/`dur`. Both `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev) load it directly; nesting is derived
//! by the viewer from interval containment per `tid`, which is exactly how
//! our per-phase spans sit inside their step spans.
//!
//! The validator is a deliberately small hand-rolled JSON parser (this
//! workspace is offline — no serde): enough to check structure, required
//! fields and types, which is what the CI `trace_check` bin gates on.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::span::{SpanRecord, Trace};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn event_json(r: &SpanRecord) -> String {
    let mut args = String::new();
    if let Some(t) = &r.tenant {
        let _ = write!(args, "\"tenant\":\"{}\"", escape(t));
    }
    if let Some(l) = r.layer {
        if !args.is_empty() {
            args.push(',');
        }
        let _ = write!(args, "\"layer\":{l}");
    }
    if let Some(i) = r.index {
        if !args.is_empty() {
            args.push(',');
        }
        let _ = write!(args, "\"index\":{i}");
    }
    format!(
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{},\"args\":{{{args}}}}}",
        escape(r.name),
        escape(r.cat),
        r.start_ns as f64 / 1e3,
        r.dur_ns as f64 / 1e3,
        r.tid,
    )
}

impl Trace {
    /// Serialise to Chrome trace-event JSON (complete `"X"` events,
    /// microsecond timestamps).
    pub fn to_chrome_json(&self) -> String {
        let events: Vec<String> = self.records.iter().map(event_json).collect();
        format!(
            "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"dropped\":{}}}}}",
            events.join(","),
            self.dropped
        )
    }

    /// Write [`Self::to_chrome_json`] to `path`.
    pub fn write_chrome(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_json())
    }

    /// Human text summary: per span name, the call count, total and mean
    /// time, sorted by total descending. Ends with the dropped count when
    /// the ring wrapped.
    pub fn summary(&self) -> String {
        struct Agg {
            count: u64,
            total_ns: u64,
        }
        let mut by_name: BTreeMap<&str, Agg> = BTreeMap::new();
        for r in &self.records {
            let agg = by_name.entry(r.name).or_insert(Agg {
                count: 0,
                total_ns: 0,
            });
            agg.count += 1;
            agg.total_ns += r.dur_ns;
        }
        let mut rows: Vec<(&str, Agg)> = by_name.into_iter().collect();
        rows.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>8} {:>12} {:>12}",
            "span", "count", "total ms", "mean us"
        );
        for (name, agg) in rows {
            let _ = writeln!(
                out,
                "{:<24} {:>8} {:>12.3} {:>12.2}",
                name,
                agg.count,
                agg.total_ns as f64 / 1e6,
                agg.total_ns as f64 / 1e3 / agg.count.max(1) as f64,
            );
        }
        if self.dropped > 0 {
            let _ = writeln!(out, "({} records dropped by ring wraparound)", self.dropped);
        }
        out
    }
}

/// What [`validate_chrome_trace`] learned about a well-formed trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStats {
    pub events: usize,
    /// Distinct span names.
    pub names: usize,
    /// Latest event end (`ts + dur`), microseconds.
    pub span_us: f64,
}

/// Check that `json` is a well-formed Chrome trace-event document: a
/// top-level object with a `traceEvents` array whose every element is a
/// complete event — string `name`/`cat`, `"ph":"X"`, numeric non-negative
/// `ts`/`dur`, numeric `pid`/`tid`. Returns aggregate stats on success.
pub fn validate_chrome_trace(json: &str) -> Result<TraceStats, String> {
    let value = parse_json(json)?;
    let top = value.as_object().ok_or("top level is not an object")?;
    let events = top
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .ok_or("missing traceEvents")?
        .as_array()
        .ok_or("traceEvents is not an array")?;
    let mut names: Vec<&str> = Vec::new();
    let mut span_us = 0.0f64;
    for (i, ev) in events.iter().enumerate() {
        let obj = ev
            .as_object()
            .ok_or_else(|| format!("event {i} is not an object"))?;
        let field = |key: &str| -> Result<&Json, String> {
            obj.iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("event {i} missing {key}"))
        };
        let name = field("name")?
            .as_str()
            .ok_or_else(|| format!("event {i}: name is not a string"))?;
        field("cat")?
            .as_str()
            .ok_or_else(|| format!("event {i}: cat is not a string"))?;
        let ph = field("ph")?
            .as_str()
            .ok_or_else(|| format!("event {i}: ph is not a string"))?;
        if ph != "X" {
            return Err(format!("event {i}: ph {ph:?} is not a complete event"));
        }
        let ts = field("ts")?
            .as_f64()
            .ok_or_else(|| format!("event {i}: ts is not a number"))?;
        let dur = field("dur")?
            .as_f64()
            .ok_or_else(|| format!("event {i}: dur is not a number"))?;
        if ts < 0.0 || dur < 0.0 {
            return Err(format!("event {i}: negative ts/dur"));
        }
        field("pid")?
            .as_f64()
            .ok_or_else(|| format!("event {i}: pid is not a number"))?;
        field("tid")?
            .as_f64()
            .ok_or_else(|| format!("event {i}: tid is not a number"))?;
        if !names.contains(&name) {
            names.push(name);
        }
        span_us = span_us.max(ts + dur);
    }
    Ok(TraceStats {
        events: events.len(),
        names: names.len(),
        span_us,
    })
}

/// [`validate_chrome_trace`] on a file.
pub fn validate_chrome_trace_file(path: &Path) -> Result<TraceStats, String> {
    let json =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    validate_chrome_trace(&json)
}

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON (validation only; no serde in this
// workspace).

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!(
                "unexpected byte {:?} at {}",
                other as char, self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, got {:?}",
                        self.pos, other as char
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, got {:?}",
                        self.pos, other as char
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // Multi-byte UTF-8 passes through byte-wise; the source
                    // was a &str so the bytes are valid.
                    let start = self.pos;
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or("truncated UTF-8")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8")?);
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &'static str, start_ns: u64, dur_ns: u64) -> SpanRecord {
        SpanRecord {
            name,
            cat: "test",
            tenant: Some("t/0\"x".into()),
            layer: Some(1),
            index: Some(2),
            start_ns,
            dur_ns,
            tid: 1,
        }
    }

    #[test]
    fn export_roundtrips_through_the_validator() {
        let trace = Trace {
            records: vec![record("outer", 0, 5_000), record("inner", 1_000, 2_000)],
            dropped: 3,
        };
        let json = trace.to_chrome_json();
        let stats = validate_chrome_trace(&json).expect("well-formed");
        assert_eq!(stats.events, 2);
        assert_eq!(stats.names, 2);
        assert!((stats.span_us - 5.0).abs() < 1e-9, "{}", stats.span_us);
        assert!(json.contains("\"dropped\":3"));
    }

    #[test]
    fn containment_detects_nesting() {
        let outer = record("outer", 0, 5_000);
        let inner = record("inner", 1_000, 2_000);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
    }

    #[test]
    fn summary_aggregates_by_name() {
        let trace = Trace {
            records: vec![
                record("model.step", 0, 10_000),
                record("model.step", 20_000, 30_000),
                record("model.predict", 1_000, 500),
            ],
            dropped: 0,
        };
        let text = trace.summary();
        assert!(text.contains("model.step"));
        assert!(text.contains("2")); // step count
        assert!(text.contains("model.predict"));
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("[]").is_err(), "array top level");
        assert!(validate_chrome_trace("{}").is_err(), "missing traceEvents");
        assert!(
            validate_chrome_trace("{\"traceEvents\":[{\"name\":\"x\"}]}").is_err(),
            "incomplete event"
        );
        assert!(
            validate_chrome_trace(
                "{\"traceEvents\":[{\"name\":\"x\",\"cat\":\"c\",\"ph\":\"B\",\"ts\":0,\"dur\":1,\"pid\":1,\"tid\":1}]}"
            )
            .is_err(),
            "non-X phase"
        );
        assert!(validate_chrome_trace("{\"traceEvents\":[]} junk").is_err());
    }

    #[test]
    fn parser_handles_escapes_and_numbers() {
        let v = parse_json("{\"a\":[1.5,-2e3,\"q\\\"\\u0041\"],\"b\":null,\"c\":true}").unwrap();
        let obj = v.as_object().unwrap();
        let arr = obj[0].1.as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.5));
        assert_eq!(arr[1].as_f64(), Some(-2000.0));
        assert_eq!(arr[2].as_str(), Some("q\"A"));
    }
}
