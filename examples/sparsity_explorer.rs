//! Visualise shadowy sparsity (paper Figs. 1 & 4): per-head attention masks
//! vs their union, and per-token vs union MLP sparsity.
//!
//! ```sh
//! cargo run --release -p lx-examples --example sparsity_explorer
//! ```

use long_exposure::exposer::Exposer;
use lx_data::e2e::E2eGenerator;
use lx_data::{Batcher, SyntheticWorld};
use lx_model::{CaptureConfig, ModelConfig, TransformerModel};

fn main() {
    let (batch, seq, block) = (2, 128, 16);
    let cfg = ModelConfig::opt_sim_small();
    let mut model = TransformerModel::new(cfg.clone(), 42);
    let world = SyntheticWorld::new(cfg.vocab_size as u32, 3);
    let mut batcher = Batcher::new(E2eGenerator::new(world).stream(20_000, 0));
    let ids = batcher.next_batch(batch, seq);

    let caps = model
        .execute(lx_model::StepRequest::capture(
            &ids,
            batch,
            seq,
            CaptureConfig {
                attn: true,
                mlp: true,
            },
        ))
        .captures
        .expect("capture mode records captures");
    let exposer = Exposer::new(block, 0.05, 0.02);

    for (l, cap) in caps.iter().enumerate() {
        println!("=== layer {l} ===");
        let probs = cap.attn_probs.as_ref().unwrap();
        let masks = exposer.attention_head_masks(probs, batch, cfg.n_heads, seq);
        for (h, m) in masks.iter().enumerate() {
            println!(
                "head {h}: {} active blocks, causal-relative sparsity {:.2}",
                m.count(),
                Exposer::causal_relative_sparsity(m)
            );
        }
        let union = Exposer::attention_union_mask(&masks);
        println!(
            "union (\"shadowy\"): {} blocks, sparsity {:.2} — head-specific masks expose more",
            union.count(),
            Exposer::causal_relative_sparsity(&union)
        );
        println!("union mask ({}x{} blocks):", union.rows(), union.cols());
        print!("{}", union.to_ascii());

        let acts = cap.mlp_activations.as_ref().unwrap();
        println!(
            "MLP: per-token sparsity {:.2}, union (\"shadowy\") sparsity {:.2}",
            Exposer::mlp_per_token_sparsity(acts),
            Exposer::mlp_union_sparsity(acts),
        );
        let imp = exposer.mlp_block_importance(acts);
        for th in [0.01f32, 0.02, 0.05] {
            let e = Exposer::new(block, 0.05, th);
            let set = e.mlp_filter(&imp);
            println!(
                "  importance filter θ={:.0}%: keeps {}/{} blocks (sparsity {:.2})",
                th * 100.0,
                set.n_active(),
                set.n_blocks_total,
                set.sparsity()
            );
        }
        println!();
    }
}
