//! Alpaca-like instruction corpus: `BOS instruction SEP response` pairs
//! where the response is derivable from the instruction through the world's
//! partner structure — the signal the Table IV fine-tuning runs must learn.

use crate::world::{SyntheticWorld, TOK_BOS, TOK_SEP};
use rand::Rng;

pub struct InstructGenerator {
    world: SyntheticWorld,
}

impl InstructGenerator {
    pub fn new(world: SyntheticWorld) -> Self {
        InstructGenerator { world }
    }

    /// One instruction/response pair: the instruction lists content tokens,
    /// the response lists their partners in order.
    pub fn example(&self, salt: u64) -> Vec<u32> {
        let mut rng = self.world.rng(salt ^ 0xa1fa);
        let k = rng.gen_range(2..6usize);
        let mut out = vec![TOK_BOS];
        let mut queries = Vec::with_capacity(k);
        for _ in 0..k {
            let t = self.world.sample_content(&mut rng);
            out.push(t);
            queries.push(t);
        }
        out.push(TOK_SEP);
        for &t in &queries {
            out.push(self.world.partner(t));
        }
        out
    }

    /// Token stream of exactly `target_len` tokens.
    pub fn stream(&self, target_len: usize, salt: u64) -> Vec<u32> {
        let mut out = Vec::with_capacity(target_len + 16);
        let mut i = 0u64;
        while out.len() < target_len {
            out.extend(self.example(salt.wrapping_add(i)));
            i += 1;
        }
        out.truncate(target_len);
        out
    }

    pub fn world(&self) -> &SyntheticWorld {
        &self.world
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_is_partner_sequence() {
        let gen = InstructGenerator::new(SyntheticWorld::new(128, 20));
        let ex = gen.example(1);
        let sep = ex.iter().position(|&t| t == TOK_SEP).unwrap();
        let instr = &ex[1..sep];
        let resp = &ex[sep + 1..];
        assert_eq!(instr.len(), resp.len());
        for (q, a) in instr.iter().zip(resp) {
            assert_eq!(gen.world().partner(*q), *a);
        }
    }

    #[test]
    fn stream_exact_and_deterministic() {
        let gen = InstructGenerator::new(SyntheticWorld::new(128, 21));
        let a = gen.stream(500, 3);
        let b = gen.stream(500, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
    }
}
