//! Dense GEMM entry points, routed through the `lx-kernels` backend.
//!
//! These used to be hand-written `i-k-j` loop kernels; they now live in
//! `lx-kernels` as the [`Reference`](lx_kernels::Reference) backend, and the
//! functions here are thin dispatching wrappers (plus the `Tensor`-level
//! `matmul*` convenience forms). Layout conventions are unchanged: row-major
//! everywhere, with `_nt`/`_tn` variants so callers never materialise
//! transposes in the hot path. Which kernel actually runs — the reference
//! loops or the packed/tiled microkernels — is decided per call by the
//! dispatcher (see `lx_kernels::dispatch`).

use crate::f16::HalfTensor;
use crate::quant::{QuantTensor, QuantView};
use crate::Tensor;
// Fused post-GEMM epilogue (bias / bias+GELU at write-back); re-exported so
// model-layer callers can request fusion without a direct lx-kernels dep.
pub use lx_kernels::Epilogue;

/// `C[m,n] = A[m,k] · B[k,n] + beta·C`.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32], beta: f32) {
    assert_eq!(a.len(), m * k, "gemm: A size");
    assert_eq!(b.len(), k * n, "gemm: B size");
    assert_eq!(c.len(), m * n, "gemm: C size");
    lx_kernels::gemm(m, k, n, a, b, c, beta);
}

/// `C[m,n] = A[m,k] · B[n,k]ᵀ + beta·C` — B stored row-major as `n×k`.
pub fn gemm_nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32], beta: f32) {
    assert_eq!(a.len(), m * k, "gemm_nt: A size");
    assert_eq!(b.len(), n * k, "gemm_nt: B size");
    assert_eq!(c.len(), m * n, "gemm_nt: C size");
    lx_kernels::gemm_nt(m, k, n, a, b, c, beta);
}

/// `C[m,n] = A[k,m]ᵀ · B[k,n] + beta·C` — A stored row-major as `k×m`.
///
/// This is the gradient-of-weights shape (`dW = Xᵀ · dY`), the dominant
/// backward-pass GEMM in §II-C of the paper.
pub fn gemm_tn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32], beta: f32) {
    assert_eq!(a.len(), k * m, "gemm_tn: A size");
    assert_eq!(b.len(), k * n, "gemm_tn: B size");
    assert_eq!(c.len(), m * n, "gemm_tn: C size");
    lx_kernels::gemm_tn(m, k, n, a, b, c, beta);
}

/// Tensor-level wrapper: `A[m,k] · B[k,n]` on the trailing-2-D views.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    assert_eq!(
        k,
        kb,
        "matmul inner dims: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let mut c = Tensor::zeros(&[m, n]);
    gemm(m, k, n, a.as_slice(), b.as_slice(), c.as_mut_slice(), 0.0);
    c
}

/// Tensor-level wrapper: `A[m,k] · B[n,k]ᵀ`.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (n, kb) = (b.rows(), b.cols());
    assert_eq!(
        k,
        kb,
        "matmul_nt inner dims: {:?} x {:?}ᵀ",
        a.shape(),
        b.shape()
    );
    let mut c = Tensor::zeros(&[m, n]);
    gemm_nt(m, k, n, a.as_slice(), b.as_slice(), c.as_mut_slice(), 0.0);
    c
}

/// [`matmul`] with a fused [`Epilogue`] applied at kernel write-back —
/// bit-identical to `matmul` followed by the equivalent bias/activation
/// passes, minus those passes' memory traffic.
pub fn matmul_ep(a: &Tensor, b: &Tensor, ep: Epilogue<'_>) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    assert_eq!(
        k,
        kb,
        "matmul_ep inner dims: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let mut c = Tensor::zeros(&[m, n]);
    lx_kernels::gemm_ep(
        m,
        k,
        n,
        a.as_slice(),
        b.as_slice(),
        c.as_mut_slice(),
        0.0,
        ep,
    );
    c
}

/// [`matmul_nt`] with a fused [`Epilogue`]. Same contract as [`matmul_ep`].
pub fn matmul_nt_ep(a: &Tensor, b: &Tensor, ep: Epilogue<'_>) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (n, kb) = (b.rows(), b.cols());
    assert_eq!(
        k,
        kb,
        "matmul_nt_ep inner dims: {:?} x {:?}ᵀ",
        a.shape(),
        b.shape()
    );
    let mut c = Tensor::zeros(&[m, n]);
    lx_kernels::gemm_nt_ep(
        m,
        k,
        n,
        a.as_slice(),
        b.as_slice(),
        c.as_mut_slice(),
        0.0,
        ep,
    );
    c
}

/// Tensor-level wrapper: `A[m,k] · B[k,n]` with **B stored at half
/// precision**. B's f16 bits are decoded to f32 inside the kernel (pack-time
/// for the packed backend); all accumulation stays f32.
pub fn matmul_f16(a: &Tensor, b: &HalfTensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    assert_eq!(
        k,
        kb,
        "matmul_f16 inner dims: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let mut c = Tensor::zeros(&[m, n]);
    lx_kernels::gemm_f16(m, k, n, a.as_slice(), b.bits(), c.as_mut_slice(), 0.0);
    c
}

/// Tensor-level wrapper: `A[m,k] · B[n,k]ᵀ` with **B stored at half
/// precision**. Same mixed-precision contract as [`matmul_f16`].
pub fn matmul_nt_f16(a: &Tensor, b: &HalfTensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (n, kb) = (b.rows(), b.cols());
    assert_eq!(
        k,
        kb,
        "matmul_nt_f16 inner dims: {:?} x {:?}ᵀ",
        a.shape(),
        b.shape()
    );
    let mut c = Tensor::zeros(&[m, n]);
    lx_kernels::gemm_nt_f16(m, k, n, a.as_slice(), b.bits(), c.as_mut_slice(), 0.0);
    c
}

/// [`matmul_f16`] with a fused [`Epilogue`]. Same contract as [`matmul_ep`].
pub fn matmul_f16_ep(a: &Tensor, b: &HalfTensor, ep: Epilogue<'_>) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    assert_eq!(
        k,
        kb,
        "matmul_f16_ep inner dims: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let mut c = Tensor::zeros(&[m, n]);
    let ld = n.max(1);
    lx_kernels::backend().gemm_f16_ep(
        m,
        k,
        n,
        a.as_slice(),
        k.max(1),
        b.bits(),
        ld,
        c.as_mut_slice(),
        ld,
        0.0,
        ep,
    );
    c
}

/// [`matmul_nt_f16`] with a fused [`Epilogue`]. Same contract as
/// [`matmul_ep`].
pub fn matmul_nt_f16_ep(a: &Tensor, b: &HalfTensor, ep: Epilogue<'_>) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (n, kb) = (b.rows(), b.cols());
    assert_eq!(
        k,
        kb,
        "matmul_nt_f16_ep inner dims: {:?} x {:?}ᵀ",
        a.shape(),
        b.shape()
    );
    let mut c = Tensor::zeros(&[m, n]);
    lx_kernels::backend().gemm_nt_f16_ep(
        m,
        k,
        n,
        a.as_slice(),
        k.max(1),
        b.bits(),
        k.max(1),
        c.as_mut_slice(),
        n.max(1),
        0.0,
        ep,
    );
    c
}

/// Tensor-level wrapper: `A[m,k] · B[k,n]` with **B stored block-quantized**
/// (int8 or NF4). B dequantizes to f32 inside the kernel (pack-time for the
/// packed backend); all accumulation stays f32, so the result matches
/// dequantizing B up front and calling [`matmul`].
pub fn matmul_quant(a: &Tensor, b: &QuantTensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    assert_eq!(
        k,
        kb,
        "matmul_quant inner dims: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let mut c = Tensor::zeros(&[m, n]);
    match b.view() {
        QuantView::I8(v) => lx_kernels::gemm_q8(m, k, n, a.as_slice(), v, c.as_mut_slice(), 0.0),
        QuantView::Nf4(v) => lx_kernels::gemm_q4(m, k, n, a.as_slice(), v, c.as_mut_slice(), 0.0),
    }
    c
}

/// Tensor-level wrapper: `A[m,k] · B[n,k]ᵀ` with **B stored
/// block-quantized**. Same mixed-precision contract as [`matmul_quant`].
pub fn matmul_nt_quant(a: &Tensor, b: &QuantTensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (n, kb) = (b.rows(), b.cols());
    assert_eq!(
        k,
        kb,
        "matmul_nt_quant inner dims: {:?} x {:?}ᵀ",
        a.shape(),
        b.shape()
    );
    let mut c = Tensor::zeros(&[m, n]);
    match b.view() {
        QuantView::I8(v) => lx_kernels::gemm_nt_q8(m, k, n, a.as_slice(), v, c.as_mut_slice(), 0.0),
        QuantView::Nf4(v) => {
            lx_kernels::gemm_nt_q4(m, k, n, a.as_slice(), v, c.as_mut_slice(), 0.0)
        }
    }
    c
}

/// [`matmul_quant`] with a fused [`Epilogue`]. Same contract as
/// [`matmul_ep`].
pub fn matmul_quant_ep(a: &Tensor, b: &QuantTensor, ep: Epilogue<'_>) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    assert_eq!(
        k,
        kb,
        "matmul_quant_ep inner dims: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let mut c = Tensor::zeros(&[m, n]);
    let (lda, ld) = (k.max(1), n.max(1));
    let cs = c.as_mut_slice();
    match b.view() {
        QuantView::I8(v) => {
            lx_kernels::backend().gemm_q8_ep(m, k, n, a.as_slice(), lda, v, ld, cs, ld, 0.0, ep)
        }
        QuantView::Nf4(v) => {
            lx_kernels::backend().gemm_q4_ep(m, k, n, a.as_slice(), lda, v, ld, cs, ld, 0.0, ep)
        }
    }
    c
}

/// [`matmul_nt_quant`] with a fused [`Epilogue`]. Same contract as
/// [`matmul_ep`].
pub fn matmul_nt_quant_ep(a: &Tensor, b: &QuantTensor, ep: Epilogue<'_>) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (n, kb) = (b.rows(), b.cols());
    assert_eq!(
        k,
        kb,
        "matmul_nt_quant_ep inner dims: {:?} x {:?}ᵀ",
        a.shape(),
        b.shape()
    );
    let mut c = Tensor::zeros(&[m, n]);
    let (lda, ldc) = (k.max(1), n.max(1));
    let cs = c.as_mut_slice();
    match b.view() {
        QuantView::I8(v) => lx_kernels::backend().gemm_nt_q8_ep(
            m,
            k,
            n,
            a.as_slice(),
            lda,
            v,
            lda,
            cs,
            ldc,
            0.0,
            ep,
        ),
        QuantView::Nf4(v) => lx_kernels::backend().gemm_nt_q4_ep(
            m,
            k,
            n,
            a.as_slice(),
            lda,
            v,
            lda,
            cs,
            ldc,
            0.0,
            ep,
        ),
    }
    c
}

/// Tensor-level wrapper: `A[m,k] · B[k,n]` with **B stored N:M
/// structured-sparse** (2:4). The codec keeps surviving values bit-exactly,
/// so — unlike the quantized forms — the result is bit-identical to decoding
/// B up front and calling [`matmul`]; the packed backend additionally skips
/// all-zero groups at pack time.
pub fn matmul_nm(a: &Tensor, b: &crate::NmTensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    assert_eq!(
        k,
        kb,
        "matmul_nm inner dims: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let mut c = Tensor::zeros(&[m, n]);
    lx_kernels::gemm_nm(m, k, n, a.as_slice(), b.view(), c.as_mut_slice(), 0.0);
    c
}

/// Tensor-level wrapper: `A[m,k] · B[n,k]ᵀ` with **B stored N:M
/// structured-sparse** (2:4) — the pruned-backbone forward shape, where the
/// sparse axis is the reduction axis. Same bit-exactness contract as
/// [`matmul_nm`].
pub fn matmul_nt_nm(a: &Tensor, b: &crate::NmTensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (n, kb) = (b.rows(), b.cols());
    assert_eq!(
        k,
        kb,
        "matmul_nt_nm inner dims: {:?} x {:?}ᵀ",
        a.shape(),
        b.shape()
    );
    let mut c = Tensor::zeros(&[m, n]);
    lx_kernels::gemm_nt_nm(m, k, n, a.as_slice(), b.view(), c.as_mut_slice(), 0.0);
    c
}

/// [`matmul_nm`] with a fused [`Epilogue`]. Same contract as [`matmul_ep`].
pub fn matmul_nm_ep(a: &Tensor, b: &crate::NmTensor, ep: Epilogue<'_>) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    assert_eq!(
        k,
        kb,
        "matmul_nm_ep inner dims: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let mut c = Tensor::zeros(&[m, n]);
    let ld = n.max(1);
    lx_kernels::backend().gemm_nm_ep(
        m,
        k,
        n,
        a.as_slice(),
        k.max(1),
        b.view(),
        ld,
        c.as_mut_slice(),
        ld,
        0.0,
        ep,
    );
    c
}

/// [`matmul_nt_nm`] with a fused [`Epilogue`]. Same contract as
/// [`matmul_ep`].
pub fn matmul_nt_nm_ep(a: &Tensor, b: &crate::NmTensor, ep: Epilogue<'_>) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (n, kb) = (b.rows(), b.cols());
    assert_eq!(
        k,
        kb,
        "matmul_nt_nm_ep inner dims: {:?} x {:?}ᵀ",
        a.shape(),
        b.shape()
    );
    let mut c = Tensor::zeros(&[m, n]);
    lx_kernels::gemm_nt_nm_ep(m, k, n, a.as_slice(), b.view(), c.as_mut_slice(), 0.0, ep);
    c
}

/// Tensor-level wrapper: `A[k,m]ᵀ · B[k,n]`.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    assert_eq!(
        k,
        kb,
        "matmul_tn inner dims: {:?}ᵀ x {:?}",
        a.shape(),
        b.shape()
    );
    let mut c = Tensor::zeros(&[m, n]);
    gemm_tn(m, k, n, a.as_slice(), b.as_slice(), c.as_mut_slice(), 0.0);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for l in 0..k {
                for j in 0..n {
                    c[i * n + j] += a[i * k + l] * b[l * n + j];
                }
            }
        }
        c
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + y.abs()),
                "idx {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn gemm_matches_naive() {
        let (m, k, n) = (33, 17, 29);
        let a = crate::rng::randn_vec(m * k, 1.0, 1);
        let b = crate::rng::randn_vec(k * n, 1.0, 2);
        let mut c = vec![0.0; m * n];
        gemm(m, k, n, &a, &b, &mut c, 0.0);
        assert_close(&c, &naive(m, k, n, &a, &b), 1e-4);
    }

    #[test]
    fn gemm_beta_accumulates() {
        let (m, k, n) = (4, 3, 5);
        let a = crate::rng::randn_vec(m * k, 1.0, 3);
        let b = crate::rng::randn_vec(k * n, 1.0, 4);
        let mut c = vec![1.0; m * n];
        gemm(m, k, n, &a, &b, &mut c, 2.0);
        let mut expect = naive(m, k, n, &a, &b);
        for v in expect.iter_mut() {
            *v += 2.0;
        }
        assert_close(&c, &expect, 1e-4);
    }

    #[test]
    fn gemm_nt_matches_naive() {
        let (m, k, n) = (19, 23, 11);
        let a = crate::rng::randn_vec(m * k, 1.0, 5);
        let bt = crate::rng::randn_vec(n * k, 1.0, 6); // n×k
                                                       // Build row-major k×n B for the naive reference.
        let mut b = vec![0.0; k * n];
        for j in 0..n {
            for l in 0..k {
                b[l * n + j] = bt[j * k + l];
            }
        }
        let mut c = vec![0.0; m * n];
        gemm_nt(m, k, n, &a, &bt, &mut c, 0.0);
        assert_close(&c, &naive(m, k, n, &a, &b), 1e-4);
    }

    #[test]
    fn gemm_tn_matches_naive() {
        let (m, k, n) = (13, 21, 9);
        let at = crate::rng::randn_vec(k * m, 1.0, 7); // k×m
        let b = crate::rng::randn_vec(k * n, 1.0, 8);
        let mut a = vec![0.0; m * k];
        for l in 0..k {
            for i in 0..m {
                a[i * k + l] = at[l * m + i];
            }
        }
        let mut c = vec![0.0; m * n];
        gemm_tn(m, k, n, &at, &b, &mut c, 0.0);
        assert_close(&c, &naive(m, k, n, &a, &b), 1e-4);
    }

    #[test]
    fn large_parallel_gemm_matches_naive() {
        // Large enough that the dispatcher takes the packed path.
        let (m, k, n) = (128, 96, 64);
        let a = crate::rng::randn_vec(m * k, 1.0, 9);
        let b = crate::rng::randn_vec(k * n, 1.0, 10);
        let mut c = vec![0.0; m * n];
        gemm(m, k, n, &a, &b, &mut c, 0.0);
        assert_close(&c, &naive(m, k, n, &a, &b), 1e-3);
    }

    #[test]
    fn tensor_wrappers_shapes() {
        let a = Tensor::randn(&[6, 4], 1.0, 11);
        let b = Tensor::randn(&[4, 5], 1.0, 12);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[6, 5]);
        let bt = b.transposed_2d();
        let c2 = matmul_nt(&a, &bt);
        assert_close(c.as_slice(), c2.as_slice(), 1e-4);
        let at = a.transposed_2d();
        let c3 = matmul_tn(&at, &b);
        assert_close(c.as_slice(), c3.as_slice(), 1e-4);
    }

    #[test]
    fn quant_matmuls_match_dequant_up_front() {
        use crate::Dtype;
        let a = Tensor::randn(&[7, 33], 1.0, 15);
        let b = Tensor::randn(&[33, 9], 1.0, 16);
        for dtype in [Dtype::I8Block, Dtype::Nf4Block] {
            let q = QuantTensor::from_tensor(&b, dtype);
            let oracle = matmul(&a, &q.to_tensor());
            let c = matmul_quant(&a, &q);
            assert_close(c.as_slice(), oracle.as_slice(), 1e-4);
            let qt = QuantTensor::from_tensor(&b.transposed_2d(), dtype);
            let oracle_nt = matmul_nt(&a, &qt.to_tensor());
            let c_nt = matmul_nt_quant(&a, &qt);
            assert_close(c_nt.as_slice(), oracle_nt.as_slice(), 1e-4);
        }
    }

    #[test]
    fn nm_matmuls_are_bit_identical_to_decode_up_front() {
        use crate::{Dtype, NmTensor};
        let a = Tensor::randn(&[7, 36], 1.0, 40);
        let b = Tensor::randn(&[36, 9], 1.0, 41);
        let nm = NmTensor::from_tensor(&b, Dtype::Nm24);
        let oracle = matmul(&a, &nm.to_tensor());
        let c = matmul_nm(&a, &nm);
        for (x, y) in c.as_slice().iter().zip(oracle.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        let nmt = NmTensor::from_tensor(&b.transposed_2d(), Dtype::Nm24);
        let oracle_nt = matmul_nt(&a, &nmt.to_tensor());
        let c_nt = matmul_nt_nm(&a, &nmt);
        for (x, y) in c_nt.as_slice().iter().zip(oracle_nt.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // Fused epilogue form against its own unfused twin.
        let bias = crate::rng::randn_vec(9, 1.0, 42);
        let fused = matmul_nt_nm_ep(&a, &nmt, Epilogue::Bias(&bias));
        let mut unfused = matmul_nt_nm(&a, &nmt);
        crate::ops::add_bias_rows(&mut unfused, &bias);
        for (f, u) in fused.as_slice().iter().zip(unfused.as_slice()) {
            assert_eq!(f.to_bits(), u.to_bits());
        }
    }

    #[test]
    fn fused_epilogue_matches_unfused_composition_bitwise() {
        use crate::ops::{add_bias_rows, gelu_inplace};
        let a = Tensor::randn(&[9, 33], 1.0, 17);
        let b = Tensor::randn(&[33, 12], 1.0, 18);
        let bias = crate::rng::randn_vec(12, 1.0, 19);
        // Bias-only fusion.
        let fused = matmul_ep(&a, &b, Epilogue::Bias(&bias));
        let mut unfused = matmul(&a, &b);
        add_bias_rows(&mut unfused, &bias);
        for (f, u) in fused.as_slice().iter().zip(unfused.as_slice()) {
            assert_eq!(f.to_bits(), u.to_bits());
        }
        // Bias+GELU fusion.
        let fused = matmul_ep(&a, &b, Epilogue::BiasGelu(&bias));
        gelu_inplace(unfused.as_mut_slice());
        for (f, u) in fused.as_slice().iter().zip(unfused.as_slice()) {
            assert_eq!(f.to_bits(), u.to_bits());
        }
        // nt form against its own unfused twin.
        let bt = b.transposed_2d();
        let fused_nt = matmul_nt_ep(&a, &bt, Epilogue::Bias(&bias));
        let mut unfused_nt = matmul_nt(&a, &bt);
        add_bias_rows(&mut unfused_nt, &bias);
        for (f, u) in fused_nt.as_slice().iter().zip(unfused_nt.as_slice()) {
            assert_eq!(f.to_bits(), u.to_bits());
        }
    }

    #[test]
    fn degenerate_dims() {
        let a = Tensor::randn(&[1, 8], 1.0, 13);
        let b = Tensor::randn(&[8, 1], 1.0, 14);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[1, 1]);
        let expect: f32 = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| x * y)
            .sum();
        assert!((c.as_slice()[0] - expect).abs() < 1e-4);
    }
}
