//! Causal-LM cross-entropy with ignore-index support (prompt positions and
//! padding are excluded from the loss).

use lx_tensor::ops::softmax_row;
use lx_tensor::Tensor;

/// Target id meaning "do not score this position".
pub const IGNORE_INDEX: i32 = -1;

/// Mean cross-entropy over non-ignored positions.
///
/// Returns `(loss, dlogits)` where `dlogits = (softmax − onehot) / n_counted`
/// — ready to feed straight into the model's backward pass.
pub fn cross_entropy(logits: &Tensor, targets: &[i32]) -> (f32, Tensor) {
    let rows = logits.rows();
    let vocab = logits.cols();
    assert_eq!(targets.len(), rows, "one target per logit row");
    let counted = targets.iter().filter(|&&t| t != IGNORE_INDEX).count();
    let mut dlogits = Tensor::zeros(logits.shape());
    if counted == 0 {
        return (0.0, dlogits);
    }
    let inv = 1.0 / counted as f32;
    let mut loss = 0.0f64;
    // One workspace-pooled softmax scratch row, reused across positions
    // (the old per-row `to_vec` was a vocab-sized heap allocation per token).
    let mut scratch = Tensor::zeros(&[vocab]);
    let probs = scratch.as_mut_slice();
    #[allow(clippy::needless_range_loop)]
    for r in 0..rows {
        let t = targets[r];
        if t == IGNORE_INDEX {
            continue; // dlogits row stays zero
        }
        assert!((t as usize) < vocab, "target {t} out of vocab {vocab}");
        probs.copy_from_slice(logits.row(r));
        softmax_row(probs);
        loss -= (probs[t as usize].max(1e-12) as f64).ln();
        let drow = dlogits.row_mut(r);
        for (o, &p) in drow.iter_mut().zip(probs.iter()) {
            *o = p * inv;
        }
        drow[t as usize] -= inv;
    }
    ((loss / counted as f64) as f32, dlogits)
}

/// Mean cross-entropy over non-ignored positions *without* materialising the
/// gradient — the evaluation-path variant of [`cross_entropy`] (no
/// `[rows, vocab]` dlogits allocation for passes that never backprop).
pub fn cross_entropy_loss(logits: &Tensor, targets: &[i32]) -> f32 {
    let rows = logits.rows();
    let vocab = logits.cols();
    assert_eq!(targets.len(), rows, "one target per logit row");
    let counted = targets.iter().filter(|&&t| t != IGNORE_INDEX).count();
    if counted == 0 {
        return 0.0;
    }
    let mut loss = 0.0f64;
    let mut scratch = Tensor::zeros(&[vocab]);
    let probs = scratch.as_mut_slice();
    #[allow(clippy::needless_range_loop)]
    for r in 0..rows {
        let t = targets[r];
        if t == IGNORE_INDEX {
            continue;
        }
        assert!((t as usize) < vocab, "target {t} out of vocab {vocab}");
        probs.copy_from_slice(logits.row(r));
        softmax_row(probs);
        loss -= (probs[t as usize].max(1e-12) as f64).ln();
    }
    (loss / counted as f64) as f32
}

/// Sum of log-probabilities of `targets` under `logits` at non-ignored rows
/// (the lm-eval-style candidate-scoring primitive used by Table IV).
pub fn sequence_logprob(logits: &Tensor, targets: &[i32]) -> f32 {
    let rows = logits.rows();
    assert_eq!(targets.len(), rows);
    let mut total = 0.0f64;
    let mut scratch = Tensor::zeros(&[logits.cols()]);
    let probs = scratch.as_mut_slice();
    #[allow(clippy::needless_range_loop)]
    for r in 0..rows {
        let t = targets[r];
        if t == IGNORE_INDEX {
            continue;
        }
        probs.copy_from_slice(logits.row(r));
        softmax_row(probs);
        total += (probs[t as usize].max(1e-12) as f64).ln();
    }
    total as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_vocab() {
        let logits = Tensor::zeros(&[3, 8]);
        let targets = vec![0, 3, 7];
        let (loss, _) = cross_entropy(&logits, &targets);
        assert!((loss - (8.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn perfect_prediction_gives_near_zero_loss() {
        let mut logits = Tensor::zeros(&[2, 4]);
        logits.row_mut(0)[1] = 50.0;
        logits.row_mut(1)[2] = 50.0;
        let (loss, _) = cross_entropy(&logits, &[1, 2]);
        assert!(loss < 1e-4, "loss {loss}");
    }

    #[test]
    fn ignored_rows_contribute_nothing() {
        let mut logits = Tensor::zeros(&[3, 4]);
        logits.row_mut(2)[0] = 100.0; // would be terrible for target 3
        let (loss_a, grad) = cross_entropy(&logits, &[0, 1, IGNORE_INDEX]);
        let logits2 = Tensor::from_vec(logits.as_slice()[..8].to_vec(), &[2, 4]);
        let (loss_b, _) = cross_entropy(&logits2, &[0, 1]);
        assert!((loss_a - loss_b).abs() < 1e-6);
        assert!(grad.row(2).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Tensor::randn(&[2, 5], 1.0, 1);
        let targets = vec![3, 0];
        let (_, grad) = cross_entropy(&logits, &targets);
        let h = 1e-3;
        for idx in [0usize, 4, 8] {
            let mut lp = logits.clone();
            lp.as_mut_slice()[idx] += h;
            let mut lm = logits.clone();
            lm.as_mut_slice()[idx] -= h;
            let (fp, _) = cross_entropy(&lp, &targets);
            let (fm, _) = cross_entropy(&lm, &targets);
            let fd = (fp - fm) / (2.0 * h);
            assert!(
                (grad.as_slice()[idx] - fd).abs() < 1e-3,
                "idx {idx}: {} vs {fd}",
                grad.as_slice()[idx]
            );
        }
    }

    #[test]
    fn grad_rows_sum_to_zero() {
        let logits = Tensor::randn(&[4, 6], 1.0, 2);
        let (_, grad) = cross_entropy(&logits, &[0, 5, 2, 1]);
        for r in 0..4 {
            let sum: f32 = grad.row(r).iter().sum();
            assert!(sum.abs() < 1e-5, "row {r} sums to {sum}");
        }
    }

    #[test]
    fn gradient_free_loss_matches_cross_entropy_bitwise() {
        let logits = Tensor::randn(&[5, 7], 1.0, 9);
        let targets = vec![0, IGNORE_INDEX, 3, 6, 2];
        let (with_grad, _) = cross_entropy(&logits, &targets);
        let without = cross_entropy_loss(&logits, &targets);
        assert_eq!(with_grad.to_bits(), without.to_bits());
        assert_eq!(cross_entropy_loss(&logits, &[IGNORE_INDEX; 5]), 0.0);
    }

    #[test]
    fn sequence_logprob_prefers_correct_tokens() {
        let mut logits = Tensor::zeros(&[2, 4]);
        logits.row_mut(0)[1] = 5.0;
        logits.row_mut(1)[2] = 5.0;
        let good = sequence_logprob(&logits, &[1, 2]);
        let bad = sequence_logprob(&logits, &[0, 3]);
        assert!(good > bad);
    }

    #[test]
    fn all_ignored_is_zero_loss() {
        let logits = Tensor::randn(&[2, 4], 1.0, 3);
        let (loss, grad) = cross_entropy(&logits, &[IGNORE_INDEX, IGNORE_INDEX]);
        assert_eq!(loss, 0.0);
        assert!(grad.as_slice().iter().all(|&v| v == 0.0));
    }
}
