//! Trainable parameter: a tensor, its (lazily allocated) gradient, and a
//! trainability flag. PEFT methods work by flipping these flags and adding
//! small extra parameters — exactly the paper's Table I setting.

use lx_tensor::Tensor;

/// A named model parameter.
#[derive(Debug)]
pub struct Param {
    pub name: String,
    pub value: Tensor,
    /// Allocated on first accumulation; `None` for frozen params that never
    /// received a gradient (saving the optimizer-state memory PEFT avoids).
    pub grad: Option<Tensor>,
    pub trainable: bool,
}

impl Param {
    pub fn new(name: impl Into<String>, value: Tensor, trainable: bool) -> Self {
        Param {
            name: name.into(),
            value,
            grad: None,
            trainable,
        }
    }

    /// Frozen parameter (the pre-trained backbone default under PEFT).
    pub fn frozen(name: impl Into<String>, value: Tensor) -> Self {
        Self::new(name, value, false)
    }

    pub fn numel(&self) -> usize {
        self.value.len()
    }

    /// Accumulate a gradient tensor (allocates on first use).
    pub fn accumulate_grad(&mut self, grad: &Tensor) {
        match &mut self.grad {
            Some(g) => g.add_assign(grad),
            None => self.grad = Some(grad.clone()),
        }
    }

    /// Mutable access to the gradient buffer, allocating zeros if absent.
    pub fn grad_mut(&mut self) -> &mut Tensor {
        if self.grad.is_none() {
            self.grad = Some(Tensor::zeros(self.value.shape()));
        }
        self.grad.as_mut().unwrap()
    }

    /// Zero the gradient in place (keeps the allocation).
    pub fn zero_grad(&mut self) {
        if let Some(g) = &mut self.grad {
            g.zero_();
        }
    }

    /// Drop the gradient allocation entirely.
    pub fn clear_grad(&mut self) {
        self.grad = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_allocates_then_adds() {
        let mut p = Param::new("w", Tensor::zeros(&[2, 2]), true);
        assert!(p.grad.is_none());
        let g = Tensor::full(&[2, 2], 1.0);
        p.accumulate_grad(&g);
        p.accumulate_grad(&g);
        assert_eq!(p.grad.as_ref().unwrap().as_slice(), &[2.0; 4]);
    }

    #[test]
    fn zero_keeps_allocation_clear_drops_it() {
        let mut p = Param::new("w", Tensor::zeros(&[3]), true);
        p.grad_mut().as_mut_slice()[0] = 5.0;
        p.zero_grad();
        assert_eq!(p.grad.as_ref().unwrap().as_slice(), &[0.0; 3]);
        p.clear_grad();
        assert!(p.grad.is_none());
    }

    #[test]
    fn frozen_constructor() {
        let p = Param::frozen("emb", Tensor::zeros(&[4]));
        assert!(!p.trainable);
        assert_eq!(p.numel(), 4);
    }
}
