//! Element dtypes and their storage sizes.
//!
//! The single source of truth for "how many bytes does one element occupy":
//! the tensor types register these sizes with [`memtrack`](crate::memtrack),
//! and `lx-runtime`'s memory/cost models read them from here instead of
//! hard-coding byte counts — so the simulator cannot drift from what the
//! runtime actually stores.

/// Storage precision of a tensor buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dtype {
    /// IEEE binary32 — all compute, activations, gradients, optimizer state.
    F32,
    /// IEEE binary16 — frozen-parameter storage ([`HalfTensor`]).
    ///
    /// [`HalfTensor`]: crate::f16::HalfTensor
    F16,
}

impl Dtype {
    /// Bytes per element.
    pub const fn size_bytes(self) -> usize {
        match self {
            Dtype::F32 => 4,
            Dtype::F16 => 2,
        }
    }

    pub const fn name(self) -> &'static str {
        match self {
            Dtype::F32 => "f32",
            Dtype::F16 => "f16",
        }
    }
}

impl std::fmt::Display for Dtype {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_storage_types() {
        assert_eq!(Dtype::F32.size_bytes(), std::mem::size_of::<f32>());
        assert_eq!(Dtype::F16.size_bytes(), std::mem::size_of::<u16>());
        assert_eq!(Dtype::F16.to_string(), "f16");
    }
}
