//! Synthetic data substrate.
//!
//! The paper fine-tunes on E2E (NLG) and Alpaca (instructions) and evaluates
//! on PIQA / Winogrande / RTE / COPA / HellaSwag. Those corpora and
//! checkpoints are not reproducible at CPU scale, so this crate builds
//! *planted-signal* equivalents over a shared [`world::SyntheticWorld`]: a
//! deterministic token-pairing structure that (a) gives fine-tuning a real
//! learnable signal, (b) yields realistic token locality so predicted sparse
//! patterns are non-trivial, and (c) lets the downstream tasks measure
//! whether sparsity-accelerated fine-tuning learned the same thing the dense
//! run did (Table IV's question).

pub mod batcher;
pub mod e2e;
pub mod instruct;
pub mod tasks;
pub mod world;

pub use batcher::Batcher;
pub use tasks::{Task, TaskExample, TaskKind};
pub use world::SyntheticWorld;
