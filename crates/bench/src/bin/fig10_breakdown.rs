//! **Figure 10**: per-phase breakdown of PEFT fine-tuning with and without
//! Long Exposure, including predictor overhead.
//!
//! Paper: Long Exposure shrinks forward and backward across LoRA / Adapter /
//! BitFit while prediction overhead stays marginal.

use long_exposure::engine::StepMode;
use lx_bench::{calibrated_engine, default_opt, fmt_ms, header, mean_step, row};
use lx_model::ModelConfig;
use lx_peft::PeftMethod;

fn main() {
    let cli = lx_bench::BenchCli::parse("fig10_breakdown");
    let (batch, seq, steps) = (2, 256, 3);
    let cfg = ModelConfig::opt_sim_small();
    println!(
        "== Fig. 10: per-phase breakdown ({}, batch {batch}, seq {seq}) ==\n",
        cfg.name
    );
    header(&[
        "method",
        "predict",
        "forward",
        "backward",
        "optim",
        "total (ms)",
        "speedup",
    ]);
    let methods = [
        ("Full", PeftMethod::Full),
        ("LoRA", PeftMethod::lora_default()),
        ("Adapter", PeftMethod::adapter_default()),
        ("BitFit", PeftMethod::BitFit),
    ];
    for (name, method) in methods {
        let (mut engine, mut batcher) = calibrated_engine(cfg.clone(), method, batch, seq, 42);
        let mut opt = default_opt();
        let dense = mean_step(
            &mut engine,
            &mut batcher,
            batch,
            seq,
            StepMode::Dense,
            steps,
            &mut opt,
        );
        row(&[
            format!("{name} (dense)"),
            "-".into(),
            fmt_ms(dense.forward),
            fmt_ms(dense.backward),
            fmt_ms(dense.optim),
            fmt_ms(dense.total()),
            "1.00x".into(),
        ]);
        let lx = mean_step(
            &mut engine,
            &mut batcher,
            batch,
            seq,
            StepMode::Sparse,
            steps,
            &mut opt,
        );
        row(&[
            format!("{name} (+LongExposure)"),
            fmt_ms(lx.predict),
            fmt_ms(lx.forward),
            fmt_ms(lx.backward),
            fmt_ms(lx.optim),
            fmt_ms(lx.total()),
            format!(
                "{:.2}x",
                dense.total().as_secs_f64() / lx.total().as_secs_f64()
            ),
        ]);
    }
    println!("\nshape to check: +LongExposure cuts forward & backward; predict column stays ~1-3% of total.");
    cli.finish();
}
