//! Per-batch sparse execution plans.
//!
//! The Long Exposure predictors produce, for each transformer layer, a
//! multi-head attention layout and an active-neuron-block set. The model
//! consumes the plan during `forward`; modules cache what they used so
//! `backward` replays the same pattern (the paper's §II-D requirement that
//! forward-inactive parameters stay out of the backward pass).

use lx_sparse::{MultiHeadLayout, NeuronBlockSet};
use std::sync::Arc;

/// Sparse choices for one transformer layer. `None` fields run dense.
#[derive(Debug, Clone, Default)]
pub struct LayerPlan {
    pub attn: Option<Arc<MultiHeadLayout>>,
    pub mlp: Option<Arc<NeuronBlockSet>>,
}

/// One plan entry per layer.
#[derive(Debug, Clone, Default)]
pub struct SparsePlan {
    pub layers: Vec<LayerPlan>,
}

impl SparsePlan {
    /// A fully-dense plan for `n_layers` (useful as a mutable starting point).
    pub fn dense(n_layers: usize) -> Self {
        SparsePlan {
            layers: vec![LayerPlan::default(); n_layers],
        }
    }

    pub fn layer(&self, i: usize) -> Option<&LayerPlan> {
        self.layers.get(i)
    }

    /// Mean attention density across layers that have a layout.
    pub fn mean_attn_density(&self) -> Option<f32> {
        let ds: Vec<f32> = self
            .layers
            .iter()
            .filter_map(|l| l.attn.as_ref().map(|a| a.mean_density()))
            .collect();
        (!ds.is_empty()).then(|| ds.iter().sum::<f32>() / ds.len() as f32)
    }

    /// Mean MLP neuron-block density across layers that have a set.
    pub fn mean_mlp_density(&self) -> Option<f32> {
        let ds: Vec<f32> = self
            .layers
            .iter()
            .filter_map(|l| l.mlp.as_ref().map(|m| m.density()))
            .collect();
        (!ds.is_empty()).then(|| ds.iter().sum::<f32>() / ds.len() as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lx_sparse::{BlockCsr, BlockMask, PatternSpec};

    #[test]
    fn dense_plan_has_no_layouts() {
        let p = SparsePlan::dense(3);
        assert_eq!(p.layers.len(), 3);
        assert!(p.layer(0).unwrap().attn.is_none());
        assert!(p.mean_attn_density().is_none());
        assert!(p.mean_mlp_density().is_none());
    }

    #[test]
    fn densities_average_over_present_layers() {
        let mut p = SparsePlan::dense(2);
        let lay = Arc::new(BlockCsr::from_mask(&PatternSpec::Causal.mask(4), 8));
        p.layers[0].attn = Some(Arc::new(MultiHeadLayout::combine(vec![lay])));
        p.layers[1].mlp = Some(Arc::new(NeuronBlockSet::from_indices(vec![0], 4, 8)));
        assert!((p.mean_attn_density().unwrap() - 10.0 / 16.0).abs() < 1e-6);
        assert!((p.mean_mlp_density().unwrap() - 0.25).abs() < 1e-6);
        let _ = BlockMask::square(1); // silence unused import on some cfgs
    }
}
