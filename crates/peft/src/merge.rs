//! LoRA weight merging: fold `ΔW = (α/r)·BᵀA` into the backbone weight so
//! inference after fine-tuning pays zero adapter overhead. The inverse
//! (`unmerge`) restores the original backbone exactly (up to f32 rounding),
//! which is what lets one backbone serve many tasks.
//!
//! **Sparsity preservation (SPP lineage):** on a 2:4 structured-sparse
//! backbone the dense delta `BᵀA` would repopulate pruned positions and
//! destroy the N:M pattern the fused kernels exploit. The merge therefore
//! captures the weight's group mask before folding, projects the merged
//! weight back onto it (zeroing every pruned position the delta touched —
//! counted in the `peft.merge.mask_violations` metric), and re-demotes to
//! the same compacted storage. A merged Nm24 backbone is provably still 2:4.

use std::sync::{Arc, OnceLock};

use lx_model::linear::Linear;
use lx_model::{Param, TransformerModel};
use lx_obs::{registry, Counter};

/// Pruned positions a LoRA delta tried to repopulate, summed over every
/// mask-preserving merge in the process (the SPP projection magnitude-proxy).
fn mask_violations() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| registry().counter("peft.merge.mask_violations"))
}

/// Process-wide total of [`mask_violations`] — how many pruned weight
/// positions merges have projected back to zero. Exposed for tests and
/// benches; the same value ships through the `lx-obs` registry.
pub fn mask_violation_total() -> u64 {
    mask_violations().get()
}

/// The N:M group mask of a structured-sparse-stored weight, captured before
/// the merge promotes it to f32 (which discards the stored mask).
fn captured_nm_mask(p: &Param) -> Option<Vec<u8>> {
    p.nm.as_ref().map(|s| s.masks().to_vec())
}

/// Project a merged (dense f32) weight back onto its pre-merge N:M mask and
/// re-demote it to compacted storage. Every pruned position the dense delta
/// repopulated is zeroed and counted.
fn reapply_nm_mask(p: &mut Param, masks: &[u8]) {
    let shape = p.shape();
    let (rows, cols) = (
        shape[..shape.len() - 1].iter().product::<usize>(),
        *shape.last().unwrap_or(&0),
    );
    let violations = lx_tensor::nm::apply_mask(
        p.value.as_mut_slice(),
        masks,
        rows,
        cols,
        lx_tensor::nm::NM_M,
    );
    mask_violations().add(violations as u64);
    p.to_nm_with_mask(masks);
}

/// Fold a Linear's LoRA pair into its weight; the adapter stays attached but
/// contributes zero afterwards only if you also zero it — instead we detach.
///
/// A reduced-stored weight (f16 or block-quantized) is promoted to f32
/// first: merging writes into the weight buffer, and folding a delta into
/// rounded storage would lose exactly the adaptation being merged. Re-apply
/// a precision plan afterwards if the merged model should ship reduced.
/// The exception is a 2:4 structured-sparse weight, which keeps its storage:
/// the merge re-applies the captured mask and re-compacts (see the module
/// docs), so the weight stays N:M without caller involvement.
pub fn merge_linear(linear: &mut Linear) {
    let Some(lora) = linear.lora.take() else {
        return;
    };
    let nm_mask = captured_nm_mask(&linear.weight);
    linear.weight.to_f32();
    let (d_in, d_out) = (linear.d_in(), linear.d_out());
    let r = lora.rank();
    let a = lora.a.value.as_slice(); // [r, d_in]
    let b = lora.b.value.as_slice(); // [d_out, r]
    let w = linear.weight.value.as_mut_slice(); // [d_in, d_out]
    for i in 0..d_in {
        for o in 0..d_out {
            let mut acc = 0.0f32;
            for k in 0..r {
                acc += a[k * d_in + i] * b[o * r + k];
            }
            w[i * d_out + o] += lora.scale * acc;
        }
    }
    if let Some(masks) = nm_mask {
        reapply_nm_mask(&mut linear.weight, &masks);
    }
}

/// Merge every attention LoRA in the model. MLP LoRA (which lives in the
/// neuron-major layout) is merged analogously.
pub fn merge_all(model: &mut TransformerModel) {
    for block in &mut model.blocks {
        merge_linear(&mut block.attn.wq);
        merge_linear(&mut block.attn.wk);
        merge_linear(&mut block.attn.wv);
        merge_linear(&mut block.attn.wo);
        merge_mlp(block);
    }
}

fn merge_mlp(block: &mut lx_model::block::TransformerBlock) {
    let mlp = &mut block.mlp;
    let d = mlp.w1.shape()[1];
    let d_ff = mlp.d_ff();
    if let Some(l) = mlp.lora1.take() {
        let nm_mask = captured_nm_mask(&mlp.w1);
        mlp.w1.to_f32();
        // w1 is [d_ff, d] neuron-major; ΔW1ᵀ_row(n) = scale · Σ_k B[n,k]·A[k,:].
        let r = l.b.value.shape()[1];
        let a = l.a.value.as_slice(); // [r, d]
        let b = l.b.value.as_slice(); // [d_ff, r]
        let w = mlp.w1.value.as_mut_slice();
        for n in 0..d_ff {
            for i in 0..d {
                let mut acc = 0.0;
                for k in 0..r {
                    acc += b[n * r + k] * a[k * d + i];
                }
                w[n * d + i] += l.scale * acc;
            }
        }
        if let Some(masks) = nm_mask {
            reapply_nm_mask(&mut mlp.w1, &masks);
        }
    }
    if let Some(l) = mlp.lora2.take() {
        let nm_mask = captured_nm_mask(&mlp.w2);
        mlp.w2.to_f32();
        // w2 is [d_ff, d] row-major; ΔW2_row(n) = scale · A2ᵀ_row(n) · Bᵀ.
        let r = l.b.value.shape()[1];
        let a = l.a.value.as_slice(); // [d_ff, r]
        let b = l.b.value.as_slice(); // [d, r]
        let w = mlp.w2.value.as_mut_slice();
        for n in 0..d_ff {
            for o in 0..d {
                let mut acc = 0.0;
                for k in 0..r {
                    acc += a[n * r + k] * b[o * r + k];
                }
                w[n * d + o] += l.scale * acc;
            }
        }
        if let Some(masks) = nm_mask {
            reapply_nm_mask(&mut mlp.w2, &masks);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LoraTargets, PeftMethod};
    use lx_model::{ModelConfig, StepRequest};
    use lx_tensor::Tensor;

    #[test]
    fn merged_linear_matches_adapter_forward() {
        let mut lin = Linear::new("l", 6, 6, true, 1);
        lin.attach_lora(2, 4.0, 2);
        // Randomise both LoRA halves.
        {
            let l = lin.lora.as_mut().unwrap();
            let av = lx_tensor::rng::randn_vec(l.a.value.len(), 0.5, 3);
            l.a.value.as_mut_slice().copy_from_slice(&av);
            let bv = lx_tensor::rng::randn_vec(l.b.value.len(), 0.5, 4);
            l.b.value.as_mut_slice().copy_from_slice(&bv);
        }
        let x = Tensor::randn(&[4, 6], 1.0, 5);
        let y_adapter = lin.forward(&x);
        merge_linear(&mut lin);
        assert!(lin.lora.is_none());
        let y_merged = lin.forward(&x);
        for (a, b) in y_adapter.as_slice().iter().zip(y_merged.as_slice()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn merge_all_preserves_model_function() {
        let mut m = TransformerModel::new(ModelConfig::test_tiny(), 9);
        PeftMethod::Lora {
            rank: 2,
            alpha: 4.0,
            targets: LoraTargets::all(),
        }
        .apply(&mut m, 10);
        // Randomise the LoRA B halves so the adapters actually do something.
        m.for_each_param(&mut |p| {
            if p.name.contains("lora_b") {
                let v = lx_tensor::rng::randn_vec(p.value.len(), 0.3, 11);
                p.value.as_mut_slice().copy_from_slice(&v);
            }
        });
        let ids: Vec<u32> = (0..8u32).collect();
        let before = m.execute(StepRequest::infer(&ids, 1, 8)).logits.unwrap();
        merge_all(&mut m);
        let after = m.execute(StepRequest::infer(&ids, 1, 8)).logits.unwrap();
        for (a, b) in before.as_slice().iter().zip(after.as_slice()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
        // No LoRA params remain.
        let mut lora_left = 0;
        m.for_each_param(&mut |p| {
            if p.name.contains("lora") {
                lora_left += 1;
            }
        });
        assert_eq!(lora_left, 0);
    }

    #[test]
    fn merge_on_quantized_backbone_promotes_and_preserves_function() {
        // QLoRA-style lifecycle: quantized frozen backbone + f32 adapters,
        // then merge. The merge must promote the touched weights to f32 (the
        // delta cannot be folded into 4-bit codes) and keep the function.
        for precision in [
            lx_model::Precision::Int8Frozen,
            lx_model::Precision::Nf4Frozen,
        ] {
            let mut m = TransformerModel::new(ModelConfig::test_tiny(), 12);
            PeftMethod::Lora {
                rank: 2,
                alpha: 4.0,
                targets: LoraTargets::all(),
            }
            .apply(&mut m, 13);
            m.set_precision(precision);
            m.for_each_param(&mut |p| {
                if p.name.contains("lora_b") {
                    let v = lx_tensor::rng::randn_vec(p.value.len(), 0.3, 14);
                    p.value.as_mut_slice().copy_from_slice(&v);
                }
            });
            let ids: Vec<u32> = (0..8u32).collect();
            let before = m.execute(StepRequest::infer(&ids, 1, 8)).logits.unwrap();
            merge_all(&mut m);
            let after = m.execute(StepRequest::infer(&ids, 1, 8)).logits.unwrap();
            for (a, b) in before.as_slice().iter().zip(after.as_slice()) {
                assert!((a - b).abs() < 1e-3, "{precision}: {a} vs {b}");
            }
            // Merged weights are f32 again; untouched ones (embedding) keep
            // their quantized storage.
            for block in &m.blocks {
                assert!(!block.attn.wq.weight.is_reduced(), "{precision}");
                assert!(!block.mlp.w1.is_reduced(), "{precision}");
            }
        }
    }

    #[test]
    fn merge_on_nm_backbone_preserves_the_sparsity_pattern() {
        // SPP lifecycle: 2:4-pruned frozen backbone + f32 adapters, then
        // merge. Unlike the quantized backbones the merged weights must NOT
        // end up promoted-dense — they keep their compacted N:M storage,
        // the pre-merge mask is provably intact (zero violations on
        // re-check), and the dense delta the projection discarded is
        // surfaced through the mask-violation metric.
        let mut m = TransformerModel::new(ModelConfig::test_tiny(), 15);
        PeftMethod::Lora {
            rank: 2,
            alpha: 4.0,
            targets: LoraTargets::all(),
        }
        .apply(&mut m, 16);
        m.set_precision(lx_model::Precision::Nm24Frozen);
        // Capture every nm weight's mask before the merge.
        let mut masks_before: Vec<(String, Vec<u8>)> = Vec::new();
        m.for_each_param(&mut |p| {
            if let Some(s) = &p.nm {
                masks_before.push((p.name.clone(), s.masks().to_vec()));
            }
        });
        assert!(!masks_before.is_empty(), "backbone must be nm-stored");
        m.for_each_param(&mut |p| {
            if p.name.contains("lora_b") {
                let v = lx_tensor::rng::randn_vec(p.value.len(), 0.3, 17);
                p.value.as_mut_slice().copy_from_slice(&v);
            }
        });
        let violations_before = crate::merge::mask_violation_total();
        merge_all(&mut m);
        // A dense rank-2 delta touches pruned positions: the projection
        // must have counted them.
        assert!(
            crate::merge::mask_violation_total() > violations_before,
            "dense LoRA delta must hit pruned positions"
        );
        // Every merged weight is still nm-stored under its ORIGINAL mask,
        // and its decode obeys that mask exactly (zero violations).
        let before: std::collections::HashMap<_, _> = masks_before.into_iter().collect();
        let mut checked = 0;
        m.for_each_param(&mut |p| {
            if let Some(expect) = before.get(&p.name) {
                let s =
                    p.nm.as_ref()
                        .unwrap_or_else(|| panic!("{}: merged weight must stay nm-stored", p.name));
                assert_eq!(s.masks(), &expect[..], "{}: mask changed", p.name);
                let mut dense = s.to_f32_vec();
                let shape = p.shape();
                let (rows, cols) = (
                    shape[..shape.len() - 1].iter().product::<usize>(),
                    *shape.last().unwrap(),
                );
                let v =
                    lx_tensor::nm::apply_mask(&mut dense, expect, rows, cols, lx_tensor::nm::NM_M);
                assert_eq!(v, 0, "{}: merged weight violates its 2:4 mask", p.name);
                checked += 1;
            }
        });
        assert!(checked > 0);
        // And no LoRA params remain.
        let mut lora_left = 0;
        m.for_each_param(&mut |p| {
            if p.name.contains("lora") {
                lora_left += 1;
            }
        });
        assert_eq!(lora_left, 0);
    }

    #[test]
    fn merge_without_lora_is_noop() {
        let mut lin = Linear::new("l", 4, 4, false, 6);
        let w_before = lin.weight.value.clone();
        merge_linear(&mut lin);
        assert_eq!(lin.weight.value, w_before);
    }
}
