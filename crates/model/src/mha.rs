//! Multi-head attention with a dense path (baseline) and a block-sparse path
//! driven by a per-head [`MultiHeadLayout`] (the Long Exposure path).
//!
//! The sparse path computes scores only on active blocks (SDD), softmaxes
//! over the sparse rows, and contracts with V (DSD); the backward pass reuses
//! the cached layout so inactive blocks never contribute gradients — the
//! paper's §II-D invariant.

use crate::linear::Linear;
use crate::param::Param;
use lx_sparse::attention::{
    block_row_softmax, block_row_softmax_backward, dsd, dsd_tn, sdd_nt, CausalFill,
};
use lx_sparse::MultiHeadLayout;
use lx_tensor::gemm::{gemm, gemm_nt, gemm_tn};
use lx_tensor::ops::{apply_causal_mask, softmax_backward_row, softmax_rows};
use lx_tensor::Tensor;
use std::sync::Arc;

#[derive(Debug)]
pub struct MultiHeadAttention {
    pub wq: Linear,
    pub wk: Linear,
    pub wv: Linear,
    pub wo: Linear,
    pub n_heads: usize,
    pub head_dim: usize,
    /// Optional ALiBi slopes (one per head): `score[i,j] -= slope·(i−j)`.
    /// An additive positional bias, so the backward pass is unchanged.
    pub alibi_slopes: Option<Vec<f32>>,
    cache: Option<AttnCache>,
}

/// Standard ALiBi slope schedule: head `h` of `n` gets `2^(−8(h+1)/n)`.
pub fn alibi_slopes(n_heads: usize) -> Vec<f32> {
    (0..n_heads)
        .map(|h| 2f32.powf(-8.0 * (h + 1) as f32 / n_heads as f32))
        .collect()
}

#[derive(Debug)]
struct AttnCache {
    batch: usize,
    seq: usize,
    /// Head-major `[B·h·S, dh]` projections.
    q: Tensor,
    k: Tensor,
    v: Tensor,
    mode: CacheMode,
}

#[derive(Debug)]
enum CacheMode {
    /// Dense probabilities `[B·h·S, S]`.
    Dense { probs: Tensor },
    /// Block-sparse probabilities: per batch, `layout.total_data_len` floats.
    Sparse {
        layout: Arc<MultiHeadLayout>,
        probs: Tensor,
    },
}

impl MultiHeadAttention {
    pub fn new(name: &str, d_model: usize, n_heads: usize, seed: u64) -> Self {
        assert_eq!(d_model % n_heads, 0);
        MultiHeadAttention {
            wq: Linear::new(&format!("{name}.wq"), d_model, d_model, true, seed),
            wk: Linear::new(&format!("{name}.wk"), d_model, d_model, true, seed + 1),
            wv: Linear::new(&format!("{name}.wv"), d_model, d_model, true, seed + 2),
            wo: Linear::new(&format!("{name}.wo"), d_model, d_model, true, seed + 3),
            n_heads,
            head_dim: d_model / n_heads,
            alibi_slopes: None,
            cache: None,
        }
    }

    /// Enable ALiBi positional bias with the standard slope schedule.
    pub fn enable_alibi(&mut self) {
        self.alibi_slopes = Some(alibi_slopes(self.n_heads));
    }

    /// Forward. `layout = None` runs dense causal attention; `Some` runs the
    /// per-head block-sparse path (requires `seq` divisible by the block).
    pub fn forward(
        &mut self,
        x: &Tensor,
        batch: usize,
        seq: usize,
        layout: Option<&Arc<MultiHeadLayout>>,
    ) -> Tensor {
        let d = self.n_heads * self.head_dim;
        assert_eq!(x.rows(), batch * seq, "attention input rows");
        assert_eq!(x.cols(), d, "attention input width");
        let q = split_heads(&self.wq.forward(x), batch, seq, self.n_heads, self.head_dim);
        let k = split_heads(&self.wk.forward(x), batch, seq, self.n_heads, self.head_dim);
        let v = split_heads(&self.wv.forward(x), batch, seq, self.n_heads, self.head_dim);
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let (ctx, mode) = match layout {
            None => {
                let mut probs = Tensor::zeros(&[batch * self.n_heads * seq, seq]);
                let mut ctx = Tensor::zeros(&[batch * self.n_heads * seq, self.head_dim]);
                for b in 0..batch {
                    for h in 0..self.n_heads {
                        let off = (b * self.n_heads + h) * seq;
                        let qs = rows(&q, off, seq, self.head_dim);
                        let ks = rows(&k, off, seq, self.head_dim);
                        let vs = rows(&v, off, seq, self.head_dim);
                        let p = &mut probs.as_mut_slice()[off * seq..(off + seq) * seq];
                        gemm_nt(seq, self.head_dim, seq, qs, ks, p, 0.0);
                        for val in p.iter_mut() {
                            *val *= scale;
                        }
                        if let Some(slopes) = &self.alibi_slopes {
                            let slope = slopes[h];
                            for i in 0..seq {
                                for j in 0..=i {
                                    p[i * seq + j] -= slope * (i - j) as f32;
                                }
                            }
                        }
                        apply_causal_mask(p, seq);
                        softmax_rows(p, seq);
                        let c = &mut ctx.as_mut_slice()
                            [off * self.head_dim..(off + seq) * self.head_dim];
                        gemm(seq, seq, self.head_dim, p, vs, c, 0.0);
                    }
                }
                (ctx, CacheMode::Dense { probs })
            }
            Some(layout) => {
                assert_eq!(layout.n_heads(), self.n_heads, "layout heads");
                let total = layout.total_data_len;
                let mut probs = Tensor::zeros(&[batch, total]);
                let mut ctx = Tensor::zeros(&[batch * self.n_heads * seq, self.head_dim]);
                for b in 0..batch {
                    for h in 0..self.n_heads {
                        let head_layout = &layout.heads[h];
                        assert_eq!(
                            head_layout.n_brows * head_layout.block_size,
                            seq,
                            "layout grid must match seq"
                        );
                        let off = (b * self.n_heads + h) * seq;
                        let qs = rows(&q, off, seq, self.head_dim);
                        let ks = rows(&k, off, seq, self.head_dim);
                        let vs = rows(&v, off, seq, self.head_dim);
                        let dr = layout.head_data_range(h);
                        let p = &mut probs.as_mut_slice()[b * total..(b + 1) * total][dr];
                        sdd_nt(
                            qs,
                            ks,
                            seq,
                            self.head_dim,
                            scale,
                            head_layout,
                            CausalFill::NegInf,
                            p,
                        );
                        if let Some(slopes) = &self.alibi_slopes {
                            apply_alibi_blocks(p, head_layout, slopes[h]);
                        }
                        block_row_softmax(p, head_layout);
                        let c = &mut ctx.as_mut_slice()
                            [off * self.head_dim..(off + seq) * self.head_dim];
                        dsd(p, vs, seq, self.head_dim, head_layout, c);
                    }
                }
                (
                    ctx,
                    CacheMode::Sparse {
                        layout: layout.clone(),
                        probs,
                    },
                )
            }
        };
        let merged = merge_heads(&ctx, batch, seq, self.n_heads, self.head_dim);
        let y = self.wo.forward(&merged);
        self.cache = Some(AttnCache {
            batch,
            seq,
            q,
            k,
            v,
            mode,
        });
        y
    }

    /// Backward; returns `dx`.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("attention backward without forward");
        let (batch, seq, dh, heads) = (cache.batch, cache.seq, self.head_dim, self.n_heads);
        let scale = 1.0 / (dh as f32).sqrt();
        let dmerged = self.wo.backward(dy);
        let dctx = split_heads(&dmerged, batch, seq, heads, dh);
        let mut dq = Tensor::zeros(&[batch * heads * seq, dh]);
        let mut dk = Tensor::zeros(&[batch * heads * seq, dh]);
        let mut dv = Tensor::zeros(&[batch * heads * seq, dh]);
        match &cache.mode {
            CacheMode::Dense { probs } => {
                // Workspace-pooled scratch: these buffers recycle across
                // (batch, head) iterations and across steps.
                let mut dscores_t = Tensor::zeros(&[seq, seq]);
                let mut dp_t = Tensor::zeros(&[seq, seq]);
                let dscores = dscores_t.as_mut_slice();
                for b in 0..batch {
                    for h in 0..heads {
                        let off = (b * heads + h) * seq;
                        let qs = rows(&cache.q, off, seq, dh);
                        let ks = rows(&cache.k, off, seq, dh);
                        let vs = rows(&cache.v, off, seq, dh);
                        let dc = rows(&dctx, off, seq, dh);
                        let p = &probs.as_slice()[off * seq..(off + seq) * seq];
                        // dP = dC · Vᵀ (beta 0 fully overwrites the scratch).
                        let dp = dp_t.as_mut_slice();
                        gemm_nt(seq, dh, seq, dc, vs, dp, 0.0);
                        // dS = softmax'(P, dP), then scale.
                        for r in 0..seq {
                            softmax_backward_row(
                                &p[r * seq..(r + 1) * seq],
                                &dp[r * seq..(r + 1) * seq],
                                &mut dscores[r * seq..(r + 1) * seq],
                            );
                        }
                        for v in dscores.iter_mut() {
                            *v *= scale;
                        }
                        // dQ = dS · K ; dK = dSᵀ · Q ; dV = Pᵀ · dC
                        let dqs = rows_mut(&mut dq, off, seq, dh);
                        gemm(seq, seq, dh, dscores, ks, dqs, 0.0);
                        let dks = rows_mut(&mut dk, off, seq, dh);
                        gemm_tn(seq, seq, dh, dscores, qs, dks, 0.0);
                        let dvs = rows_mut(&mut dv, off, seq, dh);
                        gemm_tn(seq, seq, dh, p, dc, dvs, 0.0);
                    }
                }
            }
            CacheMode::Sparse { layout, probs } => {
                let total = layout.total_data_len;
                for b in 0..batch {
                    for h in 0..heads {
                        let head_layout = &layout.heads[h];
                        let off = (b * heads + h) * seq;
                        let qs = rows(&cache.q, off, seq, dh);
                        let ks = rows(&cache.k, off, seq, dh);
                        let vs = rows(&cache.v, off, seq, dh);
                        let dc = rows(&dctx, off, seq, dh);
                        let dr = layout.head_data_range(h);
                        let p = &probs.as_slice()[b * total..(b + 1) * total][dr];
                        // dP on active blocks only (SDD with zero fill);
                        // pooled scratch sized per head layout.
                        let mut dp_t = Tensor::zeros(&[head_layout.data_len()]);
                        let dp = dp_t.as_mut_slice();
                        sdd_nt(dc, vs, seq, dh, 1.0, head_layout, CausalFill::Zero, dp);
                        let mut ds_t = Tensor::zeros(&[head_layout.data_len()]);
                        let ds = ds_t.as_mut_slice();
                        block_row_softmax_backward(p, dp, head_layout, ds);
                        for v in ds.iter_mut() {
                            *v *= scale;
                        }
                        let ds: &[f32] = ds;
                        dsd(
                            ds,
                            ks,
                            seq,
                            dh,
                            head_layout,
                            rows_mut(&mut dq, off, seq, dh),
                        );
                        dsd_tn(
                            ds,
                            qs,
                            seq,
                            dh,
                            head_layout,
                            rows_mut(&mut dk, off, seq, dh),
                        );
                        dsd_tn(p, dc, seq, dh, head_layout, rows_mut(&mut dv, off, seq, dh));
                    }
                }
            }
        }
        let dq_m = merge_heads(&dq, batch, seq, heads, dh);
        let dk_m = merge_heads(&dk, batch, seq, heads, dh);
        let dv_m = merge_heads(&dv, batch, seq, heads, dh);
        let mut dx = self.wq.backward(&dq_m);
        dx.add_assign(&self.wk.backward(&dk_m));
        dx.add_assign(&self.wv.backward(&dv_m));
        dx
    }

    /// Dense attention probabilities from the most recent forward, if dense.
    /// Used by calibration capture (ground truth for exposer/predictor).
    pub fn cached_dense_probs(&self) -> Option<&Tensor> {
        match &self.cache {
            Some(AttnCache {
                mode: CacheMode::Dense { probs },
                ..
            }) => Some(probs),
            _ => None,
        }
    }

    pub fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.wq.for_each_param(f);
        self.wk.for_each_param(f);
        self.wv.for_each_param(f);
        self.wo.for_each_param(f);
    }
}

/// `[B·S, h·dh] → [B·h·S, dh]`, head-major so per-(batch, head) slices are
/// contiguous for the block kernels.
pub fn split_heads(x: &Tensor, batch: usize, seq: usize, heads: usize, dh: usize) -> Tensor {
    assert_eq!(x.rows(), batch * seq);
    assert_eq!(x.cols(), heads * dh);
    let mut out = Tensor::zeros(&[batch * heads * seq, dh]);
    for b in 0..batch {
        for s in 0..seq {
            let src = x.row(b * seq + s);
            for h in 0..heads {
                let dst = out.row_mut((b * heads + h) * seq + s);
                dst.copy_from_slice(&src[h * dh..(h + 1) * dh]);
            }
        }
    }
    out
}

/// Inverse of [`split_heads`].
pub fn merge_heads(x: &Tensor, batch: usize, seq: usize, heads: usize, dh: usize) -> Tensor {
    assert_eq!(x.rows(), batch * heads * seq);
    assert_eq!(x.cols(), dh);
    let mut out = Tensor::zeros(&[batch * seq, heads * dh]);
    for b in 0..batch {
        for h in 0..heads {
            for s in 0..seq {
                let src = x.row((b * heads + h) * seq + s);
                let dst = out.row_mut(b * seq + s);
                dst[h * dh..(h + 1) * dh].copy_from_slice(src);
            }
        }
    }
    out
}

/// Subtract `slope·(i−j)` from causal positions of block-sparse score data.
fn apply_alibi_blocks(data: &mut [f32], layout: &lx_sparse::BlockCsr, slope: f32) {
    let b = layout.block_size;
    for br in 0..layout.n_brows {
        for e in layout.row_entries(br) {
            let bc = layout.col_idx[e] as usize;
            for i in 0..b {
                let gi = br * b + i;
                for j in 0..b {
                    let gj = bc * b + j;
                    if gj <= gi {
                        data[e * b * b + i * b + j] -= slope * (gi - gj) as f32;
                    }
                }
            }
        }
    }
}

fn rows(t: &Tensor, start_row: usize, n_rows: usize, width: usize) -> &[f32] {
    &t.as_slice()[start_row * width..(start_row + n_rows) * width]
}

fn rows_mut(t: &mut Tensor, start_row: usize, n_rows: usize, width: usize) -> &mut [f32] {
    &mut t.as_mut_slice()[start_row * width..(start_row + n_rows) * width]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lx_sparse::{BlockCsr, PatternPool, PatternSpec};

    const B: usize = 2;
    const S: usize = 16;
    const D: usize = 8;
    const H: usize = 2;
    const BLK: usize = 4;

    fn mha() -> MultiHeadAttention {
        MultiHeadAttention::new("attn", D, H, 42)
    }

    fn full_layout() -> Arc<MultiHeadLayout> {
        let csr = Arc::new(BlockCsr::from_mask(&PatternSpec::Causal.mask(S / BLK), BLK));
        Arc::new(MultiHeadLayout::combine(vec![csr.clone(), csr]))
    }

    #[test]
    fn split_merge_roundtrip() {
        let x = Tensor::randn(&[B * S, D], 1.0, 1);
        let hm = split_heads(&x, B, S, H, D / H);
        let back = merge_heads(&hm, B, S, H, D / H);
        assert_eq!(back, x);
    }

    #[test]
    fn dense_attention_rows_are_convex_combinations() {
        let mut attn = mha();
        let x = Tensor::randn(&[B * S, D], 1.0, 2);
        let y = attn.forward(&x, B, S, None);
        assert_eq!(y.shape(), &[B * S, D]);
        let probs = attn.cached_dense_probs().unwrap();
        for r in 0..B * H * S {
            let row_sum: f32 = probs.row(r).iter().sum();
            assert!((row_sum - 1.0).abs() < 1e-4, "row {r} sums to {row_sum}");
            // Causality: position s attends only within [0, s].
            let s = r % S;
            for j in (s + 1)..S {
                assert_eq!(probs.row(r)[j], 0.0);
            }
        }
    }

    #[test]
    fn sparse_full_causal_matches_dense_forward() {
        let x = Tensor::randn(&[B * S, D], 1.0, 3);
        let mut dense = mha();
        let mut sparse = mha();
        let yd = dense.forward(&x, B, S, None);
        let ys = sparse.forward(&x, B, S, Some(&full_layout()));
        for (a, b) in yd.as_slice().iter().zip(ys.as_slice()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn sparse_full_causal_matches_dense_backward() {
        let x = Tensor::randn(&[B * S, D], 1.0, 4);
        let dy = Tensor::randn(&[B * S, D], 1.0, 5);
        let mut dense = mha();
        let mut sparse = mha();
        // Make all projections trainable to compare weight grads too.
        dense.for_each_param(&mut |p| p.trainable = true);
        sparse.for_each_param(&mut |p| p.trainable = true);
        let _ = dense.forward(&x, B, S, None);
        let dxd = dense.backward(&dy);
        let _ = sparse.forward(&x, B, S, Some(&full_layout()));
        let dxs = sparse.backward(&dy);
        for (a, b) in dxd.as_slice().iter().zip(dxs.as_slice()) {
            assert!((a - b).abs() < 1e-3, "dx: {a} vs {b}");
        }
        let gd = dense.wq.weight.grad.as_ref().unwrap();
        let gs = sparse.wq.weight.grad.as_ref().unwrap();
        for (a, b) in gd.as_slice().iter().zip(gs.as_slice()) {
            assert!((a - b).abs() < 1e-3, "dWq: {a} vs {b}");
        }
    }

    #[test]
    fn head_specific_patterns_differ_from_uniform() {
        // Head 0 narrow window, head 1 full causal: output must differ from
        // both-all-causal in head 0's contribution but match in head 1's.
        let x = Tensor::randn(&[B * S, D], 1.0, 6);
        let pool = PatternPool::default_pool(BLK, &[S / BLK]);
        let mixed = Arc::new(pool.combine(
            S / BLK,
            &[PatternSpec::LocalWindow { w: 1 }, PatternSpec::Causal],
        ));
        let mut attn_mixed = mha();
        let mut attn_full = mha();
        let ym = attn_mixed.forward(&x, B, S, Some(&mixed));
        let yf = attn_full.forward(&x, B, S, Some(&full_layout()));
        let diff: f32 = ym
            .as_slice()
            .iter()
            .zip(yf.as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-3, "narrow window must change the output");
    }

    #[test]
    fn dense_backward_matches_finite_difference_on_input() {
        let mut attn = MultiHeadAttention::new("attn", 4, 2, 7);
        let (b, s) = (1, 4);
        let x = Tensor::randn(&[b * s, 4], 0.5, 8);
        let dy = Tensor::randn(&[b * s, 4], 1.0, 9);
        let _ = attn.forward(&x, b, s, None);
        let dx = attn.backward(&dy);
        let loss = |attn: &mut MultiHeadAttention, x: &Tensor| -> f32 {
            let y = attn.forward(x, b, s, None);
            attn.cache = None;
            y.as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(u, v)| u * v)
                .sum()
        };
        let h = 1e-3;
        for idx in [0usize, 7, 13] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += h;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= h;
            let fd = (loss(&mut attn, &xp) - loss(&mut attn, &xm)) / (2.0 * h);
            assert!(
                (dx.as_slice()[idx] - fd).abs() < 5e-3,
                "dx[{idx}]: {} vs {fd}",
                dx.as_slice()[idx]
            );
        }
    }
}
