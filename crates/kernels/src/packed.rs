//! The [`Packed`] backend: cache-blocked, panel-packed GEMM microkernels.
//!
//! Classic three-level blocking (BLIS/GotoBLAS structure, adapted from the
//! shared-memory-tile + register-tile pattern GPU kernels use):
//!
//! ```text
//!   for jc in steps of NC over n:            // C column block   (≈ L3)
//!     for pc in steps of KC over k:          // K block
//!       pack B[pc.., jc..] → B̃  (KC×NC, NR-wide column panels)   (≈ L2→L1)
//!       parallel over row chunks of C:
//!         for ic in steps of MC over rows:   // A row block      (≈ L2)
//!           pack A[ic.., pc..] → Ã (MC×KC, MR-tall row panels)
//!           for jr, ir over NR/MR panels:
//!             microkernel: C[MR×NR] += Ã-panel · B̃-panel
//! ```
//!
//! * The microkernel keeps an `MR×NR` register tile of C accumulators and
//!   streams one `MR` column of Ã against one `NR` row of B̃ per k-step —
//!   explicit FMA-friendly inner loops.
//! * Packing absorbs the `_nt`/`_tn` transposes: all three variants feed the
//!   *same* microkernel, only the pack routines index differently. Edge tiles
//!   are zero-padded in the packed buffers, so the microkernel never branches
//!   on shape; write-back clamps to the valid region.
//! * B̃ is packed once per `(jc, pc)` block on the submitting thread and
//!   shared read-only across all row tasks — the "B-panel reuse across A
//!   rows" that makes the kernel bandwidth-friendly.
//! * On x86-64 with AVX2+FMA (checked once at runtime) the microkernel uses
//!   `std::arch` intrinsics; everywhere else a fixed-shape scalar kernel that
//!   LLVM auto-vectorises. Both produce identical results up to f32
//!   summation order, which differs from [`Reference`](crate::Reference) only
//!   within the usual 1e-4 relative tolerance.
//!
//! Pack buffers are thread-local and reused across calls, so steady-state
//! GEMMs allocate nothing.

use crate::backend::{check_view, row_grain, scale_only, KernelBackend};
use crate::dispatch::tiles;
use lx_parallel::par_rows;
use std::cell::RefCell;

/// Register tile height (rows of C per microkernel call).
pub const MR: usize = 6;
/// Register tile width (cols of C per microkernel call).
pub const NR: usize = 16;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Layout {
    /// Operand stored as it is multiplied (`rows × cols` row-major).
    Normal,
    /// Operand stored transposed (`cols × rows` row-major).
    Transposed,
}

/// Element type a B operand may be stored in. Packing converts to f32, so
/// the microkernel and all accumulation stay f32 regardless of storage —
/// the BLIS-style mixed-precision scheme: lower-precision operands cost one
/// conversion during the O(k·n) pack, not per O(m·k·n) FLOP.
pub(crate) trait PackElem: Copy + Sync {
    fn to_f32(self) -> f32;
}

impl PackElem for f32 {
    #[inline(always)]
    fn to_f32(self) -> f32 {
        self
    }
}

/// `u16` is interpreted as IEEE binary16 bits.
impl PackElem for u16 {
    #[inline(always)]
    fn to_f32(self) -> f32 {
        crate::half::f16_bits_to_f32(self)
    }
}

/// A B operand the pack routines can read by **flat element index** — the
/// generalisation [`PackElem`] needs once storage is no longer one element
/// per slot. Block-quantized sources resolve their per-block scale from the
/// same flat index (`scales[idx / BLOCK]`), which works under `ldb` striding
/// because the index handed in is always buffer-relative, never
/// panel-relative.
pub(crate) trait PackSrc: Sync {
    /// Dequantized/decoded f32 value of element `idx` of the row-major
    /// buffer.
    fn load(&self, idx: usize) -> f32;
}

impl<E: PackElem> PackSrc for [E] {
    #[inline(always)]
    fn load(&self, idx: usize) -> f32 {
        self[idx].to_f32()
    }
}

impl PackSrc for lx_quant::Q8View<'_> {
    #[inline(always)]
    fn load(&self, idx: usize) -> f32 {
        self.get(idx)
    }
}

impl PackSrc for lx_quant::Q4View<'_> {
    #[inline(always)]
    fn load(&self, idx: usize) -> f32 {
        self.get(idx)
    }
}

thread_local! {
    static PACK_A: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    static PACK_B: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Pack `kc` k-steps × `nc` columns of B into NR-wide column panels:
/// `out[panel][p·NR + j]` = B(pc+p, jc + panel·NR + j), zero-padded past `nc`.
#[allow(clippy::too_many_arguments)]
fn pack_b<S: PackSrc + ?Sized>(
    out: &mut Vec<f32>,
    b: &S,
    ldb: usize,
    layout: Layout,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
) {
    let panels = nc.div_ceil(NR);
    out.clear();
    out.resize(panels * kc * NR, 0.0);
    for panel in 0..panels {
        let j0 = panel * NR;
        let width = NR.min(nc - j0);
        let dst = &mut out[panel * kc * NR..(panel + 1) * kc * NR];
        match layout {
            Layout::Normal => {
                for p in 0..kc {
                    let base = (pc + p) * ldb + jc + j0;
                    for j in 0..width {
                        dst[p * NR + j] = b.load(base + j);
                    }
                }
            }
            Layout::Transposed => {
                for j in 0..width {
                    let base = (jc + j0 + j) * ldb + pc;
                    for p in 0..kc {
                        dst[p * NR + j] = b.load(base + p);
                    }
                }
            }
        }
    }
}

/// Pack `mc` rows × `kc` k-steps of A into MR-tall row panels:
/// `out[panel][p·MR + i]` = A(ic + panel·MR + i, pc+p), zero-padded past `mc`.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    out: &mut Vec<f32>,
    a: &[f32],
    lda: usize,
    layout: Layout,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
) {
    let panels = mc.div_ceil(MR);
    out.clear();
    out.resize(panels * kc * MR, 0.0);
    for panel in 0..panels {
        let i0 = panel * MR;
        let height = MR.min(mc - i0);
        let dst = &mut out[panel * kc * MR..(panel + 1) * kc * MR];
        match layout {
            Layout::Normal => {
                for i in 0..height {
                    let src = &a[(ic + i0 + i) * lda + pc..];
                    for p in 0..kc {
                        dst[p * MR + i] = src[p];
                    }
                }
            }
            Layout::Transposed => {
                for p in 0..kc {
                    let src = &a[(pc + p) * lda + ic + i0..];
                    for i in 0..height {
                        dst[p * MR + i] = src[i];
                    }
                }
            }
        }
    }
}

/// Scalar microkernel: `C[mr×nr] += Ã-panel · B̃-panel` over `kc` k-steps.
/// Fixed-shape accumulator array so LLVM unrolls and vectorises the j loop.
fn microkernel_scalar(
    kc: usize,
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for p in 0..kc {
        let b_row = &bp[p * NR..(p + 1) * NR];
        let a_col = &ap[p * MR..(p + 1) * MR];
        for (accs, &av) in acc.iter_mut().zip(a_col) {
            for (s, &bv) in accs.iter_mut().zip(b_row) {
                *s += av * bv;
            }
        }
    }
    for (i, accs) in acc.iter().enumerate().take(mr) {
        let c_row = &mut c[i * ldc..i * ldc + nr];
        for (cv, &s) in c_row.iter_mut().zip(accs.iter()) {
            *cv += s;
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod simd {
    //! AVX2+FMA microkernel. `unsafe` here is confined to intrinsics plus
    //! the raw C-tile pointer arithmetic the caller has already
    //! bounds-checked; it is only reachable after a runtime
    //! `is_x86_feature_detected!` probe.
    use super::{MR, NR};

    pub fn available() -> bool {
        use std::sync::OnceLock;
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE
            .get_or_init(|| is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"))
    }

    /// # Safety
    /// Requires AVX2+FMA (call [`available`] first). `c` must be valid for
    /// reads/writes of `mr` rows × `nr` cols at stride `ldc`; `ap`/`bp` must
    /// hold `kc` packed MR/NR panels.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn microkernel(
        kc: usize,
        ap: *const f32,
        bp: *const f32,
        c: *mut f32,
        ldc: usize,
        mr: usize,
        nr: usize,
    ) {
        use std::arch::x86_64::*;
        // MR×NR accumulators: 6 rows × two 8-lane halves = 12 ymm registers,
        // leaving room for the two B loads and the A broadcast.
        let mut acc = [[_mm256_setzero_ps(); 2]; MR];
        for p in 0..kc {
            let b0 = _mm256_loadu_ps(bp.add(p * NR));
            let b1 = _mm256_loadu_ps(bp.add(p * NR + 8));
            for (i, lanes) in acc.iter_mut().enumerate() {
                let av = _mm256_broadcast_ss(&*ap.add(p * MR + i));
                lanes[0] = _mm256_fmadd_ps(av, b0, lanes[0]);
                lanes[1] = _mm256_fmadd_ps(av, b1, lanes[1]);
            }
        }
        if mr == MR && nr == NR {
            for (i, lanes) in acc.iter().enumerate() {
                let cp = c.add(i * ldc);
                _mm256_storeu_ps(cp, _mm256_add_ps(_mm256_loadu_ps(cp), lanes[0]));
                let cp8 = cp.add(8);
                _mm256_storeu_ps(cp8, _mm256_add_ps(_mm256_loadu_ps(cp8), lanes[1]));
            }
        } else {
            // Edge tile: spill the register tile and clamp the write-back.
            let mut tmp = [0.0f32; MR * NR];
            for (i, lanes) in acc.iter().enumerate() {
                _mm256_storeu_ps(tmp.as_mut_ptr().add(i * NR), lanes[0]);
                _mm256_storeu_ps(tmp.as_mut_ptr().add(i * NR + 8), lanes[1]);
            }
            for i in 0..mr {
                for j in 0..nr {
                    *c.add(i * ldc + j) += tmp[i * NR + j];
                }
            }
        }
    }
}

#[inline]
fn microkernel(kc: usize, ap: &[f32], bp: &[f32], c: &mut [f32], ldc: usize, mr: usize, nr: usize) {
    debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
    debug_assert!(mr <= MR && nr <= NR && mr > 0 && nr > 0);
    debug_assert!(c.len() >= (mr - 1) * ldc + nr);
    #[cfg(target_arch = "x86_64")]
    if simd::available() && !crate::dispatch::force_scalar() {
        // SAFETY: feature presence checked above; the debug asserts document
        // the bounds the (checked) slice arguments guarantee.
        unsafe {
            simd::microkernel(kc, ap.as_ptr(), bp.as_ptr(), c.as_mut_ptr(), ldc, mr, nr);
        }
        return;
    }
    microkernel_scalar(kc, ap, bp, c, ldc, mr, nr);
}

/// Whether the SIMD microkernel will be used by the next packed call: the
/// CPU supports it at runtime and it has not been force-disabled via
/// `LX_KERNEL_FORCE_SCALAR=1` (the CI fallback matrix sets that to exercise
/// the scalar microkernel on AVX2 machines).
pub fn simd_active() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        simd::available() && !crate::dispatch::force_scalar()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The packed/tiled backend. Tile sizes (MC/KC/NC) are read from the global
/// [`KernelPolicy`](crate::KernelPolicy) at call time, so an installed policy
/// or autotune result takes effect immediately.
pub struct Packed;

impl Packed {
    #[allow(clippy::too_many_arguments)]
    fn driver<S: PackSrc + ?Sized>(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        a_layout: Layout,
        b: &S,
        ldb: usize,
        b_layout: Layout,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        if m == 0 || n == 0 {
            return;
        }
        // One beta pass up front; every k-block then accumulates. The extra
        // sweep over C costs O(m·n) against the O(m·n·k) product and only
        // runs for shapes the dispatcher already deemed compute-bound —
        // accepted in exchange for a branch-free microkernel write-back.
        if beta != 1.0 {
            scale_only(c, m, n, ldc, beta);
        }
        if k == 0 {
            return;
        }
        let t = tiles();
        let (mc, kc_max, nc_max) = (t.mc.max(MR), t.kc.max(1), t.nc.max(NR));
        // Reuse this thread's B̃ buffer across calls. Taken out of the
        // thread-local (not borrowed across the parallel section): the
        // submitting thread helps drain the pool queue while waiting, and a
        // stolen task may re-enter `driver` on this very thread — a held
        // `RefCell` borrow would panic, whereas a nested call here simply
        // finds an empty cell and allocates its own buffer.
        let mut bpack = PACK_B.with(|b| std::mem::take(&mut *b.borrow_mut()));
        let mut jc = 0;
        while jc < n {
            let nc = nc_max.min(n - jc);
            let mut pc = 0;
            while pc < k {
                let kc = kc_max.min(k - pc);
                pack_b(&mut bpack, b, ldb, b_layout, pc, kc, jc, nc);
                let bpack_ref = &bpack;
                let grain = row_grain(kc, nc).max(MR);
                par_rows(c, m, ldc, grain, |rows, chunk| {
                    PACK_A.with(|apack| {
                        let apack = &mut *apack.borrow_mut();
                        let mut ic = rows.start;
                        while ic < rows.end {
                            let mcb = mc.min(rows.end - ic);
                            pack_a(apack, a, lda, a_layout, ic, mcb, pc, kc);
                            for jr in (0..nc).step_by(NR) {
                                let nr = NR.min(nc - jr);
                                let bp = &bpack_ref[(jr / NR) * kc * NR..];
                                for ir in (0..mcb).step_by(MR) {
                                    let mr = MR.min(mcb - ir);
                                    let ap = &apack[(ir / MR) * kc * MR..];
                                    let coff = (ic - rows.start + ir) * ldc + jc + jr;
                                    microkernel(kc, ap, bp, &mut chunk[coff..], ldc, mr, nr);
                                }
                            }
                            ic += mcb;
                        }
                    });
                });
                pc += kc;
            }
            jc += nc;
        }
        PACK_B.with(|b| *b.borrow_mut() = bpack);
    }
}

impl KernelBackend for Packed {
    fn name(&self) -> &'static str {
        "packed"
    }

    fn gemm(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        check_view(a.len(), m, k, lda, "gemm: A");
        check_view(b.len(), k, n, ldb, "gemm: B");
        check_view(c.len(), m, n, ldc, "gemm: C");
        self.driver(
            m,
            k,
            n,
            a,
            lda,
            Layout::Normal,
            b,
            ldb,
            Layout::Normal,
            c,
            ldc,
            beta,
        );
    }

    fn gemm_nt(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        check_view(a.len(), m, k, lda, "gemm_nt: A");
        check_view(b.len(), n, k, ldb, "gemm_nt: B");
        check_view(c.len(), m, n, ldc, "gemm_nt: C");
        self.driver(
            m,
            k,
            n,
            a,
            lda,
            Layout::Normal,
            b,
            ldb,
            Layout::Transposed,
            c,
            ldc,
            beta,
        );
    }

    fn gemm_tn(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        check_view(a.len(), k, m, lda, "gemm_tn: A");
        check_view(b.len(), k, n, ldb, "gemm_tn: B");
        check_view(c.len(), m, n, ldc, "gemm_tn: C");
        self.driver(
            m,
            k,
            n,
            a,
            lda,
            Layout::Transposed,
            b,
            ldb,
            Layout::Normal,
            c,
            ldc,
            beta,
        );
    }

    /// Fused pack-time decode: B's f16 bits are expanded to f32 while the
    /// B̃ panels are packed, so the decode costs one pass over `k×n` elements
    /// and the microkernel runs unchanged on f32 panels.
    fn gemm_f16(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[u16],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        check_view(a.len(), m, k, lda, "gemm_f16: A");
        check_view(b.len(), k, n, ldb, "gemm_f16: B");
        check_view(c.len(), m, n, ldc, "gemm_f16: C");
        self.driver(
            m,
            k,
            n,
            a,
            lda,
            Layout::Normal,
            b,
            ldb,
            Layout::Normal,
            c,
            ldc,
            beta,
        );
    }

    fn gemm_nt_f16(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[u16],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        check_view(a.len(), m, k, lda, "gemm_nt_f16: A");
        check_view(b.len(), n, k, ldb, "gemm_nt_f16: B");
        check_view(c.len(), m, n, ldc, "gemm_nt_f16: C");
        self.driver(
            m,
            k,
            n,
            a,
            lda,
            Layout::Normal,
            b,
            ldb,
            Layout::Transposed,
            c,
            ldc,
            beta,
        );
    }

    /// Fused pack-time dequant: each packed B element is `code · scale`,
    /// resolved from the view's flat index space, so the int8 storage never
    /// materialises as an f32 matrix and the microkernel runs unchanged.
    fn gemm_q8(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q8View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        check_view(a.len(), m, k, lda, "gemm_q8: A");
        check_view(b.len(), k, n, ldb, "gemm_q8: B");
        check_view(c.len(), m, n, ldc, "gemm_q8: C");
        self.driver(
            m,
            k,
            n,
            a,
            lda,
            Layout::Normal,
            &b,
            ldb,
            Layout::Normal,
            c,
            ldc,
            beta,
        );
    }

    fn gemm_nt_q8(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q8View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        check_view(a.len(), m, k, lda, "gemm_nt_q8: A");
        check_view(b.len(), n, k, ldb, "gemm_nt_q8: B");
        check_view(c.len(), m, n, ldc, "gemm_nt_q8: C");
        self.driver(
            m,
            k,
            n,
            a,
            lda,
            Layout::Normal,
            &b,
            ldb,
            Layout::Transposed,
            c,
            ldc,
            beta,
        );
    }

    fn gemm_q4(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q4View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        check_view(a.len(), m, k, lda, "gemm_q4: A");
        check_view(b.len(), k, n, ldb, "gemm_q4: B");
        check_view(c.len(), m, n, ldc, "gemm_q4: C");
        self.driver(
            m,
            k,
            n,
            a,
            lda,
            Layout::Normal,
            &b,
            ldb,
            Layout::Normal,
            c,
            ldc,
            beta,
        );
    }

    fn gemm_nt_q4(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q4View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        check_view(a.len(), m, k, lda, "gemm_nt_q4: A");
        check_view(b.len(), n, k, ldb, "gemm_nt_q4: B");
        check_view(c.len(), m, n, ldc, "gemm_nt_q4: C");
        self.driver(
            m,
            k,
            n,
            a,
            lda,
            Layout::Normal,
            &b,
            ldb,
            Layout::Transposed,
            c,
            ldc,
            beta,
        );
    }
}
