//! Shared command-line handling for the experiment bins.
//!
//! Every bin used to hand-roll its own `--json` / `--smoke` / `--precision`
//! scanning; this consolidates the conventions in one place:
//!
//! * `--json` — serialise the collected report tables to `BENCH_<name>.json`
//!   at the end of the run (see [`crate::report`]); emitted by
//!   [`BenchCli::finish`].
//! * `--smoke` — shrink the workload into a fast CI gate.
//! * `--precision f32|f16|int8|nf4|nm24` — parameter-storage plan for bins
//!   that build models (default f16, the production configuration).
//! * `--<flag> <value>` — free-form valued flags via [`BenchCli::value`]
//!   (e.g. `kernel_bench --compare <baseline> --tolerance <frac>`).
//!
//! Unknown flags are ignored so `all_experiments` can forward one argument
//! list to every bin.

use lx_model::Precision;

/// Parsed bin arguments. Construct with [`BenchCli::parse`] at the top of
/// `main`, call [`BenchCli::finish`] at the end.
pub struct BenchCli {
    name: &'static str,
    args: Vec<String>,
    /// `--json`: write `BENCH_<name>.json` on [`BenchCli::finish`].
    pub json: bool,
    /// `--smoke`: run the reduced CI-gate workload.
    pub smoke: bool,
}

impl BenchCli {
    /// Parse the process arguments for the bin called `name` (the
    /// `BENCH_<name>.json` stem).
    pub fn parse(name: &'static str) -> Self {
        Self::from_args(name, std::env::args().skip(1).collect())
    }

    /// Parse an explicit argument list (tests).
    pub fn from_args(name: &'static str, args: Vec<String>) -> Self {
        let json = args.iter().any(|a| a == "--json");
        let smoke = args.iter().any(|a| a == "--smoke");
        BenchCli {
            name,
            args,
            json,
            smoke,
        }
    }

    /// The bin name this parser was built for.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Value of a `--flag value` pair, if present.
    pub fn value(&self, flag: &str) -> Option<&str> {
        self.args
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    /// The `--precision f32|f16|int8|nf4|nm24` storage plan. Defaults to
    /// `f16` (the production configuration); exits with status 2 on anything
    /// else.
    pub fn precision(&self) -> Precision {
        match self.value("--precision") {
            None | Some("f16") => Precision::F16Frozen,
            Some("f32") => Precision::F32,
            Some("int8") => Precision::Int8Frozen,
            Some("nf4") => Precision::Nf4Frozen,
            Some("nm24") => Precision::Nm24Frozen,
            Some(other) => {
                eprintln!(
                    "{}: unknown --precision '{other}' (expected f32|f16|int8|nf4|nm24)",
                    self.name
                );
                std::process::exit(2);
            }
        }
    }

    /// The raw argument list (what `all_experiments` forwards to each bin).
    pub fn forwarded(&self) -> &[String] {
        &self.args
    }

    /// End-of-run handling: writes `BENCH_<name>.json` when `--json` was
    /// given. Call once, after the last table row.
    pub fn finish(&self) {
        if self.json {
            match crate::report::emit_json(self.name) {
                Ok(path) => println!("\nwrote {}", path.display()),
                Err(e) => eprintln!("failed to write BENCH_{}.json: {e}", self.name),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli(args: &[&str]) -> BenchCli {
        BenchCli::from_args("test_bin", args.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn flags_parse() {
        let c = cli(&["--json", "--smoke"]);
        assert!(c.json);
        assert!(c.smoke);
        let c = cli(&[]);
        assert!(!c.json);
        assert!(!c.smoke);
    }

    #[test]
    fn valued_flags_parse() {
        let c = cli(&["--compare", "base.json", "--tolerance", "0.5"]);
        assert_eq!(c.value("--compare"), Some("base.json"));
        assert_eq!(c.value("--tolerance"), Some("0.5"));
        assert_eq!(c.value("--missing"), None);
    }

    #[test]
    fn precision_defaults_to_f16() {
        assert_eq!(cli(&[]).precision(), Precision::F16Frozen);
        assert_eq!(
            cli(&["--precision", "f16"]).precision(),
            Precision::F16Frozen
        );
        assert_eq!(cli(&["--precision", "f32"]).precision(), Precision::F32);
        assert_eq!(
            cli(&["--precision", "int8"]).precision(),
            Precision::Int8Frozen
        );
        assert_eq!(
            cli(&["--precision", "nf4"]).precision(),
            Precision::Nf4Frozen
        );
        assert_eq!(
            cli(&["--precision", "nm24"]).precision(),
            Precision::Nm24Frozen
        );
    }

    #[test]
    fn unknown_flags_are_ignored() {
        let c = cli(&["--whatever", "--json"]);
        assert!(c.json);
    }
}
