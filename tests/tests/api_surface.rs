//! Hand-rolled public-API snapshot: the `pub fn` / `pub struct` / `pub enum`
//! / `pub trait` / `pub use` surface of `lx-model`, `lx-core` and `lx-serve`
//! is extracted from the sources and compared against a committed baseline
//! (`tests/api/public_api.txt`). Unreviewed drift — a forgotten `pub`, a
//! resurrected legacy entry point, a renamed builder — fails CI.
//!
//! To accept an intentional change, regenerate the baseline:
//!
//! ```sh
//! LX_UPDATE_API=1 cargo test -p lx-integration --test api_surface
//! ```
//!
//! and commit the diff together with the API change.

use std::path::{Path, PathBuf};

/// Crates whose public surface is under snapshot control.
const CRATES: &[(&str, &str)] = &[
    ("lx-obs", "crates/obs/src"),
    ("lx-quant", "crates/quant/src"),
    ("lx-model", "crates/model/src"),
    ("lx-core", "crates/core/src"),
    ("lx-serve", "crates/serve/src"),
    ("lx-cluster", "crates/cluster/src"),
];

const BASELINE: &str = "api/public_api.txt";

/// Item prefixes that constitute the public surface. `pub(crate)` and
/// friends never match (the prefix requires `pub` + space + keyword).
const PREFIXES: &[&str] = &[
    "pub fn ",
    "pub unsafe fn ",
    "pub struct ",
    "pub enum ",
    "pub trait ",
    "pub type ",
    "pub const ",
    "pub static ",
    "pub use ",
    "pub mod ",
];

fn repo_root() -> PathBuf {
    // The tests crate lives at <repo>/tests.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("repo root")
        .to_path_buf()
}

/// Collapse whitespace runs so rustfmt churn can't move the baseline.
fn normalize(sig: &str) -> String {
    let mut out = String::with_capacity(sig.len());
    let mut last_space = false;
    for c in sig.chars() {
        if c.is_whitespace() {
            if !last_space {
                out.push(' ');
            }
            last_space = true;
        } else {
            out.push(c);
            last_space = false;
        }
    }
    out.trim().to_string()
}

/// Extract the normalized public item signatures of one source file. Test
/// modules are excluded: in this codebase every `#[cfg(test)]` block sits at
/// the bottom of its file, so extraction simply stops there.
fn extract(src: &str) -> Vec<String> {
    let mut items = Vec::new();
    let mut pending: Option<String> = None;
    for line in src.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with("#[cfg(test)]") {
            break;
        }
        if pending.is_none() && PREFIXES.iter().any(|p| trimmed.starts_with(p)) {
            pending = Some(String::new());
        }
        if let Some(sig) = &mut pending {
            if !sig.is_empty() {
                sig.push(' ');
            }
            sig.push_str(trimmed);
            // Re-exports keep their full (possibly brace-grouped, possibly
            // multi-line) name list up to the terminating semicolon — a name
            // added to or dropped from `pub use foo::{..}` is API drift too.
            // Everything else is complete at its body brace or semicolon;
            // the body is cut off and the declaration kept.
            if sig.starts_with("pub use ") {
                if sig.ends_with(';') {
                    let decl = sig.trim_end_matches(';').trim().to_string();
                    items.push(normalize(&decl));
                    pending = None;
                }
            } else if let Some(cut) = sig.find('{') {
                let decl = sig[..cut].trim().to_string();
                items.push(normalize(&decl));
                pending = None;
            } else if sig.ends_with(';') {
                let decl = sig.trim_end_matches(';').trim().to_string();
                items.push(normalize(&decl));
                pending = None;
            }
        }
    }
    items.sort();
    items.dedup();
    items
}

fn current_surface() -> String {
    let root = repo_root();
    let mut out = String::new();
    for (krate, dir) in CRATES {
        let mut files: Vec<PathBuf> = std::fs::read_dir(root.join(dir))
            .unwrap_or_else(|e| panic!("read {dir}: {e}"))
            .map(|e| e.expect("dir entry").path())
            .filter(|p| p.extension().is_some_and(|x| x == "rs"))
            .collect();
        files.sort();
        for file in files {
            let src = std::fs::read_to_string(&file).expect("read source");
            let items = extract(&src);
            if items.is_empty() {
                continue;
            }
            let rel = file.strip_prefix(&root).unwrap().display();
            out.push_str(&format!("## {krate} {rel}\n"));
            for item in items {
                out.push_str(&item);
                out.push('\n');
            }
            out.push('\n');
        }
    }
    out
}

#[test]
fn public_api_matches_committed_baseline() {
    let current = current_surface();
    let baseline_path = Path::new(env!("CARGO_MANIFEST_DIR")).join(BASELINE);
    if std::env::var("LX_UPDATE_API").is_ok() {
        std::fs::create_dir_all(baseline_path.parent().unwrap()).expect("mkdir api/");
        std::fs::write(&baseline_path, &current).expect("write baseline");
        println!("regenerated {}", baseline_path.display());
        return;
    }
    let committed = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
        panic!(
            "missing API baseline {} ({e}); run LX_UPDATE_API=1 cargo test -p \
             lx-integration --test api_surface",
            baseline_path.display()
        )
    });
    if committed != current {
        // Line-level diff keeps the failure actionable without a diff tool.
        let old: Vec<&str> = committed.lines().collect();
        let new: Vec<&str> = current.lines().collect();
        let removed: Vec<&&str> = old.iter().filter(|l| !new.contains(l)).collect();
        let added: Vec<&&str> = new.iter().filter(|l| !old.contains(l)).collect();
        panic!(
            "public API drifted from the committed baseline.\n\
             removed ({}):\n  {}\nadded ({}):\n  {}\n\
             If intentional, regenerate with LX_UPDATE_API=1 cargo test -p \
             lx-integration --test api_surface and commit the diff.",
            removed.len(),
            removed
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join("\n  "),
            added.len(),
            added
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join("\n  "),
        );
    }
}

#[test]
fn legacy_model_entry_points_stay_retired() {
    // The api_redesign contract: the six pre-StepRequest entry points must
    // never resurface on `TransformerModel`'s public API. Only the model's
    // own file is in scope — layers keep their `forward`, and the engine
    // keeps its StepOutcome-returning `train_step` wrapper.
    let current = current_surface();
    let model_section: String = current
        .split("## ")
        .find(|s| s.starts_with("lx-model crates/model/src/model.rs"))
        .expect("model.rs section in surface")
        .to_string();
    for legacy in [
        "pub fn forward(",
        "pub fn backward(",
        "pub fn forward_planned(",
        "pub fn forward_with_captures(",
        "pub fn train_step(",
        "pub fn train_step_scaled(",
        "pub fn score_continuation(&mut self",
    ] {
        assert!(
            !model_section.contains(legacy),
            "legacy TransformerModel entry point resurfaced: {legacy}"
        );
    }
    // The replacement is present instead.
    let exec_section: String = current
        .split("## ")
        .find(|s| s.starts_with("lx-model crates/model/src/exec.rs"))
        .expect("exec.rs section in surface")
        .to_string();
    assert!(exec_section.contains("pub fn execute"));
    assert!(exec_section.contains("pub struct StepRequest"));
    assert!(exec_section.contains("pub struct StepOutcome"));
}
