//! Property-style tests on the core data structures and kernel invariants.
//!
//! The original suite used `proptest`; the offline build has no crates.io
//! access, so each property is exercised over a deterministic seeded sweep of
//! random cases instead (24+ cases per property, mirroring the old
//! `ProptestConfig::with_cases(24)` budget). Failures print the seed so a
//! case can be replayed exactly.

use lx_sparse::attention::{
    block_data_to_dense, block_row_softmax, dense_to_block_data, dsd, dsd_tn, sdd_nt, CausalFill,
};
use lx_sparse::neuron::{fc1_forward, fc2_forward};
use lx_sparse::{BlockCsr, BlockMask, NeuronBlockSet, PatternSpec};
use lx_tensor::f16::round_f16;
use lx_tensor::rng::randn_vec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 24;

/// Random lower-triangular mask with guaranteed diagonal, `2..=max_n` rows.
fn arb_mask(max_n: usize, seed: u64) -> BlockMask {
    let mut rng = StdRng::seed_from_u64(0xa5c3 ^ seed);
    let n = rng.gen_range(2..=max_n);
    let mut m = BlockMask::square(n);
    for i in 0..n {
        m.set(i, i, true); // keep rows alive for softmax invariants
        for j in 0..i {
            if rng.gen_bool(0.5) {
                m.set(i, j, true);
            }
        }
    }
    m
}

#[test]
fn block_csr_roundtrips_any_mask() {
    for seed in 0..CASES {
        let mask = arb_mask(8, seed);
        let csr = BlockCsr::from_mask(&mask, 4);
        assert_eq!(csr.to_mask(), mask, "seed {seed}");
        assert_eq!(csr.nnz_blocks(), mask.count(), "seed {seed}");
        // CSC view is a permutation of the CSR entries.
        let mut seen: Vec<bool> = vec![false; csr.nnz_blocks()];
        for bc in 0..csr.n_bcols {
            for e in csr.col_entries(bc) {
                let csr_e = csr.csc_to_csr[e] as usize;
                assert!(!seen[csr_e], "seed {seed}");
                seen[csr_e] = true;
                assert_eq!(csr.col_idx[csr_e] as usize, bc, "seed {seed}");
            }
        }
        assert!(seen.iter().all(|&s| s), "seed {seed}");
    }
}

#[test]
fn block_data_dense_roundtrip() {
    for seed in 0..CASES {
        let mask = arb_mask(6, seed);
        let csr = BlockCsr::from_mask(&mask, 4);
        let data = randn_vec(csr.data_len(), 1.0, seed);
        let dense = block_data_to_dense(&data, &csr);
        let back = dense_to_block_data(&dense, &csr);
        assert_eq!(back, data, "seed {seed}");
    }
}

#[test]
fn sparse_softmax_rows_are_distributions() {
    for seed in 0..CASES {
        let block = 4;
        let mask = arb_mask(6, seed);
        let csr = BlockCsr::from_mask(&mask, block);
        let s = csr.n_brows * block;
        let q = randn_vec(s * 8, 1.0, seed);
        let k = randn_vec(s * 8, 1.0, seed + 1);
        let mut p = vec![0.0f32; csr.data_len()];
        sdd_nt(&q, &k, s, 8, 0.35, &csr, CausalFill::NegInf, &mut p);
        block_row_softmax(&mut p, &csr);
        let dense = block_data_to_dense(&p, &csr);
        for i in 0..s {
            let row_sum: f32 = dense[i * s..(i + 1) * s].iter().sum();
            // Every row has its diagonal block, so sums to 1.
            assert!(
                (row_sum - 1.0).abs() < 1e-4,
                "seed {seed} row {i} sums {row_sum}"
            );
            // Causality.
            for j in (i + 1)..s {
                assert_eq!(dense[i * s + j], 0.0, "seed {seed} at ({i},{j})");
            }
        }
    }
}

#[test]
fn dsd_and_dsd_tn_are_adjoint() {
    // ⟨P·V, W⟩ == ⟨V, Pᵀ·W⟩ for any block data P and dense V, W.
    for seed in 0..CASES {
        let block = 4;
        let dh = 6;
        let mask = arb_mask(5, seed);
        let csr = BlockCsr::from_mask(&mask, block);
        let s = csr.n_brows * block;
        let p = randn_vec(csr.data_len(), 1.0, seed);
        let v = randn_vec(s * dh, 1.0, seed + 1);
        let w = randn_vec(s * dh, 1.0, seed + 2);
        let mut pv = vec![0.0f32; s * dh];
        dsd(&p, &v, s, dh, &csr, &mut pv);
        let mut ptw = vec![0.0f32; s * dh];
        dsd_tn(&p, &w, s, dh, &csr, &mut ptw);
        let lhs: f32 = pv.iter().zip(&w).map(|(a, b)| a * b).sum();
        let rhs: f32 = v.iter().zip(&ptw).map(|(a, b)| a * b).sum();
        assert!(
            (lhs - rhs).abs() <= 1e-3 * (1.0 + lhs.abs()),
            "seed {seed}: {lhs} vs {rhs}"
        );
    }
}

#[test]
fn pattern_specs_always_causal_with_diagonal() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xbeef ^ case);
        let w: u32 = rng.gen_range(1..5);
        let g: u32 = rng.gen_range(1..4);
        let r: u32 = rng.gen_range(0..3);
        let stride: u32 = rng.gen_range(1..6);
        let n: usize = rng.gen_range(2..10);
        let seed: u64 = rng.gen_range(0u64..100);
        for spec in [
            PatternSpec::LocalWindow { w },
            PatternSpec::GlobalStripe { g },
            PatternSpec::LocalGlobal { w, g },
            PatternSpec::BigBird { w, g, r, seed },
            PatternSpec::Strided { w, stride },
            PatternSpec::Causal,
        ] {
            let m = spec.mask(n);
            for i in 0..n {
                assert!(m.get(i, i), "case {case}: {spec:?} missing diag {i}");
                for j in (i + 1)..n {
                    assert!(!m.get(i, j), "case {case}: {spec:?} acausal at ({i},{j})");
                }
            }
        }
    }
}

#[test]
fn f16_roundtrip_error_bounded() {
    let mut rng = StdRng::seed_from_u64(0xf16);
    // More cases here: each is cheap and the domain (all f32 bit patterns)
    // is huge.
    for case in 0..4096 {
        let bits: u32 = rng.gen();
        let v = f32::from_bits(bits);
        if v.is_finite() && v.abs() < 60000.0 {
            let r = round_f16(v);
            if v.abs() >= 6.2e-5 {
                // Normal range: relative error < 2^-10.
                assert!((r - v).abs() <= v.abs() * 1.0e-3, "case {case}: {v} -> {r}");
            } else {
                // Subnormal range: absolute error < smallest subnormal step.
                assert!((r - v).abs() <= 6.0e-8, "case {case}: {v} -> {r}");
            }
        }
    }
}

#[test]
fn neuron_kernels_match_masked_dense() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x1234 ^ seed);
        let block = 4;
        let n_blk = 4;
        let (rows, d) = (5usize, 6usize);
        let d_ff = n_blk * block;
        let mut mask: Vec<bool> = (0..n_blk).map(|_| rng.gen_bool(0.5)).collect();
        if !mask.iter().any(|&b| b) {
            mask[0] = true;
        }
        let set = NeuronBlockSet::from_mask(&mask, block);
        let x = randn_vec(rows * d, 1.0, seed);
        let w1t = randn_vec(d_ff * d, 0.5, seed + 1);
        let w2 = randn_vec(d_ff * d, 0.5, seed + 2);
        // Sparse path.
        let width = set.active_neurons();
        let mut z = vec![0.0f32; rows * width];
        fc1_forward(&x, rows, &w1t, d, None, &set, &mut z);
        for v in z.iter_mut() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        let mut y = vec![0.0f32; rows * d];
        fc2_forward(&z, rows, &w2, d, None, &set, &mut y);
        // Dense reference with inactive neurons zeroed.
        let all = NeuronBlockSet::all(n_blk, block);
        let mut zf = vec![0.0f32; rows * d_ff];
        fc1_forward(&x, rows, &w1t, d, None, &all, &mut zf);
        for r in 0..rows {
            for nrn in 0..d_ff {
                let blk = nrn / block;
                if !mask[blk] || zf[r * d_ff + nrn] < 0.0 {
                    zf[r * d_ff + nrn] = 0.0;
                }
            }
        }
        let mut yf = vec![0.0f32; rows * d];
        fc2_forward(&zf, rows, &w2, d, None, &all, &mut yf);
        for (a, b) in y.iter().zip(&yf) {
            assert!(
                (a - b).abs() <= 1e-3 * (1.0 + b.abs()),
                "seed {seed}: {a} vs {b}"
            );
        }
    }
}

#[test]
fn mask_union_is_monotone() {
    for seed in 0..CASES {
        let m1 = arb_mask(6, seed);
        let n = m1.rows();
        let m2 = PatternSpec::LocalWindow { w: 2 }.mask(n);
        let mut u = m1.clone();
        u.union_with(&m2);
        assert!(u.count() >= m1.count(), "seed {seed}");
        assert!(u.count() >= m2.count(), "seed {seed}");
        assert_eq!(m1.covered_by(&u), m1.count(), "seed {seed}");
        assert_eq!(m2.covered_by(&u), m2.count(), "seed {seed}");
    }
}
