//! `lx-cluster` — replicated-backbone scale-out serving.
//!
//! `lx-serve` multiplexes many tenants over *one* shared frozen backbone;
//! this crate replicates that backbone N times and schedules the same
//! [`TenantTask`]s across the replicas. Three properties make the lift
//! safe and cheap:
//!
//! * **Replica-placement invariance** — a task carries every mutable byte of
//!   its job (adapter, optimizer moments, data cursor, warm workspace), and
//!   the backbones are frozen and identical, so a tenant's loss stream is
//!   bit-identical no matter which replicas serve which slices. Scale-out
//!   needs no numerical argument beyond the single-backbone one.
//! * **Cross-tenant batch fusion** — compatible queued eval jobs (same
//!   shape, no soft prompt, single micro-batch) coalesce into one fused
//!   `StepRequest` on a replica via `lx_serve::run_fused_eval_slice`; the
//!   de-fused per-tenant losses are bit-identical to unfused execution.
//! * **Fault containment** — a panicking replica worker is quarantined; its
//!   in-flight and queued jobs requeue to survivors, and the drive still
//!   completes (jobs fail visibly only when *no* replica is left).
//!
//! The moving parts:
//!
//! * [`qos`] — [`QosClass`] service levels, per-class admission quotas and
//!   the [`Submit`] backpressure contract (`Rejected { retry_after }`);
//! * [`dispatch`] — the work-stealing [`DispatchQueue`]: per-replica,
//!   per-class deques; owners pop the front, idle replicas steal the back;
//! * [`scheduler`] — [`ClusterScheduler`]: admission + affinity placement,
//!   scoped worker threads (one per replica), fusion-peer harvesting,
//!   quarantine, and aggregated [`ServeMetrics`](lx_serve::ServeMetrics).
//!
//! Observability: replica-level counters `serve.replica.steals` /
//! `serve.replica.quarantined` and the `serve.cluster.wait_ns` queue-wait
//! histogram land in the global `lx-obs` registry, alongside the
//! `serve.fusion.*` counters recorded by the fused slice itself.
//!
//! ```no_run
//! use lx_cluster::{ClusterConfig, ClusterScheduler, QosClass};
//! use lx_model::{ModelConfig, TransformerModel};
//! use lx_serve::{AdapterRegistry, JobSpec};
//! use long_exposure::engine::EngineConfig;
//! use std::sync::Arc;
//!
//! let mut cluster = ClusterScheduler::new(
//!     |_replica| {
//!         let mut m = TransformerModel::new(ModelConfig::opt_sim_small(), 42);
//!         m.freeze_all();
//!         m
//!     },
//!     EngineConfig::default(),
//!     ClusterConfig { replicas: 4, ..ClusterConfig::default() },
//!     Arc::new(AdapterRegistry::open("adapters.d").unwrap()),
//! );
//! let outcome = cluster.submit(JobSpec::lora("tenant-a", 100, 2, 64), QosClass::Batch);
//! assert!(outcome.is_admitted());
//! let report = cluster.run_to_completion();
//! println!("{} jobs over {} replicas", report.reports.len(), report.replicas);
//! ```
//!
//! [`TenantTask`]: lx_serve::TenantTask
//! [`QosClass`]: qos::QosClass
//! [`Submit`]: qos::Submit
//! [`DispatchQueue`]: dispatch::DispatchQueue
//! [`ClusterScheduler`]: scheduler::ClusterScheduler

pub mod dispatch;
pub mod qos;
pub mod scheduler;

pub use dispatch::DispatchQueue;
pub use qos::{JobFailure, QosClass, QosQuotas, Submit};
pub use scheduler::{ClusterConfig, ClusterReport, ClusterScheduler};
