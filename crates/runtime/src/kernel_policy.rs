//! Derive a [`lx_kernels::KernelPolicy`] from a cache model.
//!
//! The roofline model in [`cost`](crate::cost) reasons about *device* peak
//! flops vs bandwidth; this module applies the same compute-vs-traffic logic
//! one level down, to the CPU cache hierarchy the packed GEMM backend blocks
//! for:
//!
//! * `KC` — the B̃ panel (`kc × NR` f32) must sit in L1d next to the A
//!   stream: budget half of L1d for it.
//! * `MC` — the Ã block (`mc × kc` f32) must survive in L2 across all NR
//!   panels of B̃: budget half of L2.
//! * `NC` — the B̃ block (`kc × nc` f32) should stay resident in the
//!   last-level budget while every row panel of A streams against it.
//! * `min_flops_packed` — packing writes `m·k + k·n` elements and the beta
//!   pass touches `m·n`; with pack traffic costing roughly one element write
//!   per element per pass and the microkernel retiring ~`R` MACs per cycle,
//!   packing pays off once `2·m·k·n` FLOPs exceed `overhead_factor ×` the
//!   packed traffic. Rather than model constants we can't measure from
//!   here, we fold this into a single conservative crossover (~64³ MACs) and
//!   let `lx_kernels::autotune()` refine it empirically.
//!
//! Nothing here inspects CPUID; [`CpuSpec::generic`] encodes the smallest
//! cache sizes common across the CI fleet, which only costs performance —
//! never correctness — when the real machine is bigger.

use lx_kernels::{KernelPolicy, TileConfig, MR, NR};

/// Cache shape the tile derivation runs against.
#[derive(Debug, Clone, Copy)]
pub struct CpuSpec {
    pub l1d_bytes: usize,
    pub l2_bytes: usize,
    /// Per-core share of the last-level cache.
    pub llc_bytes: usize,
}

impl CpuSpec {
    /// Conservative baseline: 32 KiB L1d, 512 KiB L2, 1 MiB LLC share.
    pub fn generic() -> Self {
        CpuSpec {
            l1d_bytes: 32 * 1024,
            l2_bytes: 512 * 1024,
            llc_bytes: 1024 * 1024,
        }
    }
}

const F32: usize = 4;

/// Tile shapes for `spec`, rounded to the register-tile grain.
pub fn tiles_for(spec: &CpuSpec) -> TileConfig {
    // Half of L1d for the kc×NR B panel.
    let kc = ((spec.l1d_bytes / 2) / (NR * F32)).clamp(64, 512);
    // Half of L2 for the mc×kc A block, rounded down to a multiple of MR.
    let mc_raw = ((spec.l2_bytes / 2) / (kc * F32)).max(MR);
    let mc = (mc_raw / MR * MR).clamp(MR, 1024);
    // LLC share for the kc×nc B block, rounded to the NR grain.
    let nc_raw = (spec.llc_bytes / (kc * F32)).max(NR);
    let nc = (nc_raw / NR * NR).clamp(NR, 8192);
    TileConfig { mc, kc, nc }
}

/// Full policy for `spec` (tiles + the conservative packed crossover).
pub fn policy_for(spec: &CpuSpec) -> KernelPolicy {
    KernelPolicy {
        tiles: tiles_for(spec),
        min_flops_packed: 2 * 64u64.pow(3),
        isa: None,
    }
}

/// Derive a policy from [`CpuSpec::generic`], refine the crossover with the
/// one-time `lx_kernels` autotune probe, and install it process-wide.
/// Benches call this once before measuring; returns the installed policy.
///
/// With `LX_KERNEL_POLICY=<path>` set, the autotune step loads a previously
/// persisted crossover instead of re-probing when the file's `(isa, threads)`
/// key matches this process (and writes the probe result there otherwise),
/// so serve restarts skip the probe entirely.
pub fn install_tuned() -> KernelPolicy {
    lx_kernels::install_policy(policy_for(&CpuSpec::generic()));
    // `autotune` is memoized and may have run earlier in the process with
    // whatever tiles were current then — adopt only its measured crossover,
    // keeping the cache-model tiles installed above.
    let tuned = lx_kernels::autotune();
    let policy = KernelPolicy {
        tiles: tiles_for(&CpuSpec::generic()),
        min_flops_packed: tuned.min_flops_packed,
        isa: tuned.isa,
    };
    lx_kernels::install_policy(policy);
    policy
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generic_tiles_fit_their_cache_budgets() {
        let spec = CpuSpec::generic();
        let t = tiles_for(&spec);
        assert!(t.kc * NR * F32 <= spec.l1d_bytes / 2 + NR * F32);
        assert!(t.mc * t.kc * F32 <= spec.l2_bytes / 2 + t.kc * F32 * MR);
        assert_eq!(t.mc % MR, 0, "MC must be a register-tile multiple");
        assert_eq!(t.nc % NR, 0, "NC must be a register-tile multiple");
    }

    #[test]
    fn bigger_caches_give_no_smaller_tiles() {
        let small = tiles_for(&CpuSpec::generic());
        let big = tiles_for(&CpuSpec {
            l1d_bytes: 64 * 1024,
            l2_bytes: 2 * 1024 * 1024,
            llc_bytes: 8 * 1024 * 1024,
        });
        assert!(big.kc >= small.kc);
        assert!(big.mc >= small.mc);
        assert!(big.nc >= small.nc);
    }

    #[test]
    fn install_tuned_reports_a_live_policy() {
        let p = install_tuned();
        assert_eq!(p.tiles, lx_kernels::current_policy().tiles);
        assert!(p.min_flops_packed > 0);
    }
}
