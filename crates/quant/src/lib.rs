//! # lx-quant — block-quantized storage codecs
//!
//! Frozen backbone weights dominate the per-tenant memory bill; this crate
//! holds the codecs that shrink them past the f16 plan:
//!
//! * [`q8`] — symmetric int8 with one f32 absmax scale per 64-element block
//!   (`code = round(v / (absmax/127))`, dequant `code · scale`);
//! * [`nf4`] — an NF4-style 4-bit codec (QLoRA lineage): a 16-entry
//!   normal-float codebook on `[-1, 1]` plus one f32 absmax per block, two
//!   codes packed per byte;
//! * [`nm`] — N:M structured sparsity (2:4 by default): per row-group of M
//!   elements keep N, stored as compacted f32s plus one index-bitmask byte
//!   per group — lossless on survivors, exact zero elsewhere.
//!
//! Blocking is **flat**: blocks of [`BLOCK`] consecutive elements of the
//! row-major buffer, with a short tail block when `len % BLOCK != 0`. Blocks
//! may straddle row boundaries — dequantization is strictly elementwise
//! (`element i` needs only `codes[i]` and `scales[i / BLOCK]`), so decoding
//! any window of elements, in any order, is bit-identical to decoding the
//! whole buffer. That property is what lets the sparse MLP path decode only
//! active neuron slabs and still match a dense decode exactly.
//!
//! Non-finite inputs are clamped deterministically (the scale must never be
//! NaN and encode must be reproducible across runs): block absmax is taken
//! over *finite* values only, then `+inf → +absmax`, `-inf → -absmax`,
//! `NaN → 0`. An all-zero (or all-non-finite) block stores scale 0 and
//! decodes to exact zeros.
//!
//! This crate has zero dependencies; `lx-kernels` consumes the borrowed
//! views ([`Q8View`] / [`Q4View`]) inside its pack routines and `lx-tensor`
//! owns the allocation/accounting side (`QuantTensor`).

pub mod nf4;
pub mod nm;
pub mod q8;

pub use nm::NmView;

/// Elements per quantization block (one f32 scale per block).
pub const BLOCK: usize = 64;

/// Number of scale blocks covering `len` elements (tail block included).
pub const fn n_blocks(len: usize) -> usize {
    len.div_ceil(BLOCK)
}

/// Bytes of packed nibble storage for `len` 4-bit codes.
pub const fn nibble_bytes(len: usize) -> usize {
    len.div_ceil(2)
}

/// Deterministic non-finite policy, applied before encoding: finite values
/// pass through, `+inf`/`-inf` clamp to `±absmax`, `NaN` becomes 0.
#[inline]
pub(crate) fn sanitize(v: f32, absmax: f32) -> f32 {
    if v.is_finite() {
        v
    } else if v.is_nan() {
        0.0
    } else if v > 0.0 {
        absmax
    } else {
        -absmax
    }
}

/// Largest finite |v| in a block (0.0 for empty or all-non-finite blocks).
#[inline]
pub(crate) fn finite_absmax(block: &[f32]) -> f32 {
    let mut m = 0.0f32;
    for &v in block {
        if v.is_finite() {
            m = m.max(v.abs());
        }
    }
    m
}

/// Borrowed view over int8 block-quantized storage: `codes[i]` scaled by
/// `scales[i / BLOCK]`. The index space is the flat row-major element index
/// of the original buffer, so strided consumers (GEMM pack routines) resolve
/// scales without any layout translation.
#[derive(Clone, Copy, Debug)]
pub struct Q8View<'a> {
    codes: &'a [i8],
    scales: &'a [f32],
}

impl<'a> Q8View<'a> {
    pub fn new(codes: &'a [i8], scales: &'a [f32]) -> Self {
        assert_eq!(
            scales.len(),
            n_blocks(codes.len()),
            "q8: {} codes need {} block scales, got {}",
            codes.len(),
            n_blocks(codes.len()),
            scales.len()
        );
        Q8View { codes, scales }
    }

    /// Logical element count.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Dequantize the element at flat index `idx`.
    #[inline(always)]
    pub fn get(&self, idx: usize) -> f32 {
        self.codes[idx] as f32 * self.scales[idx / BLOCK]
    }
}

/// Borrowed view over NF4 block-quantized storage: two 4-bit codebook
/// indices per byte (element `2i` in the low nibble of byte `i`, element
/// `2i+1` in the high nibble), scaled by `scales[i / BLOCK]`. Same flat
/// index space as [`Q8View`].
#[derive(Clone, Copy, Debug)]
pub struct Q4View<'a> {
    codes: &'a [u8],
    scales: &'a [f32],
    len: usize,
}

impl<'a> Q4View<'a> {
    pub fn new(codes: &'a [u8], scales: &'a [f32], len: usize) -> Self {
        assert_eq!(
            codes.len(),
            nibble_bytes(len),
            "nf4: {len} elements need {} packed bytes, got {}",
            nibble_bytes(len),
            codes.len()
        );
        assert_eq!(
            scales.len(),
            n_blocks(len),
            "nf4: {len} elements need {} block scales, got {}",
            n_blocks(len),
            scales.len()
        );
        Q4View { codes, scales, len }
    }

    /// Logical element count (the packed byte buffer holds `len/2` rounded up).
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dequantize the element at flat index `idx`.
    #[inline(always)]
    pub fn get(&self, idx: usize) -> f32 {
        debug_assert!(idx < self.len, "nf4 index {idx} out of {}", self.len);
        let byte = self.codes[idx / 2];
        let code = if idx.is_multiple_of(2) {
            byte & 0x0F
        } else {
            byte >> 4
        };
        nf4::CODEBOOK[code as usize] * self.scales[idx / BLOCK]
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    /// Deterministic pseudo-random f32s in `[-scale, scale)` without any
    /// external RNG dependency (xorshift32, same recipe the kernel tests
    /// use).
    pub fn pseudo(n: usize, scale: f32, seed: u32) -> Vec<f32> {
        let mut state = seed.wrapping_mul(2654435761).max(1);
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 17;
                state ^= state << 5;
                ((state as f32 / u32::MAX as f32) * 2.0 - 1.0) * scale
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_arithmetic() {
        assert_eq!(n_blocks(0), 0);
        assert_eq!(n_blocks(1), 1);
        assert_eq!(n_blocks(64), 1);
        assert_eq!(n_blocks(65), 2);
        assert_eq!(n_blocks(128), 2);
        assert_eq!(nibble_bytes(0), 0);
        assert_eq!(nibble_bytes(1), 1);
        assert_eq!(nibble_bytes(7), 4);
        assert_eq!(nibble_bytes(8), 4);
    }

    #[test]
    fn sanitize_is_deterministic() {
        assert_eq!(sanitize(f32::INFINITY, 3.0), 3.0);
        assert_eq!(sanitize(f32::NEG_INFINITY, 3.0), -3.0);
        assert_eq!(sanitize(f32::NAN, 3.0), 0.0);
        assert_eq!(sanitize(1.5, 3.0), 1.5);
    }

    #[test]
    fn finite_absmax_ignores_non_finite() {
        assert_eq!(finite_absmax(&[1.0, -2.0, f32::INFINITY, f32::NAN]), 2.0);
        assert_eq!(finite_absmax(&[f32::NAN, f32::INFINITY]), 0.0);
        assert_eq!(finite_absmax(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "block scales")]
    fn q8_view_checks_scale_count() {
        let codes = [0i8; 65];
        let scales = [0.0f32; 1];
        let _ = Q8View::new(&codes, &scales);
    }

    #[test]
    #[should_panic(expected = "packed bytes")]
    fn q4_view_checks_byte_count() {
        let codes = [0u8; 2];
        let scales = [0.0f32; 1];
        let _ = Q4View::new(&codes, &scales, 7);
    }
}
