//! Transformer block (pre-LN) with optional bottleneck adapters, plus the
//! adapter module itself (Houlsby-style PEFT, paper Table I).

use crate::config::ModelConfig;
use crate::layernorm::LayerNorm;
use crate::linear::Linear;
use crate::mha::MultiHeadAttention;
use crate::mlp::MlpBlock;
use crate::param::Param;
use crate::plan::LayerPlan;
use lx_tensor::ops::{relu_backward, relu_inplace};
use lx_tensor::Tensor;

/// Bottleneck adapter: `y + Up(ReLU(Down(y)))`, Up initialised to zero so it
/// starts as the identity.
#[derive(Debug)]
pub struct Adapter {
    pub down: Linear,
    pub up: Linear,
    cache_h: Option<Tensor>, // pre-activation of the bottleneck
}

impl Adapter {
    pub fn new(name: &str, d_model: usize, bottleneck: usize, seed: u64) -> Self {
        let mut down = Linear::new(&format!("{name}.down"), d_model, bottleneck, true, seed);
        let mut up = Linear::new(&format!("{name}.up"), bottleneck, d_model, true, seed + 1);
        up.weight.value.zero_();
        // Adapters are PEFT-trainable by construction.
        down.for_each_param(&mut |p| p.trainable = true);
        up.for_each_param(&mut |p| p.trainable = true);
        Adapter {
            down,
            up,
            cache_h: None,
        }
    }

    pub fn forward(&mut self, y: &Tensor) -> Tensor {
        let h = self.down.forward(y);
        let mut hr = h.clone();
        relu_inplace(hr.as_mut_slice());
        let mut out = self.up.forward(&hr);
        out.add_assign(y);
        self.cache_h = Some(h);
        out
    }

    pub fn backward(&mut self, dout: &Tensor) -> Tensor {
        let h = self
            .cache_h
            .take()
            .expect("Adapter backward without forward");
        let dhr = self.up.backward(dout);
        let mut dh = Tensor::zeros(h.shape());
        relu_backward(dhr.as_slice(), h.as_slice(), dh.as_mut_slice());
        let mut dy = self.down.backward(&dh);
        dy.add_assign(dout); // residual path
        dy
    }

    pub fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.down.for_each_param(f);
        self.up.for_each_param(f);
    }
}

/// Pre-LN transformer block:
/// `x ← x + A1(attn(ln1(x)))`, `x ← x + A2(mlp(ln2(x)))` where `A1`/`A2` are
/// optional adapters (identity when absent).
#[derive(Debug)]
pub struct TransformerBlock {
    pub ln1: LayerNorm,
    pub attn: MultiHeadAttention,
    pub adapter1: Option<Adapter>,
    pub ln2: LayerNorm,
    pub mlp: MlpBlock,
    pub adapter2: Option<Adapter>,
    capture_cfg: Option<crate::model::CaptureConfig>,
    captured: Option<crate::model::LayerCapture>,
}

impl TransformerBlock {
    pub fn new(cfg: &ModelConfig, layer: usize, seed: u64) -> Self {
        let name = format!("blocks.{layer}");
        let mut attn =
            MultiHeadAttention::new(&format!("{name}.attn"), cfg.d_model, cfg.n_heads, seed);
        if cfg.alibi {
            attn.enable_alibi();
        }
        TransformerBlock {
            ln1: LayerNorm::new(&format!("{name}.ln1"), cfg.d_model, cfg.ln_eps),
            attn,
            adapter1: None,
            ln2: LayerNorm::new(&format!("{name}.ln2"), cfg.d_model, cfg.ln_eps),
            mlp: MlpBlock::new(
                &format!("{name}.mlp"),
                cfg.d_model,
                cfg.d_ff,
                cfg.activation,
                seed + 100,
            ),
            adapter2: None,
            capture_cfg: None,
            captured: None,
        }
    }

    /// Arm calibration capture for the next forward (dense mode only).
    pub fn set_capture(&mut self, cfg: crate::model::CaptureConfig) {
        self.capture_cfg = Some(cfg);
    }

    /// Retrieve (and clear) the capture recorded by the last armed forward.
    pub fn take_capture(&mut self) -> crate::model::LayerCapture {
        self.captured.take().unwrap_or(crate::model::LayerCapture {
            block_input: None,
            attn_probs: None,
            mlp_activations: None,
        })
    }

    pub fn attach_adapters(&mut self, d_model: usize, bottleneck: usize, seed: u64, layer: usize) {
        self.adapter1 = Some(Adapter::new(
            &format!("blocks.{layer}.adapter1"),
            d_model,
            bottleneck,
            seed,
        ));
        self.adapter2 = Some(Adapter::new(
            &format!("blocks.{layer}.adapter2"),
            d_model,
            bottleneck,
            seed + 10,
        ));
    }

    pub fn forward(
        &mut self,
        x: &Tensor,
        batch: usize,
        seq: usize,
        plan: Option<&LayerPlan>,
    ) -> Tensor {
        let attn_layout = plan.and_then(|p| p.attn.as_ref());
        let mlp_set = plan.and_then(|p| p.mlp.as_ref());
        let capture = self.capture_cfg.take();
        if capture.is_some() {
            assert!(
                attn_layout.is_none() && mlp_set.is_none(),
                "calibration capture requires a dense forward"
            );
        }

        let normed = self.ln1.forward(x);
        let mut attn_out = self.attn.forward(&normed, batch, seq, attn_layout);
        let cap_probs = capture.filter(|c| c.attn).map(|_| {
            self.attn
                .cached_dense_probs()
                .expect("dense probs present in capture mode")
                .clone()
        });
        if let Some(a) = &mut self.adapter1 {
            attn_out = a.forward(&attn_out);
        }
        let mut x1 = x.clone();
        x1.add_assign(&attn_out);

        let normed2 = self.ln2.forward(&x1);
        let mut mlp_out = self.mlp.forward(&normed2, mlp_set);
        let cap_acts = capture.filter(|c| c.mlp).map(|_| {
            self.mlp
                .cached_activations()
                .expect("activations present in capture mode")
                .clone()
        });
        if capture.is_some() {
            self.captured = Some(crate::model::LayerCapture {
                block_input: Some(x.clone()),
                attn_probs: cap_probs,
                mlp_activations: cap_acts,
            });
        }
        if let Some(a) = &mut self.adapter2 {
            mlp_out = a.forward(&mlp_out);
        }
        let mut x2 = x1;
        x2.add_assign(&mlp_out);
        x2
    }

    pub fn backward(&mut self, dout: &Tensor) -> Tensor {
        // MLP sub-layer.
        let mut dmlp_out = dout.clone();
        if let Some(a) = &mut self.adapter2 {
            dmlp_out = a.backward(&dmlp_out);
        }
        let dnormed2 = self.mlp.backward(&dmlp_out);
        let mut dx1 = self.ln2.backward(&dnormed2);
        dx1.add_assign(dout); // residual

        // Attention sub-layer.
        let mut dattn_out = dx1.clone();
        if let Some(a) = &mut self.adapter1 {
            dattn_out = a.backward(&dattn_out);
        }
        let dnormed = self.attn.backward(&dattn_out);
        let mut dx = self.ln1.backward(&dnormed);
        dx.add_assign(&dx1); // residual
        dx
    }

    pub fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.ln1.for_each_param(f);
        self.attn.for_each_param(f);
        if let Some(a) = &mut self.adapter1 {
            a.for_each_param(f);
        }
        self.ln2.for_each_param(f);
        self.mlp.for_each_param(f);
        if let Some(a) = &mut self.adapter2 {
            a.for_each_param(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::config::Activation;

    fn tiny_cfg() -> ModelConfig {
        let mut cfg = ModelConfig::test_tiny();
        cfg.activation = Activation::Relu;
        cfg
    }

    #[test]
    fn adapter_is_identity_at_init() {
        let mut a = Adapter::new("a", 8, 2, 1);
        let y = Tensor::randn(&[3, 8], 1.0, 2);
        let out = a.forward(&y);
        assert_eq!(out, y);
    }

    #[test]
    fn adapter_backward_matches_finite_difference() {
        let mut a = Adapter::new("a", 6, 3, 3);
        // Non-zero up so the adapter transforms.
        let vals = lx_tensor::rng::randn_vec(a.up.weight.value.len(), 0.3, 4);
        a.up.weight.value.as_mut_slice().copy_from_slice(&vals);
        let y = Tensor::randn(&[2, 6], 1.0, 5);
        let dout = Tensor::randn(&[2, 6], 1.0, 6);
        let _ = a.forward(&y);
        let dy = a.backward(&dout);
        let loss = |a: &mut Adapter, y: &Tensor| -> f32 {
            let out = a.forward(y);
            a.cache_h = None;
            out.as_slice()
                .iter()
                .zip(dout.as_slice())
                .map(|(u, v)| u * v)
                .sum()
        };
        let h = 1e-3;
        for idx in [0usize, 7] {
            let mut yp = y.clone();
            yp.as_mut_slice()[idx] += h;
            let mut ym = y.clone();
            ym.as_mut_slice()[idx] -= h;
            let fd = (loss(&mut a, &yp) - loss(&mut a, &ym)) / (2.0 * h);
            assert!((dy.as_slice()[idx] - fd).abs() < 5e-3, "dy[{idx}]");
        }
    }

    #[test]
    fn block_forward_backward_shapes() {
        let cfg = tiny_cfg();
        let mut blk = TransformerBlock::new(&cfg, 0, 7);
        let (b, s) = (2, 8);
        let x = Tensor::randn(&[b * s, cfg.d_model], 0.5, 8);
        let y = blk.forward(&x, b, s, None);
        assert_eq!(y.shape(), x.shape());
        let dy = Tensor::randn(y.shape(), 1.0, 9);
        let dx = blk.backward(&dy);
        assert_eq!(dx.shape(), x.shape());
        assert!(dx.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn block_input_grad_matches_finite_difference() {
        let cfg = tiny_cfg();
        let mut blk = TransformerBlock::new(&cfg, 0, 10);
        let (b, s) = (1, 4);
        let x = Tensor::randn(&[b * s, cfg.d_model], 0.5, 11);
        let dy = Tensor::randn(&[b * s, cfg.d_model], 1.0, 12);
        let _ = blk.forward(&x, b, s, None);
        let dx = blk.backward(&dy);
        let loss = |blk: &mut TransformerBlock, x: &Tensor| -> f32 {
            let y = blk.forward(x, b, s, None);
            y.as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(u, v)| u * v)
                .sum()
        };
        let h = 1e-2;
        for idx in [0usize, 17, 40] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += h;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= h;
            let fd = (loss(&mut blk, &xp) - loss(&mut blk, &xm)) / (2.0 * h);
            assert!(
                (dx.as_slice()[idx] - fd).abs() < 0.05 * (1.0 + fd.abs()),
                "dx[{idx}]: {} vs {fd}",
                dx.as_slice()[idx]
            );
        }
    }

    #[test]
    fn adapters_attach_and_collect_params() {
        let cfg = tiny_cfg();
        let mut blk = TransformerBlock::new(&cfg, 0, 13);
        let before = {
            let mut n = 0;
            blk.for_each_param(&mut |_| n += 1);
            n
        };
        blk.attach_adapters(cfg.d_model, 4, 14, 0);
        let mut after = 0;
        blk.for_each_param(&mut |_| after += 1);
        assert_eq!(after, before + 8); // 2 adapters × (down w,b + up w,b)
    }
}
