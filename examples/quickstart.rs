//! Quickstart: fine-tune an OPT-style sim model with LoRA, dense vs
//! Long Exposure, and print the per-phase speedup.
//!
//! ```sh
//! cargo run --release -p lx-examples --example quickstart
//! ```

use long_exposure::{EngineConfig, FinetuneEngine};
use lx_data::e2e::E2eGenerator;
use lx_data::{Batcher, SyntheticWorld};
use lx_model::{prompt_aware_targets, AdamW, ModelConfig, TransformerModel};
use lx_peft::PeftMethod;

fn main() {
    let (batch, seq, block) = (2, 256, 16);
    let cfg = ModelConfig::opt_sim_small();
    println!("== Long Exposure quickstart ==");
    println!(
        "model {} ({} layers, d={}, ReLU MLP), batch {batch}, seq {seq}",
        cfg.name, cfg.n_layers, cfg.d_model
    );

    // 1. Model + PEFT method (LoRA on Q/V). The bias shift emulates the
    //    activation concentration of a pre-trained checkpoint (DESIGN.md).
    let mut model = TransformerModel::new(cfg.clone(), 42);
    model.induce_activation_sparsity(0.93, 0.25, block, 11);
    model.sharpen_attention(3.0);
    PeftMethod::lora_default().apply(&mut model, 7);
    let trainable = model.num_trainable();
    let total = model.num_params();
    println!(
        "LoRA: {trainable} / {total} params trainable ({:.3}%)",
        100.0 * trainable as f64 / total as f64
    );

    // 2. Data: synthetic E2E-like stream.
    let world = SyntheticWorld::new(cfg.vocab_size as u32, 1);
    let gen = E2eGenerator::new(world);
    let mut batcher = Batcher::new(gen.stream(50_000, 0));

    // 3. Engine with calibration.
    let mut engine = FinetuneEngine::new(
        model,
        EngineConfig {
            block_size: block,
            calib_epochs: 150,
            attn_prob_threshold: 8.0 / seq as f32,
            ..EngineConfig::default()
        },
    );
    let calib: Vec<(Vec<u32>, usize, usize)> = (0..4)
        .map(|_| (batcher.next_batch(batch, seq), batch, seq))
        .collect();
    println!("calibrating predictors on {} batches…", calib.len());
    let report = engine.calibrate(&calib);
    println!(
        "predictor recall: attention {:.1}%  MLP {:.1}%",
        100.0 * report.mean_attn_recall(),
        100.0 * report.mean_mlp_recall()
    );

    // 4. Train a few steps each way and compare.
    let mut opt = AdamW::new(1e-3, 0.01);
    let steps = 5;
    let mut dense_total = std::time::Duration::ZERO;
    let mut sparse_total = std::time::Duration::ZERO;
    for i in 0..steps {
        let ids = batcher.next_batch(batch, seq);
        let targets = prompt_aware_targets(&ids, batch, seq, 0);
        let d = engine.train_step_dense(&ids, &targets, batch, seq, &mut opt);
        let s = engine.train_step(&ids, &targets, batch, seq, &mut opt);
        if i > 0 {
            // skip warm-up
            dense_total += d.total();
            sparse_total += s.total();
        }
        println!(
            "step {i}: dense {:>6.1?} | long-exposure {:>6.1?} (predict {:>5.1?}, attn density {:.2}, mlp density {:.2}) loss {:.3}",
            d.total(),
            s.total(),
            s.predict,
            s.attn_density.unwrap_or(1.0),
            s.mlp_density.unwrap_or(1.0),
            s.loss
        );
    }
    println!(
        "\nend-to-end speedup over {} timed steps: {:.2}x",
        steps - 1,
        dense_total.as_secs_f64() / sparse_total.as_secs_f64()
    );
}
