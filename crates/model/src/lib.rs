//! Transformer substrate with explicit, hand-written forward/backward passes.
//!
//! The paper's analysis (§II-C, §II-D) reasons about exactly where sparsity
//! enters the backward pass; a tape autograd would hide that. Every module
//! here caches its forward intermediates and implements `backward` by hand,
//! so the sparse execution paths (block-sparse attention, neuron-sparse MLP)
//! can skip precisely the computations the paper proves skippable.
//!
//! Execution modes: each forward takes an optional [`SparsePlan`]. `None`
//! runs the dense baseline (the HuggingFace-PEFT stand-in); `Some(plan)` runs
//! the Long Exposure path using the per-layer attention layouts and MLP
//! neuron-block sets the predictors produced for this batch. Modules cache
//! the layout they ran with, so `backward` needs no plan.

pub mod block;
pub mod config;
pub mod embedding;
pub mod layernorm;
pub mod linear;
pub mod loss;
pub mod mha;
pub mod mlp;
pub mod model;
pub mod optim;
pub mod param;
pub mod plan;
pub mod precision;

pub use config::{Activation, ModelConfig};
pub use model::{
    prompt_aware_targets, CaptureConfig, Captures, LayerCapture, LayerPlanner, TransformerModel,
};
pub use optim::{clip_grad_norm, Adam, AdamW, LossScaler, LrSchedule, Optimizer, Scheduled, Sgd};
pub use param::Param;
pub use plan::{LayerPlan, SparsePlan};
pub use precision::Precision;
