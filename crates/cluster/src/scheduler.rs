//! The replicated-backbone cluster scheduler.
//!
//! N independent backbone replicas (each its own [`FinetuneEngine`]: model
//! copy, kernel policy, plan cache, workspace arena) drain one work-stealing
//! [`DispatchQueue`] of [`TenantTask`]s. Because a task carries *all* of its
//! job's mutable state, a tenant can run its next slice on any replica
//! without changing its numerics — the single-backbone scheduler-equivalence
//! property lifts directly to the cluster, and the integration suite proves
//! per-tenant losses identical to `lx_serve::Scheduler` at any replica
//! count.

use crate::dispatch::DispatchQueue;
use crate::qos::{JobFailure, QosClass, QosQuotas, Submit};
use long_exposure::engine::{EngineConfig, FinetuneEngine, StepMode};
use long_exposure::CalibrationReport;
use lx_model::{Precision, TransformerModel};
use lx_obs::registry as obs_registry;
use lx_serve::{
    run_fused_eval_slice, AdapterRegistry, JobReport, JobSpec, MetricsSnapshot, ProgressSink,
    ServeMetrics, SliceOutcome, TenantTask,
};
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A replica's in-flight work group, parked outside the `catch_unwind` so a
/// panicking slice can still hand its jobs to the quarantine path.
type InFlightSlot = Mutex<Option<Vec<(QosClass, TenantTask)>>>;

/// Cluster shape and policy.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Backbone replicas (worker threads). 1 is the degenerate single-
    /// backbone case and behaves like `lx_serve::Scheduler`.
    pub replicas: usize,
    /// Steps per scheduled slice before a task yields its replica.
    pub slice_steps: u64,
    /// Execution mode for tenant steps (`Sparse` needs
    /// [`ClusterScheduler::calibrate_shared`] first).
    pub mode: StepMode,
    /// Storage precision of every replica's backbone.
    pub precision: Precision,
    /// Per-QoS-class admission quotas.
    pub quotas: QosQuotas,
    /// Coalesce compatible queued eval jobs into fused slices.
    pub fusion: bool,
    /// Max tenants per fused slice.
    pub max_fused: usize,
    /// Force sequential GEMMs inside replica workers. With one worker thread
    /// per replica, replicas *are* the parallelism — letting each slice also
    /// fan out onto the shared `lx-parallel` pool would oversubscribe cores
    /// and serialise replicas on the pool lock. Numerics are unaffected
    /// (parallel == sequential GEMM bit-identity is proven by the kernel
    /// suite).
    pub sequential_gemm: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            replicas: 2,
            slice_steps: 4,
            mode: StepMode::Dense,
            precision: Precision::F32,
            quotas: QosQuotas::default(),
            fusion: true,
            max_fused: 8,
            sequential_gemm: true,
        }
    }
}

/// What a completed [`ClusterScheduler::run_to_completion`] drive did.
#[derive(Debug)]
pub struct ClusterReport {
    pub replicas: usize,
    /// Completion reports, sorted by tenant for determinism (thread
    /// completion order is not deterministic).
    pub reports: Vec<JobReport>,
    /// Jobs lost to quarantine with no healthy replica left to requeue onto.
    pub failures: Vec<JobFailure>,
    /// Replicas quarantined during the drive (panicking worker).
    pub quarantined: Vec<usize>,
    /// Jobs taken by an idle replica from a sibling's queue.
    pub steals: u64,
    /// Fused eval steps executed (each covers several tenants at once).
    pub fused_steps: u64,
    /// Tenant-steps served through fusion (`Σ` group size per fused step).
    pub fused_jobs: u64,
}

impl ClusterReport {
    pub fn report_for(&self, tenant: &str) -> Option<&JobReport> {
        self.reports.iter().find(|r| r.tenant == tenant)
    }
}

/// Replicated-backbone scheduler: admission (QoS quotas + validation),
/// placement (tenant→replica affinity), and a scoped-thread drive with
/// work-stealing, cross-tenant eval fusion and panic quarantine.
pub struct ClusterScheduler {
    engines: Vec<FinetuneEngine>,
    registry: Arc<AdapterRegistry>,
    config: ClusterConfig,
    queue: DispatchQueue<TenantTask>,
    /// Tenant → replica that last served it. New submissions land there so
    /// a returning tenant re-joins the replica most likely to have served it
    /// before; within a drive, a completed slice requeues onto the worker's
    /// own deque (stealable by idle siblings).
    affinity: Mutex<HashMap<String, usize>>,
    /// Tenants admitted and not yet drained (duplicate policing).
    active: HashSet<String>,
    /// Queued jobs per QoS class (quota accounting).
    in_class: [usize; 3],
    metrics: Mutex<ServeMetrics>,
    rr_place: usize,
    /// Fault injection: tenants whose next slice panics its replica worker
    /// (deterministic quarantine testing).
    panic_tenants: Mutex<HashSet<String>>,
}

impl ClusterScheduler {
    /// Build a cluster of `config.replicas` backbones. `build` is called once
    /// per replica and must return *identical* pristine (fully frozen,
    /// nothing attached) models — same config, same seed — or the replica-
    /// placement-invariance property is forfeit. Panics on a non-pristine
    /// backbone, like `lx_serve::Scheduler`.
    pub fn new(
        mut build: impl FnMut(usize) -> TransformerModel,
        engine_config: EngineConfig,
        config: ClusterConfig,
        registry: Arc<AdapterRegistry>,
    ) -> Self {
        assert!(config.replicas >= 1, "a cluster needs at least one replica");
        assert!(config.max_fused >= 2, "fused slices need at least two jobs");
        let engines: Vec<FinetuneEngine> = (0..config.replicas)
            .map(|r| {
                let mut model = build(r);
                assert_eq!(
                    model.num_trainable(),
                    0,
                    "replica {r} backbone must be pristine: freeze/detach before clustering"
                );
                model.set_precision(config.precision);
                let mut engine = FinetuneEngine::new(model, engine_config.clone());
                if let Some(blob) = registry.predictors() {
                    engine
                        .import_predictors(blob)
                        .expect("registry predictors incompatible with this backbone");
                }
                engine
            })
            .collect();
        let queue = DispatchQueue::new(config.replicas);
        ClusterScheduler {
            engines,
            registry,
            config,
            queue,
            affinity: Mutex::new(HashMap::new()),
            active: HashSet::new(),
            in_class: [0; 3],
            metrics: Mutex::new(ServeMetrics::default()),
            rr_place: 0,
            panic_tenants: Mutex::new(HashSet::new()),
        }
    }

    /// Calibrate shared sparsity predictors once on replica 0, broadcast the
    /// exported blob to every other replica, and persist it to the registry.
    /// All replicas end up with byte-identical predictors, so a sparse
    /// tenant's plan is the same wherever it is scheduled.
    pub fn calibrate_shared(&mut self, batches: &[(Vec<u32>, usize, usize)]) -> CalibrationReport {
        let report = self.engines[0].calibrate(batches);
        let blob = self.engines[0].export_predictors();
        for engine in &mut self.engines[1..] {
            engine
                .import_predictors(blob.clone())
                .expect("replica rejected predictors exported by replica 0");
        }
        self.registry
            .set_predictors(blob)
            .expect("failed to persist shared predictors");
        report
    }

    pub fn calibrated(&self) -> bool {
        self.engines[0].calibrated
    }

    pub fn registry(&self) -> &Arc<AdapterRegistry> {
        &self.registry
    }

    pub fn metrics(&self) -> MetricsSnapshot {
        lock(&self.metrics).snapshot()
    }

    /// Jobs admitted and waiting for the next drive.
    pub fn pending_jobs(&self) -> usize {
        self.queue.total_pending()
    }

    /// Mark `tenant` so its next scheduled slice panics its replica worker —
    /// the deterministic fault-injection hook behind the quarantine tests
    /// (and nothing else: production code never sets it).
    pub fn inject_slice_panic(&self, tenant: &str) {
        lock(&self.panic_tenants).insert(tenant.to_string());
    }

    pub fn submit(&mut self, spec: JobSpec, class: QosClass) -> Submit {
        self.submit_with_progress(spec, class, None)
    }

    /// Admit a job under `class`. Rejections carry the backpressure
    /// contract: `retry_after == None` for permanent errors (invalid spec,
    /// duplicate tenant, method mismatch, no healthy replica), `Some(d)` for
    /// quota rejections — `d` is the class base retry scaled by how
    /// oversubscribed the class is, deterministic for a given queue state.
    pub fn submit_with_progress(
        &mut self,
        spec: JobSpec,
        class: QosClass,
        progress: Option<ProgressSink>,
    ) -> Submit {
        if self.active.contains(&spec.tenant) {
            return Submit::Rejected {
                reason: format!("tenant {} already has an active job", spec.tenant),
                retry_after: None,
            };
        }
        let limit = self.config.quotas.limit(class);
        let queued = self.in_class[class.index()];
        if queued >= limit {
            let factor = (queued / limit).max(1) as u32;
            return Submit::Rejected {
                reason: format!(
                    "{} quota exhausted: {queued}/{limit} jobs queued",
                    class.name()
                ),
                retry_after: Some(class.base_retry() * factor),
            };
        }
        let replica = {
            let preferred = lock(&self.affinity).get(&spec.tenant).copied();
            match preferred {
                Some(r) if !self.queue.is_quarantined(r) => r,
                _ => {
                    let healthy = self.queue.healthy();
                    if healthy.is_empty() {
                        return Submit::Rejected {
                            reason: "no healthy replicas".into(),
                            retry_after: None,
                        };
                    }
                    let r = healthy[self.rr_place % healthy.len()];
                    self.rr_place += 1;
                    r
                }
            }
        };
        let task = match TenantTask::admit(
            spec,
            progress,
            &mut self.engines[replica],
            self.config.mode,
            &self.registry,
        ) {
            Ok(task) => task,
            Err(reason) => {
                return Submit::Rejected {
                    reason,
                    retry_after: None,
                }
            }
        };
        let tenant = task.spec.tenant.clone();
        if let Err(_task) = self.queue.push(replica, class, task) {
            return Submit::Rejected {
                reason: format!("replica {replica} was quarantined during admission"),
                retry_after: None,
            };
        }
        lock(&self.affinity).insert(tenant.clone(), replica);
        self.active.insert(tenant);
        self.in_class[class.index()] += 1;
        lock(&self.metrics).queue_depth = self.queue.total_pending();
        Submit::Admitted
    }

    /// Drive every queued job to completion: one scoped worker thread per
    /// healthy replica, each popping its own deque (priority order), fusing
    /// compatible queued eval jobs, stealing when idle, and quarantining
    /// itself on panic (in-flight + queued jobs requeue to survivors; with
    /// no survivors left they surface as [`ClusterReport::failures`]).
    pub fn run_to_completion(&mut self) -> ClusterReport {
        let n = self.config.replicas;
        let queue = &self.queue;
        let config = &self.config;
        let adapter_registry = &self.registry;
        let metrics = &self.metrics;
        let affinity = &self.affinity;
        let panics = &self.panic_tenants;
        let remaining = AtomicUsize::new(queue.total_pending());
        let reports: Mutex<Vec<JobReport>> = Mutex::new(Vec::new());
        let failures: Mutex<Vec<JobFailure>> = Mutex::new(Vec::new());
        let quarantined: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let steals = AtomicU64::new(0);
        let fused_steps = AtomicU64::new(0);
        let fused_jobs = AtomicU64::new(0);
        // Per-replica in-flight parking slot: the group a worker is running
        // lives here (not inside the catch_unwind closure) so a panicking
        // slice can still hand its jobs to the quarantine path.
        let slots: Vec<InFlightSlot> = (0..n).map(|_| Mutex::new(None)).collect();
        let slots = &slots;

        std::thread::scope(|scope| {
            for (r, engine) in self.engines.iter_mut().enumerate() {
                if queue.is_quarantined(r) {
                    continue;
                }
                let remaining = &remaining;
                let reports = &reports;
                let failures = &failures;
                let quarantined = &quarantined;
                let steals = &steals;
                let fused_steps = &fused_steps;
                let fused_jobs = &fused_jobs;
                scope.spawn(move || {
                    let wait_hist = obs_registry().histogram("serve.cluster.wait_ns");
                    let mut last_tenant: Option<String> = None;
                    loop {
                        if remaining.load(Ordering::Acquire) == 0 {
                            break;
                        }
                        let group: Vec<(QosClass, TenantTask)> =
                            if let Some((class, task)) = queue.pop_own(r) {
                                let mut group = vec![(class, task)];
                                if config.fusion {
                                    if let Some(key) = group[0].1.fusion_key() {
                                        group.extend(queue.drain_matching(
                                            r,
                                            config.max_fused - 1,
                                            |t| t.fusion_key() == Some(key),
                                        ));
                                    }
                                }
                                group
                            } else if let Some(stolen) = queue.steal_for(r) {
                                steals.fetch_add(1, Ordering::Relaxed);
                                obs_registry().counter("serve.replica.steals").inc();
                                vec![stolen]
                            } else {
                                // Siblings may still be mid-slice; their jobs
                                // requeue (or complete) shortly.
                                std::thread::sleep(Duration::from_micros(200));
                                continue;
                            };
                        let group_len = group.len();
                        for (_, t) in &group {
                            wait_hist.record_duration(t.ready_since.elapsed());
                        }
                        *lock(&slots[r]) = Some(group);
                        let run = catch_unwind(AssertUnwindSafe(|| {
                            let mut guard = lock(&slots[r]);
                            let group = guard.as_mut().expect("in-flight slot was just filled");
                            for (_, t) in group.iter() {
                                if lock(panics).remove(&t.spec.tenant) {
                                    panic!(
                                        "injected fault while replica {r} served tenant {}",
                                        t.spec.tenant
                                    );
                                }
                            }
                            run_group(engine, group, &mut last_tenant, config)
                        }));
                        match run {
                            Ok(outcomes) => {
                                let group = lock(&slots[r])
                                    .take()
                                    .expect("in-flight slot survives a clean slice");
                                if group_len >= 2 {
                                    let steps = outcomes[0].steps;
                                    fused_steps.fetch_add(steps, Ordering::Relaxed);
                                    fused_jobs
                                        .fetch_add(steps * group_len as u64, Ordering::Relaxed);
                                }
                                for ((class, task), out) in group.into_iter().zip(outcomes) {
                                    let tenant = task.spec.tenant.clone();
                                    {
                                        let mut m = lock(metrics);
                                        m.record_slice(
                                            &tenant,
                                            out.steps,
                                            out.tokens,
                                            out.busy,
                                            out.swap,
                                            out.last_loss,
                                        );
                                        if task.remaining() == 0 {
                                            m.completed_jobs += 1;
                                        }
                                    }
                                    lock(affinity).insert(tenant.clone(), r);
                                    if task.remaining() == 0 {
                                        adapter_registry
                                            .put(&tenant, task.adapter())
                                            .expect("failed to persist finished adapter");
                                        lock(reports).push(task.into_report());
                                        remaining.fetch_sub(1, Ordering::Release);
                                    } else {
                                        requeue_or_fail(queue, r, class, task, failures, remaining);
                                    }
                                }
                            }
                            Err(_) => {
                                // Quarantine: this replica is out (its engine
                                // may hold a half-attached adapter). Hand the
                                // in-flight group plus everything queued here
                                // to the survivors. The interrupted slice's
                                // adapter updates are discarded — tasks
                                // resume from their last completed slice.
                                obs_registry().counter("serve.replica.quarantined").inc();
                                lock(quarantined).push(r);
                                let mut stranded = lock(&slots[r]).take().unwrap_or_default();
                                stranded.extend(queue.quarantine(r));
                                for (class, task) in stranded {
                                    requeue_or_fail(queue, r, class, task, failures, remaining);
                                }
                                break;
                            }
                        }
                    }
                });
            }
        });

        // Belt-and-braces: a push that raced a concurrent quarantine can
        // strand a job on a dead replica's deque; surface it as a failure
        // rather than dropping it silently.
        for r in 0..n {
            for (_, task) in self.queue.drain_replica(r) {
                lock(&failures).push(JobFailure {
                    tenant: task.spec.tenant.clone(),
                    error: format!("stranded on quarantined replica {r}"),
                });
            }
        }

        self.active.clear();
        self.in_class = [0; 3];
        lock(&self.metrics).queue_depth = 0;
        let mut reports = reports.into_inner().unwrap_or_else(|e| e.into_inner());
        reports.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        let mut failures = failures.into_inner().unwrap_or_else(|e| e.into_inner());
        failures.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        let mut quarantined = quarantined.into_inner().unwrap_or_else(|e| e.into_inner());
        quarantined.sort_unstable();
        ClusterReport {
            replicas: n,
            reports,
            failures,
            quarantined,
            steals: steals.into_inner(),
            fused_steps: fused_steps.into_inner(),
            fused_jobs: fused_jobs.into_inner(),
        }
    }
}

/// Requeue a live task near `origin` (its own replica first for affinity,
/// else the first healthy survivor); if no healthy replica remains, record a
/// failure and retire the job.
fn requeue_or_fail(
    queue: &DispatchQueue<TenantTask>,
    origin: usize,
    class: QosClass,
    task: TenantTask,
    failures: &Mutex<Vec<JobFailure>>,
    remaining: &AtomicUsize,
) {
    let mut target = origin;
    let mut task = task;
    loop {
        match queue.push(target, class, task) {
            Ok(()) => return,
            Err(rejected) => {
                task = rejected;
                match queue.healthy().first() {
                    Some(&h) => target = h,
                    None => {
                        lock(failures).push(JobFailure {
                            tenant: task.spec.tenant.clone(),
                            error: "replica panicked with no healthy replica left".into(),
                        });
                        remaining.fetch_sub(1, Ordering::Release);
                        return;
                    }
                }
            }
        }
    }
}

/// Run one scheduled group on a replica: a fused eval slice when the group
/// has ≥2 (fusion-key-matched) jobs, a plain slice otherwise — optionally
/// pinned to sequential GEMMs (see [`ClusterConfig::sequential_gemm`]).
fn run_group(
    engine: &mut FinetuneEngine,
    group: &mut [(QosClass, TenantTask)],
    last_tenant: &mut Option<String>,
    config: &ClusterConfig,
) -> Vec<SliceOutcome> {
    let (mode, slice_steps) = (config.mode, config.slice_steps);
    let body = move |engine: &mut FinetuneEngine,
                     group: &mut [(QosClass, TenantTask)],
                     last_tenant: &mut Option<String>| {
        if group.len() >= 2 {
            let mut refs: Vec<&mut TenantTask> = group.iter_mut().map(|(_, t)| t).collect();
            let outs = run_fused_eval_slice(engine, mode, &mut refs, slice_steps);
            // The fused slice invalidates per shard and leaves the plan cache
            // in the last shard's context; force a fresh plan next slice.
            *last_tenant = None;
            outs
        } else {
            let (_, task) = &mut group[0];
            if last_tenant.as_deref() != Some(task.spec.tenant.as_str()) {
                engine.invalidate_plan_cache();
                *last_tenant = Some(task.spec.tenant.clone());
            }
            vec![task.run_slice(engine, mode, slice_steps)]
        }
    };
    if config.sequential_gemm {
        lx_kernels::with_sequential(|| body(engine, group, last_tenant))
    } else {
        body(engine, group, last_tenant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lx_model::ModelConfig;
    use lx_serve::DatasetSpec;

    fn backbone() -> TransformerModel {
        let mut m = TransformerModel::new(ModelConfig::test_tiny(), 11);
        m.freeze_all();
        m
    }

    fn cluster(config: ClusterConfig) -> ClusterScheduler {
        ClusterScheduler::new(
            |_| backbone(),
            EngineConfig {
                block_size: 4,
                ..EngineConfig::default()
            },
            config,
            Arc::new(AdapterRegistry::in_memory()),
        )
    }

    fn spec(tenant: &str, steps: u64) -> JobSpec {
        JobSpec {
            stream_len: 2_000,
            ..JobSpec::lora(tenant, steps, 1, 16)
        }
    }

    #[test]
    fn two_replicas_drain_a_mixed_queue() {
        let mut c = cluster(ClusterConfig {
            replicas: 2,
            ..ClusterConfig::default()
        });
        for (i, class) in [
            QosClass::Interactive,
            QosClass::Batch,
            QosClass::Batch,
            QosClass::BestEffort,
        ]
        .iter()
        .enumerate()
        {
            assert!(c.submit(spec(&format!("t{i}"), 6), *class).is_admitted());
        }
        assert_eq!(c.pending_jobs(), 4);
        let report = c.run_to_completion();
        assert_eq!(report.reports.len(), 4);
        assert!(report.failures.is_empty());
        assert!(report.quarantined.is_empty());
        for r in &report.reports {
            assert_eq!(r.steps, 6);
            assert!(r.losses.iter().all(|l| l.is_finite()), "{:?}", r.losses);
        }
        let snap = c.metrics();
        assert_eq!(snap.completed_jobs, 4);
        assert_eq!(snap.total_steps, 24);
        assert_eq!(snap.queue_depth, 0);
        // Finished adapters all landed in the registry.
        assert_eq!(c.registry().tenants().len(), 4);
    }

    #[test]
    fn quota_rejections_carry_deterministic_retry_hints() {
        let mut c = cluster(ClusterConfig {
            replicas: 2,
            quotas: QosQuotas {
                interactive: 2,
                ..QosQuotas::default()
            },
            ..ClusterConfig::default()
        });
        assert!(c.submit(spec("a", 2), QosClass::Interactive).is_admitted());
        assert!(c.submit(spec("b", 2), QosClass::Interactive).is_admitted());
        match c.submit(spec("c", 2), QosClass::Interactive) {
            Submit::Rejected {
                retry_after,
                reason,
            } => {
                assert_eq!(
                    retry_after,
                    Some(QosClass::Interactive.base_retry()),
                    "quota rejection must carry the class retry hint"
                );
                assert!(reason.contains("2/2"), "{reason}");
            }
            Submit::Admitted => panic!("third interactive job must bounce"),
        }
        // Other classes are unaffected by the interactive quota.
        assert!(c.submit(spec("c", 2), QosClass::Batch).is_admitted());
        // Duplicate tenants are permanent rejections: no retry hint.
        match c.submit(spec("a", 2), QosClass::Batch) {
            Submit::Rejected { retry_after, .. } => assert_eq!(retry_after, None),
            Submit::Admitted => panic!("duplicate tenant must bounce"),
        }
        // After the drive the quota frees up.
        c.run_to_completion();
        assert!(c.submit(spec("d", 2), QosClass::Interactive).is_admitted());
    }

    #[test]
    fn single_replica_is_the_degenerate_case() {
        let mut c = cluster(ClusterConfig {
            replicas: 1,
            ..ClusterConfig::default()
        });
        assert!(c.submit(spec("solo", 10), QosClass::Batch).is_admitted());
        let report = c.run_to_completion();
        assert_eq!(report.replicas, 1);
        assert_eq!(report.steals, 0, "nothing to steal from");
        let r = report.report_for("solo").unwrap();
        assert_eq!(r.steps, 10);
        assert!(
            r.losses.last().unwrap() < r.losses.first().unwrap(),
            "training must reduce loss: {:?}",
            r.losses
        );
    }

    #[test]
    fn queued_eval_jobs_fuse_on_one_replica() {
        let mut c = cluster(ClusterConfig {
            replicas: 1,
            slice_steps: 4,
            ..ClusterConfig::default()
        });
        for t in ["e0", "e1", "e2"] {
            let mut j = spec(t, 4);
            j.eval_only = true;
            j.dataset = DatasetSpec::Instruct {
                world_seed: 5,
                salt: 1,
            };
            assert!(c.submit(j, QosClass::Interactive).is_admitted());
        }
        let report = c.run_to_completion();
        assert_eq!(report.reports.len(), 3);
        assert_eq!(
            report.fused_steps, 4,
            "three co-queued eval tenants fuse into 4 fused steps"
        );
        assert_eq!(report.fused_jobs, 12, "3 tenants x 4 steps through fusion");
        for r in &report.reports {
            assert!(r.losses.iter().all(|l| l.is_finite()));
        }
    }

    #[test]
    fn injected_panic_quarantines_the_replica_and_the_run_completes() {
        let mut c = cluster(ClusterConfig {
            replicas: 2,
            ..ClusterConfig::default()
        });
        for t in ["a", "b", "c", "d"] {
            assert!(c.submit(spec(t, 6), QosClass::Batch).is_admitted());
        }
        c.inject_slice_panic("b");
        let report = c.run_to_completion();
        assert_eq!(report.quarantined.len(), 1, "exactly one replica lost");
        assert!(report.failures.is_empty(), "survivor absorbs the work");
        assert_eq!(report.reports.len(), 4);
        for r in &report.reports {
            assert_eq!(
                r.steps, 6,
                "{}: requeued job still meets its budget",
                r.tenant
            );
        }
    }

    #[test]
    fn panic_on_the_last_replica_fails_jobs_instead_of_hanging() {
        let mut c = cluster(ClusterConfig {
            replicas: 1,
            slice_steps: 2,
            ..ClusterConfig::default()
        });
        assert!(c.submit(spec("doomed", 6), QosClass::Batch).is_admitted());
        assert!(c
            .submit(spec("bystander", 6), QosClass::Batch)
            .is_admitted());
        c.inject_slice_panic("doomed");
        let report = c.run_to_completion();
        assert_eq!(report.quarantined, vec![0]);
        assert_eq!(
            report.failures.len() + report.reports.len(),
            2,
            "every job is accounted for: {:?}",
            report.failures
        );
        assert!(
            report.failures.iter().any(|f| f.tenant == "doomed"),
            "{:?}",
            report.failures
        );
    }
}
