//! NF4-style 4-bit codec (QLoRA lineage): each value maps to the nearest of
//! 16 fixed codebook entries on `[-1, 1]`, scaled by the block's absmax.
//!
//! The codebook is the information-theoretically-motivated "normal float"
//! grid — quantiles of a standard normal — because trained weight blocks are
//! approximately zero-mean normal once divided by their absmax. Entry 7 is
//! exactly `0.0`, so zero survives the round trip bit-exactly and padding
//! nibbles are harmless.
//!
//! Packing: element `2i` occupies the **low** nibble of byte `i`, element
//! `2i+1` the **high** nibble. An odd-length buffer leaves its final high
//! nibble set to code 7 (decodes to 0.0), keeping encode deterministic and
//! the packed bytes comparable with `==`.

use crate::{finite_absmax, n_blocks, nibble_bytes, sanitize, Q4View, BLOCK};

/// The 16-entry NF4 codebook (ascending; index 7 is exactly 0.0).
pub const CODEBOOK: [f32; 16] = [
    -1.0,
    -0.696_192_8,
    -0.525_073_05,
    -0.394_917_5,
    -0.284_441_38,
    -0.184_773_43,
    -0.091_050_036,
    0.0,
    0.079_580_3,
    0.160_930_2,
    0.246_112_3,
    0.337_915_24,
    0.440_709_83,
    0.562_617,
    0.722_956_84,
    1.0,
];

/// Nearest codebook index for a normalized value in `[-1, 1]`. Ties resolve
/// to the lower index (first wins) so encode is deterministic.
#[inline]
fn encode_one(normalized: f32) -> u8 {
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for (i, &c) in CODEBOOK.iter().enumerate() {
        let d = (normalized - c).abs();
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best as u8
}

/// Quantize to `(packed nibble codes, per-block scales)`.
/// `codes.len() == nibble_bytes(values.len())`, `scales.len() ==
/// n_blocks(values.len())`. The scale is the block absmax itself (dequant is
/// `CODEBOOK[code] * scale`).
pub fn quantize(values: &[f32]) -> (Vec<u8>, Vec<f32>) {
    let mut nibbles = Vec::with_capacity(values.len() + values.len() % 2);
    let mut scales = Vec::with_capacity(n_blocks(values.len()));
    for block in values.chunks(BLOCK) {
        let absmax = finite_absmax(block);
        scales.push(absmax);
        if absmax == 0.0 {
            nibbles.extend(std::iter::repeat_n(7u8, block.len()));
            continue;
        }
        for &v in block {
            let v = sanitize(v, absmax);
            nibbles.push(encode_one(v / absmax));
        }
    }
    if nibbles.len() % 2 == 1 {
        nibbles.push(7); // pad nibble decodes to 0.0 and never leaks
    }
    let mut codes = Vec::with_capacity(nibble_bytes(values.len()));
    for pair in nibbles.chunks_exact(2) {
        codes.push(pair[0] | (pair[1] << 4));
    }
    (codes, scales)
}

/// Dequantize `len` elements into `out` (`out.len() == len`).
pub fn dequantize(codes: &[u8], scales: &[f32], out: &mut [f32]) {
    let view = Q4View::new(codes, scales, out.len());
    for (i, o) in out.iter_mut().enumerate() {
        *o = view.get(i);
    }
}

/// Round every value through the codec in place (`dequantize(quantize(v))`)
/// — what a differential test applies to an f32 model so it computes the
/// exact function its nf4-stored twin does.
pub fn round_slice(values: &mut [f32]) {
    let (codes, scales) = quantize(values);
    let len = values.len();
    let view = Q4View::new(&codes, &scales, len);
    for (i, v) in values.iter_mut().enumerate() {
        *v = view.get(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::pseudo;

    #[test]
    fn codebook_is_sorted_and_symmetric_at_the_ends() {
        for w in CODEBOOK.windows(2) {
            assert!(w[0] < w[1], "codebook must be strictly ascending");
        }
        assert_eq!(CODEBOOK[0], -1.0);
        assert_eq!(CODEBOOK[7], 0.0);
        assert_eq!(CODEBOOK[15], 1.0);
    }

    #[test]
    fn encode_picks_nearest_entry_with_first_wins_ties() {
        for (i, &c) in CODEBOOK.iter().enumerate() {
            assert_eq!(encode_one(c) as usize, i, "exact entry {i}");
        }
        // An exact midpoint ties; the lower index must win.
        let mid = (CODEBOOK[7] + CODEBOOK[8]) / 2.0;
        let d7 = (mid - CODEBOOK[7]).abs();
        let d8 = (mid - CODEBOOK[8]).abs();
        if d7 == d8 {
            assert_eq!(encode_one(mid), 7);
        }
    }

    #[test]
    fn roundtrip_error_is_bounded_by_widest_gap() {
        // Worst case is half the widest codebook gap times absmax.
        let half_gap = CODEBOOK
            .windows(2)
            .map(|w| (w[1] - w[0]) / 2.0)
            .fold(0.0f32, f32::max);
        for (len, seed) in [(64usize, 11u32), (1000, 12), (63, 13), (129, 14)] {
            let vals = pseudo(len, 2.0, seed);
            let (codes, scales) = quantize(&vals);
            assert_eq!(codes.len(), nibble_bytes(len));
            assert_eq!(scales.len(), n_blocks(len));
            let mut out = vec![0.0f32; len];
            dequantize(&codes, &scales, &mut out);
            for (i, (&v, &dq)) in vals.iter().zip(&out).enumerate() {
                let bound = half_gap * scales[i / BLOCK] + 1e-6;
                assert!((v - dq).abs() <= bound, "idx {i}: {v} -> {dq}");
            }
        }
    }

    #[test]
    fn block_absmax_endpoints_are_exact() {
        let mut vals = pseudo(130, 1.0, 15);
        vals[5] = 4.0; // block 0 absmax -> code 15 -> 1.0 * 4.0
        vals[70] = -8.0; // block 1 absmax -> code 0 -> -1.0 * 8.0
        let (codes, scales) = quantize(&vals);
        let v = Q4View::new(&codes, &scales, vals.len());
        assert_eq!(v.get(5), 4.0);
        assert_eq!(v.get(70), -8.0);
    }

    #[test]
    fn all_zero_blocks_store_zero_scale_without_nan() {
        let vals = vec![0.0f32; 100];
        let (codes, scales) = quantize(&vals);
        assert!(scales.iter().all(|&s| s == 0.0));
        // Every nibble is code 7 -> byte 0x77.
        assert!(codes.iter().all(|&b| b == 0x77));
        let mut out = vec![1.0f32; 100];
        dequantize(&codes, &scales, &mut out);
        assert!(out.iter().all(|&v| v == 0.0 && !v.is_nan()));
    }

    #[test]
    fn tail_blocks_and_odd_lengths_cover_every_length() {
        for len in [1usize, 2, 63, 64, 65, 127, 128, 129, 191] {
            let vals = pseudo(len, 1.0, 200 + len as u32);
            let (codes, scales) = quantize(&vals);
            assert_eq!(codes.len(), nibble_bytes(len), "len {len}");
            assert_eq!(scales.len(), n_blocks(len), "len {len}");
            if len % 2 == 1 {
                assert_eq!(codes[len / 2] >> 4, 7, "odd tail pads with code 7");
            }
            let mut out = vec![0.0f32; len];
            dequantize(&codes, &scales, &mut out);
            for (i, &dq) in out.iter().enumerate() {
                assert!(dq.abs() <= scales[i / BLOCK], "decode within absmax");
            }
        }
    }

    #[test]
    fn non_finite_inputs_clamp_deterministically() {
        let mut vals = pseudo(64, 0.5, 16);
        vals[0] = f32::NAN;
        vals[1] = f32::INFINITY;
        vals[2] = f32::NEG_INFINITY;
        let absmax = finite_absmax(&vals);
        let (codes, scales) = quantize(&vals);
        let v = Q4View::new(&codes, &scales, vals.len());
        assert_eq!(v.get(0), 0.0, "NaN encodes to the zero entry");
        assert_eq!(v.get(1), absmax, "+inf clamps to +absmax (code 15)");
        assert_eq!(v.get(2), -absmax, "-inf clamps to -absmax (code 0)");
        let (codes2, scales2) = quantize(&vals);
        assert_eq!(codes, codes2);
        assert_eq!(scales, scales2);
    }

    #[test]
    fn nibble_pack_unpack_order_seeded_sweep() {
        // Proptest-style sweep: for many seeded random buffers, re-encoding
        // the decoded values reproduces the exact packed bytes, and per-index
        // unpack (view) matches a manual low/high-nibble walk.
        for seed in 0..32u32 {
            let len = 1 + (seed as usize * 37) % 200;
            let vals = pseudo(len, 1.0 + seed as f32 * 0.1, 300 + seed);
            let (codes, scales) = quantize(&vals);
            let mut decoded = vec![0.0f32; len];
            dequantize(&codes, &scales, &mut decoded);

            // Manual nibble walk must agree with Q4View::get.
            let view = Q4View::new(&codes, &scales, len);
            for i in 0..len {
                let nib = if i % 2 == 0 {
                    codes[i / 2] & 0x0F
                } else {
                    codes[i / 2] >> 4
                };
                let manual = CODEBOOK[nib as usize] * scales[i / BLOCK];
                assert_eq!(view.get(i).to_bits(), manual.to_bits(), "idx {i}");
            }

            // Codec fixed point: quantizing the decoded buffer reproduces
            // the identical packed bytes and scales.
            let (codes2, scales2) = quantize(&decoded);
            assert_eq!(scales, scales2, "seed {seed}");
            assert_eq!(codes, codes2, "seed {seed}");
        }
    }

    #[test]
    fn windowed_decode_is_bit_identical_to_full_decode() {
        let vals = pseudo(321, 1.5, 17);
        let (codes, scales) = quantize(&vals);
        let mut full = vec![0.0f32; vals.len()];
        dequantize(&codes, &scales, &mut full);
        let view = Q4View::new(&codes, &scales, vals.len());
        for (start, n) in [(0usize, 64usize), (50, 30), (63, 2), (100, 221)] {
            for (i, f) in full.iter().enumerate().skip(start).take(n) {
                assert_eq!(view.get(i).to_bits(), f.to_bits(), "idx {i}");
            }
        }
    }

    #[test]
    fn round_slice_is_idempotent() {
        let mut vals = pseudo(201, 3.0, 18);
        round_slice(&mut vals);
        let once = vals.clone();
        round_slice(&mut vals);
        assert_eq!(vals, once);
    }
}
