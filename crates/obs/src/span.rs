//! Span recording: RAII interval guards, the record ring buffer, and the
//! process-global [`TraceSession`].
//!
//! The disabled path is the design constraint: instrumented code runs in the
//! innermost training loops, so [`Span::enter`] must cost a single relaxed
//! atomic load when no session is active (`step_bench --smoke` gates the
//! measured overhead below 1% of a step). When a session *is* active, each
//! span boxes its metadata, timestamps itself against the shared
//! [`crate::now_ns`] epoch, and publishes one [`SpanRecord`] into the
//! session's fixed-capacity ring on drop. The ring overwrites oldest-first
//! on wraparound and counts what it dropped.

use crate::clock;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// One completed span, as stored in the ring and exported to Chrome traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    pub name: &'static str,
    /// Category (Chrome trace `cat`): a coarse grouping like `step`/`serve`.
    pub cat: &'static str,
    pub tenant: Option<Box<str>>,
    pub layer: Option<u32>,
    /// Free-form ordinal label (micro-batch number, step number, task id).
    pub index: Option<u64>,
    /// Start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    pub dur_ns: u64,
    /// Small per-thread ordinal (first span wins the id), Chrome trace `tid`.
    pub tid: u64,
}

impl SpanRecord {
    /// End of the interval, nanoseconds since the epoch.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }

    /// Whether `inner` lies entirely within this record's interval on the
    /// same thread (how per-phase spans nest under their step).
    pub fn contains(&self, inner: &SpanRecord) -> bool {
        self.tid == inner.tid && inner.start_ns >= self.start_ns && inner.end_ns() <= self.end_ns()
    }
}

/// Fixed-capacity overwrite-oldest record store. Slots are individually
/// mutexed (uncontended in practice: a writer holds a slot lock only for the
/// record move), and the cursor is a single fetch_add, so concurrent
/// recorders never serialise against each other on the common path.
struct Ring {
    slots: Vec<Mutex<Option<SpanRecord>>>,
    next: AtomicUsize,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Ring {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            next: AtomicUsize::new(0),
        }
    }

    fn push(&self, record: SpanRecord) {
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        *self.slots[i].lock().expect("ring slot") = Some(record);
    }

    /// Drain every surviving record (oldest first) and the dropped count.
    fn drain(&self) -> (Vec<SpanRecord>, u64) {
        let total = self.next.load(Ordering::Relaxed);
        let cap = self.slots.len();
        let dropped = total.saturating_sub(cap) as u64;
        let first = if total > cap { total % cap } else { 0 };
        let kept = total.min(cap);
        let mut out = Vec::with_capacity(kept);
        for j in 0..kept {
            let slot = &self.slots[(first + j) % cap];
            if let Some(rec) = slot.lock().expect("ring slot").take() {
                out.push(rec);
            }
        }
        (out, dropped)
    }
}

/// Fast-path gate: true while a [`TraceSession`] is active.
static ACTIVE: AtomicBool = AtomicBool::new(false);
/// Secondary gate for instruments that are too hot to time unconditionally
/// (per-GEMM histograms): [`force_timing`] turns them on without a session.
static TIMING_FORCED: AtomicBool = AtomicBool::new(false);

fn ring_slot() -> &'static Mutex<Option<Arc<Ring>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<Ring>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

fn current_ring() -> Option<Arc<Ring>> {
    ring_slot().lock().expect("trace ring").clone()
}

/// Whether a [`TraceSession`] is currently active.
#[inline]
pub fn tracing_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Whether fine-grained timing instruments (per-GEMM latency histograms)
/// should measure: any active session, or an explicit [`force_timing`].
#[inline]
pub fn timing_enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed) || TIMING_FORCED.load(Ordering::Relaxed)
}

/// Force fine-grained timing on/off independently of trace sessions (bench
/// arms that want kernel latency histograms without span collection).
pub fn force_timing(on: bool) {
    TIMING_FORCED.store(on, Ordering::Relaxed);
}

fn current_tid() -> u64 {
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// The boxed metadata of a recording span (only allocated while a session
/// is active).
struct LiveSpan {
    name: &'static str,
    cat: &'static str,
    tenant: Option<Box<str>>,
    layer: Option<u32>,
    index: Option<u64>,
    start: Instant,
    ring: Arc<Ring>,
}

impl LiveSpan {
    fn open(name: &'static str) -> Option<Box<LiveSpan>> {
        let ring = current_ring()?;
        Some(Box::new(LiveSpan {
            name,
            cat: "app",
            tenant: None,
            layer: None,
            index: None,
            start: Instant::now(),
            ring,
        }))
    }

    /// Publish with an explicit duration in nanoseconds.
    fn publish(self, dur_ns: u64) {
        let start_ns = self
            .start
            .saturating_duration_since(clock::epoch())
            .as_nanos() as u64;
        let ring = self.ring.clone();
        ring.push(SpanRecord {
            name: self.name,
            cat: self.cat,
            tenant: self.tenant,
            layer: self.layer,
            index: self.index,
            start_ns,
            dur_ns,
            tid: current_tid(),
        });
    }
}

/// An RAII interval: records `enter → drop` into the active session, or does
/// nothing (one atomic load) when no session is active.
///
/// ```
/// fn work() {
///     let _span = lx_obs::Span::enter("demo.work").cat("demo").index(3);
///     // ... the interval ends when _span drops ...
/// }
/// work(); // inert here unless a TraceSession is active
/// ```
#[must_use = "a span records the interval until it is dropped"]
pub struct Span(Option<Box<LiveSpan>>);

impl Span {
    #[inline]
    pub fn enter(name: &'static str) -> Span {
        if !ACTIVE.load(Ordering::Relaxed) {
            return Span(None);
        }
        Span(LiveSpan::open(name))
    }

    /// Set the category (default `"app"`).
    pub fn cat(mut self, cat: &'static str) -> Span {
        if let Some(live) = &mut self.0 {
            live.cat = cat;
        }
        self
    }

    /// Label with a tenant name (serve-side spans).
    pub fn tenant(mut self, tenant: &str) -> Span {
        if let Some(live) = &mut self.0 {
            live.tenant = Some(tenant.into());
        }
        self
    }

    /// Label with a layer number.
    pub fn layer(mut self, layer: u32) -> Span {
        if let Some(live) = &mut self.0 {
            live.layer = Some(layer);
        }
        self
    }

    /// Label with an ordinal (micro-batch, step, task id).
    pub fn index(mut self, index: u64) -> Span {
        if let Some(live) = &mut self.0 {
            live.index = Some(index);
        }
        self
    }

    /// Whether this span will publish a record (a session was active at
    /// `enter`).
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(live) = self.0.take() {
            let dur_ns = live.start.elapsed().as_nanos() as u64;
            live.publish(dur_ns);
        }
    }
}

/// A span that *always* measures and returns its duration from
/// [`finish`](Self::finish) — for call sites that consume the duration
/// anyway (`StepOutcome` phase columns). The published record carries the
/// *identical* nanosecond count that `finish` returns, so outcome columns
/// and trace spans can be compared bit-for-bit.
#[must_use = "call finish() to obtain the measured duration"]
pub struct TimedSpan {
    start: Instant,
    live: Option<Box<LiveSpan>>,
}

impl TimedSpan {
    #[inline]
    pub fn enter(name: &'static str) -> TimedSpan {
        let live = if ACTIVE.load(Ordering::Relaxed) {
            LiveSpan::open(name)
        } else {
            None
        };
        let start = match &live {
            Some(l) => l.start,
            None => Instant::now(),
        };
        TimedSpan { start, live }
    }

    /// Set the category (default `"app"`).
    pub fn cat(mut self, cat: &'static str) -> TimedSpan {
        if let Some(live) = &mut self.live {
            live.cat = cat;
        }
        self
    }

    /// Label with a tenant name.
    pub fn tenant(mut self, tenant: &str) -> TimedSpan {
        if let Some(live) = &mut self.live {
            live.tenant = Some(tenant.into());
        }
        self
    }

    /// Label with a layer number.
    pub fn layer(mut self, layer: u32) -> TimedSpan {
        if let Some(live) = &mut self.live {
            live.layer = Some(layer);
        }
        self
    }

    /// Label with an ordinal.
    pub fn index(mut self, index: u64) -> TimedSpan {
        if let Some(live) = &mut self.live {
            live.index = Some(index);
        }
        self
    }

    /// End the interval: publish the record (when recording) and return the
    /// measured duration — the same nanosecond count in both places.
    pub fn finish(self) -> Duration {
        let dur_ns = self.start.elapsed().as_nanos() as u64;
        if let Some(live) = self.live {
            live.publish(dur_ns);
        }
        Duration::from_nanos(dur_ns)
    }
}

/// The (single, process-global) span collection window.
///
/// Only one session can be active at a time; [`start`](Self::start) fails
/// while another is live. Spans entered by *any* thread between `start` and
/// [`finish`](Self::finish) land in this session's ring.
pub struct TraceSession {
    ring: Arc<Ring>,
    finished: bool,
}

impl TraceSession {
    /// Default ring capacity (records); ≈ a few thousand training steps of
    /// per-phase spans.
    pub const DEFAULT_CAPACITY: usize = 32_768;

    /// Activate a session with [`Self::DEFAULT_CAPACITY`].
    pub fn start() -> Result<TraceSession, String> {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Activate a session whose ring holds `capacity` records (oldest are
    /// overwritten beyond that). Errors if a session is already active.
    pub fn with_capacity(capacity: usize) -> Result<TraceSession, String> {
        clock::epoch(); // pin the epoch before the first span
        let mut slot = ring_slot().lock().expect("trace ring");
        if slot.is_some() {
            return Err("a TraceSession is already active in this process".into());
        }
        let ring = Arc::new(Ring::new(capacity));
        *slot = Some(ring.clone());
        drop(slot);
        ACTIVE.store(true, Ordering::SeqCst);
        Ok(TraceSession {
            ring,
            finished: false,
        })
    }

    /// Deactivate and collect: returns every surviving record sorted by
    /// start time, plus the overwritten-record count.
    pub fn finish(mut self) -> Trace {
        self.deactivate();
        let (mut records, dropped) = self.ring.drain();
        records.sort_by_key(|r| (r.start_ns, r.tid));
        Trace { records, dropped }
    }

    fn deactivate(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        ACTIVE.store(false, Ordering::SeqCst);
        *ring_slot().lock().expect("trace ring") = None;
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        self.deactivate();
    }
}

/// A finished session's records (see [`TraceSession::finish`]); export with
/// [`Trace::to_chrome_json`] / [`Trace::write_chrome`] / [`Trace::summary`].
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Surviving records, sorted by start time.
    pub records: Vec<SpanRecord>,
    /// Records overwritten by ring wraparound.
    pub dropped: u64,
}

impl Trace {
    /// Records with a given span name, in start order.
    pub fn named(&self, name: &str) -> Vec<&SpanRecord> {
        self.records.iter().filter(|r| r.name == name).collect()
    }
}

/// Measure the disabled-path cost of one `Span::enter` + drop, in
/// nanoseconds (the `step_bench` <1% overhead gate). Panics if a session is
/// active — the point is to measure the inert path.
pub fn inert_span_cost_ns(iters: u32) -> f64 {
    assert!(
        !tracing_active(),
        "inert_span_cost_ns must run without an active TraceSession"
    );
    let iters = iters.max(1);
    let t0 = Instant::now();
    for _ in 0..iters {
        let span = Span::enter("obs.overhead.probe");
        std::hint::black_box(&span);
    }
    t0.elapsed().as_secs_f64() * 1e9 / iters as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sessions are process-global; every test touching one serialises here.
    fn session_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn inert_spans_record_nothing() {
        let _guard = session_lock();
        let span = Span::enter("test.inert");
        assert!(!span.is_recording());
        drop(span);
        let took = TimedSpan::enter("test.inert.timed").finish();
        assert!(took.as_nanos() < 1_000_000_000);
    }

    #[test]
    fn session_collects_spans_in_order() {
        let _guard = session_lock();
        let session = TraceSession::start().expect("no session active");
        drop(Span::enter("test.a").cat("t").index(1));
        drop(Span::enter("test.b").cat("t").tenant("x").layer(2));
        let trace = session.finish();
        assert_eq!(trace.dropped, 0);
        let names: Vec<&str> = trace.records.iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["test.a", "test.b"]);
        let b = &trace.records[1];
        assert_eq!(b.tenant.as_deref(), Some("x"));
        assert_eq!(b.layer, Some(2));
        assert!(trace.records[0].start_ns <= b.start_ns);
    }

    #[test]
    fn only_one_session_at_a_time() {
        let _guard = session_lock();
        let first = TraceSession::start().expect("no session active");
        assert!(TraceSession::start().is_err());
        drop(first); // Drop deactivates too
        assert!(!tracing_active());
        let second = TraceSession::start().expect("slot freed");
        second.finish();
    }

    #[test]
    fn ring_wraparound_keeps_newest_and_counts_dropped() {
        let _guard = session_lock();
        let session = TraceSession::with_capacity(8).expect("no session active");
        for i in 0..20u64 {
            drop(Span::enter("test.wrap").index(i));
        }
        let trace = session.finish();
        assert_eq!(trace.records.len(), 8);
        assert_eq!(trace.dropped, 12);
        let kept: Vec<u64> = trace.records.iter().filter_map(|r| r.index).collect();
        assert_eq!(kept, (12..20).collect::<Vec<u64>>());
    }

    #[test]
    fn timed_span_duration_matches_record_exactly() {
        let _guard = session_lock();
        let session = TraceSession::start().expect("no session active");
        let span = TimedSpan::enter("test.exact").cat("t");
        std::thread::sleep(Duration::from_millis(1));
        let took = span.finish();
        let trace = session.finish();
        let rec = trace.named("test.exact")[0];
        assert_eq!(rec.dur_ns, took.as_nanos() as u64, "bit-honest duration");
        assert!(took >= Duration::from_millis(1));
    }

    #[test]
    fn force_timing_gates_independently() {
        let _guard = session_lock();
        assert!(!timing_enabled());
        force_timing(true);
        assert!(timing_enabled());
        assert!(!tracing_active());
        force_timing(false);
        assert!(!timing_enabled());
    }

    #[test]
    fn inert_cost_is_measurable() {
        let _guard = session_lock();
        let ns = inert_span_cost_ns(10_000);
        assert!((0.0..100_000.0).contains(&ns), "inert span cost {ns} ns");
    }
}
