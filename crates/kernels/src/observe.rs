//! GEMM observability: the [`Observed`] wrapper backend.
//!
//! Every call through [`crate::dispatch::backend`] passes through an
//! `Observed` wrapper that attributes the call to the backend that actually
//! ran it (for [`crate::dispatch::Auto`], the routed choice), to a FLOP
//! shape class, and to the storage dtype of the B operand, then bumps
//! `kernel.gemm.calls{backend,class,dtype,isa,threads}` in the global
//! [`lx_obs`] registry. The `isa` and `threads` labels are process-wide
//! constants (the active microkernel arm and the pool width), captured once
//! at table init so CI matrix arms can tell their metric streams apart.
//! Call counting is one relaxed atomic add; per-call *latency*
//! (`kernel.gemm.ns{…}`) is only measured while
//! [`lx_obs::timing_enabled`] — two `Instant` reads per GEMM are noise for
//! Fig. 12 shapes but not for the thousands of tiny per-block sparse GEMMs,
//! and the disabled path must stay under the 1% `step_bench` overhead gate.

use crate::backend::KernelBackend;
use crate::dispatch::auto_choice;
use crate::epilogue::Epilogue;
use lx_obs::{registry, timing_enabled, Counter, Histogram};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// FLOP-count shape classes for GEMM attribution.
const CLASSES: [&str; 4] = ["tiny", "small", "medium", "large"];

/// Storage dtypes of the B operand (A and all accumulation are always f32).
const DTYPES: [&str; 5] = ["f32", "f16", "i8-block", "nf4-block", "nm-2:4"];

const DT_F32: usize = 0;
const DT_F16: usize = 1;
const DT_Q8: usize = 2;
const DT_Q4: usize = 3;
const DT_NM: usize = 4;

/// Class index by `2·m·k·n` FLOPs: tiny < 2^17 ≤ small < 2^21 ≤ medium
/// < 2^25 ≤ large.
fn class(m: usize, k: usize, n: usize) -> usize {
    let flops = 2 * (m as u64) * (k as u64) * (n as u64);
    match flops {
        f if f < 1 << 17 => 0,
        f if f < 1 << 21 => 1,
        f if f < 1 << 25 => 2,
        _ => 3,
    }
}

struct GemmStats {
    calls: Arc<Counter>,
    time_ns: Arc<Histogram>,
}

/// The `reference`/`packed` × class × dtype instrument table, registered
/// once.
fn stats(backend: &'static str, class: usize, dtype: usize) -> &'static GemmStats {
    static TABLE: OnceLock<Vec<GemmStats>> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        // Process-wide constant labels: the microkernel arm and pool width
        // never change after startup, so they cost no extra table entries.
        let isa = crate::isa::active_isa().name();
        let threads: &'static str =
            Box::leak(lx_parallel::pool().threads().to_string().into_boxed_str());
        let mut v = Vec::with_capacity(2 * CLASSES.len() * DTYPES.len());
        for be in ["reference", "packed"] {
            for cls in CLASSES {
                for dt in DTYPES {
                    let labels = [
                        ("backend", be),
                        ("class", cls),
                        ("dtype", dt),
                        ("isa", isa),
                        ("threads", threads),
                    ];
                    v.push(GemmStats {
                        calls: registry().counter_labeled("kernel.gemm.calls", &labels),
                        time_ns: registry().histogram_labeled("kernel.gemm.ns", &labels),
                    });
                }
            }
        }
        v
    });
    let be = usize::from(backend == "packed");
    &table[(be * CLASSES.len() + class) * DTYPES.len() + dtype]
}

/// A [`KernelBackend`] that delegates to `inner` and records call counts and
/// (when timing is enabled) latency into the global metrics registry.
pub struct Observed {
    inner: &'static dyn KernelBackend,
}

impl Observed {
    pub const fn new(inner: &'static dyn KernelBackend) -> Self {
        Observed { inner }
    }

    /// The backend name a call of this shape is attributed to (resolves
    /// `auto` to its routed choice).
    fn attribute(&self, m: usize, k: usize, n: usize) -> &'static str {
        let name = self.inner.name();
        if name == "auto" {
            auto_choice(m, k, n)
        } else {
            name
        }
    }

    #[inline]
    fn observe(
        &self,
        m: usize,
        k: usize,
        n: usize,
        dtype: usize,
        call: impl FnOnce(&'static dyn KernelBackend),
    ) {
        let s = stats(self.attribute(m, k, n), class(m, k, n), dtype);
        if timing_enabled() {
            let t0 = Instant::now();
            call(self.inner);
            s.time_ns.record_duration(t0.elapsed());
        } else {
            call(self.inner);
        }
        s.calls.inc();
    }
}

#[allow(clippy::too_many_arguments)]
impl KernelBackend for Observed {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn gemm(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        self.observe(m, k, n, DT_F32, |be| {
            be.gemm(m, k, n, a, lda, b, ldb, c, ldc, beta)
        });
    }

    fn gemm_nt(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        self.observe(m, k, n, DT_F32, |be| {
            be.gemm_nt(m, k, n, a, lda, b, ldb, c, ldc, beta)
        });
    }

    fn gemm_tn(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        self.observe(m, k, n, DT_F32, |be| {
            be.gemm_tn(m, k, n, a, lda, b, ldb, c, ldc, beta)
        });
    }

    fn gemm_f16(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[u16],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        self.observe(m, k, n, DT_F16, |be| {
            be.gemm_f16(m, k, n, a, lda, b, ldb, c, ldc, beta)
        });
    }

    fn gemm_nt_f16(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[u16],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        self.observe(m, k, n, DT_F16, |be| {
            be.gemm_nt_f16(m, k, n, a, lda, b, ldb, c, ldc, beta)
        });
    }

    fn gemm_q8(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q8View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        self.observe(m, k, n, DT_Q8, |be| {
            be.gemm_q8(m, k, n, a, lda, b, ldb, c, ldc, beta)
        });
    }

    fn gemm_nt_q8(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q8View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        self.observe(m, k, n, DT_Q8, |be| {
            be.gemm_nt_q8(m, k, n, a, lda, b, ldb, c, ldc, beta)
        });
    }

    fn gemm_q4(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q4View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        self.observe(m, k, n, DT_Q4, |be| {
            be.gemm_q4(m, k, n, a, lda, b, ldb, c, ldc, beta)
        });
    }

    fn gemm_nt_q4(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q4View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        self.observe(m, k, n, DT_Q4, |be| {
            be.gemm_nt_q4(m, k, n, a, lda, b, ldb, c, ldc, beta)
        });
    }

    fn gemm_nm(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::NmView<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        self.observe(m, k, n, DT_NM, |be| {
            be.gemm_nm(m, k, n, a, lda, b, ldb, c, ldc, beta)
        });
    }

    fn gemm_nt_nm(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::NmView<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        self.observe(m, k, n, DT_NM, |be| {
            be.gemm_nt_nm(m, k, n, a, lda, b, ldb, c, ldc, beta)
        });
    }

    // Epilogue-fused entry points must forward to the inner backend's fused
    // implementations — falling back to the trait defaults here would both
    // skip the metrics and silently unfuse every routed call.

    fn gemm_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        self.observe(m, k, n, DT_F32, |be| {
            be.gemm_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, ep)
        });
    }

    fn gemm_nt_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        self.observe(m, k, n, DT_F32, |be| {
            be.gemm_nt_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, ep)
        });
    }

    fn gemm_f16_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[u16],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        self.observe(m, k, n, DT_F16, |be| {
            be.gemm_f16_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, ep)
        });
    }

    fn gemm_nt_f16_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[u16],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        self.observe(m, k, n, DT_F16, |be| {
            be.gemm_nt_f16_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, ep)
        });
    }

    fn gemm_q8_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q8View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        self.observe(m, k, n, DT_Q8, |be| {
            be.gemm_q8_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, ep)
        });
    }

    fn gemm_nt_q8_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q8View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        self.observe(m, k, n, DT_Q8, |be| {
            be.gemm_nt_q8_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, ep)
        });
    }

    fn gemm_q4_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q4View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        self.observe(m, k, n, DT_Q4, |be| {
            be.gemm_q4_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, ep)
        });
    }

    fn gemm_nt_q4_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q4View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        self.observe(m, k, n, DT_Q4, |be| {
            be.gemm_nt_q4_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, ep)
        });
    }

    fn gemm_nm_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::NmView<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        self.observe(m, k, n, DT_NM, |be| {
            be.gemm_nm_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, ep)
        });
    }

    fn gemm_nt_nm_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::NmView<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        self.observe(m, k, n, DT_NM, |be| {
            be.gemm_nt_nm_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, ep)
        });
    }
}

/// Total observed GEMM calls across all backends, shape classes, and dtypes
/// — a cheap "how many kernels did that step issue" probe for overhead
/// accounting.
pub fn gemm_call_total() -> u64 {
    let mut total = 0;
    for be in ["reference", "packed"] {
        for (i, _) in CLASSES.iter().enumerate() {
            for (d, _) in DTYPES.iter().enumerate() {
                total += stats(be, i, d).calls.get();
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::REFERENCE;

    #[test]
    fn shape_classes_split_at_flop_boundaries() {
        assert_eq!(class(4, 4, 4), 0);
        assert_eq!(class(32, 64, 32), 1); // 2·32·64·32 = 2^17 exactly: first small shape
        assert_eq!(class(64, 64, 64), 1);
        assert_eq!(class(128, 256, 128), 2);
        assert_eq!(class(512, 512, 512), 3);
    }

    #[test]
    fn observed_counts_calls_and_delegates() {
        let observed = Observed::new(&REFERENCE);
        assert_eq!(observed.name(), "reference");
        let before = stats("reference", 0, DT_F32).calls.get();
        let a = [1.0f32, 2.0, 3.0, 4.0];
        let b = [5.0f32, 6.0, 7.0, 8.0];
        let mut c = [0.0f32; 4];
        observed.gemm(2, 2, 2, &a, 2, &b, 2, &mut c, 2, 0.0);
        assert_eq!(stats("reference", 0, DT_F32).calls.get(), before + 1);
        // 2x2 result actually computed by the inner backend.
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn quantized_calls_land_in_their_dtype_bucket() {
        let observed = Observed::new(&REFERENCE);
        let vals: Vec<f32> = (0..4).map(|i| i as f32 - 1.5).collect();
        let (codes, scales) = lx_quant::q8::quantize(&vals);
        let view = lx_quant::Q8View::new(&codes, &scales);
        let before_q8 = stats("reference", 0, DT_Q8).calls.get();
        let before_f32 = stats("reference", 0, DT_F32).calls.get();
        let a = [1.0f32, 0.0, 0.0, 1.0];
        let mut c = [0.0f32; 4];
        observed.gemm_q8(2, 2, 2, &a, 2, view, 2, &mut c, 2, 0.0);
        assert_eq!(stats("reference", 0, DT_Q8).calls.get(), before_q8 + 1);
        assert_eq!(
            stats("reference", 0, DT_F32).calls.get(),
            before_f32,
            "the f32 bucket must not double-count a quantized call"
        );
    }
}
