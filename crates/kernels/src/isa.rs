//! Runtime ISA selection for the packed microkernel.
//!
//! The packed backend carries one microkernel per instruction-set arm and
//! picks among them at run time, so a single binary runs the widest kernel
//! the host actually supports:
//!
//! | arm      | register tile | requires                    |
//! |----------|---------------|-----------------------------|
//! | `scalar` | 6×16          | nothing (LLVM autovec)      |
//! | `avx2`   | 6×16          | x86-64 with AVX2+FMA        |
//! | `avx512` | 14×32         | x86-64 with AVX-512F        |
//! | `neon`   | 6×16          | aarch64 with NEON           |
//!
//! Selection precedence (first match wins):
//! 1. `LX_KERNEL_FORCE_SCALAR=1` → `scalar` (CI fallback arm),
//! 2. `LX_KERNEL_ISA=scalar|avx2|avx512|neon` → that arm if the CPU supports
//!    it, else fall through with a warning (CI pins arms this way; an
//!    unsupported pin must degrade loudly, never crash),
//! 3. an ISA pinned in the installed [`KernelPolicy`](crate::KernelPolicy),
//! 4. the widest ISA detected on the host.

use std::sync::OnceLock;

/// Microkernel instruction-set arm. The numeric codes (1..=4) are the wire
/// format used by the policy atomics and the persisted policy JSON; 0 is
/// reserved for "no pin".
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Isa {
    /// Fixed-shape scalar kernel, auto-vectorised by LLVM. Always available.
    Scalar,
    /// AVX2+FMA 6×16 kernel (two ymm per row).
    Avx2,
    /// AVX-512F 14×32 kernel (two zmm per row, 28 accumulators).
    Avx512,
    /// NEON 6×16 kernel (four q-regs per row).
    Neon,
}

impl Isa {
    /// Stable lowercase name, used by `LX_KERNEL_ISA`, metrics labels and the
    /// persisted policy JSON.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2 => "avx2",
            Isa::Avx512 => "avx512",
            Isa::Neon => "neon",
        }
    }

    /// Parse a [`name`](Self::name) back to an arm.
    pub fn parse(s: &str) -> Option<Isa> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(Isa::Scalar),
            "avx2" => Some(Isa::Avx2),
            "avx512" => Some(Isa::Avx512),
            "neon" => Some(Isa::Neon),
            _ => None,
        }
    }

    /// Register-tile shape `(MR, NR)` the arm's microkernel computes. Packing
    /// geometry follows the active arm, so every arm sees panels of its own
    /// width.
    pub fn tile(self) -> (usize, usize) {
        match self {
            Isa::Avx512 => (14, 32),
            _ => (crate::MR, crate::NR),
        }
    }

    /// Whether the current host can execute this arm.
    pub fn supported(self) -> bool {
        match self {
            Isa::Scalar => true,
            Isa::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            Isa::Avx512 => {
                #[cfg(target_arch = "x86_64")]
                {
                    is_x86_feature_detected!("avx512f")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            Isa::Neon => {
                #[cfg(target_arch = "aarch64")]
                {
                    std::arch::is_aarch64_feature_detected!("neon")
                }
                #[cfg(not(target_arch = "aarch64"))]
                {
                    false
                }
            }
        }
    }

    /// Wire code for the policy atomics / JSON (0 = no pin).
    pub(crate) fn code(self) -> usize {
        match self {
            Isa::Scalar => 1,
            Isa::Avx2 => 2,
            Isa::Avx512 => 3,
            Isa::Neon => 4,
        }
    }

    pub(crate) fn from_code(code: usize) -> Option<Isa> {
        match code {
            1 => Some(Isa::Scalar),
            2 => Some(Isa::Avx2),
            3 => Some(Isa::Avx512),
            4 => Some(Isa::Neon),
            _ => None,
        }
    }
}

/// Widest ISA the host supports, probed once.
pub fn detected_isa() -> Isa {
    static DETECTED: OnceLock<Isa> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        if Isa::Avx512.supported() {
            Isa::Avx512
        } else if Isa::Avx2.supported() {
            Isa::Avx2
        } else if Isa::Neon.supported() {
            Isa::Neon
        } else {
            Isa::Scalar
        }
    })
}

/// `LX_KERNEL_ISA` pin, validated once. Unsupported or unknown values warn
/// and fall through to the next precedence level.
fn env_isa() -> Option<Isa> {
    static ENV: OnceLock<Option<Isa>> = OnceLock::new();
    *ENV.get_or_init(|| {
        let raw = std::env::var("LX_KERNEL_ISA").ok()?;
        // CI matrices pass "" for the arms that don't pin: same as unset.
        if raw.trim().is_empty() {
            return None;
        }
        match Isa::parse(&raw) {
            Some(isa) if isa.supported() => Some(isa),
            Some(isa) => {
                eprintln!(
                    "lx-kernels: LX_KERNEL_ISA={} is not supported on this CPU \
                     (detected {}); ignoring the pin",
                    isa.name(),
                    detected_isa().name()
                );
                None
            }
            None => {
                eprintln!(
                    "lx-kernels: unknown LX_KERNEL_ISA value {raw:?} \
                     (expected scalar|avx2|avx512|neon); ignoring the pin"
                );
                None
            }
        }
    })
}

/// The ISA arm the next packed GEMM will run, after applying the full
/// precedence chain (force-scalar → env pin → policy pin → detection).
pub fn active_isa() -> Isa {
    if crate::dispatch::force_scalar() {
        return Isa::Scalar;
    }
    if let Some(isa) = env_isa() {
        return isa;
    }
    if let Some(isa) = crate::dispatch::policy_isa() {
        if isa.supported() {
            return isa;
        }
    }
    detected_isa()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for isa in [Isa::Scalar, Isa::Avx2, Isa::Avx512, Isa::Neon] {
            assert_eq!(Isa::parse(isa.name()), Some(isa));
            assert_eq!(Isa::from_code(isa.code()), Some(isa));
        }
        assert_eq!(Isa::parse("sve"), None);
        assert_eq!(Isa::from_code(0), None);
    }

    #[test]
    fn detected_isa_is_supported_and_tiled_sanely() {
        let isa = detected_isa();
        assert!(isa.supported());
        let (mr, nr) = isa.tile();
        assert!(mr >= 1 && nr >= 8);
        // Every arm's tile fits the fixed-size scalar spill buffers.
        for isa in [Isa::Scalar, Isa::Avx2, Isa::Avx512, Isa::Neon] {
            let (mr, nr) = isa.tile();
            assert!(mr * nr <= 14 * 32);
        }
    }

    #[test]
    fn active_isa_is_always_supported() {
        assert!(active_isa().supported());
    }
}
