//! Binary block masks over the attention score grid.
//!
//! A `BlockMask` element corresponds to one `block×block` tile of attention
//! scores (paper §IV-B): `1` means the tile is computed, `0` means skipped.

/// Dense bitset over an `rows × cols` block grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockMask {
    rows: usize,
    cols: usize,
    bits: Vec<u64>,
}

impl BlockMask {
    /// All-zero mask.
    pub fn new(rows: usize, cols: usize) -> Self {
        BlockMask {
            rows,
            cols,
            bits: vec![0; (rows * cols).div_ceil(64)],
        }
    }

    /// Square all-zero mask (the common attention case).
    pub fn square(n: usize) -> Self {
        Self::new(n, n)
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    fn index(&self, r: usize, c: usize) -> (usize, u64) {
        debug_assert!(
            r < self.rows && c < self.cols,
            "block ({r},{c}) out of grid"
        );
        let bit = r * self.cols + c;
        (bit / 64, 1u64 << (bit % 64))
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        let (w, m) = self.index(r, c);
        self.bits[w] & m != 0
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: bool) {
        let (w, m) = self.index(r, c);
        if value {
            self.bits[w] |= m;
        } else {
            self.bits[w] &= !m;
        }
    }

    /// Number of active blocks.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Active blocks / total blocks.
    pub fn density(&self) -> f32 {
        if self.rows * self.cols == 0 {
            return 0.0;
        }
        self.count() as f32 / (self.rows * self.cols) as f32
    }

    /// Sparsity ratio = 1 − density (the paper's Fig. 9 metric).
    pub fn sparsity(&self) -> f32 {
        1.0 - self.density()
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &BlockMask) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "mask grids differ"
        );
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &BlockMask) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "mask grids differ"
        );
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a &= b;
        }
    }

    /// Number of blocks active in `self` that are also active in `other`.
    pub fn covered_by(&self, other: &BlockMask) -> usize {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "mask grids differ"
        );
        self.bits
            .iter()
            .zip(&other.bits)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Iterate active `(row, col)` block coordinates in row-major order.
    pub fn iter_active(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.rows)
            .flat_map(move |r| (0..self.cols).filter_map(move |c| self.get(r, c).then_some((r, c))))
    }

    /// Restrict to the causal lower triangle (block granularity): keep
    /// `(r, c)` only when `c <= r`.
    pub fn intersect_causal(&mut self) {
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                self.set(r, c, false);
            }
        }
    }

    /// Build a mask by block-max-thresholding a dense `s×s` score matrix:
    /// a block is active when its maximum score is ≥ `threshold`.
    pub fn from_dense_scores(scores: &[f32], s: usize, block: usize, threshold: f32) -> Self {
        assert_eq!(scores.len(), s * s, "scores must be s×s");
        let n = s.div_ceil(block);
        let mut mask = BlockMask::square(n);
        for br in 0..n {
            for bc in 0..n {
                let mut max = f32::NEG_INFINITY;
                for i in br * block..((br + 1) * block).min(s) {
                    for j in bc * block..((bc + 1) * block).min(s) {
                        max = max.max(scores[i * s + j]);
                    }
                }
                if max >= threshold {
                    mask.set(br, bc, true);
                }
            }
        }
        mask
    }

    /// Render to an ASCII grid (`#` active, `.` inactive) for experiment
    /// visualisations (paper Fig. 11b).
    pub fn to_ascii(&self) -> String {
        let mut out = String::with_capacity(self.rows * (self.cols + 1));
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.push(if self.get(r, c) { '#' } else { '.' });
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_count() {
        let mut m = BlockMask::square(8);
        assert_eq!(m.count(), 0);
        m.set(0, 0, true);
        m.set(7, 7, true);
        m.set(3, 5, true);
        assert!(m.get(3, 5));
        assert_eq!(m.count(), 3);
        m.set(3, 5, false);
        assert_eq!(m.count(), 2);
        assert!(!m.get(3, 5));
    }

    #[test]
    fn density_and_sparsity_sum_to_one() {
        let mut m = BlockMask::square(4);
        for i in 0..4 {
            m.set(i, i, true);
        }
        assert!((m.density() - 0.25).abs() < 1e-6);
        assert!((m.sparsity() - 0.75).abs() < 1e-6);
    }

    #[test]
    fn union_and_intersection() {
        let mut a = BlockMask::square(4);
        let mut b = BlockMask::square(4);
        a.set(0, 0, true);
        a.set(1, 1, true);
        b.set(1, 1, true);
        b.set(2, 2, true);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.count(), 3);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.count(), 1);
        assert!(i.get(1, 1));
    }

    #[test]
    fn covered_by_counts_overlap() {
        let mut a = BlockMask::square(3);
        let mut b = BlockMask::square(3);
        a.set(0, 0, true);
        a.set(1, 0, true);
        b.set(0, 0, true);
        assert_eq!(a.covered_by(&b), 1);
        assert_eq!(b.covered_by(&a), 1);
    }

    #[test]
    fn iter_active_row_major() {
        let mut m = BlockMask::new(2, 3);
        m.set(1, 0, true);
        m.set(0, 2, true);
        let v: Vec<_> = m.iter_active().collect();
        assert_eq!(v, vec![(0, 2), (1, 0)]);
    }

    #[test]
    fn causal_restriction() {
        let mut m = BlockMask::square(3);
        for r in 0..3 {
            for c in 0..3 {
                m.set(r, c, true);
            }
        }
        m.intersect_causal();
        assert_eq!(m.count(), 6); // lower triangle of 3×3
        assert!(!m.get(0, 1));
        assert!(m.get(2, 0));
    }

    #[test]
    fn from_dense_scores_thresholds_blocks() {
        let s = 4;
        let block = 2;
        let mut scores = vec![0.0f32; s * s];
        scores[0] = 5.0; // block (0,0)
        scores[2 * 4 + 3] = 5.0; // block (1,1)
        let m = BlockMask::from_dense_scores(&scores, s, block, 1.0);
        assert!(m.get(0, 0));
        assert!(m.get(1, 1));
        assert!(!m.get(0, 1));
        assert!(!m.get(1, 0));
    }

    #[test]
    fn ascii_rendering() {
        let mut m = BlockMask::square(2);
        m.set(0, 0, true);
        assert_eq!(m.to_ascii(), "#.\n..\n");
    }

    #[test]
    fn ragged_grid_from_scores() {
        // s=5 with block=2 -> 3x3 grid, last block ragged.
        let s = 5;
        let mut scores = vec![-1.0f32; s * s];
        scores[4 * 5 + 4] = 2.0; // block (2,2)
        let m = BlockMask::from_dense_scores(&scores, s, 2, 0.0);
        assert!(m.get(2, 2));
        assert_eq!(m.count(), 1);
    }
}
