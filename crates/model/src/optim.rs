//! Optimizers over the trainable-parameter set.
//!
//! State is keyed by parameter name and allocated lazily, so PEFT methods
//! with tiny trainable sets keep tiny optimizer states — the effect the
//! paper's Table I measures in the "Optim. Step" column.

use crate::param::Param;
use lx_tensor::Tensor;
use std::collections::HashMap;

/// Per-parameter update protocol: call [`Optimizer::begin_step`] once per
/// batch, then [`Optimizer::update`] for every parameter.
pub trait Optimizer {
    fn begin_step(&mut self);
    fn update(&mut self, param: &mut Param);
    /// Bytes of optimizer state currently held (for memory experiments).
    fn state_bytes(&self) -> usize;
    fn name(&self) -> &'static str;
}

/// Plain SGD with optional momentum.
pub struct Sgd {
    pub lr: f32,
    pub momentum: f32,
    velocity: HashMap<String, Tensor>,
}

impl Sgd {
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: HashMap::new(),
        }
    }

    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: HashMap::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn begin_step(&mut self) {}

    fn update(&mut self, param: &mut Param) {
        if !param.trainable {
            return;
        }
        let Some(grad) = &param.grad else { return };
        if self.momentum == 0.0 {
            param.value.axpy(-self.lr, grad);
            return;
        }
        // Steady-state lookups borrow the name; the clone happens only once,
        // when a parameter's state is first created.
        if !self.velocity.contains_key(&param.name) {
            self.velocity
                .insert(param.name.clone(), Tensor::zeros(grad.shape()));
        }
        let v = self.velocity.get_mut(&param.name).expect("just inserted");
        v.scale(self.momentum);
        v.add_assign(grad);
        param.value.axpy(-self.lr, v);
    }

    fn state_bytes(&self) -> usize {
        self.velocity.values().map(|t| t.len() * 4).sum()
    }

    fn name(&self) -> &'static str {
        "sgd"
    }
}

/// Adam (Kingma & Ba) with bias correction.
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    /// Decoupled weight decay; 0 for plain Adam.
    pub weight_decay: f32,
    t: u64,
    state: HashMap<String, (Tensor, Tensor)>,
}

impl Adam {
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            state: HashMap::new(),
        }
    }

    /// Optimizer steps taken so far (bias-correction time step). A gradient-
    /// accumulation step advances this once, however many micro-batches it
    /// spanned.
    pub fn step_count(&self) -> u64 {
        self.t
    }
}

/// AdamW = Adam with decoupled weight decay (the fine-tuning default).
pub struct AdamW(Adam);

impl AdamW {
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        let mut adam = Adam::new(lr);
        adam.weight_decay = weight_decay;
        AdamW(adam)
    }
}

impl Optimizer for Adam {
    fn begin_step(&mut self) {
        self.t += 1;
    }

    fn update(&mut self, param: &mut Param) {
        if !param.trainable {
            return;
        }
        let Some(grad) = &param.grad else { return };
        // Borrow the name on the hot path; clone only on first insertion.
        if !self.state.contains_key(&param.name) {
            self.state.insert(
                param.name.clone(),
                (Tensor::zeros(grad.shape()), Tensor::zeros(grad.shape())),
            );
        }
        let (m, v) = self.state.get_mut(&param.name).expect("just inserted");
        let b1 = self.beta1;
        let b2 = self.beta2;
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        let lr = self.lr;
        let eps = self.eps;
        let wd = self.weight_decay;
        let pv = param.value.as_mut_slice();
        let gs = grad.as_slice();
        let ms = m.as_mut_slice();
        let vs = v.as_mut_slice();
        for i in 0..gs.len() {
            ms[i] = b1 * ms[i] + (1.0 - b1) * gs[i];
            vs[i] = b2 * vs[i] + (1.0 - b2) * gs[i] * gs[i];
            let mhat = ms[i] / bc1;
            let vhat = vs[i] / bc2;
            if wd != 0.0 {
                pv[i] -= lr * wd * pv[i];
            }
            pv[i] -= lr * mhat / (vhat.sqrt() + eps);
        }
    }

    fn state_bytes(&self) -> usize {
        self.state
            .values()
            .map(|(m, v)| (m.len() + v.len()) * 4)
            .sum()
    }

    fn name(&self) -> &'static str {
        "adam"
    }
}

impl Optimizer for AdamW {
    fn begin_step(&mut self) {
        self.0.begin_step();
    }

    fn update(&mut self, param: &mut Param) {
        self.0.update(param);
    }

    fn state_bytes(&self) -> usize {
        self.0.state_bytes()
    }

    fn name(&self) -> &'static str {
        "adamw"
    }
}

/// Learning-rate schedules used by fine-tuning recipes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    Constant,
    /// Linear warm-up over `warmup` steps, then linear decay to zero at
    /// `total` steps.
    LinearWarmupDecay {
        warmup: u64,
        total: u64,
    },
    /// Linear warm-up then cosine decay to `min_frac · base` at `total`.
    Cosine {
        warmup: u64,
        total: u64,
        min_frac: f32,
    },
}

impl LrSchedule {
    /// Multiplier applied to the base learning rate at `step` (1-based).
    pub fn factor(&self, step: u64) -> f32 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::LinearWarmupDecay { warmup, total } => {
                if warmup > 0 && step <= warmup {
                    step as f32 / warmup as f32
                } else {
                    let total = total.max(warmup + 1);
                    let remaining = total.saturating_sub(step) as f32;
                    (remaining / (total - warmup) as f32).max(0.0)
                }
            }
            LrSchedule::Cosine {
                warmup,
                total,
                min_frac,
            } => {
                if warmup > 0 && step <= warmup {
                    step as f32 / warmup as f32
                } else {
                    let total = total.max(warmup + 1);
                    let progress =
                        ((step - warmup) as f32 / (total - warmup) as f32).clamp(0.0, 1.0);
                    let cos = 0.5 * (1.0 + (std::f32::consts::PI * progress).cos());
                    min_frac + (1.0 - min_frac) * cos
                }
            }
        }
    }
}

/// Wrap any optimizer with an LR schedule (scales the inner LR per step).
pub struct Scheduled<O> {
    inner: O,
    schedule: LrSchedule,
    base_lr: f32,
    step: u64,
    set_lr: fn(&mut O, f32),
}

impl Scheduled<Adam> {
    pub fn adam(inner: Adam, schedule: LrSchedule) -> Self {
        let base_lr = inner.lr;
        Scheduled {
            inner,
            schedule,
            base_lr,
            step: 0,
            set_lr: |o, lr| o.lr = lr,
        }
    }
}

impl Scheduled<Sgd> {
    pub fn sgd(inner: Sgd, schedule: LrSchedule) -> Self {
        let base_lr = inner.lr;
        Scheduled {
            inner,
            schedule,
            base_lr,
            step: 0,
            set_lr: |o, lr| o.lr = lr,
        }
    }
}

impl<O: Optimizer> Optimizer for Scheduled<O> {
    fn begin_step(&mut self) {
        self.step += 1;
        (self.set_lr)(
            &mut self.inner,
            self.base_lr * self.schedule.factor(self.step),
        );
        self.inner.begin_step();
    }

    fn update(&mut self, param: &mut Param) {
        self.inner.update(param);
    }

    fn state_bytes(&self) -> usize {
        self.inner.state_bytes()
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

/// Dynamic loss scaling for mixed-precision training (the standard AMP
/// recipe the paper's FP16 runs rely on).
///
/// The loss gradient is multiplied by [`scale`](Self::scale) before the
/// backward pass so small adapter gradients stay clear of underflow; before
/// the optimizer runs, [`unscale`](Self::unscale) divides them back and
/// checks for overflow. A non-finite gradient means the scale overshot:
/// the step is skipped, the scale backs off, and after
/// `growth_interval` clean steps it grows again.
#[derive(Debug, Clone)]
pub struct LossScaler {
    scale: f32,
    growth_factor: f32,
    backoff_factor: f32,
    growth_interval: u64,
    clean_steps: u64,
    overflows: u64,
}

impl Default for LossScaler {
    /// The common AMP defaults: start at 2^16, double every 2000 clean
    /// steps, halve on overflow.
    fn default() -> Self {
        LossScaler::new(65_536.0)
    }
}

impl LossScaler {
    pub fn new(initial_scale: f32) -> Self {
        assert!(initial_scale > 0.0 && initial_scale.is_finite());
        LossScaler {
            scale: initial_scale,
            growth_factor: 2.0,
            backoff_factor: 0.5,
            growth_interval: 2000,
            clean_steps: 0,
            overflows: 0,
        }
    }

    /// Current multiplier to apply to the loss gradient before backward.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Steps skipped so far because of overflowed gradients.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// Divide every trainable gradient by the current scale, in place.
    /// Returns `false` — leaving the gradients untouched — if any scaled
    /// gradient is non-finite; the caller must then skip the optimizer step
    /// and call [`update`](Self::update) with `found_overflow = true`.
    #[allow(clippy::type_complexity)]
    pub fn unscale(&self, params: &mut dyn FnMut(&mut dyn FnMut(&mut Param))) -> bool {
        let mut finite = true;
        params(&mut |p: &mut Param| {
            if p.trainable {
                if let Some(g) = &p.grad {
                    if !g.as_slice().iter().all(|v| v.is_finite()) {
                        finite = false;
                    }
                }
            }
        });
        if !finite {
            return false;
        }
        let inv = 1.0 / self.scale;
        params(&mut |p: &mut Param| {
            if p.trainable {
                if let Some(g) = &mut p.grad {
                    g.scale(inv);
                }
            }
        });
        true
    }

    /// Advance the schedule after a step: back off on overflow, grow after
    /// a clean streak.
    pub fn update(&mut self, found_overflow: bool) {
        if found_overflow {
            self.overflows += 1;
            self.clean_steps = 0;
            self.scale = (self.scale * self.backoff_factor).max(1.0);
        } else {
            self.clean_steps += 1;
            if self.clean_steps >= self.growth_interval {
                self.clean_steps = 0;
                self.scale = (self.scale * self.growth_factor).min(1e9);
            }
        }
    }
}

/// Global-norm gradient clipping over the trainable parameters.
/// Returns the pre-clip norm. Call between `backward` and the optimizer.
#[allow(clippy::type_complexity)]
pub fn clip_grad_norm(params: &mut dyn FnMut(&mut dyn FnMut(&mut Param)), max_norm: f32) -> f32 {
    let mut sq = 0.0f64;
    params(&mut |p: &mut Param| {
        if p.trainable {
            if let Some(g) = &p.grad {
                sq += g
                    .as_slice()
                    .iter()
                    .map(|v| (*v as f64) * (*v as f64))
                    .sum::<f64>();
            }
        }
    });
    let norm = sq.sqrt() as f32;
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        params(&mut |p: &mut Param| {
            if p.trainable {
                if let Some(g) = &mut p.grad {
                    g.scale(scale);
                }
            }
        });
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_param() -> Param {
        // Minimise f(w) = 0.5·w², grad = w.
        Param::new("w", Tensor::full(&[1], 4.0), true)
    }

    fn set_grad_to_value(p: &mut Param) {
        let w = p.value.as_slice()[0];
        p.zero_grad();
        p.grad_mut().as_mut_slice()[0] = w;
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut p = quadratic_param();
        let mut opt = Sgd::new(0.1);
        for _ in 0..100 {
            set_grad_to_value(&mut p);
            opt.begin_step();
            opt.update(&mut p);
        }
        assert!(p.value.as_slice()[0].abs() < 1e-3);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut p = quadratic_param();
        let mut opt = Adam::new(0.2);
        for _ in 0..200 {
            set_grad_to_value(&mut p);
            opt.begin_step();
            opt.update(&mut p);
        }
        assert!(
            p.value.as_slice()[0].abs() < 1e-2,
            "{}",
            p.value.as_slice()[0]
        );
    }

    #[test]
    fn momentum_accelerates_sgd() {
        let run = |momentum: f32| {
            let mut p = quadratic_param();
            let mut opt = Sgd::with_momentum(0.02, momentum);
            for _ in 0..30 {
                set_grad_to_value(&mut p);
                opt.begin_step();
                opt.update(&mut p);
            }
            p.value.as_slice()[0].abs()
        };
        assert!(run(0.9) < run(0.0), "momentum should converge faster here");
    }

    #[test]
    fn frozen_params_are_untouched() {
        let mut p = Param::frozen("w", Tensor::full(&[1], 2.0));
        p.grad = Some(Tensor::full(&[1], 1.0));
        let mut opt = Adam::new(0.1);
        opt.begin_step();
        opt.update(&mut p);
        assert_eq!(p.value.as_slice()[0], 2.0);
        assert_eq!(opt.state_bytes(), 0, "no state for frozen params");
    }

    #[test]
    fn adamw_decays_weights() {
        let mut p = Param::new("w", Tensor::full(&[1], 1.0), true);
        p.grad = Some(Tensor::zeros(&[1]));
        let mut opt = AdamW::new(0.1, 0.5);
        opt.begin_step();
        opt.update(&mut p);
        assert!(p.value.as_slice()[0] < 1.0, "decay must shrink the weight");
    }

    #[test]
    fn state_bytes_track_trainable_size() {
        let mut big = Param::new("big", Tensor::zeros(&[100]), true);
        big.grad = Some(Tensor::zeros(&[100]));
        let mut opt = Adam::new(0.1);
        opt.begin_step();
        opt.update(&mut big);
        assert_eq!(opt.state_bytes(), 2 * 100 * 4);
    }

    #[test]
    fn linear_schedule_warms_up_and_decays() {
        let s = LrSchedule::LinearWarmupDecay {
            warmup: 10,
            total: 110,
        };
        assert!((s.factor(1) - 0.1).abs() < 1e-6);
        assert!((s.factor(10) - 1.0).abs() < 1e-6);
        assert!(s.factor(60) < 1.0 && s.factor(60) > 0.0);
        assert!(s.factor(110) <= 1e-6);
    }

    #[test]
    fn cosine_schedule_bottoms_at_min_frac() {
        let s = LrSchedule::Cosine {
            warmup: 5,
            total: 105,
            min_frac: 0.1,
        };
        assert!((s.factor(5) - 1.0).abs() < 1e-6);
        assert!((s.factor(105) - 0.1).abs() < 1e-3);
        // Monotone decreasing after warmup.
        assert!(s.factor(30) > s.factor(60));
        assert!(s.factor(60) > s.factor(100));
    }

    #[test]
    fn scheduled_optimizer_scales_updates() {
        // Step 1 of a 10-step warmup uses 10% of the base LR.
        let mut p = Param::new("w", Tensor::full(&[1], 1.0), true);
        p.grad = Some(Tensor::full(&[1], 1.0));
        let mut opt = Scheduled::sgd(
            Sgd::new(1.0),
            LrSchedule::LinearWarmupDecay {
                warmup: 10,
                total: 100,
            },
        );
        opt.begin_step();
        opt.update(&mut p);
        assert!((p.value.as_slice()[0] - 0.9).abs() < 1e-5);
    }

    #[test]
    fn loss_scaler_unscales_then_backs_off_on_overflow() {
        let mut p = Param::new("w", Tensor::zeros(&[2]), true);
        p.grad = Some(Tensor::full(&[2], 10.0));
        let mut scaler = LossScaler::new(10.0);
        assert!(scaler.unscale(&mut |f| f(&mut p)));
        assert_eq!(p.grad.as_ref().unwrap().as_slice(), &[1.0; 2]);
        scaler.update(false);
        assert_eq!(scaler.scale(), 10.0, "no growth before the interval");
        // Overflow: grads untouched, step counted, scale halves.
        p.grad = Some(Tensor::full(&[2], f32::INFINITY));
        assert!(!scaler.unscale(&mut |f| f(&mut p)));
        scaler.update(true);
        assert_eq!(scaler.scale(), 5.0);
        assert_eq!(scaler.overflows(), 1);
        // Frozen params are ignored entirely.
        let mut frozen = Param::frozen("f", Tensor::zeros(&[1]));
        frozen.grad = Some(Tensor::full(&[1], f32::NAN));
        assert!(scaler.unscale(&mut |f| f(&mut frozen)));
    }

    #[test]
    fn loss_scaler_grows_after_clean_interval() {
        let mut scaler = LossScaler::new(8.0);
        for _ in 0..2000 {
            scaler.update(false);
        }
        assert_eq!(scaler.scale(), 16.0);
    }

    #[test]
    fn clip_grad_norm_scales_when_needed() {
        let mut a = Param::new("a", Tensor::zeros(&[1]), true);
        a.grad = Some(Tensor::full(&[1], 3.0));
        let mut b = Param::new("b", Tensor::zeros(&[1]), true);
        b.grad = Some(Tensor::full(&[1], 4.0));
        let mut visit = |f: &mut dyn FnMut(&mut Param)| {
            f(&mut a);
            f(&mut b);
        };
        let norm = clip_grad_norm(&mut visit, 1.0);
        assert!((norm - 5.0).abs() < 1e-5, "pre-clip norm {norm}");
        let ga = a.grad.as_ref().unwrap().as_slice()[0];
        let gb = b.grad.as_ref().unwrap().as_slice()[0];
        assert!((ga - 0.6).abs() < 1e-5 && (gb - 0.8).abs() < 1e-5);
        // Below the limit: untouched.
        let norm2 = clip_grad_norm(&mut |f| f(&mut a), 10.0);
        assert!((norm2 - 0.6).abs() < 1e-5);
        assert!((a.grad.as_ref().unwrap().as_slice()[0] - 0.6).abs() < 1e-6);
    }
}
