//! MLP block with dense and neuron-block-sparse paths.
//!
//! Weight storage follows the paper's memory-coalescing layout (§VI-B):
//! FC1 is kept *neuron-major* (`w1[d_ff, d]`, i.e. column-major relative to
//! the conventional `d × d_ff` matrix) and FC2 row-major (`w2[d_ff, d]`), so
//! an active neuron block is a contiguous slab in **both** matrices and no
//! format conversion ever happens at runtime.
//!
//! LoRA can attach to both linears. In the sparse path, only the active-block
//! rows of the LoRA `B` matrices participate — demonstrating the paper's
//! §II-D result that forward-inactive parameters receive no gradient.

use crate::config::Activation;
use crate::param::Param;
use lx_obs::{registry, Counter};
use lx_sparse::neuron::{
    fc1_backward_input, fc1_forward, fc1_grad_weights, fc2_backward_input, fc2_forward,
    fc2_grad_weights,
};
use lx_sparse::NeuronBlockSet;
use lx_tensor::gemm::{matmul, matmul_nt, matmul_tn, Epilogue};
use lx_tensor::ops::{bias_grad_rows, gelu_backward, gelu_inplace, relu_backward, relu_inplace};
use lx_tensor::Tensor;
use std::sync::{Arc, OnceLock};

/// Process-wide mirrors of the per-layer slab-cache counters (see
/// [`MlpLayer::slab_cache_stats`] for the per-layer source of truth).
struct SlabCounters {
    decoded: Arc<Counter>,
    carried: Arc<Counter>,
}

fn slab_counters() -> &'static SlabCounters {
    static COUNTERS: OnceLock<SlabCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| SlabCounters {
        decoded: registry().counter("mlp.slab.decoded"),
        carried: registry().counter("mlp.slab.carried"),
    })
}

/// LoRA pair for an MLP linear. Shape semantics depend on the attach site —
/// see [`MlpBlock::attach_lora_fc1`] / [`MlpBlock::attach_lora_fc2`].
#[derive(Debug)]
pub struct MlpLora {
    pub a: Param,
    pub b: Param,
    pub scale: f32,
    cache_ax: Option<Tensor>,
}

#[derive(Debug)]
pub struct MlpBlock {
    /// FC1, neuron-major `[d_ff, d]`: row `n` = input weights of neuron `n`.
    pub w1: Param,
    pub b1: Param,
    /// FC2, row-major `[d_ff, d]`: row `n` = output weights of neuron `n`.
    pub w2: Param,
    pub b2: Param,
    /// LoRA on FC1: `a ∈ [r, d]`, `b ∈ [d_ff, r]` (row per neuron).
    pub lora1: Option<MlpLora>,
    /// LoRA on FC2: `a ∈ [d_ff, r]` (row per neuron, pre-transposed), `b ∈ [d, r]`.
    pub lora2: Option<MlpLora>,
    pub activation: Activation,
    d_model: usize,
    d_ff: usize,
    cache: Option<MlpCache>,
    /// Cross-step cache of decoded active slabs (reduced-stored sparse
    /// mode, f16 or block-quantized). Keyed by the plan it was gathered for;
    /// refreshed incrementally — see [`MlpBlock::refresh_slab_cache`].
    slab_cache: Option<SparseSlabs>,
    /// The retired gather's buffers, recycled as the next drifted plan's
    /// destination so steady-state drift stays allocation-free (the step
    /// bench gates on zero heap tensors per steady step). Contents are
    /// garbage between drifts — every span is overwritten before use.
    slab_spare: Option<(Tensor, Tensor, Tensor)>,
    slabs_decoded: u64,
    slabs_reused: u64,
}

#[derive(Debug)]
struct MlpCache {
    x: Tensor,
    /// Pre-activation; compact `rows × active_neurons` in sparse mode.
    z: Tensor,
    /// Post-activation, same width as `z`.
    a: Tensor,
    set: Option<Arc<NeuronBlockSet>>,
    /// The step ran against reduced-stored weights via the slab cache.
    used_slabs: bool,
    ax1: Option<Tensor>,
    ax2: Option<Tensor>,
}

/// f32 views of the *active* neuron slabs of reduced-stored FC weights (f16
/// or block-quantized), in the compact coordinate system of
/// [`NeuronBlockSet::compacted`]. This is the paper's "only active blocks
/// resident at full width" discipline: inactive slabs never leave their
/// reduced storage (2 bytes/element for f16, ~1 for int8, ~0.5 for NF4).
///
/// Under shadowy sparsity consecutive plans overlap heavily, so the gather is
/// maintained *incrementally* across steps: blocks active in both the old and
/// new plan are carried over with an f32 copy, only newly-activated blocks
/// are decoded from the stored bits, and deactivated blocks are evicted by
/// not being carried. An unchanged plan reuses the whole gather untouched.
/// The quantized decodes are elementwise over flat indices, so a slab window
/// is bit-identical to the same rows of a full-buffer decode even when row
/// boundaries land mid-quantization-block.
#[derive(Debug)]
struct SparseSlabs {
    /// The (global) plan this gather was built for.
    set: Arc<NeuronBlockSet>,
    /// Active FC1 column slabs, `[active_neurons, d_model]`.
    w1: Tensor,
    /// Active FC2 row slabs, `[active_neurons, d_model]`.
    w2: Tensor,
    /// FC1 bias entries gathered in active order.
    b1: Tensor,
    /// Renumbered block set addressing the gathered buffers.
    cset: Arc<NeuronBlockSet>,
}

impl MlpBlock {
    pub fn new(name: &str, d_model: usize, d_ff: usize, activation: Activation, seed: u64) -> Self {
        let std1 = (2.0 / (d_model + d_ff) as f32).sqrt();
        MlpBlock {
            w1: Param::frozen(
                format!("{name}.w1"),
                Tensor::randn(&[d_ff, d_model], std1, seed),
            ),
            b1: Param::frozen(format!("{name}.b1"), Tensor::zeros(&[d_ff])),
            w2: Param::frozen(
                format!("{name}.w2"),
                Tensor::randn(&[d_ff, d_model], std1, seed + 1),
            ),
            b2: Param::frozen(format!("{name}.b2"), Tensor::zeros(&[d_model])),
            lora1: None,
            lora2: None,
            activation,
            d_model,
            d_ff,
            cache: None,
            slab_cache: None,
            slab_spare: None,
            slabs_decoded: 0,
            slabs_reused: 0,
        }
    }

    pub fn d_ff(&self) -> usize {
        self.d_ff
    }

    pub fn attach_lora_fc1(&mut self, rank: usize, alpha: f32, seed: u64) {
        self.lora1 = Some(MlpLora {
            a: Param::new(
                format!("{}.lora_a", self.w1.name),
                Tensor::randn(&[rank, self.d_model], 1.0 / rank as f32, seed),
                true,
            ),
            b: Param::new(
                format!("{}.lora_b", self.w1.name),
                Tensor::zeros(&[self.d_ff, rank]),
                true,
            ),
            scale: alpha / rank as f32,
            cache_ax: None,
        });
    }

    pub fn attach_lora_fc2(&mut self, rank: usize, alpha: f32, seed: u64) {
        self.lora2 = Some(MlpLora {
            a: Param::new(
                format!("{}.lora_a", self.w2.name),
                Tensor::randn(&[self.d_ff, rank], 1.0 / rank as f32, seed),
                true,
            ),
            b: Param::new(
                format!("{}.lora_b", self.w2.name),
                Tensor::zeros(&[self.d_model, rank]),
                true,
            ),
            scale: alpha / rank as f32,
            cache_ax: None,
        });
    }

    fn activate(&self, z: &Tensor) -> Tensor {
        let mut a = z.clone();
        match self.activation {
            Activation::Relu => relu_inplace(a.as_mut_slice()),
            Activation::Gelu => gelu_inplace(a.as_mut_slice()),
        }
        a
    }

    fn activate_backward(&self, da: &Tensor, z: &Tensor) -> Tensor {
        let mut dz = Tensor::zeros(z.shape());
        match self.activation {
            Activation::Relu => relu_backward(da.as_slice(), z.as_slice(), dz.as_mut_slice()),
            Activation::Gelu => gelu_backward(da.as_slice(), z.as_slice(), dz.as_mut_slice()),
        }
        dz
    }

    pub fn forward(&mut self, x: &Tensor, set: Option<&Arc<NeuronBlockSet>>) -> Tensor {
        match set {
            None => self.forward_dense(x),
            Some(set) => self.forward_sparse(x, set.clone()),
        }
    }

    /// Bring the cross-step slab cache up to date with `set` (see
    /// [`SparseSlabs`]). An unchanged plan reuses the weight gather as-is
    /// (re-gathering only the bias when it is trainable and may have moved);
    /// a drifted plan copies carried-over slabs from the previous gather and
    /// decodes only the newly-activated blocks ([`NeuronBlockSet::diff`])
    /// from the stored f16/int8/NF4 bits.
    fn refresh_slab_cache(&mut self, set: &Arc<NeuronBlockSet>) {
        let bsz = set.block_size;
        if let Some(c) = &mut self.slab_cache {
            if *c.set == **set {
                // The f16 weight bits are frozen, but a trainable bias
                // (BitFit) moves every optimizer step: refresh the compact
                // gather in place so the cache never serves stale values.
                if self.b1.trainable {
                    for (ci, &blk) in set.active.iter().enumerate() {
                        let n0 = blk as usize * bsz;
                        c.b1.as_mut_slice()[ci * bsz..(ci + 1) * bsz]
                            .copy_from_slice(&self.b1.value.as_slice()[n0..n0 + bsz]);
                    }
                }
                self.slabs_reused += set.n_active() as u64;
                slab_counters().carried.add(set.n_active() as u64);
                return;
            }
        }
        let d = self.d_model;
        assert!(
            self.w1.is_reduced() && self.w2.is_reduced(),
            "slab cache requires reduced-stored FC weights"
        );
        let prev = self.slab_cache.take();
        // Blocks newly activated relative to the previous gather must be
        // decoded; everything else is carried over with an f32 copy.
        let added = prev.as_ref().map(|p| set.diff(&p.set).added);
        // Recycle the buffers retired two drifts ago when the active width
        // is unchanged (the common steady-state case — the plan picks a
        // fixed number of blocks, only *which* blocks drifts). Every active
        // span is decoded or carried below, so stale contents never leak.
        let (mut w1, mut w2, mut b1) = match self.slab_spare.take() {
            Some((w1, w2, b1)) if w1.shape() == [set.active_neurons(), d] => (w1, w2, b1),
            _ => (
                Tensor::zeros(&[set.active_neurons(), d]),
                Tensor::zeros(&[set.active_neurons(), d]),
                Tensor::zeros(&[set.active_neurons()]),
            ),
        };
        // Monotone cursors: `set.active`, `added` and `prev.set.active` are
        // all sorted, so one forward walk finds every carry position.
        let (mut ai, mut pp) = (0usize, 0usize);
        for (ci, &blk) in set.active.iter().enumerate() {
            let (n0, span) = (blk as usize * bsz, ci * bsz * d..(ci + 1) * bsz * d);
            let is_added = match &added {
                Some(a) => a.get(ai) == Some(&blk),
                None => true,
            };
            if is_added {
                ai += 1;
                self.w1
                    .decode_rows(n0, bsz, &mut w1.as_mut_slice()[span.clone()]);
                self.w2.decode_rows(n0, bsz, &mut w2.as_mut_slice()[span]);
                self.slabs_decoded += 1;
                slab_counters().decoded.inc();
            } else {
                let p = prev
                    .as_ref()
                    .expect("carried block implies a previous gather");
                while p.set.active[pp] < blk {
                    pp += 1;
                }
                let pspan = pp * bsz * d..(pp + 1) * bsz * d;
                w1.as_mut_slice()[span.clone()].copy_from_slice(&p.w1.as_slice()[pspan.clone()]);
                w2.as_mut_slice()[span].copy_from_slice(&p.w2.as_slice()[pspan]);
                self.slabs_reused += 1;
                slab_counters().carried.inc();
            }
            b1.as_mut_slice()[ci * bsz..(ci + 1) * bsz]
                .copy_from_slice(&self.b1.value.as_slice()[n0..n0 + bsz]);
        }
        self.slab_spare = prev.map(|p| (p.w1, p.w2, p.b1));
        self.slab_cache = Some(SparseSlabs {
            set: set.clone(),
            w1,
            w2,
            b1,
            cset: Arc::new(set.compacted()),
        });
    }

    /// `(decoded, carried-over)` slab-block counters since construction —
    /// how much reduced→f32 decode work the cross-step cache avoided.
    pub fn slab_cache_stats(&self) -> (u64, u64) {
        (self.slabs_decoded, self.slabs_reused)
    }

    /// Drop the cross-step slab cache (weight storage changed).
    pub(crate) fn invalidate_slab_cache(&mut self) {
        self.slab_cache = None;
    }

    fn forward_dense(&mut self, x: &Tensor) -> Tensor {
        let rows = x.rows();
        // z = x·W1ᵀ(stored) + b1  (+ LoRA1). The bias rides the GEMM
        // write-back as a fused epilogue; the activation stays unfused
        // because backward needs the pre-activation z.
        let mut z = self
            .w1
            .matmul_nt_ep(x, Epilogue::Bias(self.b1.value.as_slice()));
        let mut ax1 = None;
        if let Some(l) = &mut self.lora1 {
            let ax = matmul_nt(x, &l.a.value); // [rows, r]
            let delta = matmul_nt(&ax, &l.b.value); // [rows, d_ff]
            z.axpy(l.scale, &delta);
            ax1 = Some(ax.clone());
            l.cache_ax = Some(ax);
        }
        let a = self.activate(&z);
        // y = a·W2 + b2  (+ LoRA2), bias again fused into the write-back.
        let mut y = self
            .w2
            .matmul_ep(&a, Epilogue::Bias(self.b2.value.as_slice()));
        let mut ax2 = None;
        if let Some(l) = &mut self.lora2 {
            let ax = matmul(&a, &l.a.value); // [rows, r]
            let delta = matmul_nt(&ax, &l.b.value); // [rows, d]
            y.axpy(l.scale, &delta);
            ax2 = Some(ax.clone());
            l.cache_ax = Some(ax);
        }
        debug_assert_eq!(y.rows(), rows);
        self.cache = Some(MlpCache {
            x: x.clone(),
            z,
            a,
            set: None,
            used_slabs: false,
            ax1,
            ax2,
        });
        y
    }

    fn forward_sparse(&mut self, x: &Tensor, set: Arc<NeuronBlockSet>) -> Tensor {
        assert_eq!(
            set.total_neurons(),
            self.d_ff,
            "neuron block grid must cover d_ff"
        );
        assert_eq!(
            self.activation,
            Activation::Relu,
            "neuron sparsity requires ReLU (paper §II-B)"
        );
        let rows = x.rows();
        let width = set.active_neurons();
        // Reduced-stored weights (f16 or block-quantized): run the neuron
        // kernels in the compact coordinate system over the cross-step slab
        // cache (only blocks that drifted in get decoded); f32 weights use
        // the full buffers with the global set, as before. Both layouts
        // produce the identical compact `rows × active` buffers.
        let used_slabs = self.w1.is_reduced();
        if used_slabs {
            assert!(
                self.w2.is_reduced(),
                "FC1/FC2 must share a storage precision"
            );
            self.refresh_slab_cache(&set);
        }
        let slabs = used_slabs.then(|| self.slab_cache.as_ref().expect("slab cache refreshed"));
        let (w1s, b1s, w2s, kset): (&[f32], &[f32], &[f32], &NeuronBlockSet) = match slabs {
            Some(s) => (s.w1.as_slice(), s.b1.as_slice(), s.w2.as_slice(), &s.cset),
            None => (
                self.w1.value.as_slice(),
                self.b1.value.as_slice(),
                self.w2.value.as_slice(),
                &set,
            ),
        };
        let mut z = Tensor::zeros(&[rows, width]);
        fc1_forward(
            x.as_slice(),
            rows,
            w1s,
            self.d_model,
            Some(b1s),
            kset,
            z.as_mut_slice(),
        );
        let mut ax1 = None;
        if let Some(l) = &mut self.lora1 {
            let ax = matmul_nt(x, &l.a.value); // [rows, r]
            let r = ax.cols();
            // z[row, compact(n)] += scale · ⟨ax_row, B1_row(n)⟩, active only.
            for row in 0..rows {
                let ax_row = ax.row(row);
                let z_row = z.row_mut(row);
                for (ci, &blk) in set.active.iter().enumerate() {
                    for t in 0..set.block_size {
                        let n = blk as usize * set.block_size + t;
                        let b_row = &l.b.value.as_slice()[n * r..(n + 1) * r];
                        let dot: f32 = ax_row.iter().zip(b_row).map(|(u, v)| u * v).sum();
                        z_row[ci * set.block_size + t] += l.scale * dot;
                    }
                }
            }
            ax1 = Some(ax.clone());
            l.cache_ax = Some(ax);
        }
        let a = self.activate(&z);
        let mut y = Tensor::zeros(&[rows, self.d_model]);
        fc2_forward(
            a.as_slice(),
            rows,
            w2s,
            self.d_model,
            Some(self.b2.value.as_slice()),
            kset,
            y.as_mut_slice(),
        );
        let mut ax2 = None;
        if let Some(l) = &mut self.lora2 {
            let r = l.b.value.shape()[1];
            // ax2[row,:] = Σ_active a[row, compact(n)] · A2ᵀ_row(n)
            let mut ax = Tensor::zeros(&[rows, r]);
            for row in 0..rows {
                let a_row = a.row(row);
                let ax_row = ax.row_mut(row);
                for (ci, &blk) in set.active.iter().enumerate() {
                    for t in 0..set.block_size {
                        let n = blk as usize * set.block_size + t;
                        let av = a_row[ci * set.block_size + t];
                        if av == 0.0 {
                            continue;
                        }
                        let a2_row = &l.a.value.as_slice()[n * r..(n + 1) * r];
                        for (o, &v) in ax_row.iter_mut().zip(a2_row) {
                            *o += av * v;
                        }
                    }
                }
            }
            let delta = matmul_nt(&ax, &l.b.value); // [rows, d]
            y.axpy(l.scale, &delta);
            ax2 = Some(ax.clone());
            l.cache_ax = Some(ax);
        }
        self.cache = Some(MlpCache {
            x: x.clone(),
            z,
            a,
            set: Some(set),
            used_slabs,
            ax1,
            ax2,
        });
        y
    }

    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let cache = self.cache.take().expect("MLP backward without forward");
        match &cache.set {
            None => self.backward_dense(dy, &cache),
            Some(set) => self.backward_sparse(dy, &cache, set.clone()),
        }
    }

    fn backward_dense(&mut self, dy: &Tensor, cache: &MlpCache) -> Tensor {
        // FC2 (+ LoRA2): da = dy·W2ᵀ with W2 stored `[d_ff, d]` row-major —
        // the `nt` kernel shape, fused-decoding when half-stored.
        let mut da = self.w2.matmul_nt(dy);
        if let Some(l) = &mut self.lora2 {
            let ax = cache.ax2.as_ref().expect("lora2 cache");
            let mut dax = matmul(dy, &l.b.value); // [rows, r]
            dax.scale(l.scale);
            if l.b.trainable {
                let mut db = matmul_tn(dy, ax);
                db.scale(l.scale);
                l.b.accumulate_grad(&db);
            }
            if l.a.trainable {
                let dat = matmul_tn(&cache.a, &dax); // [d_ff, r]
                l.a.accumulate_grad(&dat);
            }
            da.add_assign(&matmul_nt(&dax, &l.a.value));
        }
        if self.b2.trainable {
            bias_grad_rows(dy, self.b2.grad_mut().as_mut_slice());
        }
        if self.w2.trainable {
            let dw2 = matmul_tn(&cache.a, dy); // [d_ff, d]
            self.w2.accumulate_grad(&dw2);
        }
        // Activation.
        let dz = self.activate_backward(&da, &cache.z);
        // FC1 (+ LoRA1).
        if self.b1.trainable {
            bias_grad_rows(&dz, self.b1.grad_mut().as_mut_slice());
        }
        if self.w1.trainable {
            let dw1 = matmul_tn(&dz, &cache.x); // [d_ff, d]
            self.w1.accumulate_grad(&dw1);
        }
        let mut dx = self.w1.matmul(&dz); // dz · W1(stored [d_ff,d])
        if let Some(l) = &mut self.lora1 {
            let ax = cache.ax1.as_ref().expect("lora1 cache");
            let mut dax = matmul(&dz, &l.b.value); // [rows, r]
            dax.scale(l.scale);
            if l.b.trainable {
                let mut db = matmul_tn(&dz, ax); // [d_ff, r]
                db.scale(l.scale);
                l.b.accumulate_grad(&db);
            }
            if l.a.trainable {
                let da1 = matmul_tn(&dax, &cache.x); // [r, d]
                l.a.accumulate_grad(&da1);
            }
            dx.add_assign(&matmul(&dax, &l.a.value));
        }
        dx
    }

    fn backward_sparse(
        &mut self,
        dy: &Tensor,
        cache: &MlpCache,
        set: Arc<NeuronBlockSet>,
    ) -> Tensor {
        let rows = dy.rows();
        let width = set.active_neurons();
        let bsz = set.block_size;
        // Same storage dispatch as forward: the cross-step slab cache still
        // holds this step's gather, so the backward kernels reuse it for free.
        let slabs = cache
            .used_slabs
            .then(|| self.slab_cache.as_ref().expect("slab cache present"));
        let (w1s, w2s, kset): (&[f32], &[f32], &NeuronBlockSet) = match slabs {
            Some(s) => (s.w1.as_slice(), s.w2.as_slice(), &s.cset),
            None => (self.w1.value.as_slice(), self.w2.value.as_slice(), &set),
        };
        // FC2 backward to compact dA.
        let mut da = Tensor::zeros(&[rows, width]);
        fc2_backward_input(
            dy.as_slice(),
            rows,
            w2s,
            self.d_model,
            kset,
            da.as_mut_slice(),
        );
        if let Some(l) = &mut self.lora2 {
            let ax = cache.ax2.as_ref().expect("lora2 cache");
            let r = l.b.value.shape()[1];
            let mut dax = matmul(dy, &l.b.value);
            dax.scale(l.scale);
            if l.b.trainable {
                let mut db = matmul_tn(dy, ax);
                db.scale(l.scale);
                l.b.accumulate_grad(&db);
            }
            if l.a.trainable {
                // dA2ᵀ_row(n) += Σ_rows a[row, compact(n)] · dax[row,:] — active rows only.
                let g = l.a.grad_mut();
                for row in 0..rows {
                    let a_row = cache.a.row(row);
                    let dax_row = dax.row(row);
                    for (ci, &blk) in set.active.iter().enumerate() {
                        for t in 0..bsz {
                            let n = blk as usize * bsz + t;
                            let av = a_row[ci * bsz + t];
                            if av == 0.0 {
                                continue;
                            }
                            let dst = &mut g.as_mut_slice()[n * r..(n + 1) * r];
                            for (o, &v) in dst.iter_mut().zip(dax_row) {
                                *o += av * v;
                            }
                        }
                    }
                }
            }
            // da[row, compact(n)] += ⟨dax_row, A2ᵀ_row(n)⟩
            for row in 0..rows {
                let dax_row = dax.row(row);
                let da_row = da.row_mut(row);
                for (ci, &blk) in set.active.iter().enumerate() {
                    for t in 0..bsz {
                        let n = blk as usize * bsz + t;
                        let a2_row = &l.a.value.as_slice()[n * r..(n + 1) * r];
                        let dot: f32 = dax_row.iter().zip(a2_row).map(|(u, v)| u * v).sum();
                        da_row[ci * bsz + t] += dot;
                    }
                }
            }
        }
        if self.b2.trainable {
            bias_grad_rows(dy, self.b2.grad_mut().as_mut_slice());
        }
        if self.w2.trainable {
            fc2_grad_weights(
                cache.a.as_slice(),
                dy.as_slice(),
                rows,
                self.d_model,
                &set,
                self.w2.grad_mut().as_mut_slice(),
            );
        }
        // Activation backward on the compact buffers.
        let dz = self.activate_backward(&da, &cache.z);
        // dx first: it reads the (possibly slab-decoded) weight view, whose
        // borrow must end before the grad blocks take `&mut` access below.
        let mut dx = Tensor::zeros(&[rows, self.d_model]);
        fc1_backward_input(
            dz.as_slice(),
            rows,
            w1s,
            self.d_model,
            kset,
            dx.as_mut_slice(),
        );
        // FC1 grads — active blocks only (§II-D). Weight grads address the
        // full-size buffers, so they use the global set; frozen reduced-
        // stored weights never take this path (trainability implies f32).
        if self.b1.trainable {
            let g = self.b1.grad_mut();
            for row in 0..rows {
                let dz_row = dz.row(row);
                for (ci, &blk) in set.active.iter().enumerate() {
                    for t in 0..bsz {
                        g.as_mut_slice()[blk as usize * bsz + t] += dz_row[ci * bsz + t];
                    }
                }
            }
        }
        if self.w1.trainable {
            fc1_grad_weights(
                cache.x.as_slice(),
                dz.as_slice(),
                rows,
                self.d_model,
                &set,
                self.w1.grad_mut().as_mut_slice(),
                None,
            );
        }
        if let Some(l) = &mut self.lora1 {
            let ax = cache.ax1.as_ref().expect("lora1 cache");
            let r = l.b.value.shape()[1];
            // dax[row,:] = scale · Σ_active dz[row, compact(n)] · B1_row(n)
            let mut dax = Tensor::zeros(&[rows, r]);
            for row in 0..rows {
                let dz_row = dz.row(row);
                let dax_row = dax.row_mut(row);
                for (ci, &blk) in set.active.iter().enumerate() {
                    for t in 0..bsz {
                        let g = dz_row[ci * bsz + t];
                        if g == 0.0 {
                            continue;
                        }
                        let n = blk as usize * bsz + t;
                        let b_row = &l.b.value.as_slice()[n * r..(n + 1) * r];
                        for (o, &v) in dax_row.iter_mut().zip(b_row) {
                            *o += l.scale * g * v;
                        }
                    }
                }
            }
            if l.b.trainable {
                // dB1_row(n) += scale · Σ_rows dz[row, compact(n)] · ax[row,:]
                // — inactive neuron rows receive nothing (§II-D).
                let g = l.b.grad_mut();
                for row in 0..rows {
                    let dz_row = dz.row(row);
                    let ax_row = ax.row(row);
                    for (ci, &blk) in set.active.iter().enumerate() {
                        for t in 0..bsz {
                            let gv = dz_row[ci * bsz + t];
                            if gv == 0.0 {
                                continue;
                            }
                            let n = blk as usize * bsz + t;
                            let dst = &mut g.as_mut_slice()[n * r..(n + 1) * r];
                            for (o, &v) in dst.iter_mut().zip(ax_row) {
                                *o += l.scale * gv * v;
                            }
                        }
                    }
                }
            }
            if l.a.trainable {
                let da1 = matmul_tn(&dax, &cache.x);
                l.a.accumulate_grad(&da1);
            }
            dx.add_assign(&matmul(&dax, &l.a.value));
        }
        dx
    }

    /// Post-activation values of the last dense forward (calibration capture).
    pub fn cached_activations(&self) -> Option<&Tensor> {
        self.cache.as_ref().map(|c| &c.a)
    }

    pub fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w1);
        f(&mut self.b1);
        f(&mut self.w2);
        f(&mut self.b2);
        if let Some(l) = &mut self.lora1 {
            f(&mut l.a);
            f(&mut l.b);
        }
        if let Some(l) = &mut self.lora2 {
            f(&mut l.a);
            f(&mut l.b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D: usize = 8;
    const FF: usize = 16;
    const ROWS: usize = 6;
    const BLK: usize = 4;

    fn mlp() -> MlpBlock {
        MlpBlock::new("mlp", D, FF, Activation::Relu, 7)
    }

    fn all_set() -> Arc<NeuronBlockSet> {
        Arc::new(NeuronBlockSet::all(FF / BLK, BLK))
    }

    #[test]
    fn sparse_all_blocks_matches_dense() {
        let x = Tensor::randn(&[ROWS, D], 1.0, 1);
        let mut dense = mlp();
        let mut sparse = mlp();
        let yd = dense.forward(&x, None);
        let ys = sparse.forward(&x, Some(&all_set()));
        for (a, b) in yd.as_slice().iter().zip(ys.as_slice()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
        // Backward too, with trainable biases (BitFit-style).
        dense.b1.trainable = true;
        dense.b2.trainable = true;
        sparse.b1.trainable = true;
        sparse.b2.trainable = true;
        let dy = Tensor::randn(&[ROWS, D], 1.0, 2);
        let _ = dense.forward(&x, None);
        let dxd = dense.backward(&dy);
        let _ = sparse.forward(&x, Some(&all_set()));
        let dxs = sparse.backward(&dy);
        for (a, b) in dxd.as_slice().iter().zip(dxs.as_slice()) {
            assert!((a - b).abs() < 1e-3, "dx {a} vs {b}");
        }
        let g1 = dense.b1.grad.as_ref().unwrap();
        let g2 = sparse.b1.grad.as_ref().unwrap();
        for (a, b) in g1.as_slice().iter().zip(g2.as_slice()) {
            assert!((a - b).abs() < 1e-3, "db1 {a} vs {b}");
        }
    }

    #[test]
    fn partial_set_equals_dense_with_masked_neurons() {
        let x = Tensor::randn(&[ROWS, D], 1.0, 3);
        let set = Arc::new(NeuronBlockSet::from_indices(vec![0, 2], FF / BLK, BLK));
        let mut sparse = mlp();
        let ys = sparse.forward(&x, Some(&set));
        // Dense reference: zero the inactive neurons' FC2 rows.
        let mut dense = mlp();
        for n in 0..FF {
            let blk = n / BLK;
            if !set.active.contains(&(blk as u32)) {
                dense.w2.value.as_mut_slice()[n * D..(n + 1) * D].fill(0.0);
            }
        }
        let yd = dense.forward(&x, None);
        for (a, b) in ys.as_slice().iter().zip(yd.as_slice()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn inactive_lora_b_rows_get_no_gradient() {
        // The §II-D property: neurons outside the active set contribute no
        // gradient to their LoRA-B rows.
        let x = Tensor::randn(&[ROWS, D], 1.0, 4);
        let dy = Tensor::randn(&[ROWS, D], 1.0, 5);
        let set = Arc::new(NeuronBlockSet::from_indices(vec![1], FF / BLK, BLK));
        let mut m = mlp();
        m.attach_lora_fc1(2, 4.0, 6);
        let _ = m.forward(&x, Some(&set));
        let _ = m.backward(&dy);
        let db = m.lora1.as_ref().unwrap().b.grad.as_ref().unwrap();
        let r = 2;
        for n in 0..FF {
            let active = (4..8).contains(&n);
            let row_nonzero = db.as_slice()[n * r..(n + 1) * r].iter().any(|&v| v != 0.0);
            if !active {
                assert!(!row_nonzero, "inactive neuron {n} must have zero dB row");
            }
        }
        // At least one active row must have gradient (ReLU keeps some on).
        let any_active_grad =
            (4..8).any(|n| db.as_slice()[n * r..(n + 1) * r].iter().any(|&v| v != 0.0));
        assert!(any_active_grad);
    }

    #[test]
    fn dense_lora_grads_match_finite_difference() {
        let mut m = mlp();
        m.attach_lora_fc1(2, 2.0, 8);
        m.attach_lora_fc2(2, 2.0, 9);
        // Non-zero B so the A-grads are informative.
        for l in [m.lora1.as_mut().unwrap(), m.lora2.as_mut().unwrap()] {
            let vals = lx_tensor::rng::randn_vec(l.b.value.len(), 0.2, 10);
            l.b.value.as_mut_slice().copy_from_slice(&vals);
        }
        let x = Tensor::randn(&[4, D], 0.8, 11);
        let dy = Tensor::randn(&[4, D], 1.0, 12);
        let _ = m.forward(&x, None);
        let _ = m.backward(&dy);
        let loss = |m: &mut MlpBlock, x: &Tensor| -> f32 {
            let y = m.forward(x, None);
            m.cache = None;
            y.as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        let h = 1e-3;
        // Check a few entries of each LoRA param.
        for which in 0..4 {
            let grad = match which {
                0 => m.lora1.as_ref().unwrap().a.grad.as_ref().unwrap().clone(),
                1 => m.lora1.as_ref().unwrap().b.grad.as_ref().unwrap().clone(),
                2 => m.lora2.as_ref().unwrap().a.grad.as_ref().unwrap().clone(),
                _ => m.lora2.as_ref().unwrap().b.grad.as_ref().unwrap().clone(),
            };
            for idx in [0usize, 3] {
                let read = |m: &MlpBlock| match which {
                    0 => m.lora1.as_ref().unwrap().a.value.as_slice()[idx],
                    1 => m.lora1.as_ref().unwrap().b.value.as_slice()[idx],
                    2 => m.lora2.as_ref().unwrap().a.value.as_slice()[idx],
                    _ => m.lora2.as_ref().unwrap().b.value.as_slice()[idx],
                };
                let write = |m: &mut MlpBlock, v: f32| match which {
                    0 => m.lora1.as_mut().unwrap().a.value.as_mut_slice()[idx] = v,
                    1 => m.lora1.as_mut().unwrap().b.value.as_mut_slice()[idx] = v,
                    2 => m.lora2.as_mut().unwrap().a.value.as_mut_slice()[idx] = v,
                    _ => m.lora2.as_mut().unwrap().b.value.as_mut_slice()[idx] = v,
                };
                let orig = read(&m);
                write(&mut m, orig + h);
                let lp = loss(&mut m, &x);
                write(&mut m, orig - h);
                let lm = loss(&mut m, &x);
                write(&mut m, orig);
                let fd = (lp - lm) / (2.0 * h);
                assert!(
                    (grad.as_slice()[idx] - fd).abs() < 2e-2,
                    "param {which} idx {idx}: {} vs {fd}",
                    grad.as_slice()[idx]
                );
            }
        }
    }

    /// Demote both FC weights to each reduced storage in turn.
    fn demotions() -> [fn(&mut MlpBlock); 4] {
        use lx_tensor::Dtype;
        [
            |m: &mut MlpBlock| {
                m.w1.to_half();
                m.w2.to_half();
            },
            |m: &mut MlpBlock| {
                m.w1.to_quant(Dtype::I8Block);
                m.w2.to_quant(Dtype::I8Block);
            },
            |m: &mut MlpBlock| {
                m.w1.to_quant(Dtype::Nf4Block);
                m.w2.to_quant(Dtype::Nf4Block);
            },
            |m: &mut MlpBlock| {
                m.w1.to_nm();
                m.w2.to_nm();
            },
        ]
    }

    #[test]
    fn incremental_slab_decode_equals_full_decode_under_drift() {
        // Two identical reduced-stored blocks (f16, int8, NF4 in turn): one
        // keeps its cross-step slab cache (incremental decode), the other is
        // forced to re-gather from scratch every step. Outputs must stay
        // bit-identical across a randomized plan-drift sequence including
        // empty→full and full→empty transitions.
        for demote in demotions() {
            let mk = || {
                let mut m = mlp();
                demote(&mut m);
                m
            };
            let mut inc = mk();
            let mut full = mk();
            let x = Tensor::randn(&[ROWS, D], 1.0, 30);
            let n_blk = (FF / BLK) as u32;
            let mut plans: Vec<Vec<u32>> = vec![
                vec![],               // start empty
                (0..n_blk).collect(), // empty → full
                vec![],               // full → empty
                vec![0, 2],
                vec![0, 3],           // one block drifts
                (0..n_blk).collect(), // partial → full
                vec![1],
            ];
            for step in 0..6u64 {
                let picks = lx_tensor::rng::uniform_vec(3, 0.0, n_blk as f32, 40 + step);
                plans.push(picks.into_iter().map(|v| v as u32).collect());
            }
            for idx in plans {
                let set = Arc::new(NeuronBlockSet::from_indices(idx, n_blk as usize, BLK));
                let yi = inc.forward(&x, Some(&set));
                full.invalidate_slab_cache(); // the full-re-decode arm
                let yf = full.forward(&x, Some(&set));
                assert_eq!(yi.as_slice(), yf.as_slice(), "set {:?}", set.active);
            }
            let (dec_inc, reused) = inc.slab_cache_stats();
            let (dec_full, _) = full.slab_cache_stats();
            assert!(reused > 0, "drifting plans must carry blocks over");
            assert!(
                dec_inc < dec_full,
                "incremental decode must do less work: {dec_inc} vs {dec_full}"
            );
        }
    }

    #[test]
    fn unchanged_plan_reuses_the_slab_cache_wholesale() {
        for demote in demotions() {
            let mut m = mlp();
            demote(&mut m);
            let x = Tensor::randn(&[ROWS, D], 1.0, 31);
            let set = Arc::new(NeuronBlockSet::from_indices(vec![0, 2], FF / BLK, BLK));
            let _ = m.forward(&x, Some(&set));
            let (dec0, _) = m.slab_cache_stats();
            assert_eq!(dec0, 2, "first step decodes every active block");
            for _ in 0..3 {
                let _ = m.forward(&x, Some(&set));
            }
            let (dec, reused) = m.slab_cache_stats();
            assert_eq!(dec, dec0, "unchanged plan must decode nothing");
            assert_eq!(reused, 3 * 2, "each reuse step counts its active blocks");
        }
    }

    #[test]
    fn quant_slab_sparse_path_matches_prerounded_dense() {
        // The exactness contract behind the quantized sparse path: running
        // the neuron kernels over slab-decoded quantized weights must equal
        // running them over a *pre-rounded* f32 model (quantize → dequantize
        // up front) bit-for-bit, because the slab decode is elementwise.
        use lx_tensor::Dtype;
        for dtype in [Dtype::I8Block, Dtype::Nf4Block] {
            let mut q = mlp();
            q.w1.to_quant(dtype);
            q.w2.to_quant(dtype);
            let mut pre = mlp();
            for w in [&mut pre.w1, &mut pre.w2] {
                w.to_quant(dtype);
                w.to_f32(); // pre-rounded dense f32
            }
            let x = Tensor::randn(&[ROWS, D], 1.0, 35);
            let set = Arc::new(NeuronBlockSet::from_indices(vec![0, 2, 3], FF / BLK, BLK));
            let yq = q.forward(&x, Some(&set));
            let yp = pre.forward(&x, Some(&set));
            assert_eq!(yq.as_slice(), yp.as_slice(), "{dtype}");
        }
    }

    #[test]
    fn nm_slab_sparse_path_matches_prepruned_dense() {
        // Same exactness contract for the 2:4 structured-sparse storage:
        // slab-decoding the pruned weights must equal running the neuron
        // kernels over a pre-pruned dense f32 model bit-for-bit.
        let mut q = mlp();
        q.w1.to_nm();
        q.w2.to_nm();
        let mut pre = mlp();
        for w in [&mut pre.w1, &mut pre.w2] {
            w.to_nm();
            w.to_f32(); // pre-pruned dense f32
        }
        let x = Tensor::randn(&[ROWS, D], 1.0, 36);
        let set = Arc::new(NeuronBlockSet::from_indices(vec![0, 2, 3], FF / BLK, BLK));
        let yq = q.forward(&x, Some(&set));
        let yp = pre.forward(&x, Some(&set));
        assert_eq!(yq.as_slice(), yp.as_slice());
    }

    #[test]
    fn cached_slabs_track_a_trainable_bias() {
        // BitFit on the reduced-precision sparse path: the weight bits are
        // frozen, but b1 is trainable and moves between steps. The
        // unchanged-plan fast path must still serve the *current* bias, not
        // the one gathered when the cache was built.
        let mut m = mlp();
        m.w1.to_quant(lx_tensor::Dtype::Nf4Block);
        m.w2.to_quant(lx_tensor::Dtype::Nf4Block);
        m.b1.trainable = true;
        let x = Tensor::randn(&[ROWS, D], 1.0, 32);
        let set = Arc::new(NeuronBlockSet::from_indices(vec![0, 2], FF / BLK, BLK));
        let _ = m.forward(&x, Some(&set)); // builds the cache
        for v in m.b1.value.as_mut_slice() {
            *v += 0.5; // an optimizer step moved the bias
        }
        let y_cached = m.forward(&x, Some(&set)); // unchanged plan: fast path
        m.invalidate_slab_cache();
        let y_fresh = m.forward(&x, Some(&set)); // full re-gather
        assert_eq!(
            y_cached.as_slice(),
            y_fresh.as_slice(),
            "cached gather must serve the updated bias"
        );
    }

    #[test]
    fn gelu_model_rejects_sparse_set() {
        let mut m = MlpBlock::new("mlp", D, FF, Activation::Gelu, 13);
        let x = Tensor::randn(&[2, D], 1.0, 14);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.forward(&x, Some(&all_set()))
        }));
        assert!(result.is_err(), "GeLU + neuron sparsity must be rejected");
    }

    #[test]
    fn full_ft_weight_grads_sparse_touch_only_active() {
        let x = Tensor::randn(&[ROWS, D], 1.0, 15);
        let dy = Tensor::randn(&[ROWS, D], 1.0, 16);
        let set = Arc::new(NeuronBlockSet::from_indices(vec![3], FF / BLK, BLK));
        let mut m = mlp();
        m.w1.trainable = true;
        m.w2.trainable = true;
        let _ = m.forward(&x, Some(&set));
        let _ = m.backward(&dy);
        let dw1 = m.w1.grad.as_ref().unwrap();
        let dw2 = m.w2.grad.as_ref().unwrap();
        for n in 0..FF {
            let active = (12..16).contains(&n);
            let w1_nz = dw1.as_slice()[n * D..(n + 1) * D].iter().any(|&v| v != 0.0);
            let w2_nz = dw2.as_slice()[n * D..(n + 1) * D].iter().any(|&v| v != 0.0);
            if !active {
                assert!(!w1_nz && !w2_nz, "inactive neuron {n} has weight grad");
            }
        }
    }
}
