//! The shared synthetic language: a deterministic token-pairing structure.
//!
//! Every "content" token `t` has a unique partner `partner(t)`. Well-formed
//! text consists of `(t, partner(t))` bigrams separated by filler; learning
//! the partner function is the planted signal that fine-tuning must pick up
//! and the downstream tasks test for.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Reserved special tokens at the bottom of the vocabulary.
pub const TOK_PAD: u32 = 0;
pub const TOK_BOS: u32 = 1;
pub const TOK_SEP: u32 = 2;
pub const TOK_YES: u32 = 3;
pub const TOK_NO: u32 = 4;
pub const N_SPECIAL: u32 = 8;

#[derive(Debug, Clone)]
pub struct SyntheticWorld {
    pub vocab_size: u32,
    /// `partner[t]` for content tokens (indexed from 0 = first content tok).
    partner: Vec<u32>,
    pub seed: u64,
}

impl SyntheticWorld {
    /// Build a world with a random (but seed-deterministic) pairing.
    pub fn new(vocab_size: u32, seed: u64) -> Self {
        assert!(vocab_size > N_SPECIAL + 16, "vocab too small");
        let n_content = vocab_size - N_SPECIAL;
        let mut rng = StdRng::seed_from_u64(seed);
        // A random involution-free permutation as the partner map.
        let mut perm: Vec<u32> = (0..n_content).collect();
        perm.shuffle(&mut rng);
        SyntheticWorld {
            vocab_size,
            partner: perm,
            seed,
        }
    }

    pub fn n_content(&self) -> u32 {
        self.vocab_size - N_SPECIAL
    }

    /// First content token id.
    pub fn content_base(&self) -> u32 {
        N_SPECIAL
    }

    /// The partner of content token `t` (panics on special tokens).
    pub fn partner(&self, t: u32) -> u32 {
        assert!(
            t >= N_SPECIAL && t < self.vocab_size,
            "not a content token: {t}"
        );
        self.partner[(t - N_SPECIAL) as usize] + N_SPECIAL
    }

    /// A random content token.
    pub fn sample_content(&self, rng: &mut StdRng) -> u32 {
        rng.gen_range(N_SPECIAL..self.vocab_size)
    }

    /// A random content token that is *not* `t`'s partner (a distractor).
    pub fn sample_distractor(&self, t: u32, rng: &mut StdRng) -> u32 {
        let p = self.partner(t);
        loop {
            let cand = self.sample_content(rng);
            if cand != p {
                return cand;
            }
        }
    }

    /// Emit a well-formed "sentence": `k` partner bigrams.
    pub fn sentence(&self, k: usize, rng: &mut StdRng) -> Vec<u32> {
        let mut out = Vec::with_capacity(2 * k);
        for _ in 0..k {
            let t = self.sample_content(rng);
            out.push(t);
            out.push(self.partner(t));
        }
        out
    }

    pub fn rng(&self, salt: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partner_is_a_bijection() {
        let w = SyntheticWorld::new(128, 1);
        let mut seen = std::collections::HashSet::new();
        for t in N_SPECIAL..128 {
            let p = w.partner(t);
            assert!((N_SPECIAL..128).contains(&p));
            assert!(seen.insert(p), "partner {p} repeated");
        }
    }

    #[test]
    fn world_is_seed_deterministic() {
        let a = SyntheticWorld::new(64, 7);
        let b = SyntheticWorld::new(64, 7);
        let c = SyntheticWorld::new(64, 8);
        for t in N_SPECIAL..64 {
            assert_eq!(a.partner(t), b.partner(t));
        }
        assert!((N_SPECIAL..64).any(|t| a.partner(t) != c.partner(t)));
    }

    #[test]
    fn sentences_are_partner_bigrams() {
        let w = SyntheticWorld::new(64, 2);
        let mut rng = w.rng(1);
        let s = w.sentence(5, &mut rng);
        assert_eq!(s.len(), 10);
        for pair in s.chunks(2) {
            assert_eq!(w.partner(pair[0]), pair[1]);
        }
    }

    #[test]
    fn distractor_never_partner() {
        let w = SyntheticWorld::new(64, 3);
        let mut rng = w.rng(2);
        for _ in 0..50 {
            let t = w.sample_content(&mut rng);
            let d = w.sample_distractor(t, &mut rng);
            assert_ne!(d, w.partner(t));
        }
    }

    #[test]
    #[should_panic(expected = "not a content token")]
    fn partner_of_special_panics() {
        let w = SyntheticWorld::new(64, 4);
        w.partner(TOK_SEP);
    }
}
