//! Neuron-centric block-sparse MLP kernels (paper §VI-B).
//!
//! When a ReLU MLP neuron is inactive for a whole batch, the corresponding
//! *column* of FC1 and *row* of FC2 drop out of both the forward and the
//! backward pass. Long Exposure filters neurons at block granularity, so the
//! kernels here operate on a sorted list of active neuron *blocks*:
//!
//! * FC1 weights are stored **column-major** ([`ColMajorWeights`]) so an
//!   active output-neuron block is a contiguous `block·d_in` slab;
//! * FC2 weights stay **row-major** so an active input-neuron block is a
//!   contiguous `block·d_out` slab.
//!
//! This mirrors the paper's memory-coalescing layout choice and means the
//! kernels never convert data formats at runtime — the property that makes
//! them "dynamic-aware". Because each active slab is contiguous, every
//! per-block product below is one strided GEMM on the `lx-kernels`
//! [`KernelBackend`](lx_kernels::KernelBackend): the compact activation matrix is addressed with
//! `lda = active_width` and the slab with its natural leading dimension, so
//! sparse MLP work runs on the same packed microkernels as the dense path.

use lx_parallel::{par_disjoint, par_rows};
use std::ops::Range;

/// Sorted set of active neuron blocks out of `n_blocks_total`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeuronBlockSet {
    pub block_size: usize,
    pub n_blocks_total: usize,
    /// Sorted, deduplicated active block indices.
    pub active: Vec<u32>,
}

impl NeuronBlockSet {
    /// All blocks active (the dense case).
    pub fn all(n_blocks_total: usize, block_size: usize) -> Self {
        NeuronBlockSet {
            block_size,
            n_blocks_total,
            active: (0..n_blocks_total as u32).collect(),
        }
    }

    /// From a boolean per-block mask.
    pub fn from_mask(mask: &[bool], block_size: usize) -> Self {
        NeuronBlockSet {
            block_size,
            n_blocks_total: mask.len(),
            active: mask
                .iter()
                .enumerate()
                .filter_map(|(i, &a)| a.then_some(i as u32))
                .collect(),
        }
    }

    /// From an arbitrary (possibly unsorted) index list.
    pub fn from_indices(mut indices: Vec<u32>, n_blocks_total: usize, block_size: usize) -> Self {
        indices.sort_unstable();
        indices.dedup();
        assert!(
            indices
                .last()
                .is_none_or(|&l| (l as usize) < n_blocks_total),
            "active block out of range"
        );
        NeuronBlockSet {
            block_size,
            n_blocks_total,
            active: indices,
        }
    }

    pub fn n_active(&self) -> usize {
        self.active.len()
    }

    /// Active neurons (blocks × block size).
    pub fn active_neurons(&self) -> usize {
        self.active.len() * self.block_size
    }

    /// Total neurons covered by the grid.
    pub fn total_neurons(&self) -> usize {
        self.n_blocks_total * self.block_size
    }

    pub fn density(&self) -> f32 {
        if self.n_blocks_total == 0 {
            return 0.0;
        }
        self.active.len() as f32 / self.n_blocks_total as f32
    }

    pub fn sparsity(&self) -> f32 {
        1.0 - self.density()
    }

    pub fn is_dense(&self) -> bool {
        self.active.len() == self.n_blocks_total
    }

    /// The same active blocks renumbered to `0..n_active` over a grid that
    /// contains only them — the coordinate system of a weight buffer holding
    /// just the active slabs (gathered in `active` order). Used by the
    /// mixed-precision MLP path, which decodes only the active slabs of a
    /// half-stored weight to f32.
    pub fn compacted(&self) -> NeuronBlockSet {
        NeuronBlockSet {
            block_size: self.block_size,
            n_blocks_total: self.n_active(),
            active: (0..self.n_active() as u32).collect(),
        }
    }

    /// Weight-buffer span of active block `ai` when each neuron owns `per`
    /// contiguous elements (an FC1 column slab or FC2 row slab).
    fn slab(&self, ai: usize, per: usize) -> Range<usize> {
        let blk = self.active[ai] as usize * self.block_size;
        blk * per..(blk + self.block_size) * per
    }

    /// Number of active blocks present in both sets (merge walk over the
    /// sorted index lists).
    pub fn intersection_count(&self, other: &NeuronBlockSet) -> usize {
        let (a, b) = (&self.active, &other.active);
        let (mut i, mut j, mut inter) = (0, 0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    inter += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        inter
    }

    /// Jaccard similarity `|A ∩ B| / |A ∪ B|` of the active block sets
    /// (1.0 when both are empty). The shadowy-sparsity drift signal: plans
    /// drift slowly, so consecutive steps' sets overlap highly.
    pub fn overlap(&self, other: &NeuronBlockSet) -> f32 {
        assert_eq!(
            self.n_blocks_total, other.n_blocks_total,
            "overlap needs matching block grids"
        );
        let inter = self.intersection_count(other);
        let union = self.active.len() + other.active.len() - inter;
        if union == 0 {
            1.0
        } else {
            inter as f32 / union as f32
        }
    }

    /// Blocks activated and deactivated going from `prev` to `self`:
    /// `added` are active here but not in `prev` (must be decoded fresh),
    /// `removed` were active in `prev` but not here (evicted). Blocks in
    /// both can be carried over — the incremental-slab-decode contract.
    pub fn diff(&self, prev: &NeuronBlockSet) -> BlockSetDiff {
        assert_eq!(
            self.n_blocks_total, prev.n_blocks_total,
            "diff needs matching block grids"
        );
        let (a, b) = (&self.active, &prev.active);
        let mut added = Vec::new();
        let mut removed = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < a.len() || j < b.len() {
            match (a.get(i), b.get(j)) {
                (Some(&x), Some(&y)) if x == y => {
                    i += 1;
                    j += 1;
                }
                (Some(&x), Some(&y)) if x < y => {
                    added.push(x);
                    i += 1;
                }
                (Some(_), Some(&y)) => {
                    removed.push(y);
                    j += 1;
                }
                (Some(&x), None) => {
                    added.push(x);
                    i += 1;
                }
                (None, Some(&y)) => {
                    removed.push(y);
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        BlockSetDiff { added, removed }
    }
}

/// Result of [`NeuronBlockSet::diff`]: block indices newly activated and
/// newly deactivated relative to a previous set.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BlockSetDiff {
    pub added: Vec<u32>,
    pub removed: Vec<u32>,
}

/// FC1 weights stored column-major: `data[col · d_in + row]`, i.e. each
/// output-neuron column is contiguous.
#[derive(Debug, Clone)]
pub struct ColMajorWeights {
    pub d_in: usize,
    pub d_out: usize,
    data: Vec<f32>,
}

impl ColMajorWeights {
    /// Convert from a row-major `d_in × d_out` weight matrix.
    pub fn from_row_major(w: &[f32], d_in: usize, d_out: usize) -> Self {
        assert_eq!(w.len(), d_in * d_out);
        let mut data = vec![0.0; d_in * d_out];
        for r in 0..d_in {
            for c in 0..d_out {
                data[c * d_in + r] = w[r * d_out + c];
            }
        }
        ColMajorWeights { d_in, d_out, data }
    }

    pub fn zeros(d_in: usize, d_out: usize) -> Self {
        ColMajorWeights {
            d_in,
            d_out,
            data: vec![0.0; d_in * d_out],
        }
    }

    /// Contiguous column `c` (one output neuron's weights).
    #[inline]
    pub fn col(&self, c: usize) -> &[f32] {
        &self.data[c * self.d_in..(c + 1) * self.d_in]
    }

    #[inline]
    pub fn col_mut(&mut self, c: usize) -> &mut [f32] {
        &mut self.data[c * self.d_in..(c + 1) * self.d_in]
    }

    /// Back to row-major (tests, checkpointing).
    pub fn to_row_major(&self) -> Vec<f32> {
        let mut w = vec![0.0; self.d_in * self.d_out];
        for c in 0..self.d_out {
            for r in 0..self.d_in {
                w[r * self.d_out + c] = self.data[c * self.d_in + r];
            }
        }
        w
    }

    pub fn raw(&self) -> &[f32] {
        &self.data
    }

    pub fn raw_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }
}

/// Rows-per-task grain targeting ~32K MACs, as the original loops used.
fn rows_grain(width: usize, d: usize) -> usize {
    ((1 << 15) / (width * d).max(1)).max(1)
}

/// FC1 forward: `z[r, a·b+t] = ⟨x_r, w1.col(active[a]·b+t)⟩ (+ bias)`.
///
/// `z` is *compact*: `rows × active_neurons`, holding only active columns.
/// Each active block is `Z_a = X · W_aᵀ`, a strided `nt`-GEMM against the
/// contiguous column slab `W_a`.
pub fn fc1_forward(
    x: &[f32],
    rows: usize,
    w1t: &[f32],
    d_in: usize,
    bias: Option<&[f32]>,
    set: &NeuronBlockSet,
    z: &mut [f32],
) {
    debug_assert_eq!(
        w1t.len(),
        set.total_neurons() * d_in,
        "fc1: w1t is d_out×d_in"
    );
    let b = set.block_size;
    let width = set.active_neurons();
    assert_eq!(x.len(), rows * d_in, "fc1: x is rows×d_in");
    assert_eq!(z.len(), rows * width, "fc1: z is rows×active");
    if width == 0 {
        return;
    }
    let be = lx_kernels::backend();
    par_rows(z, rows, width, rows_grain(width, d_in), |rr, chunk| {
        let m = rr.len();
        let x_win = &x[rr.start * d_in..rr.end * d_in];
        for (a, &blk) in set.active.iter().enumerate() {
            let w_blk = &w1t[blk as usize * b * d_in..(blk as usize + 1) * b * d_in];
            // Each block writes its own b-column window once, so the bias
            // rides the GEMM write-back as a fused epilogue (per-block bias
            // slab) instead of a second pass over the whole compact z.
            let ep = match bias {
                Some(bias) => {
                    lx_kernels::Epilogue::Bias(&bias[blk as usize * b..(blk as usize + 1) * b])
                }
                None => lx_kernels::Epilogue::None,
            };
            be.gemm_nt_ep(
                m,
                d_in,
                b,
                x_win,
                d_in,
                w_blk,
                d_in,
                &mut chunk[a * b..],
                width,
                0.0,
                ep,
            );
        }
    });
}

/// FC2 forward: `y[r,:] = Σ_active a[r, blk]·w2_row(neuron) (+ bias)`.
///
/// `w2` is row-major `h × d_out`; `a` is compact `rows × active_neurons`.
/// Each active block accumulates `Y += A_blk · W2_blk` (strided GEMM,
/// `beta = 1`); the reference arm of the dispatcher still skips exact-zero
/// activations (post-ReLU) inside its inner loop.
pub fn fc2_forward(
    a: &[f32],
    rows: usize,
    w2: &[f32],
    d_out: usize,
    bias: Option<&[f32]>,
    set: &NeuronBlockSet,
    y: &mut [f32],
) {
    let b = set.block_size;
    let width = set.active_neurons();
    assert_eq!(a.len(), rows * width, "fc2: a is rows×active");
    assert_eq!(w2.len(), set.total_neurons() * d_out, "fc2: w2 is h×d_out");
    assert_eq!(y.len(), rows * d_out, "fc2: y is rows×d_out");
    let be = lx_kernels::backend();
    par_rows(
        y,
        rows,
        d_out,
        rows_grain(width.max(1), d_out),
        |rr, chunk| {
            let m = rr.len();
            for local in 0..m {
                let y_row = &mut chunk[local * d_out..local * d_out + d_out];
                match bias {
                    Some(bias) => y_row.copy_from_slice(bias),
                    None => y_row.fill(0.0),
                }
            }
            for (ai, &blk) in set.active.iter().enumerate() {
                let w_blk = &w2[blk as usize * b * d_out..(blk as usize + 1) * b * d_out];
                let a_win = &a[rr.start * width + ai * b..];
                be.gemm(m, b, d_out, a_win, width, w_blk, d_out, chunk, d_out, 1.0);
            }
        },
    );
}

/// FC2 backward w.r.t. its input: `da[r, blk] = ⟨dy_r, w2_row(neuron)⟩`.
/// Per block: `dA_blk = dY · W2_blkᵀ`, a strided `nt`-GEMM.
pub fn fc2_backward_input(
    dy: &[f32],
    rows: usize,
    w2: &[f32],
    d_out: usize,
    set: &NeuronBlockSet,
    da: &mut [f32],
) {
    let b = set.block_size;
    let width = set.active_neurons();
    assert_eq!(dy.len(), rows * d_out);
    assert_eq!(da.len(), rows * width);
    if width == 0 {
        return;
    }
    let be = lx_kernels::backend();
    par_rows(da, rows, width, rows_grain(width, d_out), |rr, chunk| {
        let m = rr.len();
        let dy_win = &dy[rr.start * d_out..rr.end * d_out];
        for (ai, &blk) in set.active.iter().enumerate() {
            let w_blk = &w2[blk as usize * b * d_out..(blk as usize + 1) * b * d_out];
            be.gemm_nt(
                m,
                d_out,
                b,
                dy_win,
                d_out,
                w_blk,
                d_out,
                &mut chunk[ai * b..],
                width,
                0.0,
            );
        }
    });
}

/// FC1 backward w.r.t. its input: `dx[r,:] = Σ_active dz[r, blk]·w1.col(neuron)`.
/// Per block: `dX += dZ_blk · W_blk` (strided GEMM, `beta = 1`).
pub fn fc1_backward_input(
    dz: &[f32],
    rows: usize,
    w1t: &[f32],
    d_in: usize,
    set: &NeuronBlockSet,
    dx: &mut [f32],
) {
    debug_assert_eq!(w1t.len(), set.total_neurons() * d_in);
    let b = set.block_size;
    let width = set.active_neurons();
    assert_eq!(dz.len(), rows * width);
    assert_eq!(dx.len(), rows * d_in);
    let be = lx_kernels::backend();
    par_rows(
        dx,
        rows,
        d_in,
        rows_grain(width.max(1), d_in),
        |rr, chunk| {
            let m = rr.len();
            chunk.fill(0.0);
            for (ai, &blk) in set.active.iter().enumerate() {
                let w_blk = &w1t[blk as usize * b * d_in..(blk as usize + 1) * b * d_in];
                let dz_win = &dz[rr.start * width + ai * b..];
                be.gemm(m, b, d_in, dz_win, width, w_blk, d_in, chunk, d_in, 1.0);
            }
        },
    );
}

/// Accumulate FC1 weight gradients for *active columns only*:
/// `dw1.col(neuron) += Σ_r x_r · dz[r, compact(neuron)]`.
/// Per block: `dW_blk += dZ_blkᵀ · X`, a strided `tn`-GEMM into the block's
/// contiguous column slab; active slabs are disjoint, so blocks parallelise.
pub fn fc1_grad_weights(
    x: &[f32],
    dz: &[f32],
    rows: usize,
    d_in: usize,
    set: &NeuronBlockSet,
    dw1t: &mut [f32],
    dbias: Option<&mut [f32]>,
) {
    debug_assert_eq!(dw1t.len(), set.total_neurons() * d_in);
    let b = set.block_size;
    let width = set.active_neurons();
    assert_eq!(x.len(), rows * d_in);
    assert_eq!(dz.len(), rows * width);
    let be = lx_kernels::backend();
    let spans: Vec<Range<usize>> = (0..set.n_active()).map(|ai| set.slab(ai, d_in)).collect();
    par_disjoint(dw1t, &spans, 1, |ais, chunk| {
        let base = spans[ais.start].start;
        for ai in ais {
            let dst = &mut chunk[spans[ai].start - base..spans[ai].end - base];
            let dz_win = &dz[ai * b..];
            be.gemm_tn(b, rows, d_in, dz_win, width, x, d_in, dst, d_in, 1.0);
        }
    });
    if let Some(dbias) = dbias {
        for (ai, &blk) in set.active.iter().enumerate() {
            for t in 0..b {
                let neuron = blk as usize * b + t;
                let mut acc = 0.0;
                for r in 0..rows {
                    acc += dz[r * width + ai * b + t];
                }
                dbias[neuron] += acc;
            }
        }
    }
}

/// Accumulate FC2 weight gradients for *active rows only*:
/// `dw2_row(neuron) += Σ_r a[r, compact(neuron)] · dy_r`.
/// Per block: `dW2_blk += A_blkᵀ · dY` into the block's contiguous row slab.
pub fn fc2_grad_weights(
    a: &[f32],
    dy: &[f32],
    rows: usize,
    d_out: usize,
    set: &NeuronBlockSet,
    dw2: &mut [f32],
) {
    let b = set.block_size;
    let width = set.active_neurons();
    assert_eq!(a.len(), rows * width);
    assert_eq!(dy.len(), rows * d_out);
    assert_eq!(dw2.len(), set.total_neurons() * d_out);
    let be = lx_kernels::backend();
    let spans: Vec<Range<usize>> = (0..set.n_active()).map(|ai| set.slab(ai, d_out)).collect();
    par_disjoint(dw2, &spans, 1, |ais, chunk| {
        let base = spans[ais.start].start;
        for ai in ais {
            let dst = &mut chunk[spans[ai].start - base..spans[ai].end - base];
            let a_win = &a[ai * b..];
            be.gemm_tn(b, rows, d_out, a_win, width, dy, d_out, dst, d_out, 1.0);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use lx_tensor::gemm::gemm;
    use lx_tensor::rng::randn_vec;

    const ROWS: usize = 6;
    const D_IN: usize = 10;
    const H: usize = 16; // 4 blocks of 4
    const D_OUT: usize = 12;
    const B: usize = 4;

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + y.abs()),
                "idx {i}: {x} vs {y}"
            );
        }
    }

    fn dense_fc1(x: &[f32], w1: &[f32], bias: &[f32]) -> Vec<f32> {
        let mut z = vec![0.0; ROWS * H];
        gemm(ROWS, D_IN, H, x, w1, &mut z, 0.0);
        for r in 0..ROWS {
            for c in 0..H {
                z[r * H + c] += bias[c];
            }
        }
        z
    }

    #[test]
    fn block_set_constructors() {
        let all = NeuronBlockSet::all(4, 8);
        assert!(all.is_dense());
        assert_eq!(all.active_neurons(), 32);
        let m = NeuronBlockSet::from_mask(&[true, false, true, false], 8);
        assert_eq!(m.active, vec![0, 2]);
        assert!((m.sparsity() - 0.5).abs() < 1e-6);
        let i = NeuronBlockSet::from_indices(vec![3, 1, 1], 4, 8);
        assert_eq!(i.active, vec![1, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn block_set_range_check() {
        NeuronBlockSet::from_indices(vec![4], 4, 8);
    }

    #[test]
    fn col_major_roundtrip() {
        let w = randn_vec(D_IN * H, 1.0, 1);
        let cm = ColMajorWeights::from_row_major(&w, D_IN, H);
        assert_eq!(cm.to_row_major(), w);
        // col(c)[r] == w[r*H + c]
        for c in [0, 5, 15] {
            for r in 0..D_IN {
                assert_eq!(cm.col(c)[r], w[r * H + c]);
            }
        }
    }

    #[test]
    fn fc1_dense_set_matches_gemm() {
        let x = randn_vec(ROWS * D_IN, 1.0, 2);
        let w1 = randn_vec(D_IN * H, 1.0, 3);
        let bias = randn_vec(H, 0.5, 4);
        let cm = ColMajorWeights::from_row_major(&w1, D_IN, H);
        let set = NeuronBlockSet::all(H / B, B);
        let mut z = vec![0.0; ROWS * H];
        fc1_forward(&x, ROWS, cm.raw(), D_IN, Some(&bias), &set, &mut z);
        assert_close(&z, &dense_fc1(&x, &w1, &bias), 1e-4);
    }

    #[test]
    fn fc1_sparse_set_selects_columns() {
        let x = randn_vec(ROWS * D_IN, 1.0, 5);
        let w1 = randn_vec(D_IN * H, 1.0, 6);
        let bias = vec![0.0; H];
        let cm = ColMajorWeights::from_row_major(&w1, D_IN, H);
        let set = NeuronBlockSet::from_indices(vec![0, 2], H / B, B);
        let mut z = vec![0.0; ROWS * set.active_neurons()];
        fc1_forward(&x, ROWS, cm.raw(), D_IN, Some(&bias), &set, &mut z);
        let dense = dense_fc1(&x, &w1, &bias);
        for r in 0..ROWS {
            for (ai, &blk) in set.active.iter().enumerate() {
                for t in 0..B {
                    let neuron = blk as usize * B + t;
                    assert!(
                        (z[r * 8 + ai * B + t] - dense[r * H + neuron]).abs() < 1e-4,
                        "row {r} neuron {neuron}"
                    );
                }
            }
        }
    }

    #[test]
    fn fc2_dense_set_matches_gemm() {
        let a = randn_vec(ROWS * H, 1.0, 7);
        let w2 = randn_vec(H * D_OUT, 1.0, 8);
        let bias = randn_vec(D_OUT, 0.5, 9);
        let set = NeuronBlockSet::all(H / B, B);
        let mut y = vec![0.0; ROWS * D_OUT];
        fc2_forward(&a, ROWS, &w2, D_OUT, Some(&bias), &set, &mut y);
        let mut expect = vec![0.0; ROWS * D_OUT];
        gemm(ROWS, H, D_OUT, &a, &w2, &mut expect, 0.0);
        for r in 0..ROWS {
            for c in 0..D_OUT {
                expect[r * D_OUT + c] += bias[c];
            }
        }
        assert_close(&y, &expect, 1e-4);
    }

    #[test]
    fn fc2_sparse_equals_dense_with_zeroed_inactive() {
        let set = NeuronBlockSet::from_indices(vec![1, 3], H / B, B);
        let a_compact = randn_vec(ROWS * set.active_neurons(), 1.0, 10);
        let w2 = randn_vec(H * D_OUT, 1.0, 11);
        let mut y = vec![0.0; ROWS * D_OUT];
        fc2_forward(&a_compact, ROWS, &w2, D_OUT, None, &set, &mut y);
        // Expand compact A to full H with zeros in inactive blocks.
        let mut a_full = vec![0.0; ROWS * H];
        for r in 0..ROWS {
            for (ai, &blk) in set.active.iter().enumerate() {
                for t in 0..B {
                    a_full[r * H + blk as usize * B + t] = a_compact[r * 8 + ai * B + t];
                }
            }
        }
        let mut expect = vec![0.0; ROWS * D_OUT];
        gemm(ROWS, H, D_OUT, &a_full, &w2, &mut expect, 0.0);
        assert_close(&y, &expect, 1e-4);
    }

    #[test]
    fn backward_input_paths_match_dense() {
        let set = NeuronBlockSet::from_indices(vec![0, 3], H / B, B);
        let width = set.active_neurons();
        let w1 = randn_vec(D_IN * H, 1.0, 12);
        let w2 = randn_vec(H * D_OUT, 1.0, 13);
        let cm = ColMajorWeights::from_row_major(&w1, D_IN, H);
        let dy = randn_vec(ROWS * D_OUT, 1.0, 14);
        let dz = randn_vec(ROWS * width, 1.0, 15);

        let mut da = vec![0.0; ROWS * width];
        fc2_backward_input(&dy, ROWS, &w2, D_OUT, &set, &mut da);
        // Reference: dY · W2ᵀ then gather active columns.
        let mut da_full = vec![0.0; ROWS * H];
        for r in 0..ROWS {
            for n in 0..H {
                let mut acc = 0.0;
                for c in 0..D_OUT {
                    acc += dy[r * D_OUT + c] * w2[n * D_OUT + c];
                }
                da_full[r * H + n] = acc;
            }
        }
        for r in 0..ROWS {
            for (ai, &blk) in set.active.iter().enumerate() {
                for t in 0..B {
                    assert!(
                        (da[r * width + ai * B + t] - da_full[r * H + blk as usize * B + t]).abs()
                            < 1e-4
                    );
                }
            }
        }

        let mut dx = vec![0.0; ROWS * D_IN];
        fc1_backward_input(&dz, ROWS, cm.raw(), D_IN, &set, &mut dx);
        // Reference: scatter dz to full width then dZ · W1ᵀ.
        let mut dz_full = vec![0.0; ROWS * H];
        for r in 0..ROWS {
            for (ai, &blk) in set.active.iter().enumerate() {
                for t in 0..B {
                    dz_full[r * H + blk as usize * B + t] = dz[r * width + ai * B + t];
                }
            }
        }
        let mut expect = vec![0.0; ROWS * D_IN];
        for r in 0..ROWS {
            for n in 0..H {
                let g = dz_full[r * H + n];
                for i in 0..D_IN {
                    expect[r * D_IN + i] += g * w1[i * H + n];
                }
            }
        }
        assert_close(&dx, &expect, 1e-4);
    }

    #[test]
    fn weight_gradients_touch_only_active_blocks() {
        let set = NeuronBlockSet::from_indices(vec![2], H / B, B);
        let width = set.active_neurons();
        let x = randn_vec(ROWS * D_IN, 1.0, 16);
        let dz = randn_vec(ROWS * width, 1.0, 17);
        let mut dw1 = ColMajorWeights::zeros(D_IN, H);
        let mut dbias = vec![0.0f32; H];
        fc1_grad_weights(&x, &dz, ROWS, D_IN, &set, dw1.raw_mut(), Some(&mut dbias));
        #[allow(clippy::needless_range_loop)]
        for n in 0..H {
            let in_active = (8..12).contains(&n);
            let col_nonzero = dw1.col(n).iter().any(|&v| v != 0.0);
            assert_eq!(col_nonzero, in_active, "neuron {n}");
            assert_eq!(dbias[n] != 0.0, in_active, "bias {n}");
        }
        // Check one value against the naive sum.
        let n = 9;
        let t = n - 8;
        let mut expect = vec![0.0; D_IN];
        for r in 0..ROWS {
            let g = dz[r * width + t];
            for i in 0..D_IN {
                expect[i] += g * x[r * D_IN + i];
            }
        }
        assert_close(dw1.col(n), &expect, 1e-4);

        let dy = randn_vec(ROWS * D_OUT, 1.0, 18);
        let a = randn_vec(ROWS * width, 1.0, 19);
        let mut dw2 = vec![0.0; H * D_OUT];
        fc2_grad_weights(&a, &dy, ROWS, D_OUT, &set, &mut dw2);
        for n in 0..H {
            let in_active = (8..12).contains(&n);
            let row_nonzero = dw2[n * D_OUT..(n + 1) * D_OUT].iter().any(|&v| v != 0.0);
            assert_eq!(row_nonzero, in_active, "w2 row {n}");
        }
    }

    #[test]
    fn overlap_and_diff_track_drift() {
        let a = NeuronBlockSet::from_indices(vec![0, 1, 2], 8, B);
        let b = NeuronBlockSet::from_indices(vec![1, 2, 5], 8, B);
        assert_eq!(a.intersection_count(&b), 2);
        assert!((a.overlap(&b) - 0.5).abs() < 1e-6); // 2 / 4
        let d = b.diff(&a);
        assert_eq!(d.added, vec![5]);
        assert_eq!(d.removed, vec![0]);
        // Identity and disjoint extremes.
        assert_eq!(a.overlap(&a), 1.0);
        assert!(a.diff(&a).added.is_empty() && a.diff(&a).removed.is_empty());
        let c = NeuronBlockSet::from_indices(vec![6, 7], 8, B);
        assert_eq!(a.overlap(&c), 0.0);
        // Empty ↔ full transitions.
        let empty = NeuronBlockSet::from_indices(vec![], 8, B);
        let full = NeuronBlockSet::all(8, B);
        assert_eq!(empty.overlap(&empty), 1.0);
        assert_eq!(empty.overlap(&full), 0.0);
        let up = full.diff(&empty);
        assert_eq!(up.added.len(), 8);
        assert!(up.removed.is_empty());
        let down = empty.diff(&full);
        assert!(down.added.is_empty());
        assert_eq!(down.removed.len(), 8);
    }

    #[test]
    fn empty_active_set_is_harmless() {
        let set = NeuronBlockSet::from_indices(vec![], H / B, B);
        let x = randn_vec(ROWS * D_IN, 1.0, 22);
        let mut z: Vec<f32> = vec![];
        fc1_forward(&x, ROWS, &vec![0.0; H * D_IN], D_IN, None, &set, &mut z);
        let bias = randn_vec(D_OUT, 1.0, 23);
        let mut y = vec![0.0; ROWS * D_OUT];
        fc2_forward(
            &[],
            ROWS,
            &vec![0.0; H * D_OUT],
            D_OUT,
            Some(&bias),
            &set,
            &mut y,
        );
        for r in 0..ROWS {
            assert_close(&y[r * D_OUT..(r + 1) * D_OUT], &bias, 1e-6);
        }
        let mut dw1 = vec![0.0; H * D_IN];
        fc1_grad_weights(&x, &[], ROWS, D_IN, &set, &mut dw1, None);
        assert!(dw1.iter().all(|&v| v == 0.0));
    }
}
