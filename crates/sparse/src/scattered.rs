//! Unstructured element-granular sparse baseline — the "Shadowy" arm.
//!
//! Paper Fig. 9 observes that exploiting the *raw* union sparsity left over
//! after token overlap ("shadowy sparsity") directly — i.e. element-wise,
//! unstructured — performs **worse than dense** because of scattered memory
//! access and reduced arithmetic intensity. This module implements that
//! baseline honestly so the comparison is reproducible: an element-level CSR
//! built at runtime from the activation matrix (paying the runtime conversion
//! cost the dynamic-aware operators avoid), and a row-gather SpMM for FC2.

use lx_parallel::par_rows;

/// Element-level CSR over a `rows × cols` matrix.
#[derive(Debug, Clone)]
pub struct ElemCsr {
    pub rows: usize,
    pub cols: usize,
    pub row_ptr: Vec<u32>,
    pub col_idx: Vec<u32>,
    pub values: Vec<f32>,
}

impl ElemCsr {
    /// Build from a dense matrix, keeping entries with `|v| > threshold`.
    /// This conversion happens *inside* the measured region for the shadowy
    /// baseline — exactly the overhead the paper's operators shift offline.
    pub fn from_dense(dense: &[f32], rows: usize, cols: usize, threshold: f32) -> Self {
        assert_eq!(dense.len(), rows * cols);
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0u32);
        for r in 0..rows {
            for c in 0..cols {
                let v = dense[r * cols + c];
                if v.abs() > threshold {
                    col_idx.push(c as u32);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len() as u32);
        }
        ElemCsr {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    pub fn density(&self) -> f32 {
        if self.rows * self.cols == 0 {
            return 0.0;
        }
        self.nnz() as f32 / (self.rows * self.cols) as f32
    }
}

/// SpMM: `y[rows × d_out] = csr · w` with `w` row-major `cols × d_out`.
///
/// Each nonzero triggers one scattered `axpy` over a `w` row — low
/// arithmetic intensity by construction.
pub fn spmm(csr: &ElemCsr, w: &[f32], d_out: usize, bias: Option<&[f32]>, y: &mut [f32]) {
    assert_eq!(w.len(), csr.cols * d_out, "spmm: w is cols×d_out");
    assert_eq!(y.len(), csr.rows * d_out, "spmm: y is rows×d_out");
    par_rows(y, csr.rows, d_out, 8, |rr, chunk| {
        for r in rr.clone() {
            let local = (r - rr.start) * d_out;
            let y_row = &mut chunk[local..local + d_out];
            match bias {
                Some(bias) => y_row.copy_from_slice(bias),
                None => y_row.fill(0.0),
            }
            for e in csr.row_ptr[r] as usize..csr.row_ptr[r + 1] as usize {
                let c = csr.col_idx[e] as usize;
                let v = csr.values[e];
                let w_row = &w[c * d_out..(c + 1) * d_out];
                for (o, &wv) in y_row.iter_mut().zip(w_row) {
                    *o += v * wv;
                }
            }
        }
    });
}

/// Dense×dense reference with the same signature shape, for the baseline's
/// "dense" arm in operator sweeps.
pub fn dense_mm(a: &[f32], rows: usize, cols: usize, w: &[f32], d_out: usize, y: &mut [f32]) {
    lx_tensor::gemm::gemm(rows, cols, d_out, a, w, y, 0.0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use lx_tensor::rng::randn_vec;

    #[test]
    fn csr_from_dense_thresholds() {
        let dense = vec![0.0, 1.0, -0.5, 0.0, 0.0, 2.0];
        let csr = ElemCsr::from_dense(&dense, 2, 3, 0.6);
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.col_idx, vec![1, 2]);
        assert_eq!(csr.values, vec![1.0, 2.0]);
        assert!((csr.density() - 2.0 / 6.0).abs() < 1e-6);
    }

    #[test]
    fn spmm_matches_dense_when_nothing_filtered() {
        let (rows, cols, d_out) = (5, 7, 4);
        let a = randn_vec(rows * cols, 1.0, 1);
        let w = randn_vec(cols * d_out, 1.0, 2);
        let csr = ElemCsr::from_dense(&a, rows, cols, 0.0);
        let mut y = vec![0.0; rows * d_out];
        spmm(&csr, &w, d_out, None, &mut y);
        let mut expect = vec![0.0; rows * d_out];
        dense_mm(&a, rows, cols, &w, d_out, &mut expect);
        for (x, e) in y.iter().zip(&expect) {
            assert!((x - e).abs() < 1e-4);
        }
    }

    #[test]
    fn spmm_with_sparse_relu_activations() {
        let (rows, cols, d_out) = (4, 8, 3);
        let mut a = randn_vec(rows * cols, 1.0, 3);
        // ReLU: about half the entries become exact zeros.
        for v in a.iter_mut() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        let csr = ElemCsr::from_dense(&a, rows, cols, 0.0);
        assert!(csr.density() < 1.0);
        let w = randn_vec(cols * d_out, 1.0, 4);
        let bias = randn_vec(d_out, 0.5, 5);
        let mut y = vec![0.0; rows * d_out];
        spmm(&csr, &w, d_out, Some(&bias), &mut y);
        let mut expect = vec![0.0; rows * d_out];
        dense_mm(&a, rows, cols, &w, d_out, &mut expect);
        for r in 0..rows {
            for c in 0..d_out {
                expect[r * d_out + c] += bias[c];
            }
        }
        for (x, e) in y.iter().zip(&expect) {
            assert!((x - e).abs() < 1e-4);
        }
    }

    #[test]
    fn empty_matrix_gives_bias_rows() {
        let csr = ElemCsr::from_dense(&[0.0; 6], 2, 3, 0.0);
        assert_eq!(csr.nnz(), 0);
        let w = randn_vec(3 * 2, 1.0, 6);
        let bias = vec![1.5, -2.0];
        let mut y = vec![0.0; 4];
        spmm(&csr, &w, 2, Some(&bias), &mut y);
        assert_eq!(y, vec![1.5, -2.0, 1.5, -2.0]);
    }
}
