//! Multi-tenant serving throughput: N=4 concurrent tenant fine-tuning jobs
//! sharing ONE backbone and ONE calibrated predictor set, scheduled in
//! fair-share time-slices. Reports per-tenant and aggregate throughput, the
//! adapter swap overhead, and the dense-execution baseline for comparison.
//!
//! ```sh
//! cargo run --release -p lx-bench --bin serve_throughput
//! ```
//!
//! `--smoke` shrinks the workload (2 tenants × 4 steps of 2 accumulated
//! micro-batches each, seq 32) and turns the run into a CI gate: every
//! tenant must complete with finite losses on both arms, non-zero
//! utilisation, and a per-step progress event stream that mirrors the final
//! report, else the exit code is non-zero.
//!
//! `--precision f32|f16` picks the shared-backbone storage plan for both
//! arms (default f16, the production configuration). Pass `f32` to keep the
//! JSON trajectory comparable with pre-precision-plan runs or to measure
//! the storage plan's own serving cost.
//!
//! `--trace <path>` records both arms in an `lx-obs` trace session and
//! writes a Chrome trace-event JSON: tenant slices, adapter swaps and step
//! phases on one Perfetto timeline.

use long_exposure::engine::{EngineConfig, StepMode};
use lx_bench::{fmt_ms, header, row, sim_model, BenchCli, SIM_BLOCK};
use lx_model::{ModelConfig, Precision};
use lx_obs::{Histogram, TraceSession};
use lx_serve::{
    AdapterRegistry, DatasetSpec, JobSpec, SchedPolicy, Scheduler, ServeConfig, StepEvent,
};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;

struct Workload {
    n_tenants: usize,
    steps_per_tenant: u64,
    batch: usize,
    seq: usize,
    /// Micro-batches accumulated per optimizer step.
    micro_batches: usize,
}

const FULL: Workload = Workload {
    n_tenants: 4,
    steps_per_tenant: 8,
    batch: 1,
    seq: 64,
    micro_batches: 1,
};

const SMOKE: Workload = Workload {
    n_tenants: 2,
    steps_per_tenant: 4,
    batch: 1,
    seq: 32,          // still a multiple of SIM_BLOCK
    micro_batches: 2, // exercise gradient accumulation in the CI gate
};

fn backbone(seed: u64) -> lx_model::TransformerModel {
    let mut model = sim_model(ModelConfig::opt_sim_small(), seed);
    model.freeze_all();
    model
}

fn engine_cfg(w: &Workload) -> EngineConfig {
    EngineConfig {
        block_size: SIM_BLOCK,
        attn_prob_threshold: 8.0 / w.seq as f32,
        calib_epochs: 80,
        ..EngineConfig::default()
    }
}

fn tenant_specs(w: &Workload) -> Vec<JobSpec> {
    (0..w.n_tenants)
        .map(|i| {
            let mut spec = JobSpec::lora(format!("tenant-{i}"), w.steps_per_tenant, w.batch, w.seq);
            spec.dataset = DatasetSpec::E2e {
                world_seed: 0x5eed,
                salt: 1000 + i as u64,
            };
            spec.stream_len = 50_000;
            spec.micro_batches = w.micro_batches;
            spec
        })
        .collect()
}

/// Run one arm; returns gate violations (empty = healthy).
fn run(
    w: &Workload,
    mode: StepMode,
    precision: Precision,
    registry: Arc<AdapterRegistry>,
    label: &str,
) -> Vec<String> {
    let mut scheduler = Scheduler::new(
        backbone(42),
        engine_cfg(w),
        ServeConfig {
            slice_steps: 2,
            policy: SchedPolicy::FairShare,
            mode,
            prefetch: true,
            precision,
        },
        registry.clone(),
    );
    if mode == StepMode::Sparse && !scheduler.calibrated() {
        // One calibration, shared by every tenant and persisted for later
        // processes via the registry.
        let spec = DatasetSpec::E2e {
            world_seed: 0x5eed,
            salt: 0,
        };
        let mut batcher = spec.build_batcher(1024, 50_000);
        let calib: Vec<(Vec<u32>, usize, usize)> = (0..3)
            .map(|_| (batcher.next_batch(w.batch, w.seq), w.batch, w.seq))
            .collect();
        let t0 = Instant::now();
        let report = scheduler.calibrate_shared(&calib);
        println!(
            "calibrated shared predictors once in {} ms (attn recall {:.1}%, mlp recall {:.1}%) — amortised over {} tenants",
            fmt_ms(t0.elapsed()),
            100.0 * report.mean_attn_recall(),
            100.0 * report.mean_mlp_recall(),
            w.n_tenants,
        );
    }
    // Every tenant streams per-step progress events; the smoke gate checks
    // the stream mirrors the terminal report.
    let events: Arc<Mutex<Vec<StepEvent>>> = Arc::new(Mutex::new(Vec::new()));
    for spec in tenant_specs(w) {
        let sink_events = events.clone();
        scheduler
            .submit_with_progress(
                spec,
                Some(Box::new(move |e| sink_events.lock().unwrap().push(e))),
            )
            .expect("submit");
    }
    println!(
        "\n== {label}: {} tenants × {} steps (batch {}, seq {}) on one shared {precision} backbone ==",
        w.n_tenants, w.steps_per_tenant, w.batch, w.seq
    );
    let t0 = Instant::now();
    let reports = scheduler.run_to_completion();
    let wall = t0.elapsed();
    let snap = scheduler.metrics();

    header(&[
        "tenant",
        "steps",
        "steps/s",
        "tok/s",
        "final loss",
        "swap ms/slice",
    ]);
    for (tenant, m) in &snap.per_tenant {
        let final_loss = reports
            .iter()
            .find(|r| &r.tenant == tenant)
            .map_or(f32::NAN, |r| r.final_loss());
        row(&[
            tenant.clone(),
            m.steps.to_string(),
            format!("{:.2}", m.steps_per_sec()),
            format!("{:.0}", m.tokens_per_sec()),
            format!("{final_loss:.4}"),
            format!("{:.2}", m.swap.as_secs_f64() * 1e3 / m.slices.max(1) as f64),
        ]);
    }
    let adapter_params: usize = reports.iter().map(|r| r.adapter_params).sum();
    println!(
        "aggregate: {} steps in {} ms → {:.2} steps/s, {:.0} tok/s, utilisation {:.0}%",
        snap.total_steps,
        fmt_ms(wall),
        snap.total_steps as f64 / wall.as_secs_f64(),
        snap.total_tokens as f64 / wall.as_secs_f64(),
        100.0 * snap.utilisation(),
    );
    println!(
        "marginal per-tenant state: {} params total across {} adapters ({:.2}% of one backbone)",
        adapter_params,
        w.n_tenants,
        100.0 * adapter_params as f64 / ModelConfig::opt_sim_small().param_count() as f64,
    );

    // Smoke-gate checks: completion, finite losses, the scheduler actually
    // did work. Collected regardless; main() only enforces them on --smoke.
    let mut violations = Vec::new();
    if reports.len() != w.n_tenants {
        violations.push(format!(
            "{label}: {} of {} tenants completed",
            reports.len(),
            w.n_tenants
        ));
    }
    for r in &reports {
        if r.steps != w.steps_per_tenant {
            violations.push(format!(
                "{label}/{}: {} of {} steps",
                r.tenant, r.steps, w.steps_per_tenant
            ));
        }
        if !r.losses.iter().all(|l| l.is_finite()) {
            violations.push(format!("{label}/{}: non-finite loss", r.tenant));
        }
    }
    if snap.utilisation() <= 0.0 {
        violations.push(format!("{label}: zero utilisation"));
    }
    // Serve-progress checks: one event per step per tenant, mirroring the
    // report's losses, with the configured accumulation factor.
    let events = events.lock().unwrap();
    // Step-latency percentiles across all tenants of this arm — the tail
    // matters under interleaving, and a mean hides it.
    let lat = Histogram::new();
    for e in events.iter() {
        lat.record_duration(e.step_time);
    }
    println!();
    header(&["arm", "steps", "step p50 ms", "step p99 ms"]);
    row(&[
        label.to_string(),
        lat.count().to_string(),
        format!("{:.2}", lat.p50() as f64 / 1e6),
        format!("{:.2}", lat.p99() as f64 / 1e6),
    ]);
    for r in &reports {
        let tenant_events: Vec<&StepEvent> =
            events.iter().filter(|e| e.tenant == r.tenant).collect();
        if tenant_events.len() != r.losses.len() {
            violations.push(format!(
                "{label}/{}: {} progress events for {} steps",
                r.tenant,
                tenant_events.len(),
                r.losses.len()
            ));
            continue;
        }
        for (i, e) in tenant_events.iter().enumerate() {
            if e.loss != r.losses[i] || !e.loss.is_finite() {
                violations.push(format!(
                    "{label}/{}: event {} loss {} != report {}",
                    r.tenant, i, e.loss, r.losses[i]
                ));
            }
            if e.micro_batches != w.micro_batches {
                violations.push(format!(
                    "{label}/{}: event {} accumulated {} micro-batches, expected {}",
                    r.tenant, i, e.micro_batches, w.micro_batches
                ));
            }
        }
    }
    violations
}

fn main() {
    let cli = BenchCli::parse("serve_throughput");
    let smoke = cli.smoke;
    let w = if smoke { &SMOKE } else { &FULL };
    // Default to the production storage plan (half-stored shared backbone);
    // `--precision f32` keeps the trajectory comparable with older runs.
    let precision = cli.precision();
    println!("== serve_throughput: multi-tenant PEFT serving benchmark ({precision} backbone) ==");
    let trace_path = cli.value("--trace").map(PathBuf::from);
    let trace_session = trace_path
        .as_ref()
        .map(|_| TraceSession::start().expect("serve_throughput --trace: session already active"));
    let registry = Arc::new(AdapterRegistry::in_memory());
    let mut violations = run(
        w,
        StepMode::Sparse,
        precision,
        registry.clone(),
        "long-exposure (sparse)",
    );
    // Fresh registry for the dense arm so tenants cold-start identically.
    violations.extend(run(
        w,
        StepMode::Dense,
        precision,
        Arc::new(AdapterRegistry::in_memory()),
        "dense baseline",
    ));
    println!(
        "\nregistry now holds {} adapters; predictors shared: {}",
        registry.len(),
        registry.predictors().is_some(),
    );
    if let (Some(session), Some(path)) = (trace_session, trace_path.as_ref()) {
        let trace = session.finish();
        match trace.write_chrome(path) {
            Ok(()) => println!(
                "wrote Chrome trace to {} ({} spans, {} dropped) — load in Perfetto",
                path.display(),
                trace.records.len(),
                trace.dropped
            ),
            Err(e) => eprintln!(
                "serve_throughput: failed to write trace {}: {e}",
                path.display()
            ),
        }
    }
    cli.finish();
    if smoke && !violations.is_empty() {
        for v in &violations {
            eprintln!("serve_throughput smoke gate: {v}");
        }
        std::process::exit(1);
    }
}
