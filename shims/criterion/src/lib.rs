//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Keeps the macro/builder surface (`criterion_group!`, `criterion_main!`,
//! `Criterion::bench_function`, benchmark groups, `BenchmarkId`) so the bench
//! sources compile unchanged, but implements a simple harness: warm up for
//! `warm_up_time`, then time `sample_size` samples and report min / median /
//! mean to stdout. No plots, no statistics beyond that.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self, name, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_bench(self.criterion, &label, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_bench(self.criterion, &label, &mut |b: &mut Bencher| {
            b_input(&mut f, b, input)
        });
        self
    }

    pub fn finish(self) {}
}

fn b_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(f: &mut F, b: &mut Bencher, input: &I) {
    f(b, input)
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

pub struct Bencher {
    samples: Vec<Duration>,
    mode: Mode,
    deadline: Instant,
    target_samples: usize,
}

enum Mode {
    WarmUp,
    Measure,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        match self.mode {
            Mode::WarmUp => {
                while Instant::now() < self.deadline {
                    std::hint::black_box(f());
                }
            }
            Mode::Measure => {
                for _ in 0..self.target_samples {
                    let t = Instant::now();
                    std::hint::black_box(f());
                    self.samples.push(t.elapsed());
                    if Instant::now() > self.deadline && self.samples.len() >= 2 {
                        break;
                    }
                }
            }
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(config: &Criterion, label: &str, f: &mut F) {
    let mut warm = Bencher {
        samples: Vec::new(),
        mode: Mode::WarmUp,
        deadline: Instant::now() + config.warm_up_time,
        target_samples: 0,
    };
    f(&mut warm);
    let mut bench = Bencher {
        samples: Vec::with_capacity(config.sample_size),
        mode: Mode::Measure,
        deadline: Instant::now() + config.measurement_time,
        target_samples: config.sample_size,
    };
    f(&mut bench);
    let mut samples = bench.samples;
    if samples.is_empty() {
        println!("{label:<48} no samples collected");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{label:<48} min {:>10} median {:>10} mean {:>10} ({} samples)",
        fmt(min),
        fmt(median),
        fmt(mean),
        samples.len()
    );
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                {
                    let mut c = $config;
                    $target(&mut c);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10))
    }

    #[test]
    fn bench_function_runs_closure() {
        let mut c = quick();
        let mut calls = 0u64;
        c.bench_function("t", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn group_with_input_runs() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        let mut total = 0u64;
        group.bench_with_input(BenchmarkId::new("f", 7), &7u64, |b, &x| {
            b.iter(|| total += x)
        });
        group.finish();
        assert!(total > 0);
    }
}
