//! Durable adapter + shared-predictor store.
//!
//! Two kinds of state outlive a service process:
//!
//! * **per-tenant adapters** — tiny [`TenantAdapter`] blobs, one per tenant,
//!   written back after every completed job (and readable mid-flight for
//!   warm resume);
//! * **shared predictors** — the calibrated Long Exposure predictor
//!   checkpoint (`long_exposure::checkpoint` format). Calibration is paid
//!   once per backbone and every tenant's sparse training reuses it, which
//!   is the economic core of the shared-backbone design.
//!
//! The registry is `Sync`: the scheduler thread writes while submission
//! threads read. Persistence is optional — `in_memory()` for tests,
//! `open(dir)` for a directory of `<tenant>.lxadpt` files plus
//! `predictors.lxpred`.

use bytes::Bytes;
use lx_peft::TenantAdapter;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

const ADAPTER_EXT: &str = "lxadpt";
const PREDICTOR_FILE: &str = "predictors.lxpred";

pub struct AdapterRegistry {
    dir: Option<PathBuf>,
    adapters: Mutex<BTreeMap<String, Bytes>>,
    predictors: Mutex<Option<Bytes>>,
}

impl AdapterRegistry {
    /// Volatile registry (tests, exploratory runs).
    pub fn in_memory() -> Self {
        AdapterRegistry {
            dir: None,
            adapters: Mutex::new(BTreeMap::new()),
            predictors: Mutex::new(None),
        }
    }

    /// Durable registry rooted at `dir` (created if absent). Existing
    /// adapter and predictor files are loaded eagerly.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut adapters = BTreeMap::new();
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) == Some(ADAPTER_EXT) {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    adapters.insert(stem.to_string(), Bytes::from(std::fs::read(&path)?));
                }
            }
        }
        let pred_path = dir.join(PREDICTOR_FILE);
        let predictors = if pred_path.exists() {
            Some(Bytes::from(std::fs::read(&pred_path)?))
        } else {
            None
        };
        Ok(AdapterRegistry {
            dir: Some(dir),
            adapters: Mutex::new(adapters),
            predictors: Mutex::new(predictors),
        })
    }

    fn adapter_path(&self, tenant: &str) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{tenant}.{ADAPTER_EXT}")))
    }

    fn check_tenant_id(tenant: &str) -> io::Result<()> {
        let ok = !tenant.is_empty()
            && tenant
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_');
        if ok {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("invalid tenant id {tenant:?}"),
            ))
        }
    }

    /// Crash-safe persistence: write to a temp file in the same directory,
    /// then rename over the target. A kill mid-write leaves only a stale
    /// `.tmp`, never a torn blob that would block the tenant after restart.
    fn write_atomic(path: &std::path::Path, data: &[u8]) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, data)?;
        std::fs::rename(&tmp, path)
    }

    /// Store (and persist, if durable) a tenant's adapter.
    pub fn put(&self, tenant: &str, adapter: &TenantAdapter) -> io::Result<()> {
        Self::check_tenant_id(tenant)?;
        let blob = adapter.to_bytes();
        if let Some(path) = self.adapter_path(tenant) {
            Self::write_atomic(&path, &blob)?;
        }
        self.adapters
            .lock()
            .expect("registry lock")
            .insert(tenant.to_string(), blob);
        Ok(())
    }

    /// Fetch and decode a tenant's adapter, if present.
    pub fn get(&self, tenant: &str) -> Result<Option<TenantAdapter>, String> {
        let blob = self
            .adapters
            .lock()
            .expect("registry lock")
            .get(tenant)
            .cloned();
        match blob {
            Some(b) => TenantAdapter::from_bytes(b).map(Some),
            None => Ok(None),
        }
    }

    /// Drop a tenant's adapter from memory and disk.
    pub fn remove(&self, tenant: &str) -> io::Result<bool> {
        let existed = self
            .adapters
            .lock()
            .expect("registry lock")
            .remove(tenant)
            .is_some();
        if existed {
            if let Some(path) = self.adapter_path(tenant) {
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
            }
        }
        Ok(existed)
    }

    pub fn tenants(&self) -> Vec<String> {
        self.adapters
            .lock()
            .expect("registry lock")
            .keys()
            .cloned()
            .collect()
    }

    pub fn len(&self) -> usize {
        self.adapters.lock().expect("registry lock").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Store the shared calibrated-predictor checkpoint.
    pub fn set_predictors(&self, blob: Bytes) -> io::Result<()> {
        if let Some(dir) = &self.dir {
            Self::write_atomic(&dir.join(PREDICTOR_FILE), &blob)?;
        }
        *self.predictors.lock().expect("registry lock") = Some(blob);
        Ok(())
    }

    /// The shared calibrated-predictor checkpoint, if one has been stored.
    pub fn predictors(&self) -> Option<Bytes> {
        self.predictors.lock().expect("registry lock").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lx_model::{ModelConfig, TransformerModel};
    use lx_peft::PeftMethod;

    fn sample_adapter(seed: u64) -> TenantAdapter {
        let mut m = TransformerModel::new(ModelConfig::test_tiny(), 3);
        m.freeze_all();
        TenantAdapter::initialise(&mut m, PeftMethod::lora_default(), seed)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "lx-registry-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn in_memory_put_get_remove() {
        let reg = AdapterRegistry::in_memory();
        assert!(reg.is_empty());
        let a = sample_adapter(1);
        reg.put("alice", &a).unwrap();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.get("alice").unwrap().unwrap(), a);
        assert!(reg.get("bob").unwrap().is_none());
        assert!(reg.remove("alice").unwrap());
        assert!(!reg.remove("alice").unwrap());
        assert!(reg.is_empty());
    }

    #[test]
    fn durable_registry_survives_reopen() {
        let dir = temp_dir("reopen");
        let a = sample_adapter(2);
        let b = sample_adapter(9);
        {
            let reg = AdapterRegistry::open(&dir).unwrap();
            reg.put("alice", &a).unwrap();
            reg.put("bob", &b).unwrap();
            reg.set_predictors(Bytes::from(vec![1u8, 2, 3])).unwrap();
        }
        let reg2 = AdapterRegistry::open(&dir).unwrap();
        assert_eq!(reg2.tenants(), vec!["alice".to_string(), "bob".to_string()]);
        assert_eq!(reg2.get("alice").unwrap().unwrap(), a);
        assert_eq!(reg2.get("bob").unwrap().unwrap(), b);
        assert_eq!(reg2.predictors().unwrap().to_vec(), vec![1u8, 2, 3]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn path_traversal_tenant_ids_rejected() {
        let reg = AdapterRegistry::in_memory();
        let a = sample_adapter(3);
        assert!(reg.put("../evil", &a).is_err());
        assert!(reg.put("", &a).is_err());
        assert!(reg.put("a/b", &a).is_err());
    }
}
