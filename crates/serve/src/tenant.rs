//! The per-tenant execution unit shared by the single-backbone [`Scheduler`]
//! and the replicated `lx-cluster` dispatcher.
//!
//! A [`TenantTask`] owns *all* mutable state of one tenant's job — adapter,
//! optimizer moments, data cursor, pending prefetched batches, per-tenant
//! step workspace — and knows how to run one scheduler slice against any
//! engine wrapping the shared frozen backbone. Because every mutable byte
//! rides inside the task, a task can migrate between backbone replicas
//! (work-stealing) without changing its numerics: the loss stream depends
//! only on the task's own state and the frozen weights.
//!
//! [`run_fused_eval_slice`] is the cross-tenant batch-fusion path: several
//! compatible eval jobs coalesce into one fused [`StepRequest`] via the
//! micro-batch list, with an [`on_micro_batch`] hook swapping each tenant's
//! adapter in before its shard — and the de-fused per-tenant losses are
//! bit-identical to unfused execution ([`StepOutcome::micro_losses`]).
//!
//! [`Scheduler`]: crate::scheduler::Scheduler
//! [`StepRequest`]: lx_model::StepRequest
//! [`StepOutcome::micro_losses`]: lx_model::StepOutcome
//! [`on_micro_batch`]: lx_model::StepRequest::on_micro_batch

use crate::job::{JobReport, JobSpec, StepEvent};
use crate::registry::AdapterRegistry;
use long_exposure::engine::{FinetuneEngine, StepMode};
use lx_data::Batcher;
use lx_model::{prompt_aware_targets, AdamW, MicroBatch, TransformerModel};
use lx_obs::{registry, Histogram, Span};
use lx_peft::TenantAdapter;
use lx_tensor::Workspace;
use std::collections::VecDeque;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Always-on `serve.step.ns` latency histogram across all tenants — one
/// record per scheduled train/eval step, feeding the p50/p99 columns of
/// `serve_throughput --json` and the Prometheus exposition.
pub fn serve_step_histogram() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| registry().histogram("serve.step.ns"))
}

/// Per-step observer for one job: called by the scheduling thread after every
/// training/evaluation step with that step's [`StepEvent`].
pub type ProgressSink = Box<dyn FnMut(StepEvent) + Send>;

/// What one scheduler slice did, in the units [`crate::ServeMetrics`]
/// accounts in.
#[derive(Debug, Clone, Default)]
pub struct SliceOutcome {
    /// Steps executed this slice.
    pub steps: u64,
    /// Tokens consumed (every micro-batch counted).
    pub tokens: u64,
    /// Wall time inside train/eval steps.
    pub busy: Duration,
    /// Adapter attach/detach overhead.
    pub swap: Duration,
    /// Loss of the slice's final step (NaN if the slice ran zero steps).
    pub last_loss: f32,
}

/// One tenant's job: spec, adapter, optimizer, data cursor, prefetch queue
/// and warm per-tenant workspace, plus the slice-execution logic itself.
pub struct TenantTask {
    pub spec: JobSpec,
    adapter: TenantAdapter,
    opt: AdamW,
    batcher: Batcher,
    pending: VecDeque<Vec<u32>>,
    pub steps_done: u64,
    pub losses: Vec<f32>,
    pub busy: Duration,
    progress: Option<ProgressSink>,
    /// Per-tenant step workspace: swapped into the shared backbone for the
    /// tenant's slice (like the adapter) and retained across slices, so a
    /// tenant's steady-state steps stay allocation-free even under
    /// interleaving with differently-shaped tenants — and under migration
    /// between backbone replicas, since the pool travels with the task.
    workspace: Workspace,
    /// When this task last became runnable (admission, or the end of its
    /// previous slice) — the scheduling queue-wait clock.
    pub ready_since: Instant,
}

impl TenantTask {
    /// Validate and admit a job against `engine`'s backbone: resumes from a
    /// registry adapter when one exists for this tenant (same method), else
    /// initialises a fresh adapter. Duplicate-tenant policing is the
    /// caller's job — the task itself has no view of its siblings.
    pub fn admit(
        spec: JobSpec,
        progress: Option<ProgressSink>,
        engine: &mut FinetuneEngine,
        mode: StepMode,
        registry: &AdapterRegistry,
    ) -> Result<Self, String> {
        spec.validate()?;
        if mode == StepMode::Sparse {
            if !engine.calibrated {
                return Err(
                    "sparse serving requires shared predictors: call calibrate_shared() first"
                        .into(),
                );
            }
            // Reject misaligned jobs here rather than panicking mid-slice:
            // the effective sequence (seq + any prompt prefix) must tile
            // into score blocks.
            let prompt_len = spec_prompt_len(&spec);
            let eff = spec.seq + prompt_len;
            let block = engine.config.block_size;
            if !eff.is_multiple_of(block) {
                return Err(format!(
                    "sparse serving needs block-aligned sequences: seq {} + prompt {} = {} is not a multiple of block size {}",
                    spec.seq, prompt_len, eff, block
                ));
            }
        }
        let adapter = match registry.get(&spec.tenant)? {
            Some(existing) => {
                if existing.method != spec.method {
                    return Err(format!(
                        "tenant {} has a stored {} adapter but the job requests {}",
                        spec.tenant,
                        existing.method.name(),
                        spec.method.name()
                    ));
                }
                existing
            }
            None => TenantAdapter::initialise(&mut engine.model, spec.method, spec.adapter_seed),
        };
        let vocab = engine.model.config.vocab_size as u32;
        let batcher = spec.dataset.build_batcher(vocab, spec.stream_len);
        let opt = AdamW::new(spec.lr, 0.01);
        Ok(TenantTask {
            spec,
            adapter,
            opt,
            batcher,
            pending: VecDeque::new(),
            steps_done: 0,
            losses: Vec::new(),
            busy: Duration::ZERO,
            progress,
            workspace: Workspace::from_env(),
            ready_since: Instant::now(),
        })
    }

    pub fn remaining(&self) -> u64 {
        self.spec.steps - self.steps_done
    }

    /// Batches one step consumes (micro-batch accumulation draws several).
    pub fn batches_per_step(&self) -> usize {
        self.spec.micro_batches
    }

    /// Fill the pending-batch queue up to `depth` *steps* worth of batches.
    pub fn prefetch(&mut self, depth: usize) {
        let want = (depth * self.batches_per_step())
            .min(self.remaining() as usize * self.batches_per_step());
        while self.pending.len() < want {
            let ids = self.batcher.next_batch(self.spec.batch, self.spec.seq);
            self.pending.push_back(ids);
        }
    }

    /// Whether the pending queue is below `depth` steps' worth of batches
    /// (the prefetcher's "needs work" predicate).
    pub fn wants_prefetch(&self, depth: usize) -> bool {
        self.pending.len() < (depth * self.batches_per_step()).min(self.remaining() as usize)
    }

    fn next_ids(&mut self) -> Vec<u32> {
        self.pending
            .pop_front()
            .unwrap_or_else(|| self.batcher.next_batch(self.spec.batch, self.spec.seq))
    }

    /// The tenant's current adapter (persist with
    /// [`AdapterRegistry::put`] on completion).
    pub fn adapter(&self) -> &TenantAdapter {
        &self.adapter
    }

    /// Step-workspace reuse counters (hits/misses/recycled) of the task's
    /// warm per-tenant pool.
    pub fn workspace_stats(&self) -> lx_tensor::WorkspaceStats {
        self.workspace.stats()
    }

    /// Whether this job can join a cross-tenant fused eval batch: a
    /// stateless eval-only pass with a single micro-batch and no soft-prompt
    /// prefix (a nonzero prompt length would change the fused request's
    /// effective sequence geometry). Jobs fuse when their
    /// [`Self::fusion_key`]s are equal.
    pub fn fusable(&self) -> bool {
        self.spec.eval_only && self.spec.micro_batches == 1 && spec_prompt_len(&self.spec) == 0
    }

    /// Fusion-compatibility key: fusable jobs with the same `(batch, seq)`
    /// shape coalesce into one fused request (precision and plan source are
    /// engine-level on the replica, so they are shared by construction).
    pub fn fusion_key(&self) -> Option<(usize, usize)> {
        self.fusable().then_some((self.spec.batch, self.spec.seq))
    }

    /// Run one time-slice of up to `slice_steps` steps against `engine`:
    /// attach the adapter (inside the task's warm workspace), train or
    /// evaluate, extract + detach, leaving the backbone pristine. The caller
    /// owns plan-cache hygiene: invalidate the engine's cached plan before
    /// this when the previously-served tenant differs.
    pub fn run_slice(
        &mut self,
        engine: &mut FinetuneEngine,
        mode: StepMode,
        slice_steps: u64,
    ) -> SliceOutcome {
        let _slice_span = Span::enter("serve.slice")
            .cat("serve")
            .tenant(&self.spec.tenant);
        let attach_span = Span::enter("serve.attach").cat("serve");
        let t_attach = Instant::now();
        // The tenant's step workspace rides along with its adapter: pooled
        // step buffers stay warm across this tenant's slices. Attaching
        // inside the scope lets the adapter's buffers recycle too.
        engine.model.swap_workspace(&mut self.workspace);
        let adapter = &self.adapter;
        engine.model.workspace_scope(|m| adapter.attach_to(m));
        let mut swap = t_attach.elapsed();
        drop(attach_span);
        let prompt_len = engine.model.embedding.prompt_len();
        let n_steps = slice_steps.min(self.remaining());
        let mut slice_busy = Duration::ZERO;
        let mut last_loss = f32::NAN;
        for _ in 0..n_steps {
            let (batch, seq) = (self.spec.batch, self.spec.seq);
            let micro_ids: Vec<Vec<u32>> = (0..self.batches_per_step())
                .map(|_| self.next_ids())
                .collect();
            let micro_targets: Vec<Vec<i32>> = micro_ids
                .iter()
                .map(|ids| prompt_aware_targets(ids, batch, seq, prompt_len))
                .collect();
            let micros: Vec<MicroBatch<'_>> = micro_ids
                .iter()
                .zip(&micro_targets)
                .map(|(ids, targets)| MicroBatch { ids, targets })
                .collect();
            let t0 = Instant::now();
            let outcome = if self.spec.eval_only {
                engine.eval_step(micros[0].ids, micros[0].targets, batch, seq, mode)
            } else {
                engine.train_step_accum(&micros, batch, seq, &mut self.opt, mode)
            };
            let step_time = t0.elapsed();
            serve_step_histogram().record_duration(step_time);
            slice_busy += step_time;
            last_loss = outcome.loss;
            self.losses.push(outcome.loss);
            self.steps_done += 1;
            if let Some(sink) = &mut self.progress {
                sink(StepEvent {
                    tenant: self.spec.tenant.clone(),
                    step: self.steps_done,
                    total_steps: self.spec.steps,
                    loss: outcome.loss,
                    attn_density: outcome.attn_density,
                    mlp_density: outcome.mlp_density,
                    step_time,
                    micro_batches: outcome.micro_batches,
                    eval: self.spec.eval_only,
                });
            }
        }
        let detach_span = Span::enter("serve.detach").cat("serve");
        let t_detach = Instant::now();
        // Extract and detach inside the tenant scope so the dropped adapter
        // params and their gradient buffers park in the tenant's pool, then
        // hand the workspace back to the task.
        let (method, seed) = (self.spec.method, self.spec.adapter_seed);
        self.adapter = engine.model.workspace_scope(|m| {
            let adapter = TenantAdapter::extract_from(m, method, seed);
            lx_peft::detach(m);
            adapter
        });
        engine.model.swap_workspace(&mut self.workspace);
        swap += t_detach.elapsed();
        drop(detach_span);
        self.busy += slice_busy;
        self.ready_since = Instant::now();
        let tokens = n_steps * (self.spec.batch * self.spec.seq * self.spec.micro_batches) as u64;
        SliceOutcome {
            steps: n_steps,
            tokens,
            busy: slice_busy,
            swap,
            last_loss,
        }
    }

    /// Consume the finished task into its completion report. Persist the
    /// adapter (via [`Self::adapter`]) *before* calling this.
    pub fn into_report(self) -> JobReport {
        JobReport {
            tenant: self.spec.tenant,
            steps: self.steps_done,
            losses: self.losses,
            busy: self.busy,
            adapter_params: self.adapter.num_params(),
        }
    }
}

fn spec_prompt_len(spec: &JobSpec) -> usize {
    match spec.method {
        lx_peft::PeftMethod::PromptTuning { prompt_len } => prompt_len,
        _ => 0,
    }
}

/// Run one *fused* eval slice over several compatible tenants: each step,
/// every task contributes one micro-batch to a single fused `Mode::Eval`
/// [`StepRequest`], and the per-shard `on_micro_batch` hook swaps that
/// tenant's adapter onto the backbone immediately before its shard's
/// forward. The de-fused per-tenant losses come from
/// [`lx_model::StepOutcome::micro_losses`] and are bit-identical to running
/// each job unfused.
///
/// All tasks must be [`TenantTask::fusable`] and share one
/// [`TenantTask::fusion_key`]; the slice runs
/// `slice_steps.min(min remaining)` steps so no job overshoots its budget.
/// Returns one [`SliceOutcome`] per task (busy time split evenly across the
/// fused group).
///
/// [`StepRequest`]: lx_model::StepRequest
pub fn run_fused_eval_slice(
    engine: &mut FinetuneEngine,
    mode: StepMode,
    tasks: &mut [&mut TenantTask],
    slice_steps: u64,
) -> Vec<SliceOutcome> {
    assert!(tasks.len() >= 2, "a fused slice needs at least two jobs");
    let key = tasks[0].fusion_key().expect("fused jobs must be fusable");
    for t in tasks.iter() {
        assert_eq!(
            t.fusion_key(),
            Some(key),
            "fused jobs must share one fusion key"
        );
    }
    let (batch, seq) = key;
    let n_steps = slice_steps.min(tasks.iter().map(|t| t.remaining()).min().unwrap_or(0));
    let k = tasks.len();
    let mut outcomes = vec![
        SliceOutcome {
            last_loss: f32::NAN,
            ..SliceOutcome::default()
        };
        k
    ];
    let _slice_span = Span::enter("serve.slice.fused").cat("serve");
    for _ in 0..n_steps {
        let micro_ids: Vec<Vec<u32>> = tasks.iter_mut().map(|t| t.next_ids()).collect();
        let micro_targets: Vec<Vec<i32>> = micro_ids
            .iter()
            .map(|ids| prompt_aware_targets(ids, batch, seq, 0))
            .collect();
        let micros: Vec<MicroBatch<'_>> = micro_ids
            .iter()
            .zip(&micro_targets)
            .map(|(ids, targets)| MicroBatch { ids, targets })
            .collect();
        // A plan cached against one tenant's adapter context must not be
        // replayed into another tenant's shard; with per-shard inline
        // planning this makes the fused step predict fresh for every shard,
        // exactly like the unfused slices do after a tenant switch.
        engine.invalidate_plan_cache();
        let t0 = Instant::now();
        let outcome = {
            let adapters: Vec<&TenantAdapter> = tasks.iter().map(|t| t.adapter()).collect();
            let mut hook = |m: &mut TransformerModel, i: usize| {
                if i > 0 {
                    lx_peft::detach(m);
                }
                adapters[i].attach_to(m);
            };
            engine.eval_step_fused(&micros, batch, seq, mode, Some(&mut hook))
        };
        // The last shard's adapter is still attached; eval never mutates it,
        // so a plain detach restores the pristine backbone.
        lx_peft::detach(&mut engine.model);
        let step_time = t0.elapsed();
        serve_step_histogram().record_duration(step_time);
        registry().counter("serve.fusion.steps").inc();
        registry().counter("serve.fusion.jobs").add(k as u64);
        let share = step_time / k as u32;
        assert_eq!(outcome.micro_losses.len(), k);
        for (i, task) in tasks.iter_mut().enumerate() {
            let loss = outcome.micro_losses[i];
            task.losses.push(loss);
            task.steps_done += 1;
            outcomes[i].steps += 1;
            outcomes[i].tokens += (batch * seq) as u64;
            outcomes[i].busy += share;
            outcomes[i].last_loss = loss;
            if let Some(sink) = &mut task.progress {
                sink(StepEvent {
                    tenant: task.spec.tenant.clone(),
                    step: task.steps_done,
                    total_steps: task.spec.steps,
                    loss,
                    attn_density: outcome.attn_density,
                    mlp_density: outcome.mlp_density,
                    step_time: share,
                    micro_batches: 1,
                    eval: true,
                });
            }
        }
    }
    for (i, task) in tasks.iter_mut().enumerate() {
        task.busy += outcomes[i].busy;
        task.ready_since = Instant::now();
    }
    outcomes
}
