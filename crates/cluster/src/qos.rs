//! QoS classes, admission quotas and backpressure decisions.

use std::time::Duration;

/// Service class of a submitted job. Classes shape two things: which queue a
/// replica drains first (Interactive before Batch before BestEffort), and
/// how many jobs of the class the cluster admits before pushing back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QosClass {
    /// Latency-sensitive: small quota, always scheduled first.
    Interactive,
    /// Normal fine-tune traffic.
    Batch,
    /// Scavenger class: runs when nothing better is queued, shed first.
    BestEffort,
}

impl QosClass {
    pub const ALL: [QosClass; 3] = [QosClass::Interactive, QosClass::Batch, QosClass::BestEffort];

    /// Queue index, in scheduling-priority order.
    pub fn index(self) -> usize {
        match self {
            QosClass::Interactive => 0,
            QosClass::Batch => 1,
            QosClass::BestEffort => 2,
        }
    }

    /// Base retry hint for quota rejections of this class; scaled by how
    /// oversubscribed the class is when the rejection happens.
    pub fn base_retry(self) -> Duration {
        match self {
            QosClass::Interactive => Duration::from_millis(5),
            QosClass::Batch => Duration::from_millis(50),
            QosClass::BestEffort => Duration::from_millis(250),
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            QosClass::Interactive => "interactive",
            QosClass::Batch => "batch",
            QosClass::BestEffort => "best-effort",
        }
    }
}

/// Per-class admission quotas: the maximum number of jobs of each class the
/// cluster holds (queued + running) before new submissions bounce with
/// [`Submit::Rejected`] instead of growing the queues without bound.
#[derive(Debug, Clone)]
pub struct QosQuotas {
    pub interactive: usize,
    pub batch: usize,
    pub best_effort: usize,
}

impl Default for QosQuotas {
    fn default() -> Self {
        QosQuotas {
            interactive: 64,
            batch: 256,
            best_effort: 1024,
        }
    }
}

impl QosQuotas {
    pub fn limit(&self, class: QosClass) -> usize {
        match class {
            QosClass::Interactive => self.interactive,
            QosClass::Batch => self.batch,
            QosClass::BestEffort => self.best_effort,
        }
    }
}

/// Admission decision for one submission.
#[derive(Debug)]
pub enum Submit {
    /// The job is queued; it will run when a replica picks it up.
    Admitted,
    /// The job was not admitted. `retry_after` is the backpressure hint:
    /// `Some(d)` for transient quota rejections (resubmit after `d`),
    /// `None` for permanent errors (invalid spec, duplicate tenant, method
    /// mismatch) that resubmission cannot fix.
    Rejected {
        reason: String,
        retry_after: Option<Duration>,
    },
}

impl Submit {
    pub fn is_admitted(&self) -> bool {
        matches!(self, Submit::Admitted)
    }
}

/// A job the cluster could not finish (its replica panicked and no healthy
/// replica remained to requeue onto).
#[derive(Debug, Clone)]
pub struct JobFailure {
    pub tenant: String,
    pub error: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_priority_order_and_retry_hints() {
        assert!(QosClass::Interactive.index() < QosClass::Batch.index());
        assert!(QosClass::Batch.index() < QosClass::BestEffort.index());
        assert!(QosClass::Interactive.base_retry() < QosClass::BestEffort.base_retry());
        for (i, c) in QosClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn default_quotas_widen_down_the_priority_ladder() {
        let q = QosQuotas::default();
        assert!(q.limit(QosClass::Interactive) < q.limit(QosClass::Batch));
        assert!(q.limit(QosClass::Batch) < q.limit(QosClass::BestEffort));
    }
}
