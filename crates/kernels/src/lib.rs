//! # lx-kernels — runtime-dispatched GEMM microkernel backends
//!
//! Every dense and block-sparse hot path in this workspace bottoms out in one
//! of three GEMM variants (`C = A·B`, `C = A·Bᵀ`, `C = Aᵀ·B`, all row-major,
//! all with leading dimensions). This crate owns those kernels behind the
//! [`KernelBackend`] trait:
//!
//! * [`Reference`] — the original scalar `i-k-j` loops, kept as the
//!   correctness oracle and the zero-setup-cost arm for small shapes;
//! * [`Packed`] — cache-blocked, panel-packed microkernels (`MR×NR` register
//!   tiles, B-panel reuse across A row blocks, runtime-selected
//!   scalar/AVX2/AVX-512/NEON `std::arch` inner loops — see [`Isa`] and
//!   [`active_isa`]) with the macro-kernel parallelised over the
//!   `lx-parallel` pool (worker-disjoint C row panels, shared packed B);
//! * [`Auto`] — the size-aware dispatcher that picks between them per call
//!   using the installed [`KernelPolicy`] (see the `dispatch` module source
//!   for the policy rationale, `lx_runtime::kernel_policy` for the
//!   cache-model-derived tile shapes, and [`autotune`] for the one-time
//!   measured probe, persisted across restarts via `LX_KERNEL_POLICY`).
//!
//! GEMM entry points come in plain and `_ep` (epilogue-fused) forms: the
//! `_ep` twins take an [`Epilogue`] (bias add, optionally followed by GELU)
//! that is applied inside the write-back while output tiles are cache-hot,
//! eliminating the separate bias/activation passes — bit-identically to the
//! unfused sequence (see the `epilogue` module).
//!
//! Callers outside benchmarks should use the free functions below, which
//! route through the process-wide backend (`LX_KERNEL_BACKEND` ∈
//! `reference | packed | auto`, default `auto`). `lx-tensor::gemm` re-exports
//! the contiguous forms; the sparse operators in `lx-sparse` call the strided
//! forms directly so block and neuron-slab GEMMs hit the same microkernels.

mod backend;
mod dispatch;
mod epilogue;
pub mod half;
mod isa;
mod observe;
mod packed;

pub use backend::{KernelBackend, Reference};
pub use dispatch::{
    auto_choice, autotune, backend, backend_by_name, current_policy, force_scalar, install_policy,
    invalidate_stale_policy, load_policy_json, save_policy_json, Auto, KernelPolicy,
    PersistedPolicy, TileConfig, AUTO, PACKED, POLICY_DTYPES, REFERENCE,
};
pub use epilogue::{apply_epilogue, gelu, Epilogue, GELU_C};
pub use isa::{active_isa, detected_isa, Isa};
pub use observe::{gemm_call_total, Observed};
pub use packed::{simd_active, Packed, MR, NR};
// Quantized-B operands are passed as lx-quant views; re-exported so kernel
// callers need no direct lx-quant dependency.
pub use lx_quant::{NmView, Q4View, Q8View};

std::thread_local! {
    static FORCE_SEQ: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Whether GEMMs issued from the current thread must run without spawning
/// onto the pool: either the caller asked for it via [`with_sequential`], or
/// this thread *is* a pool worker (a nested GEMM dispatching back onto the
/// pool it is running on would oversubscribe or deadlock — this is how
/// `Auto`-routed GEMMs inside `par_rows` tasks stay safe).
pub fn sequential_mode() -> bool {
    FORCE_SEQ.with(|f| f.get()) || lx_parallel::in_worker()
}

/// Run `f` with every GEMM on this thread pinned to the single-threaded
/// path (packing and macro-kernel both stay on the calling thread). Used by
/// benches to measure the 1-thread leg of the parallel scaling gate without
/// re-exec'ing under a different `LX_THREADS`.
pub fn with_sequential<R>(f: impl FnOnce() -> R) -> R {
    FORCE_SEQ.with(|flag| {
        let prev = flag.replace(true);
        let out = f();
        flag.set(prev);
        out
    })
}

/// `C[m,n] = A[m,k]·B[k,n] + beta·C`, contiguous rows.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32], beta: f32) {
    backend().gemm(m, k, n, a, k.max(1), b, n.max(1), c, n.max(1), beta)
}

/// [`gemm`] with a fused [`Epilogue`], contiguous rows.
#[allow(clippy::too_many_arguments)]
pub fn gemm_ep(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    beta: f32,
    ep: Epilogue<'_>,
) {
    backend().gemm_ep(m, k, n, a, k.max(1), b, n.max(1), c, n.max(1), beta, ep)
}

/// [`gemm_nt`] with a fused [`Epilogue`], contiguous rows.
#[allow(clippy::too_many_arguments)]
pub fn gemm_nt_ep(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    beta: f32,
    ep: Epilogue<'_>,
) {
    backend().gemm_nt_ep(m, k, n, a, k.max(1), b, k.max(1), c, n.max(1), beta, ep)
}

/// `C[m,n] = A[m,k]·B[n,k]ᵀ + beta·C`, contiguous rows.
pub fn gemm_nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32], beta: f32) {
    backend().gemm_nt(m, k, n, a, k.max(1), b, k.max(1), c, n.max(1), beta)
}

/// `C[m,n] = A[k,m]ᵀ·B[k,n] + beta·C`, contiguous rows.
pub fn gemm_tn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32], beta: f32) {
    backend().gemm_tn(m, k, n, a, m.max(1), b, n.max(1), c, n.max(1), beta)
}

/// `C[m,n] = A[m,k]·B[k,n] + beta·C` with B stored as f16 bits, contiguous
/// rows. B is decoded to f32 on load/pack; all accumulation stays f32.
pub fn gemm_f16(m: usize, k: usize, n: usize, a: &[f32], b: &[u16], c: &mut [f32], beta: f32) {
    backend().gemm_f16(m, k, n, a, k.max(1), b, n.max(1), c, n.max(1), beta)
}

/// `C[m,n] = A[m,k]·B[n,k]ᵀ + beta·C` with B stored as f16 bits, contiguous
/// rows. Same mixed-precision contract as [`gemm_f16`].
pub fn gemm_nt_f16(m: usize, k: usize, n: usize, a: &[f32], b: &[u16], c: &mut [f32], beta: f32) {
    backend().gemm_nt_f16(m, k, n, a, k.max(1), b, k.max(1), c, n.max(1), beta)
}

/// `C[m,n] = A[m,k]·B[k,n] + beta·C` with B stored block-quantized int8,
/// contiguous rows. B dequantizes to f32 on load/pack; all accumulation
/// stays f32.
pub fn gemm_q8(m: usize, k: usize, n: usize, a: &[f32], b: Q8View<'_>, c: &mut [f32], beta: f32) {
    backend().gemm_q8(m, k, n, a, k.max(1), b, n.max(1), c, n.max(1), beta)
}

/// `C[m,n] = A[m,k]·B[n,k]ᵀ + beta·C` with B stored block-quantized int8,
/// contiguous rows.
pub fn gemm_nt_q8(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: Q8View<'_>,
    c: &mut [f32],
    beta: f32,
) {
    backend().gemm_nt_q8(m, k, n, a, k.max(1), b, k.max(1), c, n.max(1), beta)
}

/// `C[m,n] = A[m,k]·B[k,n] + beta·C` with B stored NF4, contiguous rows.
/// Same mixed-precision contract as [`gemm_q8`].
pub fn gemm_q4(m: usize, k: usize, n: usize, a: &[f32], b: Q4View<'_>, c: &mut [f32], beta: f32) {
    backend().gemm_q4(m, k, n, a, k.max(1), b, n.max(1), c, n.max(1), beta)
}

/// `C[m,n] = A[m,k]·B[n,k]ᵀ + beta·C` with B stored NF4, contiguous rows.
pub fn gemm_nt_q4(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: Q4View<'_>,
    c: &mut [f32],
    beta: f32,
) {
    backend().gemm_nt_q4(m, k, n, a, k.max(1), b, k.max(1), c, n.max(1), beta)
}

/// `C[m,n] = A[m,k]·B[k,n] + beta·C` with B stored N:M structured-sparse
/// (2:4), contiguous rows. The codec is lossless (kept values are exact f32),
/// so every backend must agree bit for bit with decoding B up front and
/// running its own f32 path; the packed backend exploits the structure by
/// skipping all-zero groups at pack time.
pub fn gemm_nm(m: usize, k: usize, n: usize, a: &[f32], b: NmView<'_>, c: &mut [f32], beta: f32) {
    backend().gemm_nm(m, k, n, a, k.max(1), b, n.max(1), c, n.max(1), beta)
}

/// `C[m,n] = A[m,k]·B[n,k]ᵀ + beta·C` with B stored N:M structured-sparse
/// (2:4), contiguous rows. This is the frozen-backbone forward shape: B's
/// sparse axis is the reduction axis, so zero-group skipping removes whole
/// K-group strips from the pack.
pub fn gemm_nt_nm(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: NmView<'_>,
    c: &mut [f32],
    beta: f32,
) {
    backend().gemm_nt_nm(m, k, n, a, k.max(1), b, k.max(1), c, n.max(1), beta)
}

/// [`gemm_nt_nm`] with a fused [`Epilogue`], contiguous rows.
#[allow(clippy::too_many_arguments)]
pub fn gemm_nt_nm_ep(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: NmView<'_>,
    c: &mut [f32],
    beta: f32,
    ep: Epilogue<'_>,
) {
    backend().gemm_nt_nm_ep(m, k, n, a, k.max(1), b, k.max(1), c, n.max(1), beta, ep)
}

/// Strided [`gemm`] on the process-wide backend.
#[allow(clippy::too_many_arguments)]
pub fn gemm_strided(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    c: &mut [f32],
    ldc: usize,
    beta: f32,
) {
    backend().gemm(m, k, n, a, lda, b, ldb, c, ldc, beta)
}

/// Strided [`gemm_nt`] on the process-wide backend.
#[allow(clippy::too_many_arguments)]
pub fn gemm_nt_strided(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    c: &mut [f32],
    ldc: usize,
    beta: f32,
) {
    backend().gemm_nt(m, k, n, a, lda, b, ldb, c, ldc, beta)
}

/// Strided [`gemm_tn`] on the process-wide backend.
#[allow(clippy::too_many_arguments)]
pub fn gemm_tn_strided(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    c: &mut [f32],
    ldc: usize,
    beta: f32,
) {
    backend().gemm_tn(m, k, n, a, lda, b, ldb, c, ldc, beta)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for l in 0..k {
                for j in 0..n {
                    c[i * n + j] += a[i * k + l] * b[l * n + j];
                }
            }
        }
        c
    }

    fn pseudo(n: usize, seed: u32) -> Vec<f32> {
        // Small deterministic pseudo-random values without the rand shim.
        let mut state = seed.wrapping_mul(2654435761).max(1);
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 17;
                state ^= state << 5;
                (state as f32 / u32::MAX as f32) * 2.0 - 1.0
            })
            .collect()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + y.abs()),
                "idx {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn packed_matches_naive_across_edge_shapes() {
        // Shapes straddling the MR/NR register tiles and the KC block.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (5, 7, 15),
            (6, 8, 16),
            (7, 9, 17),
            (13, 300, 33),
            (97, 64, 130),
        ] {
            let a = pseudo(m * k, 1 + m as u32);
            let b = pseudo(k * n, 2 + n as u32);
            let expect = naive(m, k, n, &a, &b);
            let mut c = vec![0.0; m * n];
            PACKED.gemm(m, k, n, &a, k, &b, n, &mut c, n, 0.0);
            assert_close(&c, &expect, 1e-4);
        }
    }

    #[test]
    fn packed_beta_accumulates() {
        let (m, k, n) = (11, 23, 19);
        let a = pseudo(m * k, 3);
        let b = pseudo(k * n, 4);
        let mut c = vec![1.0; m * n];
        PACKED.gemm(m, k, n, &a, k, &b, n, &mut c, n, 2.0);
        let mut expect = naive(m, k, n, &a, &b);
        for v in expect.iter_mut() {
            *v += 2.0;
        }
        assert_close(&c, &expect, 1e-4);
    }

    #[test]
    fn packed_nt_tn_match_reference() {
        let (m, k, n) = (19, 31, 22);
        let a = pseudo(m * k, 5);
        let bt = pseudo(n * k, 6);
        let at = pseudo(k * m, 7);
        let bn = pseudo(k * n, 8);
        let (mut c1, mut c2) = (vec![0.0; m * n], vec![0.0; m * n]);
        PACKED.gemm_nt(m, k, n, &a, k, &bt, k, &mut c1, n, 0.0);
        REFERENCE.gemm_nt(m, k, n, &a, k, &bt, k, &mut c2, n, 0.0);
        assert_close(&c1, &c2, 1e-4);
        c1.fill(0.0);
        c2.fill(0.0);
        PACKED.gemm_tn(m, k, n, &at, m, &bn, n, &mut c1, n, 0.0);
        REFERENCE.gemm_tn(m, k, n, &at, m, &bn, n, &mut c2, n, 0.0);
        assert_close(&c1, &c2, 1e-4);
    }

    #[test]
    fn strided_views_match_contiguous() {
        // C is a window inside a wider buffer; A and B have padded rows.
        let (m, k, n) = (9, 14, 10);
        let (lda, ldb, ldc) = (k + 3, n + 5, n + 7);
        let a = pseudo(m * lda, 9);
        let b = pseudo(k * ldb, 10);
        let mut a_tight = vec![0.0; m * k];
        let mut b_tight = vec![0.0; k * n];
        for i in 0..m {
            a_tight[i * k..(i + 1) * k].copy_from_slice(&a[i * lda..i * lda + k]);
        }
        for l in 0..k {
            b_tight[l * n..(l + 1) * n].copy_from_slice(&b[l * ldb..l * ldb + n]);
        }
        let expect = naive(m, k, n, &a_tight, &b_tight);
        for be in [&PACKED as &dyn KernelBackend, &REFERENCE] {
            let mut c = vec![0.0; (m - 1) * ldc + n];
            be.gemm(m, k, n, &a, lda, &b, ldb, &mut c, ldc, 0.0);
            for i in 0..m {
                assert_close(&c[i * ldc..i * ldc + n], &expect[i * n..(i + 1) * n], 1e-4);
            }
        }
    }

    #[test]
    fn degenerate_dims_are_noops_or_scales() {
        let mut c = vec![3.0; 4];
        // k == 0: C just gets scaled by beta.
        for be in [&PACKED as &dyn KernelBackend, &REFERENCE, &AUTO] {
            c.fill(3.0);
            be.gemm(2, 0, 2, &[], 1, &[], 2, &mut c, 2, 0.5);
            assert_eq!(c, vec![1.5; 4], "{}", be.name());
            be.gemm(0, 3, 0, &[], 3, &[], 1, &mut [], 1, 0.0);
        }
    }

    #[test]
    fn free_functions_dispatch() {
        let (m, k, n) = (64, 64, 64);
        let a = pseudo(m * k, 11);
        let b = pseudo(k * n, 12);
        let mut c = vec![0.0; m * n];
        gemm(m, k, n, &a, &b, &mut c, 0.0);
        assert_close(&c, &naive(m, k, n, &a, &b), 1e-4);
    }

    #[test]
    fn autotune_installs_policy() {
        let p = autotune();
        assert!(p.min_flops_packed > 0);
    }

    #[test]
    fn q8_gemm_matches_dequant_up_front_on_every_backend() {
        // Shapes straddling block boundaries (k·n % 64 != 0) and register
        // tiles.
        for &(m, k, n) in &[(5usize, 7usize, 15usize), (13, 65, 33), (32, 64, 48)] {
            let a = pseudo(m * k, 20 + m as u32);
            let bf = pseudo(k * n, 21 + n as u32);
            let (codes, scales) = lx_quant::q8::quantize(&bf);
            let view = Q8View::new(&codes, &scales);
            // Oracle: dequantize B up front, run the f32 kernel.
            let mut bdq = vec![0.0f32; k * n];
            lx_quant::q8::dequantize(&codes, &scales, &mut bdq);
            let expect = naive(m, k, n, &a, &bdq);
            for be in [&REFERENCE as &dyn KernelBackend, &PACKED, &AUTO] {
                let mut c = vec![0.0; m * n];
                be.gemm_q8(m, k, n, &a, k, view, n, &mut c, n, 0.0);
                assert_close(&c, &expect, 1e-4);
            }
            // Reference must match its own f32 path bit for bit (identical
            // accumulation order — the slab-decode equivalence rests on it).
            let mut c_ref = vec![0.0; m * n];
            let mut c_f32 = vec![0.0; m * n];
            REFERENCE.gemm_q8(m, k, n, &a, k, view, n, &mut c_ref, n, 0.0);
            REFERENCE.gemm(m, k, n, &a, k, &bdq, n, &mut c_f32, n, 0.0);
            for (x, y) in c_ref.iter().zip(&c_f32) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn q4_gemm_matches_dequant_up_front_on_every_backend() {
        for &(m, k, n) in &[(5usize, 7usize, 15usize), (13, 65, 33), (32, 64, 48)] {
            let a = pseudo(m * k, 22 + m as u32);
            let bf = pseudo(k * n, 23 + n as u32);
            let (codes, scales) = lx_quant::nf4::quantize(&bf);
            let view = Q4View::new(&codes, &scales, k * n);
            let mut bdq = vec![0.0f32; k * n];
            lx_quant::nf4::dequantize(&codes, &scales, &mut bdq);
            let expect = naive(m, k, n, &a, &bdq);
            for be in [&REFERENCE as &dyn KernelBackend, &PACKED, &AUTO] {
                let mut c = vec![0.0; m * n];
                be.gemm_q4(m, k, n, &a, k, view, n, &mut c, n, 0.0);
                assert_close(&c, &expect, 1e-4);
            }
        }
    }

    #[test]
    fn quant_nt_variants_match_dequant_up_front() {
        let (m, k, n) = (9, 70, 11); // B is n×k = 770 elements: tail block
        let a = pseudo(m * k, 24);
        let bf = pseudo(n * k, 25);
        let (c8, s8) = lx_quant::q8::quantize(&bf);
        let (c4, s4) = lx_quant::nf4::quantize(&bf);
        let mut bdq = vec![0.0f32; n * k];
        lx_quant::q8::dequantize(&c8, &s8, &mut bdq);
        let mut expect = vec![0.0; m * n];
        REFERENCE.gemm_nt(m, k, n, &a, k, &bdq, k, &mut expect, n, 0.0);
        for be in [&REFERENCE as &dyn KernelBackend, &PACKED, &AUTO] {
            let mut c = vec![0.0; m * n];
            be.gemm_nt_q8(m, k, n, &a, k, Q8View::new(&c8, &s8), k, &mut c, n, 0.0);
            assert_close(&c, &expect, 1e-4);
        }
        lx_quant::nf4::dequantize(&c4, &s4, &mut bdq);
        expect.fill(0.0);
        REFERENCE.gemm_nt(m, k, n, &a, k, &bdq, k, &mut expect, n, 0.0);
        for be in [&REFERENCE as &dyn KernelBackend, &PACKED, &AUTO] {
            let mut c = vec![0.0; m * n];
            let view = Q4View::new(&c4, &s4, n * k);
            be.gemm_nt_q4(m, k, n, &a, k, view, k, &mut c, n, 0.0);
            assert_close(&c, &expect, 1e-4);
        }
    }

    /// Magnitude-prune `v` to 2:4 in place and return it (dense but
    /// N:M-conformant: what the lossless codec round-trips bit-exactly).
    fn round24(mut v: Vec<f32>, rows: usize, cols: usize) -> Vec<f32> {
        lx_quant::nm::round_slice(&mut v, rows, cols, 2, 4);
        v
    }

    #[test]
    fn nm_gemm_matches_decode_up_front_on_every_backend() {
        // Shapes straddling the 4-wide groups, register tiles, and KC: the
        // tail group cases (n % 4 != 0, k % 4 != 0) are load-bearing.
        for &(m, k, n) in &[(5usize, 7usize, 15usize), (13, 65, 33), (32, 64, 48)] {
            let a = pseudo(m * k, 30 + m as u32);
            let bf = round24(pseudo(k * n, 31 + n as u32), k, n);
            let (vals, masks) = lx_quant::nm::encode(&bf, k, n, 2, 4);
            let view = NmView::new(&vals, &masks, k, n, 2, 4);
            // The codec is lossless on a 2:4-conformant matrix: the decoded
            // oracle B is the original bit for bit.
            let mut bdq = vec![0.0f32; k * n];
            lx_quant::nm::decode(&vals, &masks, k, n, 2, 4, &mut bdq);
            assert_eq!(bdq, bf);
            for be in [&REFERENCE as &dyn KernelBackend, &PACKED, &AUTO] {
                let mut c = vec![0.0; m * n];
                be.gemm_nm(m, k, n, &a, k, view, n, &mut c, n, 0.0);
                assert_close(&c, &naive(m, k, n, &a, &bdq), 1e-4);
            }
            // Unlike q8/nf4 there is no quantization error, so each backend
            // must match ITS OWN f32 path bit for bit — Reference because the
            // decode-on-load loops share the f32 accumulation order, Packed
            // because the group-skipping pack fills panels identically to the
            // dense pack of the decoded matrix.
            for be in [&REFERENCE as &dyn KernelBackend, &PACKED] {
                let mut c_nm = vec![0.0; m * n];
                let mut c_f32 = vec![0.0; m * n];
                be.gemm_nm(m, k, n, &a, k, view, n, &mut c_nm, n, 0.0);
                be.gemm(m, k, n, &a, k, &bdq, n, &mut c_f32, n, 0.0);
                for (x, y) in c_nm.iter().zip(&c_f32) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{}", be.name());
                }
            }
        }
    }

    #[test]
    fn nm_nt_gemm_matches_decode_up_front_on_every_backend() {
        // B is n×k: the sparse axis is the reduction axis (the frozen
        // backbone forward shape, where pack-time group skipping pays).
        for &(m, k, n) in &[(5usize, 15usize, 7usize), (13, 33, 65), (8, 1024, 16)] {
            let a = pseudo(m * k, 32 + k as u32);
            let bf = round24(pseudo(n * k, 33 + k as u32), n, k);
            let (vals, masks) = lx_quant::nm::encode(&bf, n, k, 2, 4);
            let view = NmView::new(&vals, &masks, n, k, 2, 4);
            let mut bdq = vec![0.0f32; n * k];
            lx_quant::nm::decode(&vals, &masks, n, k, 2, 4, &mut bdq);
            assert_eq!(bdq, bf);
            let mut expect = vec![0.0; m * n];
            REFERENCE.gemm_nt(m, k, n, &a, k, &bdq, k, &mut expect, n, 0.0);
            for be in [&REFERENCE as &dyn KernelBackend, &PACKED, &AUTO] {
                let mut c = vec![0.0; m * n];
                be.gemm_nt_nm(m, k, n, &a, k, view, k, &mut c, n, 0.0);
                assert_close(&c, &expect, 1e-4);
            }
            for be in [&REFERENCE as &dyn KernelBackend, &PACKED] {
                let mut c_nm = vec![0.0; m * n];
                let mut c_f32 = vec![0.0; m * n];
                be.gemm_nt_nm(m, k, n, &a, k, view, k, &mut c_nm, n, 0.0);
                be.gemm_nt(m, k, n, &a, k, &bdq, k, &mut c_f32, n, 0.0);
                for (x, y) in c_nm.iter().zip(&c_f32) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{}", be.name());
                }
            }
        }
    }

    #[test]
    fn nm_free_functions_dispatch() {
        let (m, k, n) = (16, 64, 64);
        let a = pseudo(m * k, 34);
        let bf = round24(pseudo(n * k, 35), n, k);
        let (vals, masks) = lx_quant::nm::encode(&bf, n, k, 2, 4);
        let view = NmView::new(&vals, &masks, n, k, 2, 4);
        let mut expect = vec![0.0; m * n];
        REFERENCE.gemm_nt(m, k, n, &a, k, &bf, k, &mut expect, n, 0.0);
        let mut c = vec![0.0; m * n];
        gemm_nt_nm(m, k, n, &a, view, &mut c, 0.0);
        assert_close(&c, &expect, 1e-4);
        let bn = round24(pseudo(k * n, 36), k, n);
        let (vn, mn) = lx_quant::nm::encode(&bn, k, n, 2, 4);
        c.fill(0.0);
        gemm_nm(m, k, n, &a, NmView::new(&vn, &mn, k, n, 2, 4), &mut c, 0.0);
        assert_close(&c, &naive(m, k, n, &a, &bn), 1e-4);
    }

    #[test]
    fn quant_free_functions_dispatch() {
        let (m, k, n) = (64, 64, 64);
        let a = pseudo(m * k, 26);
        let bf = pseudo(k * n, 27);
        let (codes, scales) = lx_quant::q8::quantize(&bf);
        let mut bdq = vec![0.0f32; k * n];
        lx_quant::q8::dequantize(&codes, &scales, &mut bdq);
        let mut c = vec![0.0; m * n];
        gemm_q8(m, k, n, &a, Q8View::new(&codes, &scales), &mut c, 0.0);
        assert_close(&c, &naive(m, k, n, &a, &bdq), 1e-4);
    }
}
