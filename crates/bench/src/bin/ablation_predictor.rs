//! **Ablation** (DESIGN.md §4): the predictor design choices of §V —
//! (a) √s sequence downsampling vs full-resolution inputs (cost), and
//! (b) recall-weighted loss + noise augmentation vs plain BCE (quality).
//!
//! These back the paper's two predictor "criteria": efficiency (§V-A) and
//! accuracy under drifting inputs (§V-B).

use long_exposure::exposer::Exposer;
use long_exposure::predictor::{pool_blocks, AttnPredictor, AttnSample};
use lx_bench::{header, row, sim_model, SIM_BLOCK};
use lx_data::e2e::E2eGenerator;
use lx_data::{Batcher, SyntheticWorld};
use lx_model::{CaptureConfig, ModelConfig};
use lx_tensor::Tensor;
use std::time::Instant;

fn main() {
    let cli = lx_bench::BenchCli::parse("ablation_predictor");
    let (batch, seq) = (2, 256);
    let cfg = ModelConfig::opt_sim_small();
    let mut model = sim_model(cfg.clone(), 42);
    let world = SyntheticWorld::new(cfg.vocab_size as u32, 3);
    let mut batcher = Batcher::new(E2eGenerator::new(world).stream(100_000, 0));

    // ---- (a) downsampling cost ----
    println!("== Ablation (a): sequence downsampling (§V-A) ==\n");
    let x = Tensor::randn(&[batch * seq, cfg.d_model], 1.0, 1);
    let pred = {
        let mut p = AttnPredictor::new(cfg.d_model, cfg.n_heads, 8, 2);
        p.set_distance_slopes(lx_model::mha::alibi_slopes(cfg.n_heads), SIM_BLOCK);
        p
    };
    let time_it = |f: &mut dyn FnMut()| {
        f();
        let t0 = Instant::now();
        for _ in 0..10 {
            f();
        }
        t0.elapsed().as_secs_f64() / 10.0
    };
    let t_pooled = time_it(&mut || {
        let _ = pred.predict_masks(&x, batch, seq, SIM_BLOCK);
    });
    // Full resolution: predict at block 1 granularity (s×s score estimate),
    // then coarsen — what a naive flattened predictor would pay.
    let t_full = time_it(&mut || {
        let pooled = pool_blocks(&x, batch, seq, 1); // no pooling
        for sample in &pooled {
            for h in 0..cfg.n_heads {
                let (wq, wk) = &pred.heads[h];
                let q = lx_tensor::gemm::matmul(sample, wq);
                let k = lx_tensor::gemm::matmul(sample, wk);
                let s_hat = lx_tensor::gemm::matmul_nt(&q, &k);
                std::hint::black_box(&s_hat);
            }
        }
    });
    header(&["variant", "time ms", "relative"]);
    row(&[
        "downsampled (block-pooled)".into(),
        format!("{:.3}", t_pooled * 1e3),
        "1.0x".into(),
    ]);
    row(&[
        "full resolution".into(),
        format!("{:.3}", t_full * 1e3),
        format!("{:.1}x", t_full / t_pooled),
    ]);
    println!("\nshape to check: full-resolution prediction costs ~(s/block)² more score work.\n");

    // ---- (b) training options quality ----
    println!("== Ablation (b): recall weighting + noise augmentation (§V-B) ==\n");
    let ids = batcher.next_batch(batch, seq);
    let caps = model
        .execute(lx_model::StepRequest::capture(
            &ids,
            batch,
            seq,
            CaptureConfig {
                attn: true,
                mlp: false,
            },
        ))
        .captures
        .expect("capture mode records captures");
    let exposer = Exposer::new(SIM_BLOCK, 8.0 / seq as f32, 0.3);
    // Build per-sample attention training sets from layer 0.
    let cap = &caps[0];
    let block_input = cap.block_input.as_ref().unwrap();
    let probs = cap.attn_probs.as_ref().unwrap();
    let pooled = pool_blocks(block_input, batch, seq, SIM_BLOCK);
    let eff = seq;
    let mut samples = Vec::new();
    for (b, pooled_b) in pooled.iter().enumerate() {
        let start = b * cfg.n_heads * eff;
        let slice = Tensor::from_vec(
            probs.as_slice()[start * eff..(start + cfg.n_heads * eff) * eff].to_vec(),
            &[cfg.n_heads * eff, eff],
        );
        samples.push(AttnSample {
            pooled: pooled_b.clone(),
            targets: exposer.attention_head_masks(&slice, 1, cfg.n_heads, eff),
        });
    }
    header(&["training variant", "recall", "precision"]);
    for (name, pos_weight, noise) in [
        ("plain BCE", 1.0f32, 0.0f32),
        ("recall-weighted", 4.0, 0.0),
        ("recall-weighted + noise", 4.0, 0.05),
    ] {
        let mut p = AttnPredictor::new(cfg.d_model, cfg.n_heads, 8, 7);
        p.set_distance_slopes(lx_model::mha::alibi_slopes(cfg.n_heads), SIM_BLOCK);
        for e in 0..120 {
            p.train_epoch(&samples, 0.5, noise, pos_weight, e);
        }
        let (r, pr) = p.evaluate(&samples);
        row(&[
            name.into(),
            format!("{:.1}%", 100.0 * r),
            format!("{:.1}%", 100.0 * pr),
        ]);
    }
    println!("\nshape to check: recall weighting buys recall (the metric that protects accuracy) at some precision cost.");
    cli.finish();
}
