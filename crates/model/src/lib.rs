//! Transformer substrate with explicit, hand-written forward/backward passes.
//!
//! The paper's analysis (§II-C, §II-D) reasons about exactly where sparsity
//! enters the backward pass; a tape autograd would hide that. Every module
//! here caches its forward intermediates and implements `backward` by hand,
//! so the sparse execution paths (block-sparse attention, neuron-sparse MLP)
//! can skip precisely the computations the paper proves skippable.
//!
//! Execution goes through one typed API (see [`exec`]): a [`StepRequest`]
//! names the mode (train / grad-accumulate / eval / capture / score), the
//! plan source ([`PlanSource`]: dense baseline, a pre-built [`SparsePlan`],
//! or an inline [`LayerPlanner`] — the Long Exposure path), and optional
//! micro-batches; [`TransformerModel::execute`] runs it and returns a
//! [`StepOutcome`] with loss, timings and densities. Modules cache the
//! layout they ran with, so the backward phase needs no plan.

pub mod block;
pub mod config;
pub mod embedding;
pub mod exec;
pub mod layernorm;
pub mod linear;
pub mod loss;
pub mod mha;
pub mod mlp;
pub mod model;
pub mod optim;
pub mod param;
pub mod plan;
pub mod precision;

pub use config::{Activation, ModelConfig};
pub use exec::{
    score_continuation, score_parts, MicroBatch, Mode, PlanSource, PrepareHook, StepOutcome,
    StepRequest,
};
pub use model::{
    prompt_aware_targets, CaptureConfig, Captures, LayerCapture, LayerPlanner, TransformerModel,
};
pub use optim::{clip_grad_norm, Adam, AdamW, LossScaler, LrSchedule, Optimizer, Scheduled, Sgd};
pub use param::Param;
pub use plan::{LayerPlan, SparsePlan};
pub use precision::Precision;
