//! SDD / DSD block-sparse attention kernels (paper §VI-A).
//!
//! Sparse attention decomposes into two block-sparse matmuls:
//! `S = Q·Kᵀ` where only masked blocks of S are produced (**SDD**: sparse =
//! dense × dense), and `O = P·V` where a block-sparse P multiplies a dense V
//! (**DSD**). The backward pass reuses the same layout: `dP = dO·Vᵀ` is
//! another SDD, `dV = Pᵀ·dO` and `dK = dSᵀ·Q` are transposed DSDs driven by
//! the CSC view of the lookup table.
//!
//! Block data convention: CSR entry `e` of a layout owns
//! `data[e·b² .. (e+1)·b²]`, row-major within the block. Entries of one
//! block-row are contiguous, so row-wise softmax touches a contiguous span.
//!
//! Every per-block product is issued through the `lx-kernels`
//! [`KernelBackend`](lx_kernels::KernelBackend) as a strided GEMM, so block-sparse work and dense work
//! hit the *same* microkernels and the dispatcher decides per block shape
//! whether packing pays off. Task-level parallelism splits block-rows (or
//! block-columns for the transposed kernels) with the safe
//! `lx_parallel::{par_rows, par_disjoint}` helpers.

use crate::layout::BlockCsr;
use lx_parallel::{par_disjoint, par_rows};
use std::ops::Range;

/// What to write into causally-masked positions of diagonal blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CausalFill {
    /// `-∞`: for attention *scores*, so softmax zeroes them.
    NegInf,
    /// `0`: for gradients flowing through masked positions.
    Zero,
    /// Leave untouched (pattern already handles masking).
    None,
}

fn fill_value(fill: CausalFill) -> Option<f32> {
    match fill {
        CausalFill::NegInf => Some(f32::NEG_INFINITY),
        CausalFill::Zero => Some(0.0),
        CausalFill::None => None,
    }
}

fn check_dims(layout: &BlockCsr, s: usize) {
    let b = layout.block_size;
    assert_eq!(
        s,
        layout.n_brows * b,
        "sequence length {s} != {} blocks × {b}",
        layout.n_brows
    );
    assert_eq!(
        layout.n_brows, layout.n_bcols,
        "attention layouts are square"
    );
}

/// Per-block-row spans of the CSR block data (entry `e` owns `b²` elements).
fn row_data_spans(layout: &BlockCsr) -> Vec<Range<usize>> {
    let bb = layout.block_size * layout.block_size;
    (0..layout.n_brows)
        .map(|br| layout.row_ptr[br] as usize * bb..layout.row_ptr[br + 1] as usize * bb)
        .collect()
}

/// SDD: `out_blocks = scale · A·Bᵀ` on active blocks only.
///
/// `a` and `b_mat` are `s×dh` row-major (Q and K for the forward scores;
/// dO and V for the `dP` backward). `out` must have `layout.data_len()`
/// elements. Masked positions of diagonal blocks get `fill`.
#[allow(clippy::too_many_arguments)]
pub fn sdd_nt(
    a: &[f32],
    b_mat: &[f32],
    s: usize,
    dh: usize,
    scale: f32,
    layout: &BlockCsr,
    fill: CausalFill,
    out: &mut [f32],
) {
    check_dims(layout, s);
    let b = layout.block_size;
    assert_eq!(a.len(), s * dh, "SDD: A is s×dh");
    assert_eq!(b_mat.len(), s * dh, "SDD: B is s×dh");
    assert_eq!(out.len(), layout.data_len(), "SDD: out sized to layout");
    let fillv = fill_value(fill);
    let be = lx_kernels::backend();
    let bb = b * b;
    let spans = row_data_spans(layout);
    // One task per run of block-rows: a row's entries own disjoint,
    // contiguous `out` spans.
    let grain = ((1 << 14) / (bb * dh).max(1)).max(1);
    par_disjoint(out, &spans, grain, |brs, chunk| {
        let base = spans[brs.start].start;
        for br in brs {
            let a_rows = &a[br * b * dh..(br + 1) * b * dh];
            for e in layout.row_entries(br) {
                let bc = layout.col_idx[e] as usize;
                let blk = &mut chunk[e * bb - base..(e + 1) * bb - base];
                let b_rows = &b_mat[bc * b * dh..(bc + 1) * b * dh];
                be.gemm_nt(b, dh, b, a_rows, dh, b_rows, dh, blk, b, 0.0);
                if scale != 1.0 {
                    for v in blk.iter_mut() {
                        *v *= scale;
                    }
                }
                if let Some(fv) = fillv {
                    // Causal masking at element granularity. Diagonal blocks
                    // compute the full b×b product and then overwrite the
                    // masked half — the vectorised block GEMM beats the old
                    // skip-per-element scalar loop even doing 2× the MACs.
                    for i in 0..b {
                        let first_masked = (br * b + i + 1).saturating_sub(bc * b).min(b);
                        for v in &mut blk[i * b + first_masked..(i + 1) * b] {
                            *v = fv;
                        }
                    }
                }
            }
        }
    });
}

/// DSD: `out[s×dh] = P · V` where P is block-sparse data over `layout`.
pub fn dsd(p: &[f32], v: &[f32], s: usize, dh: usize, layout: &BlockCsr, out: &mut [f32]) {
    check_dims(layout, s);
    let b = layout.block_size;
    assert_eq!(p.len(), layout.data_len(), "DSD: P sized to layout");
    assert_eq!(v.len(), s * dh, "DSD: V is s×dh");
    assert_eq!(out.len(), s * dh, "DSD: out is s×dh");
    let be = lx_kernels::backend();
    let bb = b * b;
    let grain = ((1 << 14) / (bb * dh).max(1)).max(1);
    // One task per run of block-rows; each owns `b` contiguous output rows.
    par_rows(out, layout.n_brows, b * dh, grain, |brs, chunk| {
        for br in brs.clone() {
            let local = (br - brs.start) * b * dh;
            let out_rows = &mut chunk[local..local + b * dh];
            out_rows.fill(0.0);
            for e in layout.row_entries(br) {
                let bc = layout.col_idx[e] as usize;
                let p_blk = &p[e * bb..(e + 1) * bb];
                let v_rows = &v[bc * b * dh..(bc + 1) * b * dh];
                be.gemm(b, b, dh, p_blk, b, v_rows, dh, out_rows, dh, 1.0);
            }
        }
    });
}

/// Transposed DSD: `out[s×dh] = Pᵀ · X` via the CSC view
/// (`dV = Pᵀ·dO`, `dK = dSᵀ·Q`).
pub fn dsd_tn(p: &[f32], x: &[f32], s: usize, dh: usize, layout: &BlockCsr, out: &mut [f32]) {
    check_dims(layout, s);
    let b = layout.block_size;
    assert_eq!(p.len(), layout.data_len(), "DSD-T: P sized to layout");
    assert_eq!(x.len(), s * dh, "DSD-T: X is s×dh");
    assert_eq!(out.len(), s * dh, "DSD-T: out is s×dh");
    let be = lx_kernels::backend();
    let bb = b * b;
    let grain = ((1 << 14) / (bb * dh).max(1)).max(1);
    // One task per run of block-columns; each owns `b` output rows.
    par_rows(out, layout.n_bcols, b * dh, grain, |bcs, chunk| {
        for bc in bcs.clone() {
            let local = (bc - bcs.start) * b * dh;
            let out_rows = &mut chunk[local..local + b * dh];
            out_rows.fill(0.0);
            for e2 in layout.col_entries(bc) {
                let br = layout.row_idx[e2] as usize;
                let e = layout.csc_to_csr[e2] as usize;
                // The stored block is P[br, bc]; as the A operand of a `tn`
                // GEMM it is read transposed, exactly what `Pᵀ` needs.
                let p_blk = &p[e * bb..(e + 1) * bb];
                let x_rows = &x[br * b * dh..(br + 1) * b * dh];
                be.gemm_tn(b, b, dh, p_blk, b, x_rows, dh, out_rows, dh, 1.0);
            }
        }
    });
}

/// Row-wise softmax over block-sparse score data. `-∞` entries become 0;
/// rows with no active blocks stay empty.
pub fn block_row_softmax(data: &mut [f32], layout: &BlockCsr) {
    let b = layout.block_size;
    assert_eq!(data.len(), layout.data_len());
    let spans = row_data_spans(layout);
    par_disjoint(data, &spans, 1, |brs, chunk| {
        let base = spans[brs.start].start;
        for br in brs {
            let entries = layout.row_entries(br);
            if entries.is_empty() {
                continue;
            }
            let span = &mut chunk[spans[br].start - base..spans[br].end - base];
            let n_entries = entries.len();
            for i in 0..b {
                // Pass 1: max.
                let mut max = f32::NEG_INFINITY;
                for e in 0..n_entries {
                    for &v in &span[e * b * b + i * b..e * b * b + (i + 1) * b] {
                        max = max.max(v);
                    }
                }
                if max == f32::NEG_INFINITY {
                    for e in 0..n_entries {
                        span[e * b * b + i * b..e * b * b + (i + 1) * b].fill(0.0);
                    }
                    continue;
                }
                // Pass 2: exp + sum.
                let mut sum = 0.0f32;
                for e in 0..n_entries {
                    for v in span[e * b * b + i * b..e * b * b + (i + 1) * b].iter_mut() {
                        *v = (*v - max).exp();
                        sum += *v;
                    }
                }
                let inv = 1.0 / sum;
                for e in 0..n_entries {
                    for v in span[e * b * b + i * b..e * b * b + (i + 1) * b].iter_mut() {
                        *v *= inv;
                    }
                }
            }
        }
    });
}

/// Backward of [`block_row_softmax`]: `dx = y ⊙ (dy − ⟨y, dy⟩_row)`.
pub fn block_row_softmax_backward(y: &[f32], dy: &[f32], layout: &BlockCsr, dx: &mut [f32]) {
    let b = layout.block_size;
    assert_eq!(y.len(), layout.data_len());
    assert_eq!(dy.len(), layout.data_len());
    assert_eq!(dx.len(), layout.data_len());
    let spans = row_data_spans(layout);
    par_disjoint(dx, &spans, 1, |brs, chunk| {
        let base = spans[brs.start].start;
        for br in brs {
            let entries = layout.row_entries(br);
            for i in 0..b {
                let mut dot = 0.0f32;
                for e in entries.clone() {
                    let off = e * b * b + i * b;
                    for t in 0..b {
                        dot += y[off + t] * dy[off + t];
                    }
                }
                for e in entries.clone() {
                    let off = e * b * b + i * b;
                    let dx_row = &mut chunk[off - base..off - base + b];
                    for t in 0..b {
                        dx_row[t] = y[off + t] * (dy[off + t] - dot);
                    }
                }
            }
        }
    });
}

/// Expand block data to a dense `s×s` matrix (tests & visualisation).
pub fn block_data_to_dense(data: &[f32], layout: &BlockCsr) -> Vec<f32> {
    let b = layout.block_size;
    let s = layout.n_brows * b;
    let mut dense = vec![0.0; s * s];
    for br in 0..layout.n_brows {
        for e in layout.row_entries(br) {
            let bc = layout.col_idx[e] as usize;
            for i in 0..b {
                for j in 0..b {
                    dense[(br * b + i) * s + (bc * b + j)] = data[e * b * b + i * b + j];
                }
            }
        }
    }
    dense
}

/// Gather a dense `s×s` matrix into block data over `layout` (tests).
pub fn dense_to_block_data(dense: &[f32], layout: &BlockCsr) -> Vec<f32> {
    let b = layout.block_size;
    let s = layout.n_brows * b;
    assert_eq!(dense.len(), s * s);
    let mut data = vec![0.0; layout.data_len()];
    for br in 0..layout.n_brows {
        for e in layout.row_entries(br) {
            let bc = layout.col_idx[e] as usize;
            for i in 0..b {
                for j in 0..b {
                    data[e * b * b + i * b + j] = dense[(br * b + i) * s + (bc * b + j)];
                }
            }
        }
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::PatternSpec;
    use lx_tensor::ops::{apply_causal_mask, softmax_rows};
    use lx_tensor::rng::randn_vec;

    const B: usize = 4;
    const S: usize = 16; // 4 block rows
    const DH: usize = 8;

    fn dot(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    fn layout(spec: PatternSpec) -> BlockCsr {
        BlockCsr::from_mask(&spec.mask(S / B), B)
    }

    fn dense_reference(
        q: &[f32],
        k: &[f32],
        v: &[f32],
        mask: &crate::BlockMask,
    ) -> (Vec<f32>, Vec<f32>) {
        // Dense path with block-mask + causal applied as -inf.
        let scale = 1.0 / (DH as f32).sqrt();
        let mut scores = vec![0.0f32; S * S];
        for i in 0..S {
            for j in 0..S {
                scores[i * S + j] = scale * dot(&q[i * DH..(i + 1) * DH], &k[j * DH..(j + 1) * DH]);
                if !mask.get(i / B, j / B) {
                    scores[i * S + j] = f32::NEG_INFINITY;
                }
            }
        }
        apply_causal_mask(&mut scores, S);
        softmax_rows(&mut scores, S);
        let mut out = vec![0.0f32; S * DH];
        for i in 0..S {
            for j in 0..S {
                let p = scores[i * S + j];
                for t in 0..DH {
                    out[i * DH + t] += p * v[j * DH + t];
                }
            }
        }
        (scores, out)
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + y.abs()),
                "idx {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn sparse_attention_matches_dense_on_causal_pattern() {
        let q = randn_vec(S * DH, 1.0, 1);
        let k = randn_vec(S * DH, 1.0, 2);
        let v = randn_vec(S * DH, 1.0, 3);
        for spec in [
            PatternSpec::Causal,
            PatternSpec::LocalWindow { w: 2 },
            PatternSpec::LocalGlobal { w: 1, g: 1 },
            PatternSpec::Strided { w: 1, stride: 2 },
        ] {
            let lay = layout(spec);
            let scale = 1.0 / (DH as f32).sqrt();
            let mut p = vec![0.0; lay.data_len()];
            sdd_nt(&q, &k, S, DH, scale, &lay, CausalFill::NegInf, &mut p);
            block_row_softmax(&mut p, &lay);
            let mut out = vec![0.0; S * DH];
            dsd(&p, &v, S, DH, &lay, &mut out);

            let (dense_scores, dense_out) = dense_reference(&q, &k, &v, &lay.to_mask());
            let sparse_scores = block_data_to_dense(&p, &lay);
            assert_close(&sparse_scores, &dense_scores, 1e-4);
            assert_close(&out, &dense_out, 1e-4);
        }
    }

    #[test]
    fn dsd_tn_is_transpose_of_dsd() {
        let lay = layout(PatternSpec::LocalGlobal { w: 2, g: 1 });
        let p = randn_vec(lay.data_len(), 1.0, 4);
        let x = randn_vec(S * DH, 1.0, 5);
        let mut out = vec![0.0; S * DH];
        dsd_tn(&p, &x, S, DH, &lay, &mut out);
        // Reference: dense transpose multiply.
        let dense_p = block_data_to_dense(&p, &lay);
        let mut expect = vec![0.0; S * DH];
        for i in 0..S {
            for j in 0..S {
                let pv = dense_p[i * S + j];
                for t in 0..DH {
                    expect[j * DH + t] += pv * x[i * DH + t];
                }
            }
        }
        assert_close(&out, &expect, 1e-4);
    }

    #[test]
    fn softmax_backward_matches_dense_reference() {
        let lay = layout(PatternSpec::LocalWindow { w: 2 });
        let q = randn_vec(S * DH, 1.0, 6);
        let k = randn_vec(S * DH, 1.0, 7);
        let mut scores = vec![0.0; lay.data_len()];
        sdd_nt(&q, &k, S, DH, 0.5, &lay, CausalFill::NegInf, &mut scores);
        let mut y = scores.clone();
        block_row_softmax(&mut y, &lay);
        let dy = randn_vec(lay.data_len(), 1.0, 8);
        let mut dx = vec![0.0; lay.data_len()];
        block_row_softmax_backward(&y, &dy, &lay, &mut dx);

        // Dense reference row by row.
        let dense_y = block_data_to_dense(&y, &lay);
        let dense_dy = block_data_to_dense(&dy, &lay);
        let mut dense_dx = vec![0.0; S * S];
        for r in 0..S {
            // Only positions active in the layout participate.
            let mut dot = 0.0;
            for c in 0..S {
                if lay.to_mask().get(r / B, c / B) {
                    dot += dense_y[r * S + c] * dense_dy[r * S + c];
                }
            }
            for c in 0..S {
                if lay.to_mask().get(r / B, c / B) {
                    dense_dx[r * S + c] = dense_y[r * S + c] * (dense_dy[r * S + c] - dot);
                }
            }
        }
        let sparse_dx = block_data_to_dense(&dx, &lay);
        assert_close(&sparse_dx, &dense_dx, 1e-4);
    }

    #[test]
    fn causal_fill_zero_for_gradients() {
        let lay = layout(PatternSpec::Causal);
        let a = randn_vec(S * DH, 1.0, 9);
        let b = randn_vec(S * DH, 1.0, 10);
        let mut out = vec![f32::NAN; lay.data_len()];
        sdd_nt(&a, &b, S, DH, 1.0, &lay, CausalFill::Zero, &mut out);
        let dense = block_data_to_dense(&out, &lay);
        for i in 0..S {
            for j in (i + 1)..S {
                assert_eq!(dense[i * S + j], 0.0, "masked grad at ({i},{j}) must be 0");
            }
        }
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn causal_fill_none_computes_masked_positions() {
        // With `None`, the kernel must fill the whole block with real
        // products (the pattern is trusted to handle masking downstream).
        let lay = layout(PatternSpec::Causal);
        let a = randn_vec(S * DH, 1.0, 20);
        let b = randn_vec(S * DH, 1.0, 21);
        let mut out = vec![f32::NAN; lay.data_len()];
        sdd_nt(&a, &b, S, DH, 1.0, &lay, CausalFill::None, &mut out);
        let dense = block_data_to_dense(&out, &lay);
        for br in 0..S / B {
            for e in lay.row_entries(br) {
                let bc = lay.col_idx[e] as usize;
                for i in 0..B {
                    for j in 0..B {
                        let (gi, gj) = (br * B + i, bc * B + j);
                        let expect = dot(&a[gi * DH..(gi + 1) * DH], &b[gj * DH..(gj + 1) * DH]);
                        assert!((dense[gi * S + gj] - expect).abs() < 1e-4 * (1.0 + expect.abs()));
                    }
                }
            }
        }
    }

    #[test]
    fn block_data_dense_roundtrip() {
        let lay = layout(PatternSpec::LocalGlobal { w: 1, g: 1 });
        let data = randn_vec(lay.data_len(), 1.0, 11);
        let dense = block_data_to_dense(&data, &lay);
        let back = dense_to_block_data(&dense, &lay);
        assert_eq!(data, back);
    }

    #[test]
    fn empty_layout_noops() {
        let mask = crate::BlockMask::square(S / B);
        let lay = BlockCsr::from_mask(&mask, B);
        let q = randn_vec(S * DH, 1.0, 12);
        let mut p: Vec<f32> = vec![];
        sdd_nt(&q, &q, S, DH, 1.0, &lay, CausalFill::NegInf, &mut p);
        block_row_softmax(&mut p, &lay);
        let mut out = vec![7.0; S * DH];
        dsd(&p, &q, S, DH, &lay, &mut out);
        assert!(out.iter().all(|&v| v == 0.0), "no blocks -> zero output");
    }

    #[test]
    fn flops_scale_with_active_blocks() {
        // Not a timing test: verify data_len (proxy for work) is linear in
        // active blocks, the Fig. 12 premise.
        let full = layout(PatternSpec::Causal);
        let narrow = layout(PatternSpec::LocalWindow { w: 1 });
        assert!(full.data_len() > 2 * narrow.data_len());
    }
}
