//! N:M structured-sparse storage: [`NmTensor`].
//!
//! The pruned sibling of [`QuantTensor`](crate::quant::QuantTensor): frozen
//! parameters stored 2:4 structured-sparse (per row-group of 4 elements keep
//! 2) as compacted f32 values plus one index-bitmask byte per group,
//! registered with [`memtrack`] at their true footprint (9 bytes per group
//! of 4 vs 16 for f32 — 0.5625x). Kept values are stored **bit-exactly**,
//! so decoding is lossless on survivors and exact-zero on pruned positions;
//! row decodes are strictly elementwise and bit-identical to a full-buffer
//! decode, the same slab-gather contract the quantized dtypes honour.
//!
//! The mask is first-class: [`NmTensor::masks`] hands it to the
//! sparsity-preserving adapter merge (SPP lineage), which re-applies it
//! after folding LoRA deltas so merged models provably stay 2:4.

use crate::memtrack;
use crate::{Dtype, Tensor};
use lx_quant::nm;
use lx_quant::NmView;

// Codec entry points re-exported so model- and adapter-layer callers (mask
// capture, merge-time re-application, differential-test oracles) need no
// direct lx-quant dependency.
pub use lx_quant::nm::{apply_mask, prune_mask, round_slice};

/// Kept values per group — the `N` of the stored `N:M` pattern.
pub const NM_N: usize = 2;
/// Group size — the `M` of the stored `N:M` pattern.
pub const NM_M: usize = 4;

/// A tensor stored N:M structured-sparse (2:4): compacted kept values, one
/// index-bitmask byte per group, and a shape whose last dimension is the
/// pruning axis (groups never straddle rows).
#[derive(Debug)]
pub struct NmTensor {
    vals: Vec<f32>,
    masks: Vec<u8>,
    shape: Vec<usize>,
    len: usize,
}

impl NmTensor {
    /// Magnitude-prune an f32 slice to 2:4 per row-group. `dtype` must be
    /// [`Dtype::Nm24`]; panics otherwise, or if the length does not match
    /// the shape.
    pub fn from_f32(values: &[f32], shape: &[usize], dtype: Dtype) -> Self {
        assert_eq!(dtype, Dtype::Nm24, "NmTensor: {dtype} is not an N:M dtype");
        let (rows, cols) = rows_cols(shape);
        assert_eq!(
            values.len(),
            rows * cols,
            "data length {} does not match shape {:?}",
            values.len(),
            shape
        );
        let (vals, masks) = nm::encode(values, rows, cols, NM_N, NM_M);
        Self::from_parts(vals, masks, shape)
    }

    /// Compact an f32 slice under an externally-supplied 2:4 mask (one
    /// bitmask byte per row-group, popcount ≤ 2). This is the entry point
    /// for models pruned offline with their own saliency criterion.
    pub fn from_f32_with_mask(values: &[f32], shape: &[usize], masks: &[u8]) -> Self {
        let (rows, cols) = rows_cols(shape);
        assert_eq!(
            values.len(),
            rows * cols,
            "data length {} does not match shape {:?}",
            values.len(),
            shape
        );
        let vals = nm::encode_with_mask(values, rows, cols, NM_N, NM_M, masks);
        Self::from_parts(vals, masks.to_vec(), shape)
    }

    /// Prune a dense tensor.
    pub fn from_tensor(t: &Tensor, dtype: Dtype) -> Self {
        Self::from_f32(t.as_slice(), t.shape(), dtype)
    }

    fn from_parts(vals: Vec<f32>, masks: Vec<u8>, shape: &[usize]) -> Self {
        let t = NmTensor {
            vals,
            masks,
            shape: shape.to_vec(),
            len: shape.iter().product(),
        };
        memtrack::register(t.storage_capacity_bytes());
        t
    }

    /// The storage dtype (always [`Dtype::Nm24`]).
    pub fn dtype(&self) -> Dtype {
        Dtype::Nm24
    }

    /// Borrowed decoding view — what the fused GEMMs consume.
    pub fn view(&self) -> NmView<'_> {
        let (rows, cols) = rows_cols(&self.shape);
        NmView::new(&self.vals, &self.masks, rows, cols, NM_N, NM_M)
    }

    /// The per-group index bitmasks (one byte per row-group of 4) — the
    /// sparsity pattern an SPP-style merge re-applies after folding adapter
    /// deltas.
    pub fn masks(&self) -> &[u8] {
        &self.masks
    }

    /// Decode the whole buffer into a fresh f32 tensor.
    pub fn to_tensor(&self) -> Tensor {
        let mut out = Tensor::zeros(&self.shape);
        let (rows, cols) = rows_cols(&self.shape);
        nm::decode(
            &self.vals,
            &self.masks,
            rows,
            cols,
            NM_N,
            NM_M,
            out.as_mut_slice(),
        );
        out
    }

    /// Decode the whole buffer into a plain `Vec<f32>`.
    pub fn to_f32_vec(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.len];
        let (rows, cols) = rows_cols(&self.shape);
        nm::decode(&self.vals, &self.masks, rows, cols, NM_N, NM_M, &mut out);
        out
    }

    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of rows when viewed as 2-D (product of all but the last dim).
    pub fn rows(&self) -> usize {
        rows_cols(&self.shape).0
    }

    /// Size of the last dimension — the pruning axis.
    pub fn cols(&self) -> usize {
        rows_cols(&self.shape).1
    }

    /// Decode rows `[r0, r0 + n_rows)` of the 2-D view into `out`
    /// (`n_rows × cols`, contiguous). Groups never straddle rows, so any row
    /// window is bit-identical to the same rows of a full decode — the
    /// active-neuron-slab gather path.
    pub fn decode_rows(&self, r0: usize, n_rows: usize, out: &mut [f32]) {
        let c = self.cols();
        assert_eq!(out.len(), n_rows * c, "decode_rows: output length");
        let view = self.view();
        for (i, row) in out.chunks_mut(c.max(1)).enumerate() {
            view.decode_row_into(r0 + i, row);
        }
    }

    /// Exact storage bytes (compacted values plus mask bytes). Equals
    /// [`Dtype::bytes_for`] whenever `cols % 4 == 0`; per-row tail groups
    /// make the true figure shape-dependent, and this is the true figure.
    pub fn bytes(&self) -> usize {
        self.vals.len() * 4 + self.masks.len()
    }

    /// What we actually told the memory tracker: capacity-based, so the
    /// register/unregister pair always balances. The encode paths build
    /// exact-capacity vectors, so in practice this equals [`bytes`](Self::bytes).
    fn storage_capacity_bytes(&self) -> usize {
        self.vals.capacity() * 4 + self.masks.capacity()
    }
}

/// 2-D factorization of a shape: (product of leading dims, last dim).
fn rows_cols(shape: &[usize]) -> (usize, usize) {
    let cols = *shape.last().unwrap_or(&0);
    let len: usize = shape.iter().product();
    (len.checked_div(cols).unwrap_or(0), cols)
}

impl Clone for NmTensor {
    fn clone(&self) -> Self {
        let t = NmTensor {
            vals: self.vals.clone(),
            masks: self.masks.clone(),
            shape: self.shape.clone(),
            len: self.len,
        };
        memtrack::register(t.storage_capacity_bytes());
        t
    }
}

impl Drop for NmTensor {
    fn drop(&mut self) {
        memtrack::unregister(self.storage_capacity_bytes());
    }
}

impl PartialEq for NmTensor {
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape && self.masks == other.masks && self.vals == other.vals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_matches_bytes_for_when_rows_are_group_aligned() {
        let t = Tensor::randn(&[16, 20], 1.0, 41);
        let before = crate::memtrack::current_bytes();
        let q = NmTensor::from_tensor(&t, Dtype::Nm24);
        let delta = crate::memtrack::current_bytes() - before;
        assert_eq!(delta, Dtype::Nm24.bytes_for(t.len()), "measured");
        assert_eq!(q.bytes(), Dtype::Nm24.bytes_for(t.len()), "reported");
        drop(q);
        assert_eq!(crate::memtrack::current_bytes(), before);
    }

    #[test]
    fn tail_rows_account_their_true_bytes() {
        // cols = 7: per row 1 full group (2 slots) + tail of 3 (2 slots) =
        // 4 slots + 2 mask bytes = 18 bytes/row.
        let t = Tensor::randn(&[5, 7], 1.0, 42);
        let before = crate::memtrack::current_bytes();
        let q = NmTensor::from_tensor(&t, Dtype::Nm24);
        assert_eq!(q.bytes(), 5 * 18);
        assert_eq!(crate::memtrack::current_bytes() - before, 5 * 18);
        drop(q);
        assert_eq!(crate::memtrack::current_bytes(), before);
    }

    #[test]
    fn roundtrip_keeps_survivors_bit_exactly() {
        let t = Tensor::randn(&[9, 12], 1.0, 43);
        let q = NmTensor::from_tensor(&t, Dtype::Nm24);
        assert_eq!(q.dtype(), Dtype::Nm24);
        assert_eq!(q.shape(), &[9, 12]);
        assert_eq!(q.rows(), 9);
        assert_eq!(q.cols(), 12);
        let back = q.to_tensor();
        let mut kept = 0usize;
        for (a, b) in t.as_slice().iter().zip(back.as_slice()) {
            if b.to_bits() == a.to_bits() && *b != 0.0 {
                kept += 1;
            } else {
                assert_eq!(*b, 0.0, "{a} -> {b}");
            }
        }
        assert_eq!(kept, 9 * 12 / 2, "exactly half survive at 2:4");
        assert_eq!(back.as_slice(), &q.to_f32_vec()[..]);
    }

    #[test]
    fn external_mask_is_respected_and_exposed() {
        let t = Tensor::randn(&[2, 8], 1.0, 44);
        // Keep positions {0,1} in every group regardless of magnitude.
        let masks = vec![0b0011u8; 4];
        let q = NmTensor::from_f32_with_mask(t.as_slice(), &[2, 8], &masks);
        assert_eq!(q.masks(), &masks[..]);
        let back = q.to_f32_vec();
        for r in 0..2 {
            for c in 0..8 {
                let v = back[r * 8 + c];
                if c % 4 < 2 {
                    assert_eq!(v.to_bits(), t.as_slice()[r * 8 + c].to_bits());
                } else {
                    assert_eq!(v, 0.0);
                }
            }
        }
    }

    #[test]
    fn decode_rows_is_bit_identical_to_full_decode() {
        let t = Tensor::randn(&[12, 13], 1.0, 45); // tail groups in every row
        let q = NmTensor::from_tensor(&t, Dtype::Nm24);
        let full = q.to_f32_vec();
        for (r0, n_rows) in [(0usize, 1usize), (3, 2), (7, 5), (11, 1)] {
            let mut window = vec![0.0f32; n_rows * 13];
            q.decode_rows(r0, n_rows, &mut window);
            for (i, v) in window.iter().enumerate() {
                assert_eq!(v.to_bits(), full[r0 * 13 + i].to_bits(), "row {r0}+{i}");
            }
        }
    }

    #[test]
    fn clone_registers_its_own_buffer() {
        let t = Tensor::randn(&[8, 8], 1.0, 46);
        let before = crate::memtrack::current_bytes();
        let a = NmTensor::from_tensor(&t, Dtype::Nm24);
        let b = a.clone();
        assert_eq!(
            crate::memtrack::current_bytes() - before,
            2 * Dtype::Nm24.bytes_for(64)
        );
        assert_eq!(a, b);
        drop(a);
        drop(b);
        assert_eq!(crate::memtrack::current_bytes(), before);
    }

    #[test]
    #[should_panic(expected = "not an N:M dtype")]
    fn rejects_non_nm_dtypes() {
        let _ = NmTensor::from_f32(&[1.0], &[1], Dtype::F16);
    }
}
