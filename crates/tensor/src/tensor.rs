//! Row-major `f32` tensor with cooperative memory tracking.
//!
//! Inside an active [`crate::Workspace`] scope, `zeros`/`full`/`clone` draw
//! their buffers from the scope's pool when a fit is parked there, and `Drop`
//! parks the buffer back instead of freeing — the mechanism behind
//! zero-allocation steady-state training steps. Pooled construction is
//! bit-exact (recycled buffers are fully overwritten before they are
//! visible), and [`crate::memtrack`] distinguishes fresh heap allocations
//! from pool reuse.

use crate::memtrack;
use crate::rng;
use crate::workspace;

/// A dense row-major tensor of `f32`.
///
/// Shapes are small `Vec<usize>`; data is always contiguous. Higher-level
/// code treats a tensor of shape `[a, b, c]` as `a` matrices of `b×c` where
/// convenient via [`Tensor::as_slice`] arithmetic.
#[derive(Debug)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// A buffer of length `len`: recycled from the active workspace scope
    /// when possible, freshly heap-allocated (and counted as such) otherwise.
    /// Contents are unspecified — every caller fully overwrites.
    fn raw_buffer(len: usize) -> Vec<f32> {
        match workspace::pool_take(len) {
            Some(buf) => buf,
            None => {
                memtrack::register(len * 4);
                vec![0.0; len]
            }
        }
    }

    /// Allocate a zero-filled tensor (pool-recycled inside a workspace scope).
    pub fn zeros(shape: &[usize]) -> Self {
        let len = shape.iter().product();
        let mut data = Self::raw_buffer(len);
        data.fill(0.0);
        Tensor {
            data,
            shape: shape.to_vec(),
        }
    }

    /// Allocate with every element set to `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let len = shape.iter().product();
        let mut data = Self::raw_buffer(len);
        data.fill(value);
        Tensor {
            data,
            shape: shape.to_vec(),
        }
    }

    /// Gaussian-initialised tensor (mean 0, given std), deterministic in `seed`.
    pub fn randn(shape: &[usize], std: f32, seed: u64) -> Self {
        let len: usize = shape.iter().product();
        memtrack::register(len * 4);
        Tensor {
            data: rng::randn_vec(len, std, seed),
            shape: shape.to_vec(),
        }
    }

    /// Uniform in `[lo, hi)`, deterministic in `seed`.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, seed: u64) -> Self {
        let len: usize = shape.iter().product();
        memtrack::register(len * 4);
        Tensor {
            data: rng::uniform_vec(len, lo, hi, seed),
            shape: shape.to_vec(),
        }
    }

    /// Wrap an existing buffer. Panics if the length does not match the shape.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let len: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            len,
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        memtrack::register(data.capacity() * 4);
        Tensor {
            data,
            shape: shape.to_vec(),
        }
    }

    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of rows when viewed as 2-D (product of all but the last dim).
    pub fn rows(&self) -> usize {
        if self.shape.is_empty() {
            0
        } else {
            self.len() / self.cols()
        }
    }

    /// Size of the last dimension.
    pub fn cols(&self) -> usize {
        *self.shape.last().unwrap_or(&0)
    }

    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reinterpret the shape without moving data.
    pub fn reshape(&mut self, shape: &[usize]) {
        let len: usize = shape.iter().product();
        assert_eq!(
            len,
            self.data.len(),
            "reshape {:?} -> {:?}",
            self.shape,
            shape
        );
        self.shape = shape.to_vec();
    }

    /// A reshaped clone (data copied).
    pub fn reshaped(&self, shape: &[usize]) -> Tensor {
        let mut t = self.clone();
        t.reshape(shape);
        t
    }

    /// Row `r` of the 2-D view.
    pub fn row(&self, r: usize) -> &[f32] {
        let c = self.cols();
        &self.data[r * c..(r + 1) * c]
    }

    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let c = self.cols();
        &mut self.data[r * c..(r + 1) * c]
    }

    /// Fill with zeros, keeping the allocation.
    pub fn zero_(&mut self) {
        self.data.fill(0.0);
    }

    /// Elementwise `self += other`.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Elementwise `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Elementwise scale.
    pub fn scale(&mut self, alpha: f32) {
        for a in self.data.iter_mut() {
            *a *= alpha;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean absolute value (used by importance filters and tests).
    pub fn mean_abs(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().map(|v| v.abs()).sum::<f32>() / self.data.len() as f32
    }

    /// Maximum absolute value.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Fraction of exactly-zero elements.
    pub fn zero_fraction(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().filter(|v| **v == 0.0).count() as f32 / self.data.len() as f32
    }

    /// 2-D transpose into a fresh tensor.
    pub fn transposed_2d(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transposed_2d needs a 2-D tensor");
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        out
    }
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        let mut data = Self::raw_buffer(self.data.len());
        data.copy_from_slice(&self.data);
        Tensor {
            data,
            shape: self.shape.clone(),
        }
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        memtrack::unregister(self.data.capacity() * 4);
        let buf = std::mem::take(&mut self.data);
        // Inside a workspace scope the buffer parks in the pool for the next
        // step; outside, it drops here and frees normally.
        let _ = workspace::pool_recycle(buf);
    }
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape && self.data == other.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape_accessors() {
        let t = Tensor::zeros(&[3, 4]);
        assert_eq!(t.shape(), &[3, 4]);
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 4);
        assert_eq!(t.len(), 12);
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn randn_is_deterministic_in_seed() {
        let a = Tensor::randn(&[16], 1.0, 7);
        let b = Tensor::randn(&[16], 1.0, 7);
        let c = Tensor::randn(&[16], 1.0, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn reshape_preserves_data() {
        let mut t = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]);
        t.reshape(&[3, 2]);
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.as_slice()[5], 5.0);
    }

    #[test]
    #[should_panic(expected = "reshape")]
    fn reshape_wrong_len_panics() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.reshape(&[4, 2]);
    }

    #[test]
    fn transpose_roundtrip() {
        let t = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[3, 4]);
        let tt = t.transposed_2d();
        assert_eq!(tt.shape(), &[4, 3]);
        assert_eq!(tt.transposed_2d(), t);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::full(&[4], 1.0);
        let b = Tensor::full(&[4], 2.0);
        a.axpy(0.5, &b);
        assert!(a.as_slice().iter().all(|&v| (v - 2.0).abs() < 1e-6));
        a.scale(2.0);
        assert!(a.as_slice().iter().all(|&v| (v - 4.0).abs() < 1e-6));
    }

    #[test]
    fn zero_fraction_counts() {
        let t = Tensor::from_vec(vec![0.0, 1.0, 0.0, 2.0], &[4]);
        assert_eq!(t.zero_fraction(), 0.5);
    }

    #[test]
    fn row_views() {
        let mut t = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]);
        assert_eq!(t.row(1), &[3.0, 4.0, 5.0]);
        t.row_mut(0)[0] = 9.0;
        assert_eq!(t.as_slice()[0], 9.0);
    }
}
