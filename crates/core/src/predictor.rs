//! Sequence-oriented Predictors (paper §V).
//!
//! Predictors must anticipate each layer's sparse pattern *before* the layer
//! computes, from the block input alone, at a cost far below the computation
//! they save. The paper's two-stage design keeps them small despite sequence
//! inputs: stage one processes tokens (here: one pooled representative per
//! score block — the √s downsampling of Fig. 5), stage two consolidates the
//! per-token estimates into the sequence-level pattern.
//!
//! Training (offline, on dense calibration captures) uses the paper's two
//! robustness measures: Gaussian **noise augmentation** so fine-tuning's
//! drifting activations don't break the predictor, and a **recall-weighted
//! loss** — a false negative (an important block predicted inactive) costs
//! `pos_weight ×` more than a false positive, because dropped-but-needed
//! computation harms accuracy while extra computation only costs time.

use lx_sparse::{BlockMask, NeuronBlockSet};
use lx_tensor::gemm::{matmul, matmul_nt, matmul_tn};
use lx_tensor::rng;
use lx_tensor::Tensor;

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Mean-pool each block of `block` consecutive tokens: `[B·S, d] → per-batch
/// `[S/block, d]` representatives. This is the sequence downsampling that
/// keeps predictor cost `O(s)` instead of `O(s²)`.
pub fn pool_blocks(x: &Tensor, batch: usize, seq: usize, block: usize) -> Vec<Tensor> {
    assert_eq!(x.rows(), batch * seq);
    assert_eq!(seq % block, 0, "seq must be block-aligned");
    let n = seq / block;
    let d = x.cols();
    let inv = 1.0 / block as f32;
    (0..batch)
        .map(|b| {
            let mut pooled = Tensor::zeros(&[n, d]);
            for i in 0..n {
                let dst = pooled.row_mut(i);
                for t in 0..block {
                    let src = x.row(b * seq + i * block + t);
                    for (o, &v) in dst.iter_mut().zip(src) {
                        *o += v * inv;
                    }
                }
            }
            pooled
        })
        .collect()
}

/// One calibration sample for the attention predictor of a layer:
/// the pooled block input and the per-head important-block masks.
pub struct AttnSample {
    pub pooled: Tensor,
    pub targets: Vec<BlockMask>,
}

/// Per-head low-rank attention-pattern predictor:
/// `Ŝ_h = (X̂·Ŵq_h)(X̂·Ŵk_h)ᵀ + bias_h(i−j)`, thresholded at logit 0.
///
/// The bias term carries any *known static* positional component of the
/// model's scores (e.g. ALiBi slopes): the predictor approximates the true
/// attention scores, and the static part of those scores need not be
/// learned — only the content-dependent residual does.
pub struct AttnPredictor {
    pub heads: Vec<(Tensor, Tensor)>, // (wq [d,r], wk [d,r])
    pub rank: usize,
    /// Per-head positional penalty per *token* of distance (0 = none).
    pub distance_slopes: Vec<f32>,
    /// Tokens per block (scales block-grid distance back to tokens).
    pub block_size: usize,
    /// Trainable per-head logit offset: calibrates the operating point of
    /// the threshold against the head's score scale.
    pub bias: Vec<f32>,
}

impl AttnPredictor {
    pub fn new(d_model: usize, n_heads: usize, rank: usize, seed: u64) -> Self {
        let heads = (0..n_heads)
            .map(|h| {
                let s = seed.wrapping_add(h as u64 * 7919);
                (
                    Tensor::randn(&[d_model, rank], 0.2, s),
                    Tensor::randn(&[d_model, rank], 0.2, s + 1),
                )
            })
            .collect();
        AttnPredictor {
            heads,
            rank,
            distance_slopes: vec![0.0; n_heads],
            block_size: 1,
            bias: vec![0.0; n_heads],
        }
    }

    /// Install the model's known positional score slopes.
    pub fn set_distance_slopes(&mut self, slopes: Vec<f32>, block_size: usize) {
        assert_eq!(slopes.len(), self.heads.len());
        self.distance_slopes = slopes;
        self.block_size = block_size;
    }

    /// Raw block logits for one pooled sample and one head (`n×n`).
    fn head_logits(&self, pooled: &Tensor, head: usize) -> Tensor {
        let (wq, wk) = &self.heads[head];
        let q = matmul(pooled, wq);
        let k = matmul(pooled, wk);
        let mut logits = matmul_nt(&q, &k);
        let slope = self.distance_slopes[head] * self.block_size as f32;
        let bias = self.bias[head];
        let n = logits.rows();
        for i in 0..n {
            for j in 0..=i {
                logits.row_mut(i)[j] += bias;
                if slope != 0.0 && j < i {
                    logits.row_mut(i)[j] -= slope * (i - j) as f32;
                }
            }
        }
        logits
    }

    /// Predict per-head block masks for a (possibly multi-sample) batch.
    /// Stage two: per-sample predictions are consolidated by union, which
    /// preserves recall across the batch.
    pub fn predict_masks(
        &self,
        x: &Tensor,
        batch: usize,
        seq: usize,
        block: usize,
    ) -> Vec<BlockMask> {
        let pooled = pool_blocks(x, batch, seq, block);
        let n = seq / block;
        let mut masks = vec![BlockMask::square(n); self.heads.len()];
        for sample in &pooled {
            for (h, mask) in masks.iter_mut().enumerate() {
                let logits = self.head_logits(sample, h);
                for i in 0..n {
                    for j in 0..=i {
                        if logits.row(i)[j] >= 0.0 {
                            mask.set(i, j, true);
                        }
                    }
                }
            }
        }
        for mask in &mut masks {
            for i in 0..n {
                mask.set(i, i, true);
            }
        }
        masks
    }

    /// One SGD pass over the samples with noise augmentation and
    /// recall-weighted BCE. Returns the mean loss.
    pub fn train_epoch(
        &mut self,
        samples: &[AttnSample],
        lr: f32,
        noise_std: f32,
        pos_weight: f32,
        seed: u64,
    ) -> f32 {
        let mut total_loss = 0.0f64;
        let mut count = 0usize;
        for (si, sample) in samples.iter().enumerate() {
            let mut noisy = sample.pooled.clone();
            if noise_std > 0.0 {
                let noise = rng::randn_vec(noisy.len(), noise_std, seed + si as u64);
                for (v, n) in noisy.as_mut_slice().iter_mut().zip(noise) {
                    *v += n;
                }
            }
            let n = noisy.rows();
            for h in 0..self.heads.len() {
                let (wq, wk) = &self.heads[h];
                let q = matmul(&noisy, wq); // [n, r]
                let k = matmul(&noisy, wk);
                let mut logits = matmul_nt(&q, &k); // [n, n]
                let slope = self.distance_slopes[h] * self.block_size as f32;
                let head_bias = self.bias[h];
                for i in 0..n {
                    for j in 0..=i {
                        logits.row_mut(i)[j] += head_bias;
                        if slope != 0.0 && j < i {
                            logits.row_mut(i)[j] -= slope * (i - j) as f32;
                        }
                    }
                }
                // Weighted BCE on causal blocks; dL/dlogit = w·(σ − t)/m.
                // Weights are normalised by their mean so the step size stays
                // stable regardless of `pos_weight` (only the pos/neg *ratio*
                // matters for the recall-vs-precision trade).
                let mut dlogits = Tensor::zeros(&[n, n]);
                let m = (n * (n + 1) / 2) as f32;
                let mut weight_sum = 0.0f32;
                for i in 0..n {
                    for j in 0..=i {
                        let t = if sample.targets[h].get(i, j) {
                            1.0
                        } else {
                            0.0
                        };
                        weight_sum += if t > 0.5 { pos_weight } else { 1.0 };
                    }
                }
                let mean_w = (weight_sum / m).max(1e-6);
                for i in 0..n {
                    for j in 0..=i {
                        let t = if sample.targets[h].get(i, j) {
                            1.0
                        } else {
                            0.0
                        };
                        let p = sigmoid(logits.row(i)[j]);
                        let w = (if t > 0.5 { pos_weight } else { 1.0 }) / mean_w;
                        let eps = 1e-7f32;
                        total_loss -=
                            (w * (t * (p + eps).ln() + (1.0 - t) * (1.0 - p + eps).ln())) as f64;
                        count += 1;
                        dlogits.row_mut(i)[j] = w * (p - t) / m;
                    }
                }
                // dWq = X̂ᵀ·(dL·K̂); dWk = X̂ᵀ·(dLᵀ·Q̂); dbias = Σ dL.
                let dq = matmul(&dlogits, &k); // [n, r]
                let dk = matmul_tn(&dlogits, &q); // [n, r]
                let dwq = matmul_tn(&noisy, &dq); // [d, r]
                let dwk = matmul_tn(&noisy, &dk);
                let dbias: f32 = dlogits.as_slice().iter().sum();
                let (wq, wk) = &mut self.heads[h];
                wq.axpy(-lr, &dwq);
                wk.axpy(-lr, &dwk);
                self.bias[h] -= lr * dbias;
            }
        }
        if count == 0 {
            0.0
        } else {
            (total_loss / count as f64) as f32
        }
    }

    /// Block-level recall and precision against the samples' targets
    /// (causal region only).
    pub fn evaluate(&self, samples: &[AttnSample]) -> (f32, f32) {
        let (mut tp, mut r#fn, mut fp) = (0usize, 0usize, 0usize);
        for sample in samples {
            let n = sample.pooled.rows();
            for h in 0..self.heads.len() {
                let logits = self.head_logits(&sample.pooled, h);
                for i in 0..n {
                    for j in 0..=i {
                        let pred = logits.row(i)[j] >= 0.0 || i == j;
                        let target = sample.targets[h].get(i, j);
                        match (pred, target) {
                            (true, true) => tp += 1,
                            (false, true) => r#fn += 1,
                            (true, false) => fp += 1,
                            (false, false) => {}
                        }
                    }
                }
            }
        }
        let recall = if tp + r#fn == 0 {
            1.0
        } else {
            tp as f32 / (tp + r#fn) as f32
        };
        let precision = if tp + fp == 0 {
            1.0
        } else {
            tp as f32 / (tp + fp) as f32
        };
        (recall, precision)
    }
}

/// One calibration sample for the MLP predictor of a layer.
pub struct MlpSample {
    /// Block-input rows `[rows, d]`.
    pub x: Tensor,
    /// Ground-truth *reduced* active set for this sample (stage two of the
    /// paper's design: the prediction is consolidated over the sequence
    /// before thresholding, so training targets the reduced statistic too).
    pub reduced: NeuronBlockSet,
}

/// Low-rank neuron-block importance predictor: `Ŝ = X·Ŵa`, reduced over the
/// sequence by max, thresholded at logit 0.
pub struct MlpPredictor {
    pub wa: Tensor, // [d, n_blk]
    pub block_size: usize,
    pub n_blocks: usize,
}

impl MlpPredictor {
    pub fn new(d_model: usize, d_ff: usize, block_size: usize, seed: u64) -> Self {
        assert_eq!(d_ff % block_size, 0);
        let n_blocks = d_ff / block_size;
        MlpPredictor {
            wa: Tensor::randn(&[d_model, n_blocks], 0.2, seed),
            block_size,
            n_blocks,
        }
    }

    /// Stable log-sum-exp over rows per block — the stage-two reduction.
    /// A soft max keeps training gradients flowing to every contributing
    /// row (a hard max trains only the argmax row and converges poorly).
    fn reduce_logits(&self, logits: &Tensor) -> Vec<f32> {
        let rows = logits.rows();
        let mut max = vec![f32::NEG_INFINITY; self.n_blocks];
        for r in 0..rows {
            for (blk, &v) in logits.row(r).iter().enumerate() {
                if v > max[blk] {
                    max[blk] = v;
                }
            }
        }
        let mut sum = vec![0.0f32; self.n_blocks];
        for r in 0..rows {
            for (blk, &v) in logits.row(r).iter().enumerate() {
                sum[blk] += (v - max[blk]).exp();
            }
        }
        (0..self.n_blocks)
            .map(|b| max[b] + sum[b].ln() - (rows as f32).ln())
            .collect()
    }

    /// Predict the active neuron-block set for a batch of rows (stage two:
    /// soft-max reduction over rows, then threshold at logit 0).
    pub fn predict(&self, x: &Tensor) -> NeuronBlockSet {
        let scores = matmul(x, &self.wa); // [rows, n_blk]
        let best = self.reduce_logits(&scores);
        let mut active: Vec<u32> = best
            .iter()
            .enumerate()
            .filter_map(|(i, &v)| (v >= 0.0).then_some(i as u32))
            .collect();
        if active.is_empty() {
            let argmax = best
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i as u32)
                .unwrap_or(0);
            active.push(argmax);
        }
        NeuronBlockSet::from_indices(active, self.n_blocks, self.block_size)
    }

    /// One SGD pass (noise augmentation + recall-weighted BCE per row/block).
    pub fn train_epoch(
        &mut self,
        samples: &[MlpSample],
        lr: f32,
        noise_std: f32,
        pos_weight: f32,
        seed: u64,
    ) -> f32 {
        let mut total_loss = 0.0f64;
        let mut count = 0usize;
        for (si, sample) in samples.iter().enumerate() {
            let mut noisy = sample.x.clone();
            if noise_std > 0.0 {
                let noise = rng::randn_vec(noisy.len(), noise_std, seed + 31 * si as u64);
                for (v, n) in noisy.as_mut_slice().iter_mut().zip(noise) {
                    *v += n;
                }
            }
            let rows = noisy.rows();
            let logits = matmul(&noisy, &self.wa); // [rows, n_blk]
                                                   // Stage-two reduction first: the trained statistic is the
                                                   // soft-max-reduced logit per block, matching `predict`.
            let reduced = self.reduce_logits(&logits);
            let target: Vec<bool> = {
                let mut t = vec![false; self.n_blocks];
                for &a in &sample.reduced.active {
                    t[a as usize] = true;
                }
                t
            };
            let m = self.n_blocks as f32;
            let pos = target.iter().filter(|&&t| t).count() as f32;
            let mean_w = ((pos * pos_weight + (m - pos)) / m).max(1e-6);
            // d(reduced_blk)/d(logit_{r,blk}) = softmax over rows.
            let mut dreduced = vec![0.0f32; self.n_blocks];
            for blk in 0..self.n_blocks {
                let t = if target[blk] { 1.0 } else { 0.0 };
                let p = sigmoid(reduced[blk]);
                let w = (if t > 0.5 { pos_weight } else { 1.0 }) / mean_w;
                let eps = 1e-7f32;
                total_loss -= (w * (t * (p + eps).ln() + (1.0 - t) * (1.0 - p + eps).ln())) as f64;
                count += 1;
                dreduced[blk] = w * (p - t) / m;
            }
            let mut dlogits = Tensor::zeros(&[rows, self.n_blocks]);
            // Row-softmax weights per block (stable via the reduced value).
            for r in 0..rows {
                for blk in 0..self.n_blocks {
                    let weight = (logits.row(r)[blk] - reduced[blk]).exp() / rows as f32;
                    dlogits.row_mut(r)[blk] = dreduced[blk] * weight;
                }
            }
            let dwa = matmul_tn(&noisy, &dlogits); // [d, n_blk]
            self.wa.axpy(-lr, &dwa);
        }
        if count == 0 {
            0.0
        } else {
            (total_loss / count as f64) as f32
        }
    }

    /// Set-level recall/precision of the reduced prediction against the
    /// ground-truth reduced sets.
    pub fn evaluate(&self, samples: &[MlpSample]) -> (f32, f32) {
        let (mut tp, mut r#fn, mut fp) = (0usize, 0usize, 0usize);
        for sample in samples {
            let pred = self.predict(&sample.x);
            let pred_set: std::collections::HashSet<u32> = pred.active.iter().copied().collect();
            let target_set: std::collections::HashSet<u32> =
                sample.reduced.active.iter().copied().collect();
            for blk in 0..self.n_blocks as u32 {
                match (pred_set.contains(&blk), target_set.contains(&blk)) {
                    (true, true) => tp += 1,
                    (false, true) => r#fn += 1,
                    (true, false) => fp += 1,
                    (false, false) => {}
                }
            }
        }
        let recall = if tp + r#fn == 0 {
            1.0
        } else {
            tp as f32 / (tp + r#fn) as f32
        };
        let precision = if tp + fp == 0 {
            1.0
        } else {
            tp as f32 / (tp + fp) as f32
        };
        (recall, precision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_blocks_averages() {
        // 1 batch, 4 tokens, block 2, d 2.
        let x = Tensor::from_vec(vec![1.0, 0.0, 3.0, 0.0, 0.0, 2.0, 0.0, 4.0], &[4, 2]);
        let pooled = pool_blocks(&x, 1, 4, 2);
        assert_eq!(pooled.len(), 1);
        assert_eq!(pooled[0].shape(), &[2, 2]);
        assert_eq!(pooled[0].row(0), &[2.0, 0.0]);
        assert_eq!(pooled[0].row(1), &[0.0, 3.0]);
    }

    /// Synthetic learnable task: the target pattern depends linearly on the
    /// input, so a low-rank predictor must be able to learn it.
    fn synthetic_attn_samples(d: usize, n: usize, count: usize) -> Vec<AttnSample> {
        (0..count)
            .map(|c| {
                let pooled = Tensor::randn(&[n, d], 1.0, 100 + c as u64);
                // Target: block (i,j) active iff feature-0 of i and j agree
                // in sign (a rank-1-detectable rule).
                let mut mask = BlockMask::square(n);
                for i in 0..n {
                    for j in 0..=i {
                        let si = pooled.row(i)[0] >= 0.0;
                        let sj = pooled.row(j)[0] >= 0.0;
                        if si == sj {
                            mask.set(i, j, true);
                        }
                    }
                }
                AttnSample {
                    pooled,
                    targets: vec![mask],
                }
            })
            .collect()
    }

    #[test]
    fn attn_predictor_learns_separable_pattern() {
        let (d, n) = (8, 6);
        let samples = synthetic_attn_samples(d, n, 12);
        let mut pred = AttnPredictor::new(d, 1, 4, 1);
        let (recall_before, _) = pred.evaluate(&samples);
        let mut last = f32::MAX;
        for e in 0..300 {
            last = pred.train_epoch(&samples, 0.5, 0.0, 2.0, e);
        }
        let (recall_after, precision_after) = pred.evaluate(&samples);
        assert!(
            recall_after > 0.9,
            "recall {recall_before} -> {recall_after} (loss {last})"
        );
        assert!(precision_after > 0.6, "precision {precision_after}");
    }

    #[test]
    fn recall_weighting_trades_precision_for_recall() {
        let (d, n) = (8, 6);
        let samples = synthetic_attn_samples(d, n, 10);
        let mut balanced = AttnPredictor::new(d, 1, 2, 2);
        let mut recall_first = AttnPredictor::new(d, 1, 2, 2);
        for e in 0..120 {
            balanced.train_epoch(&samples, 0.3, 0.0, 1.0, e);
            recall_first.train_epoch(&samples, 0.3, 0.0, 8.0, e);
        }
        let (rb, _pb) = balanced.evaluate(&samples);
        let (rr, _pr) = recall_first.evaluate(&samples);
        assert!(
            rr >= rb - 1e-3,
            "recall-weighted training must not lose recall: {rr} vs {rb}"
        );
    }

    #[test]
    fn predict_masks_keeps_diagonal_and_causality() {
        let pred = AttnPredictor::new(8, 2, 4, 3);
        let x = Tensor::randn(&[2 * 8, 8], 1.0, 4);
        let masks = pred.predict_masks(&x, 2, 8, 2);
        assert_eq!(masks.len(), 2);
        for m in &masks {
            for i in 0..4 {
                assert!(m.get(i, i));
                for j in (i + 1)..4 {
                    assert!(!m.get(i, j), "causality violated");
                }
            }
        }
    }

    fn synthetic_mlp_samples(d: usize, n_blk: usize, blk: usize, count: usize) -> Vec<MlpSample> {
        (0..count)
            .map(|c| {
                let rows = 6;
                let x = Tensor::randn(&[rows, d], 1.0, 500 + c as u64);
                // Reduced ground truth: block b active iff any row's
                // feature b clears a margin (a rank-1-detectable rule that
                // does not fire on every sample).
                let mut reduced = vec![false; n_blk];
                #[allow(clippy::needless_range_loop)]
                for r in 0..rows {
                    for b in 0..n_blk {
                        reduced[b] |= x.row(r)[b] > 0.8;
                    }
                }
                MlpSample {
                    x,
                    reduced: NeuronBlockSet::from_mask(&reduced, blk),
                }
            })
            .collect()
    }

    #[test]
    fn mlp_predictor_learns_linear_rule() {
        let (d, n_blk, blk) = (8, 4, 4);
        let samples = synthetic_mlp_samples(d, n_blk, blk, 10);
        let mut pred = MlpPredictor::new(d, n_blk * blk, blk, 5);
        for e in 0..200 {
            pred.train_epoch(&samples, 0.5, 0.0, 2.0, e);
        }
        let (recall, precision) = pred.evaluate(&samples);
        assert!(recall > 0.9, "recall {recall}");
        assert!(precision > 0.6, "precision {precision}");
    }

    #[test]
    fn mlp_prediction_never_empty() {
        let pred = MlpPredictor::new(4, 16, 4, 6);
        // Strongly negative input so all logits are < 0.
        let x = Tensor::full(&[3, 4], -100.0);
        let set = pred.predict(&x);
        assert!(set.n_active() >= 1);
    }

    #[test]
    fn noise_augmentation_changes_training_but_converges() {
        let (d, n_blk, blk) = (8, 4, 4);
        let samples = synthetic_mlp_samples(d, n_blk, blk, 8);
        let mut pred = MlpPredictor::new(d, n_blk * blk, blk, 7);
        let mut last = f32::MAX;
        for e in 0..150 {
            last = pred.train_epoch(&samples, 0.3, 0.1, 2.0, e);
        }
        assert!(last < 1.0, "noisy training should still converge: {last}");
        let (recall, _) = pred.evaluate(&samples);
        assert!(recall > 0.8, "recall {recall}");
    }
}
