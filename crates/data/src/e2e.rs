//! E2E-NLG-like fine-tuning corpus: attribute/value "meaning representations"
//! followed by a templated realisation. Mirrors the structure of the E2E
//! dataset (restaurant MRs → text) closely enough that token locality and
//! repetition drive realistic sparse patterns during fine-tuning.

use crate::world::{SyntheticWorld, TOK_BOS, TOK_SEP};
use rand::Rng;

/// Attribute families — each owns a contiguous slice of the content vocab so
/// "name tokens" and "food tokens" cluster, like real E2E fields do.
const N_FIELDS: u32 = 6;

/// Generator for E2E-like sequences.
pub struct E2eGenerator {
    world: SyntheticWorld,
    field_width: u32,
}

impl E2eGenerator {
    pub fn new(world: SyntheticWorld) -> Self {
        let field_width = world.n_content() / (2 * N_FIELDS);
        E2eGenerator { world, field_width }
    }

    fn field_token(&self, field: u32, rng: &mut rand::rngs::StdRng) -> u32 {
        let base = self.world.content_base() + field * self.field_width;
        rng.gen_range(base..base + self.field_width)
    }

    /// One MR + realisation example: `BOS f0 v0 f1 v1 … SEP realisation`.
    /// The realisation repeats each value's partner token, so next-token
    /// prediction on this corpus has real structure to learn.
    pub fn example(&self, salt: u64) -> Vec<u32> {
        let mut rng = self.world.rng(salt);
        let n_attrs = rng.gen_range(3..=N_FIELDS as usize);
        let mut out = vec![TOK_BOS];
        let mut values = Vec::new();
        for f in 0..n_attrs as u32 {
            let v = self.field_token(f, &mut rng);
            out.push(v);
            out.push(self.world.partner(v));
            values.push(v);
        }
        out.push(TOK_SEP);
        // Realisation: revisit the values in order with their partners,
        // plus one connective sentence.
        for &v in &values {
            out.push(self.world.partner(v));
            out.push(v);
        }
        out.extend(self.world.sentence(2, &mut rng));
        out
    }

    /// A flat token stream of `target_len` tokens made of examples.
    pub fn stream(&self, target_len: usize, salt: u64) -> Vec<u32> {
        let mut out = Vec::with_capacity(target_len + 64);
        let mut i = 0u64;
        while out.len() < target_len {
            out.extend(self.example(salt.wrapping_add(i)));
            i += 1;
        }
        out.truncate(target_len);
        out
    }

    pub fn world(&self) -> &SyntheticWorld {
        &self.world
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn examples_are_deterministic_and_structured() {
        let gen = E2eGenerator::new(SyntheticWorld::new(256, 11));
        let a = gen.example(5);
        let b = gen.example(5);
        assert_eq!(a, b);
        assert_eq!(a[0], TOK_BOS);
        assert!(a.contains(&TOK_SEP));
        assert!(a.len() > 10);
    }

    #[test]
    fn stream_hits_exact_length() {
        let gen = E2eGenerator::new(SyntheticWorld::new(256, 12));
        let s = gen.stream(1000, 1);
        assert_eq!(s.len(), 1000);
        assert!(s.iter().all(|&t| t < 256));
    }

    #[test]
    fn values_cluster_by_field() {
        let world = SyntheticWorld::new(256, 13);
        let gen = E2eGenerator::new(world);
        // Field 0 tokens must come from the first field slice.
        let mut rng = gen.world().rng(9);
        for _ in 0..20 {
            let v = gen.field_token(0, &mut rng);
            assert!(v >= gen.world().content_base());
            assert!(v < gen.world().content_base() + gen.field_width);
        }
    }

    #[test]
    fn realisation_repeats_mr_values() {
        let gen = E2eGenerator::new(SyntheticWorld::new(256, 14));
        let ex = gen.example(3);
        let sep = ex.iter().position(|&t| t == TOK_SEP).unwrap();
        let mr = &ex[1..sep];
        let text = &ex[sep + 1..];
        // Every MR value token reappears in the realisation.
        for pair in mr.chunks(2) {
            assert!(text.contains(&pair[0]), "value {} not realised", pair[0]);
        }
    }
}
