//! Model configurations: paper-dimension presets (Table II) and scaled-down
//! "sim" presets that run in seconds on CPU while preserving the
//! architecture (ReLU vs GeLU MLP, head counts, depth ratios).

/// MLP activation. OPT uses ReLU (the sparsity source for the MLP path);
/// GPT-2 uses GeLU, so only the attention optimisation applies (paper §VII-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    Relu,
    Gelu,
}

/// Architecture hyperparameters.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    pub name: String,
    pub n_layers: usize,
    pub d_model: usize,
    pub n_heads: usize,
    pub d_ff: usize,
    pub vocab_size: usize,
    pub max_seq: usize,
    pub activation: Activation,
    pub ln_eps: f32,
    /// Per-head ALiBi locality slopes. Real OPT/GPT-2 use learned positions
    /// whose *trained* attention is local + sink-focused; random-init learned
    /// positions have no such structure, so the sim models emulate it with
    /// ALiBi (a mechanism production LLMs also use). See DESIGN.md.
    pub alibi: bool,
}

impl ModelConfig {
    pub fn head_dim(&self) -> usize {
        self.d_model / self.n_heads
    }

    /// Total parameter count (embeddings + blocks + final LN), tied LM head.
    pub fn param_count(&self) -> usize {
        let d = self.d_model;
        let per_block = 4 * d * d + 4 * d // attention QKVO + biases
            + 2 * d * self.d_ff + self.d_ff + d // MLP weights + biases
            + 4 * d; // two LayerNorms
        self.vocab_size * d + self.max_seq * d + self.n_layers * per_block + 2 * d
    }

    fn validate(self) -> Self {
        assert!(
            self.d_model.is_multiple_of(self.n_heads),
            "d_model must divide by heads"
        );
        self
    }

    // ---- Paper-dimension presets (Table II models + scaling set) ----

    pub fn opt_125m() -> Self {
        Self::opt("opt-125m", 12, 768, 12)
    }

    pub fn opt_350m() -> Self {
        Self::opt("opt-350m", 24, 1024, 16)
    }

    pub fn opt_1_3b() -> Self {
        Self::opt("opt-1.3b", 24, 2048, 32)
    }

    pub fn opt_2_7b() -> Self {
        Self::opt("opt-2.7b", 32, 2560, 32)
    }

    fn opt(name: &str, layers: usize, d: usize, heads: usize) -> Self {
        ModelConfig {
            name: name.into(),
            n_layers: layers,
            d_model: d,
            n_heads: heads,
            d_ff: 4 * d,
            vocab_size: 50_272,
            max_seq: 2048,
            activation: Activation::Relu,
            ln_eps: 1e-5,
            alibi: true,
        }
        .validate()
    }

    pub fn gpt2_large() -> Self {
        ModelConfig {
            name: "gpt2-large".into(),
            n_layers: 36,
            d_model: 1280,
            n_heads: 20,
            d_ff: 5120,
            vocab_size: 50_257,
            max_seq: 1024,
            activation: Activation::Gelu,
            ln_eps: 1e-5,
            alibi: true,
        }
        .validate()
    }

    pub fn gpt2_xl() -> Self {
        ModelConfig {
            name: "gpt2-xl".into(),
            n_layers: 48,
            d_model: 1600,
            n_heads: 25,
            d_ff: 6400,
            vocab_size: 50_257,
            max_seq: 1024,
            activation: Activation::Gelu,
            ln_eps: 1e-5,
            alibi: true,
        }
        .validate()
    }

    // ---- Sim presets: same architecture family, CPU-tractable sizes ----

    /// Tiny model for unit tests and gradient checks.
    pub fn test_tiny() -> Self {
        ModelConfig {
            name: "test-tiny".into(),
            n_layers: 2,
            d_model: 16,
            n_heads: 2,
            d_ff: 32,
            vocab_size: 64,
            max_seq: 64,
            activation: Activation::Relu,
            ln_eps: 1e-5,
            alibi: true,
        }
        .validate()
    }

    /// Small OPT-style sim model for fast experiments.
    pub fn opt_sim_small() -> Self {
        ModelConfig {
            name: "opt-sim-small".into(),
            n_layers: 2,
            d_model: 128,
            n_heads: 4,
            d_ff: 512,
            vocab_size: 1024,
            max_seq: 1024,
            activation: Activation::Relu,
            ln_eps: 1e-5,
            alibi: true,
        }
        .validate()
    }

    /// Medium OPT-style sim model (the default measured-experiment model).
    pub fn opt_sim_base() -> Self {
        ModelConfig {
            name: "opt-sim-base".into(),
            n_layers: 4,
            d_model: 256,
            n_heads: 8,
            d_ff: 1024,
            vocab_size: 1024,
            max_seq: 1024,
            activation: Activation::Relu,
            ln_eps: 1e-5,
            alibi: true,
        }
        .validate()
    }

    /// GPT-2-style sim model (GeLU: only attention sparsity applies).
    pub fn gpt2_sim() -> Self {
        ModelConfig {
            name: "gpt2-sim".into(),
            n_layers: 4,
            d_model: 256,
            n_heads: 8,
            d_ff: 1024,
            vocab_size: 1024,
            max_seq: 1024,
            activation: Activation::Gelu,
            ln_eps: 1e-5,
            alibi: true,
        }
        .validate()
    }

    /// Depth/width-scaled sim variant of a paper preset, preserving the
    /// layer-count ratio between model sizes so scaling trends survive.
    pub fn scaled_sim(
        name: &str,
        n_layers: usize,
        d_model: usize,
        n_heads: usize,
        act: Activation,
    ) -> Self {
        ModelConfig {
            name: name.into(),
            n_layers,
            d_model,
            n_heads,
            d_ff: 4 * d_model,
            vocab_size: 1024,
            max_seq: 2048,
            activation: act,
            ln_eps: 1e-5,
            alibi: true,
        }
        .validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_presets_have_expected_param_counts() {
        // Within 15% of the nominal size (embeddings and heads differ a bit
        // between published variants).
        let cases = [
            (ModelConfig::opt_125m(), 125e6),
            (ModelConfig::opt_350m(), 350e6),
            (ModelConfig::opt_1_3b(), 1.3e9),
            (ModelConfig::opt_2_7b(), 2.7e9),
            (ModelConfig::gpt2_large(), 774e6),
            (ModelConfig::gpt2_xl(), 1.5e9),
        ];
        for (cfg, nominal) in cases {
            let count = cfg.param_count() as f64;
            let ratio = count / nominal;
            assert!(
                (0.8..1.25).contains(&ratio),
                "{}: {count:.2e} vs nominal {nominal:.2e} (ratio {ratio:.2})",
                cfg.name
            );
        }
    }

    #[test]
    fn head_dim_divides() {
        let cfg = ModelConfig::opt_1_3b();
        assert_eq!(cfg.head_dim() * cfg.n_heads, cfg.d_model);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn invalid_heads_panic() {
        ModelConfig::scaled_sim("bad", 1, 100, 3, Activation::Relu);
    }

    #[test]
    fn opt_uses_relu_gpt2_uses_gelu() {
        assert_eq!(ModelConfig::opt_sim_base().activation, Activation::Relu);
        assert_eq!(ModelConfig::gpt2_sim().activation, Activation::Gelu);
    }
}
