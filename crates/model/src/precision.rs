//! Parameter-storage precision plans.
//!
//! The paper fine-tunes with FP16 parameters and FP32 compute (§VII-A);
//! [`Precision::F16Frozen`] reproduces the storage side of that recipe:
//! frozen backbone *matrices* (attention projections, MLP weights, embedding
//! tables) are demoted to half storage, while everything numerically
//! sensitive — biases, LayerNorm affine parameters, trainable PEFT adapters,
//! gradients and optimizer state — stays f32. Compute is f32 throughout;
//! the f16 bits are decoded inside the GEMM pack routines (see
//! `lx_kernels::KernelBackend::gemm_f16`), so storage is halved without a
//! half-arithmetic path.
//!
//! Pair with [`LossScaler`](crate::optim::LossScaler) when training: the
//! rounded backbone shifts activation magnitudes slightly, and scaling keeps
//! small adapter gradients out of the f32 underflow range the same way the
//! paper's FP16 runs do.

/// Storage plan for a model's parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Everything stored f32 (the seed behaviour).
    #[default]
    F32,
    /// Frozen backbone matrices stored f16; trainable parameters, biases,
    /// LayerNorm, gradients and optimizer state stay f32.
    F16Frozen,
}

impl Precision {
    pub const fn name(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::F16Frozen => "f16-frozen",
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}
