//! Differential suite for the step-persistent workspace and shadowy-
//! sparsity reuse layer:
//!
//! * workspace-pooled steps are **bit-identical** to fresh-allocation steps
//!   over multi-step training runs in dense, sparse and `F16Frozen` modes;
//! * a steady-state training step performs **zero** heap tensor allocations
//!   after ≤ 2 warmup steps (asserted via the `memtrack` fresh-allocation
//!   counters), in dense and sparse modes, including under micro-batch
//!   accumulation;
//! * plan reuse (`PlanRefreshConfig`) keeps the loss curve within 0.05 of
//!   every-step prediction over 24 steps while actually skipping predictor
//!   work.

use long_exposure::engine::{EngineConfig, FinetuneEngine, StepMode};
use long_exposure::PlanRefreshConfig;
use lx_model::{
    prompt_aware_targets, Adam, LossScaler, ModelConfig, Precision, Sgd, SparsePlan, StepRequest,
    TransformerModel,
};
use lx_peft::PeftMethod;
use lx_sparse::{BlockCsr, MultiHeadLayout, NeuronBlockSet, PatternSpec};
use lx_tensor::memtrack;
use std::sync::{Arc, Mutex, MutexGuard};

/// The `memtrack` fresh-allocation counters are process-global, and tests in
/// this binary run on parallel threads — every test takes this lock so the
/// zero-alloc measurement windows never see another test's allocations.
fn alloc_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const BATCH: usize = 2;
const SEQ: usize = 8;
const BLOCK: usize = 4;

fn sample(seed: u64) -> (Vec<u32>, Vec<i32>) {
    let vocab = ModelConfig::test_tiny().vocab_size as f32;
    let ids: Vec<u32> = lx_tensor::rng::uniform_vec(BATCH * SEQ, 0.0, vocab, seed)
        .into_iter()
        .map(|v| v as u32)
        .collect();
    let targets = prompt_aware_targets(&ids, BATCH, SEQ, 0);
    (ids, targets)
}

/// A fixed sparse plan (causal attention, odd neuron blocks) for the tiny
/// config — deterministic sparse execution without predictors.
fn tiny_plan(cfg: &ModelConfig) -> SparsePlan {
    let csr = Arc::new(BlockCsr::from_mask(
        &PatternSpec::Causal.mask(SEQ / BLOCK),
        BLOCK,
    ));
    let n_blk = cfg.d_ff / BLOCK;
    let mut plan = SparsePlan::dense(cfg.n_layers);
    for layer in plan.layers.iter_mut() {
        layer.attn = Some(Arc::new(MultiHeadLayout::combine(vec![
            csr.clone();
            cfg.n_heads
        ])));
        layer.mlp = Some(Arc::new(NeuronBlockSet::from_indices(
            (0..n_blk as u32).filter(|i| i % 2 == 1).collect(),
            n_blk,
            BLOCK,
        )));
    }
    plan
}

#[derive(Clone, Copy, PartialEq)]
enum Scenario {
    Dense,
    Sparse,
    F16Sparse,
}

/// Train `steps` steps, returning per-step losses and the final trainable
/// parameter values.
fn train_run(scenario: Scenario, pooled: bool, steps: usize) -> (Vec<f32>, Vec<Vec<f32>>) {
    let cfg = ModelConfig::test_tiny();
    let mut model = TransformerModel::new(cfg.clone(), 42);
    model.set_workspace_enabled(pooled);
    let plan = tiny_plan(&cfg);
    let mut scaler = LossScaler::default();
    match scenario {
        Scenario::Dense | Scenario::Sparse => {
            model.for_each_param(&mut |p| p.trainable = true);
        }
        Scenario::F16Sparse => {
            model.freeze_all();
            for block in &mut model.blocks {
                block.attn.wq.attach_lora(4, 8.0, 31);
                block.mlp.attach_lora_fc1(4, 8.0, 33);
            }
            model.set_precision(Precision::F16Frozen);
        }
    }
    let mut sgd = Sgd::new(0.05);
    let mut adam = Adam::new(0.02);
    let mut losses = Vec::new();
    for step in 0..steps as u64 {
        let (ids, targets) = sample(700 + step);
        let out = match scenario {
            Scenario::Dense => {
                model.execute(StepRequest::train(&ids, &targets, BATCH, SEQ, &mut sgd))
            }
            Scenario::Sparse => {
                model.execute(StepRequest::train(&ids, &targets, BATCH, SEQ, &mut sgd).plan(&plan))
            }
            Scenario::F16Sparse => model.execute(
                StepRequest::train(&ids, &targets, BATCH, SEQ, &mut adam)
                    .plan(&plan)
                    .loss_scale(&mut scaler),
            ),
        };
        losses.push(out.loss);
    }
    let mut params = Vec::new();
    model.for_each_param(&mut |p| {
        if p.trainable {
            params.push(p.value.as_slice().to_vec());
        }
    });
    (losses, params)
}

#[test]
fn pooled_steps_are_bit_identical_to_fresh_allocation_steps() {
    let _guard = alloc_lock();
    for scenario in [Scenario::Dense, Scenario::Sparse, Scenario::F16Sparse] {
        let (losses_pooled, params_pooled) = train_run(scenario, true, 8);
        let (losses_fresh, params_fresh) = train_run(scenario, false, 8);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<u32>>();
        assert_eq!(
            bits(&losses_pooled),
            bits(&losses_fresh),
            "loss trajectories must be bit-identical"
        );
        assert_eq!(params_pooled.len(), params_fresh.len());
        for (a, b) in params_pooled.iter().zip(&params_fresh) {
            assert_eq!(bits(a), bits(b), "parameters must be bit-identical");
        }
    }
}

/// `steps` training steps in `scenario` after `warmup` steps; returns the
/// number of fresh heap tensor allocations during the measured steps.
fn allocs_after_warmup(scenario: Scenario, warmup: usize, steps: usize) -> usize {
    let cfg = ModelConfig::test_tiny();
    let mut model = TransformerModel::new(cfg.clone(), 42);
    let plan = tiny_plan(&cfg);
    let mut scaler = LossScaler::default();
    match scenario {
        Scenario::Dense | Scenario::Sparse => {
            model.for_each_param(&mut |p| p.trainable = true);
        }
        Scenario::F16Sparse => {
            model.freeze_all();
            for block in &mut model.blocks {
                block.attn.wq.attach_lora(4, 8.0, 31);
                block.mlp.attach_lora_fc1(4, 8.0, 33);
            }
            model.set_precision(Precision::F16Frozen);
        }
    }
    let mut sgd = Sgd::new(0.05);
    let mut adam = Adam::new(0.02);
    let mut mark = memtrack::alloc_stats();
    for step in 0..(warmup + steps) as u64 {
        if step == warmup as u64 {
            mark = memtrack::alloc_stats();
        }
        let (ids, targets) = sample(800 + step);
        match scenario {
            Scenario::Dense => {
                model.execute(StepRequest::train(&ids, &targets, BATCH, SEQ, &mut sgd))
            }
            Scenario::Sparse => {
                model.execute(StepRequest::train(&ids, &targets, BATCH, SEQ, &mut sgd).plan(&plan))
            }
            Scenario::F16Sparse => model.execute(
                StepRequest::train(&ids, &targets, BATCH, SEQ, &mut adam)
                    .plan(&plan)
                    .loss_scale(&mut scaler),
            ),
        };
    }
    memtrack::alloc_stats().since(&mark).count
}

#[test]
fn steady_state_steps_perform_zero_heap_tensor_allocations() {
    let _guard = alloc_lock();
    for (scenario, label) in [
        (Scenario::Dense, "dense"),
        (Scenario::Sparse, "sparse"),
        (Scenario::F16Sparse, "f16-sparse"),
    ] {
        let allocs = allocs_after_warmup(scenario, 2, 6);
        assert_eq!(
            allocs, 0,
            "{label}: steady-state steps must not heap-allocate tensors"
        );
    }
}

#[test]
fn steady_state_holds_across_micro_batches() {
    let _guard = alloc_lock();
    let mut model = TransformerModel::new(ModelConfig::test_tiny(), 42);
    model.for_each_param(&mut |p| p.trainable = true);
    let mut opt = Sgd::new(0.05);
    let step = |model: &mut TransformerModel, opt: &mut Sgd, seed: u64| {
        let (ids_a, t_a) = sample(900 + seed);
        let (ids_b, t_b) = sample(950 + seed);
        model.execute(StepRequest::train(&ids_a, &t_a, BATCH, SEQ, opt).micro_batch(&ids_b, &t_b));
    };
    for s in 0..2 {
        step(&mut model, &mut opt, s); // warmup
    }
    let mark = memtrack::alloc_stats();
    for s in 2..8 {
        step(&mut model, &mut opt, s);
    }
    assert_eq!(
        memtrack::alloc_stats().since(&mark).count,
        0,
        "accumulated steps must stay allocation-free"
    );
    let ws = model.workspace_stats();
    assert!(ws.hits > 0 && ws.recycled > 0, "{ws:?}");
}

#[test]
fn data_parallel_steady_state_steps_stay_allocation_free() {
    // The 2-replica arm: each replica's step runs in its own worker thread
    // with its own model workspace, and the grad-exchange (gather, reduce,
    // optimizer update, broadcast) routes through the trainer's exchange
    // workspace — so after warmup a full data-parallel step performs zero
    // fresh heap tensor allocations end to end.
    let _guard = alloc_lock();
    let build = || {
        let mut m = TransformerModel::new(ModelConfig::test_tiny(), 42);
        PeftMethod::lora_default().apply(&mut m, 10);
        m
    };
    let mut trainer = lx_runtime::DataParallelTrainer::new(2, build);
    let mut opt = Sgd::new(0.05);
    let global_batch = 2 * BATCH;
    let mut step = |trainer: &mut lx_runtime::DataParallelTrainer, seed: u64| {
        let vocab = ModelConfig::test_tiny().vocab_size as f32;
        let ids: Vec<u32> = lx_tensor::rng::uniform_vec(global_batch * SEQ, 0.0, vocab, seed)
            .into_iter()
            .map(|v| v as u32)
            .collect();
        let targets = prompt_aware_targets(&ids, global_batch, SEQ, 0);
        trainer.step(&ids, &targets, global_batch, SEQ, None, &mut opt);
    };
    for s in 0..2 {
        step(&mut trainer, 600 + s); // warmup: snapshot buffers materialise
    }
    let mark = memtrack::alloc_stats();
    for s in 2..8 {
        step(&mut trainer, 600 + s);
    }
    assert_eq!(
        memtrack::alloc_stats().since(&mark).count,
        0,
        "steady-state data-parallel steps must not heap-allocate tensors"
    );
    let ws = trainer.exchange_workspace_stats();
    assert!(
        ws.misses > 0,
        "warmup snapshots must have routed through the exchange workspace: {ws:?}"
    );
}

fn small_engine(refresh: PlanRefreshConfig) -> FinetuneEngine {
    let mut cfg = ModelConfig::test_tiny();
    cfg.d_ff = 32;
    let mut model = TransformerModel::new(cfg, 5);
    PeftMethod::lora_default().apply(&mut model, 6);
    let mut engine = FinetuneEngine::new(
        model,
        EngineConfig {
            block_size: 4,
            predictor_rank: 4,
            calib_epochs: 80,
            plan_refresh: refresh,
            ..EngineConfig::default()
        },
    );
    let batch = |seed: u64| {
        let ids: Vec<u32> = lx_tensor::rng::uniform_vec(2 * 16, 0.0, 64.0, seed)
            .into_iter()
            .map(|v| v as u32)
            .collect();
        (ids, 2usize, 16usize)
    };
    engine.calibrate(&[batch(1), batch(2)]);
    engine
}

#[test]
fn plan_reuse_keeps_the_loss_curve_close_while_skipping_predictions() {
    let _guard = alloc_lock();
    let run = |refresh: PlanRefreshConfig| {
        let mut engine = small_engine(refresh);
        let mut opt = Adam::new(0.01);
        let mut losses = Vec::new();
        for step in 0..24u64 {
            let ids: Vec<u32> = lx_tensor::rng::uniform_vec(2 * 16, 0.0, 64.0, 100 + step)
                .into_iter()
                .map(|v| v as u32)
                .collect();
            let targets = prompt_aware_targets(&ids, 2, 16, 0);
            let out = engine.train_step_mode(&ids, &targets, 2, 16, &mut opt, StepMode::Sparse);
            losses.push(out.loss);
        }
        (losses, engine.plan_reuse_stats())
    };
    let (every, stats_every) = run(PlanRefreshConfig::default());
    let (reused, stats_reused) = run(PlanRefreshConfig {
        interval: 4,
        min_overlap: 0.0,
    });
    assert_eq!(stats_every.predicted_steps, 24);
    assert_eq!(stats_reused.predicted_steps, 6, "{stats_reused:?}");
    assert_eq!(stats_reused.reused_steps, 18, "{stats_reused:?}");
    let max_dev = every
        .iter()
        .zip(&reused)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    assert!(
        max_dev <= 0.05,
        "plan reuse must track every-step prediction: max dev {max_dev}"
    );
}
