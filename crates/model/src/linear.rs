//! Dense linear layer with optional LoRA adapter.
//!
//! The backbone weight is typically frozen under PEFT; gradients then flow
//! only into the low-rank pair `(A, B)` exactly as derived in the paper's
//! §II-C: `dW` is skipped, `dA`/`dB` are computed from the same upstream
//! gradient that the frozen path propagates to earlier layers.

use crate::param::Param;
use lx_tensor::gemm::{matmul, matmul_nt, matmul_tn, Epilogue};
use lx_tensor::ops::bias_grad_rows;
use lx_tensor::Tensor;

/// LoRA low-rank pair: `ΔW = (α/r)·BᵀA` with `A ∈ r×d_in`, `B ∈ d_out×r`.
/// `B` starts at zero so fine-tuning begins from the pre-trained function.
#[derive(Debug)]
pub struct Lora {
    pub a: Param,
    pub b: Param,
    pub scale: f32,
    cache_ax: Option<Tensor>,
}

impl Lora {
    pub fn new(
        name_prefix: &str,
        d_in: usize,
        d_out: usize,
        rank: usize,
        alpha: f32,
        seed: u64,
    ) -> Self {
        Lora {
            a: Param::new(
                format!("{name_prefix}.lora_a"),
                Tensor::randn(&[rank, d_in], 1.0 / rank as f32, seed),
                true,
            ),
            b: Param::new(
                format!("{name_prefix}.lora_b"),
                Tensor::zeros(&[d_out, rank]),
                true,
            ),
            scale: alpha / rank as f32,
            cache_ax: None,
        }
    }

    pub fn rank(&self) -> usize {
        self.a.value.shape()[0]
    }
}

/// `y = x·W (+ bias) (+ (α/r)·(x·Aᵀ)·Bᵀ)` with weight stored `d_in × d_out`.
#[derive(Debug)]
pub struct Linear {
    pub weight: Param,
    pub bias: Option<Param>,
    pub lora: Option<Lora>,
    cache_x: Option<Tensor>,
}

impl Linear {
    /// Xavier-ish init, bias zero, no LoRA.
    pub fn new(name: &str, d_in: usize, d_out: usize, with_bias: bool, seed: u64) -> Self {
        let std = (2.0 / (d_in + d_out) as f32).sqrt();
        Linear {
            weight: Param::frozen(
                format!("{name}.weight"),
                Tensor::randn(&[d_in, d_out], std, seed),
            ),
            bias: with_bias.then(|| Param::frozen(format!("{name}.bias"), Tensor::zeros(&[d_out]))),
            lora: None,
            cache_x: None,
        }
    }

    pub fn d_in(&self) -> usize {
        self.weight.shape()[0]
    }

    pub fn d_out(&self) -> usize {
        self.weight.shape()[1]
    }

    /// Attach a LoRA adapter (marks it trainable; backbone stays as-is).
    pub fn attach_lora(&mut self, rank: usize, alpha: f32, seed: u64) {
        let name = self.weight.name.trim_end_matches(".weight").to_string();
        self.lora = Some(Lora::new(
            &name,
            self.d_in(),
            self.d_out(),
            rank,
            alpha,
            seed,
        ));
    }

    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        // Dtype-dispatching (fused f16/quant decode when the backbone weight
        // is reduced-stored), with the bias add fused into the GEMM
        // write-back instead of a second pass over y.
        let ep = match &self.bias {
            Some(bias) => Epilogue::Bias(bias.value.as_slice()),
            None => Epilogue::None,
        };
        let mut y = self.weight.matmul_ep(x, ep);
        if let Some(lora) = &mut self.lora {
            let ax = matmul_nt(x, &lora.a.value); // [rows, r]
            let delta = matmul_nt(&ax, &lora.b.value); // [rows, d_out]
            y.axpy(lora.scale, &delta);
            lora.cache_ax = Some(ax);
        }
        self.cache_x = Some(x.clone());
        y
    }

    /// Backward: returns `dx`; accumulates grads into trainable params.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self
            .cache_x
            .take()
            .expect("Linear::backward without forward");
        let mut dx = self.weight.matmul_nt(dy); // dy · Wᵀ
        if self.weight.trainable {
            let dw = matmul_tn(&x, dy); // xᵀ · dy
            self.weight.accumulate_grad(&dw);
        }
        if let Some(bias) = &mut self.bias {
            if bias.trainable {
                bias_grad_rows(dy, bias.grad_mut().as_mut_slice());
            }
        }
        if let Some(lora) = &mut self.lora {
            let ax = lora.cache_ax.take().expect("LoRA cache missing");
            // d(ax) = (α/r) · dy · B
            let mut dax = matmul(dy, &lora.b.value);
            dax.scale(lora.scale);
            if lora.b.trainable {
                // dB = (α/r) · dyᵀ · ax
                let mut db = matmul_tn(dy, &ax);
                db.scale(lora.scale);
                lora.b.accumulate_grad(&db);
            }
            if lora.a.trainable {
                // dA = d(ax)ᵀ · x
                let da = matmul_tn(&dax, &x);
                lora.a.accumulate_grad(&da);
            }
            // dx += d(ax) · A
            let dx_lora = matmul(&dax, &lora.a.value);
            dx.add_assign(&dx_lora);
        }
        dx
    }

    /// Visit every parameter (weight, bias, LoRA pair).
    pub fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
        if let Some(l) = &mut self.lora {
            f(&mut l.a);
            f(&mut l.b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_loss(lin: &mut Linear, x: &Tensor, dy: &Tensor) -> f32 {
        let y = lin.forward(x);
        y.as_slice()
            .iter()
            .zip(dy.as_slice())
            .map(|(a, b)| a * b)
            .sum()
    }

    #[test]
    fn forward_shapes_and_bias() {
        let mut lin = Linear::new("l", 4, 3, true, 1);
        lin.bias.as_mut().unwrap().value.as_mut_slice()[2] = 7.0;
        let x = Tensor::zeros(&[2, 4]);
        let y = lin.forward(&x);
        assert_eq!(y.shape(), &[2, 3]);
        assert_eq!(y.as_slice()[2], 7.0);
    }

    #[test]
    fn frozen_weight_gets_no_grad() {
        let mut lin = Linear::new("l", 4, 3, true, 2);
        let x = Tensor::randn(&[5, 4], 1.0, 3);
        let y = lin.forward(&x);
        let dy = Tensor::randn(y.shape(), 1.0, 4);
        let _ = lin.backward(&dy);
        assert!(
            lin.weight.grad.is_none(),
            "frozen weight must not allocate grads"
        );
    }

    #[test]
    fn trainable_weight_grad_matches_finite_difference() {
        let mut lin = Linear::new("l", 3, 2, false, 5);
        lin.weight.trainable = true;
        let x = Tensor::randn(&[4, 3], 1.0, 6);
        let dy = Tensor::randn(&[4, 2], 1.0, 7);
        let _ = lin.forward(&x);
        let _ = lin.backward(&dy);
        let analytic = lin.weight.grad.as_ref().unwrap().clone();
        let h = 1e-3;
        for idx in [0usize, 3, 5] {
            let orig = lin.weight.value.as_slice()[idx];
            lin.weight.value.as_mut_slice()[idx] = orig + h;
            let lp = finite_diff_loss(&mut lin, &x, &dy);
            lin.weight.value.as_mut_slice()[idx] = orig - h;
            let lm = finite_diff_loss(&mut lin, &x, &dy);
            lin.weight.value.as_mut_slice()[idx] = orig;
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (analytic.as_slice()[idx] - fd).abs() < 1e-2,
                "idx {idx}: {} vs {fd}",
                analytic.as_slice()[idx]
            );
        }
    }

    #[test]
    fn lora_starts_as_identity_delta() {
        let mut plain = Linear::new("l", 6, 6, true, 8);
        let x = Tensor::randn(&[3, 6], 1.0, 9);
        let y0 = plain.forward(&x);
        plain.attach_lora(2, 4.0, 10);
        let y1 = plain.forward(&x);
        assert_eq!(y0, y1, "B=0 means LoRA is a no-op at init");
    }

    #[test]
    fn lora_grads_match_finite_difference() {
        let mut lin = Linear::new("l", 4, 4, false, 11);
        lin.attach_lora(2, 2.0, 12);
        // Give B nonzero values so dA is informative.
        {
            let lora = lin.lora.as_mut().unwrap();
            let vals = lx_tensor::rng::randn_vec(lora.b.value.len(), 0.3, 13);
            lora.b.value.as_mut_slice().copy_from_slice(&vals);
        }
        let x = Tensor::randn(&[5, 4], 1.0, 14);
        let dy = Tensor::randn(&[5, 4], 1.0, 15);
        let _ = lin.forward(&x);
        let _ = lin.backward(&dy);
        let da = lin.lora.as_ref().unwrap().a.grad.as_ref().unwrap().clone();
        let db = lin.lora.as_ref().unwrap().b.grad.as_ref().unwrap().clone();
        let h = 1e-3;
        for idx in [0usize, 3, 7] {
            let orig = lin.lora.as_ref().unwrap().a.value.as_slice()[idx];
            lin.lora.as_mut().unwrap().a.value.as_mut_slice()[idx] = orig + h;
            let lp = finite_diff_loss(&mut lin, &x, &dy);
            lin.lora.as_mut().unwrap().a.value.as_mut_slice()[idx] = orig - h;
            let lm = finite_diff_loss(&mut lin, &x, &dy);
            lin.lora.as_mut().unwrap().a.value.as_mut_slice()[idx] = orig;
            let fd = (lp - lm) / (2.0 * h);
            assert!((da.as_slice()[idx] - fd).abs() < 1e-2, "dA[{idx}]");
        }
        for idx in [0usize, 2, 5] {
            let orig = lin.lora.as_ref().unwrap().b.value.as_slice()[idx];
            lin.lora.as_mut().unwrap().b.value.as_mut_slice()[idx] = orig + h;
            let lp = finite_diff_loss(&mut lin, &x, &dy);
            lin.lora.as_mut().unwrap().b.value.as_mut_slice()[idx] = orig - h;
            let lm = finite_diff_loss(&mut lin, &x, &dy);
            lin.lora.as_mut().unwrap().b.value.as_mut_slice()[idx] = orig;
            let fd = (lp - lm) / (2.0 * h);
            assert!((db.as_slice()[idx] - fd).abs() < 1e-2, "dB[{idx}]");
        }
    }

    #[test]
    fn dx_includes_lora_path() {
        let mut lin = Linear::new("l", 4, 4, false, 16);
        lin.attach_lora(2, 2.0, 17);
        {
            let lora = lin.lora.as_mut().unwrap();
            let vals = lx_tensor::rng::randn_vec(lora.b.value.len(), 0.5, 18);
            lora.b.value.as_mut_slice().copy_from_slice(&vals);
        }
        let x = Tensor::randn(&[2, 4], 1.0, 19);
        let dy = Tensor::randn(&[2, 4], 1.0, 20);
        let _ = lin.forward(&x);
        let dx = lin.backward(&dy);
        // Finite difference on x itself.
        let h = 1e-3;
        for idx in [0usize, 5] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += h;
            let lp = finite_diff_loss(&mut lin, &xp, &dy);
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= h;
            let lm = finite_diff_loss(&mut lin, &xm, &dy);
            let fd = (lp - lm) / (2.0 * h);
            assert!((dx.as_slice()[idx] - fd).abs() < 1e-2, "dx[{idx}]");
        }
    }

    #[test]
    fn param_visitor_sees_all() {
        let mut lin = Linear::new("l", 4, 4, true, 21);
        lin.attach_lora(2, 2.0, 22);
        let mut names = Vec::new();
        lin.for_each_param(&mut |p| names.push(p.name.clone()));
        assert_eq!(names, vec!["l.weight", "l.bias", "l.lora_a", "l.lora_b"]);
    }
}
