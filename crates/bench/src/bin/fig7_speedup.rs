//! **Figure 7**: end-to-end execution time per batch and speedup of OPT
//! fine-tuning, dense PEFT vs Long Exposure.
//!
//! Two views:
//! 1. *Measured* — real CPU wall-clock on the sim models across sequence
//!    lengths and PEFT methods (speedup must grow with sequence length).
//! 2. *Modelled* — the roofline cost model at the paper's exact model dims
//!    and platforms (A100 / A6000), driven by the densities measured in (1).
//!
//! Paper: avg 1.25× (OPT-1.3B, s=512, A100) → 2.49× (s=1024); up to 2.49×
//! for 2.7B; parallel results on A6000.

use long_exposure::engine::StepMode;
use lx_bench::{calibrated_engine, default_opt, fmt_ms, header, mean_step, row};
use lx_model::ModelConfig;
use lx_peft::PeftMethod;
use lx_runtime::cost::{scaled_step_cost, step_cost, DeviceSpec, WorkloadParams};

fn main() {
    let cli = lx_bench::BenchCli::parse("fig7_speedup");
    let steps = 3;
    println!("== Fig. 7 (measured): sim models, dense vs Long Exposure ==\n");
    header(&[
        "model",
        "seq",
        "method",
        "dense ms",
        "long-exp ms",
        "speedup",
        "attn dens",
        "mlp dens",
    ]);
    let mut densities = Vec::new();
    for cfg in [ModelConfig::opt_sim_small(), ModelConfig::opt_sim_base()] {
        for seq in [256usize, 512] {
            let batch = if seq > 256 { 1 } else { 2 };
            for (mname, method) in [
                ("lora", PeftMethod::lora_default()),
                ("adapter", PeftMethod::adapter_default()),
                ("bitfit", PeftMethod::BitFit),
            ] {
                let (mut engine, mut batcher) =
                    calibrated_engine(cfg.clone(), method, batch, seq, 42);
                let mut opt = default_opt();
                let dense = mean_step(
                    &mut engine,
                    &mut batcher,
                    batch,
                    seq,
                    StepMode::Dense,
                    steps,
                    &mut opt,
                );
                let lx = mean_step(
                    &mut engine,
                    &mut batcher,
                    batch,
                    seq,
                    StepMode::Sparse,
                    steps,
                    &mut opt,
                );
                let speedup = dense.total().as_secs_f64() / lx.total().as_secs_f64();
                row(&[
                    cfg.name.clone(),
                    seq.to_string(),
                    mname.to_string(),
                    fmt_ms(dense.total()),
                    fmt_ms(lx.total()),
                    format!("{speedup:.2}x"),
                    format!("{:.2}", lx.attn_density.unwrap_or(1.0)),
                    format!("{:.2}", lx.mlp_density.unwrap_or(1.0)),
                ]);
                densities.push((
                    lx.attn_density.unwrap_or(1.0) as f64,
                    lx.mlp_density.unwrap_or(1.0) as f64,
                ));
            }
        }
    }
    let attn_d = densities.iter().map(|d| d.0).sum::<f64>() / densities.len() as f64;
    let mlp_d = densities.iter().map(|d| d.1).sum::<f64>() / densities.len() as f64;
    println!("\nmean measured densities: attention {attn_d:.2}, MLP {mlp_d:.2}\n");

    println!(
        "== Fig. 7 (modelled): paper dims on A100 / A6000, LoRA fraction, measured densities ==\n"
    );
    header(&[
        "platform",
        "model",
        "seq",
        "dense ms",
        "long-exp ms",
        "speedup",
        "paper speedup",
    ]);
    let refs = [
        // (model, seq, paper avg speedup on A100)
        ("opt-1.3b", 512, "1.25x"),
        ("opt-1.3b", 1024, "2.49x"),
        ("opt-2.7b", 512, "1.44x"),
        ("opt-2.7b", 1024, "2.49x"),
    ];
    for dev in [DeviceSpec::a100(), DeviceSpec::a6000()] {
        for (model_name, cfg) in [
            ("opt-350m", ModelConfig::opt_350m()),
            ("opt-1.3b", ModelConfig::opt_1_3b()),
            ("opt-2.7b", ModelConfig::opt_2_7b()),
        ] {
            for seq in [512usize, 1024] {
                let batch = 4;
                let lf = 0.003;
                let dense = step_cost(&dev, &cfg, &WorkloadParams::dense(batch, seq, lf)).total_s();
                let lx = step_cost(
                    &dev,
                    &cfg,
                    &WorkloadParams::long_exposure(batch, seq, lf, attn_d, mlp_d),
                )
                .total_s();
                let paper = refs
                    .iter()
                    .find(|r| r.0 == model_name && r.1 == seq)
                    .map(|r| r.2)
                    .unwrap_or("-");
                row(&[
                    dev.name.clone(),
                    model_name.to_string(),
                    seq.to_string(),
                    format!("{:.1}", dense * 1e3),
                    format!("{:.1}", lx * 1e3),
                    format!("{:.2}x", dense / lx),
                    paper.to_string(),
                ]);
            }
        }
    }
    // Keep the linker honest about scaled_step_cost being exercised here too.
    let _ = scaled_step_cost(
        &DeviceSpec::a100(),
        &ModelConfig::opt_350m(),
        &WorkloadParams::dense(4, 512, 0.003),
        1,
    );
    println!("\nshape to check: speedup grows with seq (O(s²)→O(s) attention) and is platform-consistent.");
    cli.finish();
}
