//! Global allocation tracker for tensor buffers.
//!
//! Paper Fig. 8 reports fine-tuning memory footprints; we reproduce it by
//! accounting every tensor buffer the engine allocates. Tracking is
//! cooperative (tensors register/unregister themselves) rather than a global
//! allocator hook, which keeps it cheap and lets experiments scope peaks to a
//! region of interest.

use std::sync::atomic::{AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

pub(crate) fn register(bytes: usize) {
    let now = CURRENT.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK.fetch_max(now, Ordering::Relaxed);
}

pub(crate) fn unregister(bytes: usize) {
    CURRENT.fetch_sub(bytes, Ordering::Relaxed);
}

/// Bytes currently held by live tensors.
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// High-water mark since process start or the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Reset the peak to the current level; returns the old peak.
pub fn reset_peak() -> usize {
    PEAK.swap(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed)
}

/// Measure the peak tensor memory while `f` runs, in bytes above zero.
/// The global peak is reset on entry, so concurrent measurement regions
/// interfere; experiments run them sequentially.
pub fn measure_peak<R>(f: impl FnOnce() -> R) -> (R, usize) {
    reset_peak();
    let r = f();
    (r, peak_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    #[test]
    fn tensor_lifecycle_tracks_bytes() {
        let before = current_bytes();
        let t = Tensor::zeros(&[128, 64]);
        assert_eq!(current_bytes() - before, 128 * 64 * 4);
        drop(t);
        assert_eq!(current_bytes(), before);
    }

    #[test]
    fn clone_registers_its_own_buffer() {
        let before = current_bytes();
        let t = Tensor::zeros(&[10, 10]);
        let u = t.clone();
        assert_eq!(current_bytes() - before, 2 * 10 * 10 * 4);
        drop(t);
        drop(u);
        assert_eq!(current_bytes(), before);
    }

    #[test]
    fn measure_peak_sees_transient_allocation() {
        let (_, peak) = measure_peak(|| {
            let base = current_bytes();
            let t = Tensor::zeros(&[256, 256]);
            drop(t);
            base
        });
        assert!(peak >= 256 * 256 * 4);
    }
}
