//! Machine-readable results for the experiment binaries.
//!
//! Every bin prints Markdown-ish tables through [`header`]/[`row`]; this
//! module transparently collects what was printed and, when the bin was
//! invoked with `--json`, serialises it to `BENCH_<name>.json` in the current
//! directory via [`maybe_emit_json`]. That file is the unit of the perf
//! trajectory: CI and developers commit/compare them across PRs instead of
//! scraping stdout.
//!
//! The JSON is written by hand (the workspace is offline — no serde):
//!
//! ```json
//! {
//!   "bench": "fig12_operators",
//!   "tables": [
//!     {"header": ["sparsity", "time ms"], "rows": [["0.00", "1.23"], ...]}
//!   ]
//! }
//! ```
//!
//! Collection is thread-local: bins print their tables from `main`, so the
//! main thread's log is the report.

use std::cell::RefCell;
use std::io::Write;
use std::path::PathBuf;

#[derive(Default)]
struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

thread_local! {
    static TABLES: RefCell<Vec<Table>> = const { RefCell::new(Vec::new()) };
}

/// Print a table header + separator and start a new collected table.
pub fn header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    TABLES.with(|t| {
        t.borrow_mut().push(Table {
            header: cells.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        })
    });
}

/// Print a Markdown-ish table row and append it to the current table.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
    TABLES.with(|t| {
        let mut tables = t.borrow_mut();
        if tables.is_empty() {
            tables.push(Table::default());
        }
        tables
            .last_mut()
            .expect("just ensured")
            .rows
            .push(cells.to_vec());
    });
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_array(items: &[String]) -> String {
    let quoted: Vec<String> = items
        .iter()
        .map(|s| format!("\"{}\"", json_escape(s)))
        .collect();
    format!("[{}]", quoted.join(","))
}

/// Serialise everything collected so far to `BENCH_<name>.json`.
pub fn emit_json(name: &str) -> std::io::Result<PathBuf> {
    let path = PathBuf::from(format!("BENCH_{name}.json"));
    let body = TABLES.with(|t| {
        let tables = t.borrow();
        let rendered: Vec<String> = tables
            .iter()
            .map(|tab| {
                let rows: Vec<String> = tab.rows.iter().map(|r| json_array(r)).collect();
                format!(
                    "{{\"header\":{},\"rows\":[{}]}}",
                    json_array(&tab.header),
                    rows.join(",")
                )
            })
            .collect();
        format!(
            "{{\"bench\":\"{}\",\"tables\":[{}]}}\n",
            json_escape(name),
            rendered.join(",")
        )
    });
    let mut f = std::fs::File::create(&path)?;
    f.write_all(body.as_bytes())?;
    Ok(path)
}

/// `--json` flag handling for the experiment bins: call once at the end of
/// `main`. Writes `BENCH_<name>.json` when the flag is present.
pub fn maybe_emit_json(name: &str) {
    if std::env::args().any(|a| a == "--json") {
        match emit_json(name) {
            Ok(path) => println!("\nwrote {}", path.display()),
            Err(e) => eprintln!("failed to write BENCH_{name}.json: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_and_serialises_tables() {
        // Thread-local state: run in an isolated thread so parallel tests
        // (and earlier prints) can't interleave.
        std::thread::spawn(|| {
            header(&["a", "b"]);
            row(&["1".into(), "x \"quoted\"".into()]);
            header(&["c"]);
            row(&["2".into()]);
            let body = TABLES.with(|t| {
                let tables = t.borrow();
                assert_eq!(tables.len(), 2);
                assert_eq!(tables[0].rows.len(), 1);
                tables[0].rows[0][1].clone()
            });
            assert_eq!(body, "x \"quoted\"");
            assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        })
        .join()
        .unwrap();
    }
}
